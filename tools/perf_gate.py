#!/usr/bin/env python3
"""Perf regression gate: compare a bench_suite perf record against a stored
baseline and fail beyond a tolerance band.

Raw events/sec depends on the machine, so the comparison is made
machine-independent first: every scenario's events/sec is normalized by the
*median* throughput of its own record, and the gate compares these normalized
shapes. A scenario whose normalized throughput drifts outside
[1 - tolerance, 1 + tolerance] x baseline fails the gate - that is, a
scenario that got slower (or suspiciously faster) *relative to the rest of
the suite*.

When $GITHUB_STEP_SUMMARY is set (any GitHub Actions step), the comparison is
also appended there as a Markdown table (scenario, baseline, current, delta %)
so every CI leg shows its perf picture without digging through logs.

The gate can additionally check the observability layer's compiled-in cost:
--overhead takes a google-benchmark JSON file containing the
BM_ObsOverheadBare / BM_ObsOverheadInstrumented pair (bench/micro_scheduler)
and fails when the instrumented decision loop is more than --max-overhead
slower than the bare one.

--min-speedup guards the scheduling-core rebuild against backsliding: the
baseline's "pre_rebuild" section archives the pre-rebuild decision latency
and per-scenario throughput, and the gate fails unless the current
BM_ScheduleDecision median (from --micro) is at least --min-speedup times
faster AND every archived scenario's events/sec still beats its pre-rebuild
value. Both comparisons are corrected for machine speed through the
BM_CalibrationAnchor pair (a fixed arithmetic kernel timed on both sides),
so a slower CI box is not mistaken for a regression. --update rewrites the
per-scenario shape but always carries the pre_rebuild archive forward.

Usage:
    perf_gate.py CURRENT_JSON BASELINE_JSON [--tolerance 0.25]
    perf_gate.py CURRENT_JSON BASELINE_JSON --overhead micro.json
    perf_gate.py CURRENT_JSON BASELINE_JSON --micro micro.json --min-speedup 5
    perf_gate.py CURRENT_JSON BASELINE_JSON --update   # rewrite the baseline

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys


def load_scenarios(path):
    with open(path) as f:
        record = json.load(f)
    scenarios = {}
    for entry in record.get("scenarios", []):
        eps = float(entry.get("events_per_second", 0.0))
        if eps > 0.0:
            scenarios[entry["name"]] = eps
    if not scenarios:
        sys.exit(f"perf gate: no usable scenarios in {path}")
    return scenarios


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def normalize(scenarios):
    med = median(list(scenarios.values()))
    return {name: eps / med for name, eps in scenarios.items()}, med


def load_micro(path, names):
    """Returns {name: real_time_ns} for the named micro benchmarks.

    Prefers the _median aggregate (present with --benchmark_repetitions);
    falls back to the plain benchmark entry of a single run.
    """
    with open(path) as f:
        record = json.load(f)
    times = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        for base in names:
            if name == base + "_median" or (name == base and base not in times):
                times[base] = float(bench["real_time"])
    return times


def load_overhead(path):
    """Returns (bare_ns, instrumented_ns) from a google-benchmark JSON file."""
    times = load_micro(path, ("BM_ObsOverheadBare", "BM_ObsOverheadInstrumented"))
    bare = times.get("BM_ObsOverheadBare")
    instrumented = times.get("BM_ObsOverheadInstrumented")
    if bare is None or instrumented is None:
        sys.exit(f"perf gate: overhead pair missing from {path} "
                 "(run micro_scheduler with --benchmark_filter=BM_ObsOverhead)")
    return bare, instrumented


def check_overhead(path, max_overhead):
    """Returns (summary_line, failed) for the instrumentation overhead pair."""
    bare, instrumented = load_overhead(path)
    overhead = instrumented / bare - 1.0
    failed = overhead > max_overhead
    line = ("instrumentation overhead: bare {:.1f}ns, instrumented {:.1f}ns, "
            "+{:.2%} (budget {:.0%}){}".format(
                bare, instrumented, overhead, max_overhead,
                " << FAIL" if failed else ""))
    print(f"perf gate: {line}")
    return overhead, failed


def check_frame_encode(path):
    """Returns the informational coalescing row from the BM_FrameEncode pair.

    Compares BM_FrameEncodeSingleton/64 against BM_FrameEncodeBatch/64 (time
    and wire_bytes counter): how much cheaper protocol v5's coalesced envelope
    makes a 64-message flush than 64 individual frames. Reported in the step
    summary, never gated - encode cost is dominated by the scenarios above,
    and the byte ratio is a constant of the frame format.
    """
    with open(path) as f:
        record = json.load(f)
    rows = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        for base in ("BM_FrameEncodeSingleton/64", "BM_FrameEncodeBatch/64"):
            if name == base + "_median" or (name == base and base not in rows):
                rows[base] = (float(bench["real_time"]),
                              float(bench.get("wire_bytes", 0.0)))
    single = rows.get("BM_FrameEncodeSingleton/64")
    batch = rows.get("BM_FrameEncodeBatch/64")
    if single is None or batch is None:
        print(f"perf gate: frame-encode pair missing from {path}; "
              "skipping the coalescing row")
        return None
    time_ratio = single[0] / batch[0] if batch[0] > 0 else 0.0
    byte_ratio = single[1] / batch[1] if batch[1] > 0 else 0.0
    print("perf gate: frame-encode coalescing (64 msgs): {:.0f}ns vs {:.0f}ns "
          "singleton = {:.2f}x faster, {:.0f} vs {:.0f} wire bytes = {:.2f}x "
          "smaller (informational)".format(
              batch[0], single[0], time_ratio, batch[1], single[1], byte_ratio))
    return (single, batch, time_ratio, byte_ratio)


def load_baseline_doc(path):
    with open(path) as f:
        return json.load(f)


def check_speedup(baseline_doc, micro_path, min_speedup, current, baseline_path):
    """Compares the current run against the archived pre-rebuild record.

    Returns (speedup_rows, failed). Each row is
    (label, pre_value, current_value, speedup, over_budget) with times for the
    micro row and events/sec for scenario rows; every comparison is scaled by
    the calibration-anchor ratio so it holds across machines of different
    speeds.
    """
    pre = baseline_doc.get("pre_rebuild")
    if pre is None:
        sys.exit(f"perf gate: {baseline_path} has no pre_rebuild section; "
                 "--min-speedup needs the archived pre-rebuild record")
    times = load_micro(micro_path, ("BM_ScheduleDecision", "BM_CalibrationAnchor"))
    decision = times.get("BM_ScheduleDecision")
    anchor = times.get("BM_CalibrationAnchor")
    if decision is None or anchor is None:
        sys.exit(f"perf gate: {micro_path} lacks BM_ScheduleDecision / "
                 "BM_CalibrationAnchor (run micro_scheduler with "
                 "--benchmark_filter='BM_ScheduleDecision|BM_CalibrationAnchor')")

    # machine > 1 means this box is slower than the one that recorded the
    # archive; pre-rebuild times are scaled up (and throughputs down) to what
    # they would have measured here.
    machine = anchor / float(pre["anchor_ns"])
    rows = []
    failed = False

    pre_decision_here = float(pre["decision_ns"]) * machine
    speedup = pre_decision_here / decision
    over = speedup < min_speedup
    failed = failed or over
    rows.append(("BM_ScheduleDecision (ns)", pre_decision_here, decision,
                 speedup, over))
    print("perf gate: decision latency {:.0f}ns vs pre-rebuild {:.0f}ns "
          "(anchor-corrected) = {:.2f}x speedup (need >= {:.2f}x){}".format(
              decision, pre_decision_here, speedup, min_speedup,
              "  << FAIL" if over else ""))

    for name in sorted(pre.get("scenarios", {})):
        pre_eps_here = float(pre["scenarios"][name]) / machine
        cur_eps = current.get(name)
        if cur_eps is None:
            print(f"perf gate: pre_rebuild scenario '{name}' missing from "
                  "current record  << FAIL")
            rows.append((name, pre_eps_here, 0.0, 0.0, True))
            failed = True
            continue
        ratio = cur_eps / pre_eps_here
        over = ratio < 1.0
        failed = failed or over
        rows.append((name, pre_eps_here, cur_eps, ratio, over))
        print("{:<28} {:>12,.0f} ev/s vs pre {:>12,.0f} = {:.2f}x{}".format(
            name, cur_eps, pre_eps_here, ratio, "  << FAIL" if over else ""))
    return rows, failed


def write_step_summary(rows, unbaselined, missing, tolerance, failed,
                       overhead=None, overhead_failed=False, max_overhead=0.0,
                       speedup_rows=None, min_speedup=0.0, frame_encode=None):
    """Appends a Markdown comparison table to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Perf gate ({}, tolerance ±{:.0%})".format(
            "FAIL" if failed else "PASS", tolerance),
        "",
        "| scenario | baseline (norm) | current (norm) | delta % | |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base_norm, cur_norm, ratio, over in rows:
        lines.append("| {} | {:.3f} | {:.3f} | {:+.1f}% | {} |".format(
            name, base_norm, cur_norm, (ratio - 1.0) * 100.0,
            ":x:" if over else ""))
    for name in unbaselined:
        lines.append(f"| {name} | - | NEW | - | :x: |")
    for name in missing:
        lines.append(f"| {name} | MISSING | - | - | :x: |")
    if overhead is not None:
        lines.append("| obs instrumentation overhead | ≤{:.0%} | {:+.2%} | | {} |".format(
            max_overhead, overhead, ":x:" if overhead_failed else ""))
    if speedup_rows:
        lines += [
            "",
            "### Scheduling-core speedup vs pre-rebuild "
            "(anchor-corrected, decision needs ≥{:.1f}×)".format(min_speedup),
            "",
            "| benchmark | pre-rebuild | current | speedup | |",
            "|---|---:|---:|---:|---|",
        ]
        for name, pre_val, cur_val, speedup, over in speedup_rows:
            lines.append("| {} | {:,.0f} | {:,.0f} | {:.2f}× | {} |".format(
                name, pre_val, cur_val, speedup, ":x:" if over else ""))
    if frame_encode is not None:
        single, batch, time_ratio, byte_ratio = frame_encode
        lines += [
            "",
            "### Wire frame coalescing, 64-message flush (informational)",
            "",
            "| encode path | time (ns) | wire bytes |",
            "|---|---:|---:|",
            "| 64 singleton frames | {:,.0f} | {:,.0f} |".format(*single),
            "| 1 coalesced frame | {:,.0f} | {:,.0f} |".format(*batch),
            "| coalescing gain | {:.2f}× faster | {:.2f}× smaller |".format(
                time_ratio, byte_ratio),
        ]
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="suite_perf.json from this run")
    parser.add_argument("baseline", help="stored baseline (bench/perf_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drift of normalized throughput")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current record and exit")
    parser.add_argument("--overhead",
                        help="google-benchmark JSON with the BM_ObsOverhead pair")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed instrumented/bare slowdown (default 5%%)")
    parser.add_argument("--micro",
                        help="google-benchmark JSON with BM_ScheduleDecision and "
                             "BM_CalibrationAnchor (for --min-speedup)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required BM_ScheduleDecision speedup over the "
                             "baseline's pre_rebuild archive (0 disables)")
    parser.add_argument("--frame-encode",
                        help="google-benchmark JSON with the BM_FrameEncode "
                             "pair; adds an informational coalescing row to "
                             "the step summary")
    args = parser.parse_args()

    current = load_scenarios(args.current)

    if args.update:
        normalized, med = normalize(current)
        doc = {
            "comment": "Normalized per-scenario throughput baseline for "
                       "tools/perf_gate.py. Regenerate with --update after "
                       "intentional perf changes.",
            "median_events_per_second_when_recorded": med,
            "scenarios": [
                {"name": name, "events_per_second": current[name],
                 "normalized": normalized[name]}
                for name in sorted(current)
            ],
        }
        # The pre_rebuild archive is a historical record (the scheduling core
        # before the zero-alloc rebuild); --update must never erase it.
        try:
            previous = load_baseline_doc(args.baseline)
        except (OSError, ValueError):
            previous = {}
        if "pre_rebuild" in previous:
            doc["pre_rebuild"] = previous["pre_rebuild"]
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"perf gate: baseline rewritten with {len(current)} scenarios"
              + (" (pre_rebuild archive preserved)" if "pre_rebuild" in doc else ""))
        return 0

    baseline = load_scenarios(args.baseline)

    # Normalize BOTH records over the same scenario set (the intersection):
    # medians over different sets would shift every ratio whenever a scenario
    # is added or dropped, spuriously failing (or masking) unrelated drift.
    shared = sorted(set(current) & set(baseline))
    if not shared:
        sys.exit("perf gate: no scenarios in common with the baseline")
    cur_shared, _ = normalize({n: current[n] for n in shared})
    base_shared, _ = normalize({n: baseline[n] for n in shared})

    failures = []
    summary_rows = []
    print(f"perf gate: tolerance +/-{args.tolerance:.0%}, "
          f"{len(shared)} shared scenarios")
    print(f"{'scenario':<28} {'current':>12} {'norm':>7} {'base norm':>9} {'ratio':>7}")
    for name in shared:
        ratio = cur_shared[name] / base_shared[name]
        over = abs(ratio - 1.0) > args.tolerance
        flag = ""
        if over:
            flag = "  << FAIL"
            failures.append((name, ratio))
        summary_rows.append((name, base_shared[name], cur_shared[name], ratio, over))
        print(f"{name:<28} {current[name]:>12,.0f} {cur_shared[name]:>7.3f} "
              f"{base_shared[name]:>9.3f} {ratio:>7.3f}{flag}")

    unbaselined = sorted(set(current) - set(baseline))
    missing = sorted(set(baseline) - set(current))
    for name in unbaselined:
        print(f"{name:<28} {current[name]:>12,.0f}   NEW (not in baseline)")
    for name in missing:
        print(f"{name:<28}   MISSING from current record")

    overhead = None
    overhead_failed = False
    if args.overhead:
        overhead, overhead_failed = check_overhead(args.overhead, args.max_overhead)

    frame_encode = None
    if args.frame_encode:
        frame_encode = check_frame_encode(args.frame_encode)

    speedup_rows = None
    speedup_failed = False
    if args.min_speedup > 0.0:
        if not args.micro:
            sys.exit("perf gate: --min-speedup needs --micro (google-benchmark "
                     "JSON with BM_ScheduleDecision and BM_CalibrationAnchor)")
        speedup_rows, speedup_failed = check_speedup(
            load_baseline_doc(args.baseline), args.micro, args.min_speedup,
            current, args.baseline)

    # Absent scenarios are a hard error in both directions, never a skip: a
    # baseline entry missing from the run means coverage silently shrank
    # (e.g. a registry entry was dropped or renamed without touching the
    # baseline), and an unbaselined scenario means the gate is not guarding
    # the new entry yet.
    failed = bool(unbaselined or missing or failures or overhead_failed
                  or speedup_failed)
    write_step_summary(summary_rows, unbaselined, missing, args.tolerance, failed,
                       overhead, overhead_failed, args.max_overhead,
                       speedup_rows, args.min_speedup, frame_encode)
    if unbaselined:
        print(f"perf gate: FAIL - scenario(s) not in the baseline: "
              f"{', '.join(unbaselined)}; regenerate it with --update")
        return 1
    if missing:
        print(f"perf gate: FAIL - baseline scenario(s) absent from the current "
              f"run: {', '.join(missing)}; the suite no longer covers them")
        return 1
    if failures:
        drifts = ", ".join(f"{n} ({r:.2f}x)" for n, r in failures)
        print(f"perf gate: FAIL - normalized throughput drifted: {drifts}")
        return 1
    if overhead_failed:
        print(f"perf gate: FAIL - instrumentation overhead {overhead:+.2%} "
              f"exceeds the {args.max_overhead:.0%} budget")
        return 1
    if speedup_failed:
        print("perf gate: FAIL - scheduling core lost ground against the "
              "pre-rebuild archive (see rows above)")
        return 1
    print(f"perf gate: PASS ({len(shared)} scenarios within the band)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
