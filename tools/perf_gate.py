#!/usr/bin/env python3
"""Perf regression gate: compare a bench_suite perf record against a stored
baseline and fail beyond a tolerance band.

Raw events/sec depends on the machine, so the comparison is made
machine-independent first: every scenario's events/sec is normalized by the
*median* throughput of its own record, and the gate compares these normalized
shapes. A scenario whose normalized throughput drifts outside
[1 - tolerance, 1 + tolerance] x baseline fails the gate - that is, a
scenario that got slower (or suspiciously faster) *relative to the rest of
the suite*.

When $GITHUB_STEP_SUMMARY is set (any GitHub Actions step), the comparison is
also appended there as a Markdown table (scenario, baseline, current, delta %)
so every CI leg shows its perf picture without digging through logs.

The gate can additionally check the observability layer's compiled-in cost:
--overhead takes a google-benchmark JSON file containing the
BM_ObsOverheadBare / BM_ObsOverheadInstrumented pair (bench/micro_scheduler)
and fails when the instrumented decision loop is more than --max-overhead
slower than the bare one.

Usage:
    perf_gate.py CURRENT_JSON BASELINE_JSON [--tolerance 0.25]
    perf_gate.py CURRENT_JSON BASELINE_JSON --overhead micro.json
    perf_gate.py CURRENT_JSON BASELINE_JSON --update   # rewrite the baseline

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys


def load_scenarios(path):
    with open(path) as f:
        record = json.load(f)
    scenarios = {}
    for entry in record.get("scenarios", []):
        eps = float(entry.get("events_per_second", 0.0))
        if eps > 0.0:
            scenarios[entry["name"]] = eps
    if not scenarios:
        sys.exit(f"perf gate: no usable scenarios in {path}")
    return scenarios


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def normalize(scenarios):
    med = median(list(scenarios.values()))
    return {name: eps / med for name, eps in scenarios.items()}, med


def load_overhead(path):
    """Returns (bare_ns, instrumented_ns) from a google-benchmark JSON file.

    Prefers the _median aggregate (present with --benchmark_repetitions);
    falls back to the plain benchmark entry of a single run.
    """
    with open(path) as f:
        record = json.load(f)
    times = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        for base in ("BM_ObsOverheadBare", "BM_ObsOverheadInstrumented"):
            if name == base + "_median" or (name == base and base not in times):
                times[base] = float(bench["real_time"])
    bare = times.get("BM_ObsOverheadBare")
    instrumented = times.get("BM_ObsOverheadInstrumented")
    if bare is None or instrumented is None:
        sys.exit(f"perf gate: overhead pair missing from {path} "
                 "(run micro_scheduler with --benchmark_filter=BM_ObsOverhead)")
    return bare, instrumented


def check_overhead(path, max_overhead):
    """Returns (summary_line, failed) for the instrumentation overhead pair."""
    bare, instrumented = load_overhead(path)
    overhead = instrumented / bare - 1.0
    failed = overhead > max_overhead
    line = ("instrumentation overhead: bare {:.1f}ns, instrumented {:.1f}ns, "
            "+{:.2%} (budget {:.0%}){}".format(
                bare, instrumented, overhead, max_overhead,
                " << FAIL" if failed else ""))
    print(f"perf gate: {line}")
    return overhead, failed


def write_step_summary(rows, unbaselined, missing, tolerance, failed,
                       overhead=None, overhead_failed=False, max_overhead=0.0):
    """Appends a Markdown comparison table to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Perf gate ({}, tolerance ±{:.0%})".format(
            "FAIL" if failed else "PASS", tolerance),
        "",
        "| scenario | baseline (norm) | current (norm) | delta % | |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base_norm, cur_norm, ratio, over in rows:
        lines.append("| {} | {:.3f} | {:.3f} | {:+.1f}% | {} |".format(
            name, base_norm, cur_norm, (ratio - 1.0) * 100.0,
            ":x:" if over else ""))
    for name in unbaselined:
        lines.append(f"| {name} | - | NEW | - | :x: |")
    for name in missing:
        lines.append(f"| {name} | MISSING | - | - | :x: |")
    if overhead is not None:
        lines.append("| obs instrumentation overhead | ≤{:.0%} | {:+.2%} | | {} |".format(
            max_overhead, overhead, ":x:" if overhead_failed else ""))
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="suite_perf.json from this run")
    parser.add_argument("baseline", help="stored baseline (bench/perf_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drift of normalized throughput")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current record and exit")
    parser.add_argument("--overhead",
                        help="google-benchmark JSON with the BM_ObsOverhead pair")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed instrumented/bare slowdown (default 5%%)")
    args = parser.parse_args()

    current = load_scenarios(args.current)

    if args.update:
        normalized, med = normalize(current)
        doc = {
            "comment": "Normalized per-scenario throughput baseline for "
                       "tools/perf_gate.py. Regenerate with --update after "
                       "intentional perf changes.",
            "median_events_per_second_when_recorded": med,
            "scenarios": [
                {"name": name, "events_per_second": current[name],
                 "normalized": normalized[name]}
                for name in sorted(current)
            ],
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"perf gate: baseline rewritten with {len(current)} scenarios")
        return 0

    baseline = load_scenarios(args.baseline)

    # Normalize BOTH records over the same scenario set (the intersection):
    # medians over different sets would shift every ratio whenever a scenario
    # is added or dropped, spuriously failing (or masking) unrelated drift.
    shared = sorted(set(current) & set(baseline))
    if not shared:
        sys.exit("perf gate: no scenarios in common with the baseline")
    cur_shared, _ = normalize({n: current[n] for n in shared})
    base_shared, _ = normalize({n: baseline[n] for n in shared})

    failures = []
    summary_rows = []
    print(f"perf gate: tolerance +/-{args.tolerance:.0%}, "
          f"{len(shared)} shared scenarios")
    print(f"{'scenario':<28} {'current':>12} {'norm':>7} {'base norm':>9} {'ratio':>7}")
    for name in shared:
        ratio = cur_shared[name] / base_shared[name]
        over = abs(ratio - 1.0) > args.tolerance
        flag = ""
        if over:
            flag = "  << FAIL"
            failures.append((name, ratio))
        summary_rows.append((name, base_shared[name], cur_shared[name], ratio, over))
        print(f"{name:<28} {current[name]:>12,.0f} {cur_shared[name]:>7.3f} "
              f"{base_shared[name]:>9.3f} {ratio:>7.3f}{flag}")

    unbaselined = sorted(set(current) - set(baseline))
    missing = sorted(set(baseline) - set(current))
    for name in unbaselined:
        print(f"{name:<28} {current[name]:>12,.0f}   NEW (not in baseline)")
    for name in missing:
        print(f"{name:<28}   MISSING from current record")

    overhead = None
    overhead_failed = False
    if args.overhead:
        overhead, overhead_failed = check_overhead(args.overhead, args.max_overhead)

    # Absent scenarios are a hard error in both directions, never a skip: a
    # baseline entry missing from the run means coverage silently shrank
    # (e.g. a registry entry was dropped or renamed without touching the
    # baseline), and an unbaselined scenario means the gate is not guarding
    # the new entry yet.
    failed = bool(unbaselined or missing or failures or overhead_failed)
    write_step_summary(summary_rows, unbaselined, missing, args.tolerance, failed,
                       overhead, overhead_failed, args.max_overhead)
    if unbaselined:
        print(f"perf gate: FAIL - scenario(s) not in the baseline: "
              f"{', '.join(unbaselined)}; regenerate it with --update")
        return 1
    if missing:
        print(f"perf gate: FAIL - baseline scenario(s) absent from the current "
              f"run: {', '.join(missing)}; the suite no longer covers them")
        return 1
    if failures:
        drifts = ", ".join(f"{n} ({r:.2f}x)" for n, r in failures)
        print(f"perf gate: FAIL - normalized throughput drifted: {drifts}")
        return 1
    if overhead_failed:
        print(f"perf gate: FAIL - instrumentation overhead {overhead:+.2%} "
              f"exceeds the {args.max_overhead:.0%} budget")
        return 1
    print(f"perf gate: PASS ({len(shared)} scenarios within the band)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
