#!/usr/bin/env sh
# Regenerates the sentinel-delimited generated sections of EXPERIMENTS.md:
# the registry catalog (straight from the scenario specs) and the rate-sweep
# crossover study (a real ablation/rate_sweep campaign at the pinned seed).
# The CI doc-drift gate runs this and fails on any diff, so the committed
# document is always byte-identical to what the tools produce.
#
#   tools/regen_docs.sh [build-dir] [out-dir]
#
# Defaults: build-dir = build, out-dir = bench_out.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$REPO_ROOT"

if [ ! -x "$BUILD_DIR/bench_suite" ] || [ ! -x "$BUILD_DIR/casched_report" ]; then
  echo "error: $BUILD_DIR/bench_suite or $BUILD_DIR/casched_report missing; build first" >&2
  exit 1
fi

# Seed 42 is the pinned study seed: the record (and therefore the generated
# section) is deterministic for it, which is what makes the drift gate exact.
"$BUILD_DIR/bench_suite" --scenarios ablation/rate_sweep --seed 42 \
    --json rate_sweep_study --out "$OUT_DIR" > /dev/null

"$BUILD_DIR/casched_report" --json "$OUT_DIR/rate_sweep_study.json" \
    --update-docs EXPERIMENTS.md
