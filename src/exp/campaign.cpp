#include "exp/campaign.hpp"

#include <algorithm>
#include <chrono>

#include "simcore/rng.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::exp {

const CellAggregate& CampaignResult::cell(const std::string& heuristic,
                                          std::size_t metataskIdx) const {
  auto it = cells.find(heuristic);
  CASCHED_CHECK(it != cells.end(), "campaign has no heuristic '" + heuristic + "'");
  CASCHED_CHECK(metataskIdx < it->second.size(), "metatask index out of range");
  return it->second[metataskIdx];
}

namespace {
/// All runs of one (metatask, replication) pair.
struct PairOutcome {
  std::vector<metrics::RunResult> runs;  // ordered as config.heuristics
};
}  // namespace

CampaignResult runCampaign(const ExperimentSpec& spec, const CampaignConfig& config) {
  CASCHED_CHECK(!config.heuristics.empty(), "campaign needs heuristics");
  CASCHED_CHECK(config.metataskCount > 0 && config.replications > 0,
                "campaign needs at least one metatask and one replication");
  const auto wallStart = std::chrono::steady_clock::now();

  // Pre-generate the metatasks (same ones for every heuristic).
  std::vector<workload::Metatask> metatasks;
  metatasks.reserve(config.metataskCount);
  for (std::size_t m = 0; m < config.metataskCount; ++m) {
    workload::MetataskConfig mc = spec.metatask;
    mc.seed = simcore::deriveSeed(spec.metatask.seed, 1000 + m);
    mc.name = spec.metatask.name + "-M" + std::to_string(m + 1);
    metatasks.push_back(workload::generateMetatask(mc));
  }

  const std::size_t pairs = config.metataskCount * config.replications;
  std::vector<PairOutcome> outcomes(pairs);

  std::vector<std::function<void()>> jobs;
  jobs.reserve(pairs);
  for (std::size_t m = 0; m < config.metataskCount; ++m) {
    for (std::size_t r = 0; r < config.replications; ++r) {
      const std::size_t slot = m * config.replications + r;
      jobs.push_back([&, m, r, slot] {
        const std::uint64_t noiseSeed =
            simcore::deriveSeed(spec.system.noiseSeed, slot + 1);
        PairOutcome& out = outcomes[slot];
        out.runs.reserve(config.heuristics.size());
        for (const std::string& h : config.heuristics) {
          const bool ft =
              resolveFaultTolerance(config.ftPolicy, h, spec.system.faultTolerance);
          out.runs.push_back(runOne(spec, metatasks[m], h, ft, noiseSeed));
        }
        (void)r;
      });
    }
  }
  ParallelRunner(config.threads).run(jobs);

  // Aggregate deterministically.
  CampaignResult result;
  result.heuristics = config.heuristics;
  result.metataskCount = config.metataskCount;
  for (const std::string& h : config.heuristics) {
    result.cells[h] = std::vector<CellAggregate>(config.metataskCount);
  }

  const auto baselineIdx = [&]() -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < config.heuristics.size(); ++i) {
      if (config.heuristics[i] == config.baseline) return i;
    }
    return std::nullopt;
  }();

  for (std::size_t m = 0; m < config.metataskCount; ++m) {
    for (std::size_t r = 0; r < config.replications; ++r) {
      const std::size_t slot = m * config.replications + r;
      const PairOutcome& out = outcomes[slot];
      for (std::size_t h = 0; h < config.heuristics.size(); ++h) {
        const metrics::RunResult& run = out.runs[h];
        const metrics::RunMetrics rm = metrics::computeMetrics(run);
        CellAggregate& cell = result.cells[config.heuristics[h]][m];
        cell.metrics.addRun(rm);
        std::uint64_t collapses = 0;
        for (const auto& [server, summary] : run.servers) collapses += summary.collapses;
        cell.collapses.add(static_cast<double>(collapses));
        cell.lost.add(static_cast<double>(rm.lost));
        cell.htmRelErrorPct.add(run.htmMeanRelErrorPercent);
        result.simulatedEvents += run.simulatedEvents;

        RawRow raw;
        raw.heuristic = config.heuristics[h];
        raw.metataskIndex = m;
        raw.replication = r;
        raw.metrics = rm;
        raw.collapses = collapses;
        raw.htmRelErrorPct = run.htmMeanRelErrorPercent;
        if (baselineIdx && h != *baselineIdx) {
          const std::size_t sooner = metrics::countSooner(run, out.runs[*baselineIdx]);
          cell.metrics.addSooner(sooner);
          raw.sooner = sooner;
        }
        result.raw.push_back(std::move(raw));

        if (m == 0 && r == 0) {
          result.sampleRuns.emplace(config.heuristics[h], run);
        }
      }
    }
  }
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart)
          .count();
  return result;
}

std::string campaignRawCsv(const CampaignResult& result) {
  util::CsvWriter csv({"heuristic", "metatask", "replication", "completed", "lost",
                       "makespan", "sumflow", "maxflow", "maxstretch", "meanstretch",
                       "sooner_vs_baseline", "collapses", "htm_rel_err_pct",
                       "simulated_events"});
  for (const RawRow& r : result.raw) {
    csv.addRow({r.heuristic, std::to_string(r.metataskIndex + 1),
                std::to_string(r.replication + 1), std::to_string(r.metrics.completed),
                std::to_string(r.metrics.lost), util::strformat("%.2f", r.metrics.makespan),
                util::strformat("%.2f", r.metrics.sumFlow),
                util::strformat("%.2f", r.metrics.maxFlow),
                util::strformat("%.3f", r.metrics.maxStretch),
                util::strformat("%.3f", r.metrics.meanStretch), std::to_string(r.sooner),
                std::to_string(r.collapses), util::strformat("%.3f", r.htmRelErrorPct),
                std::to_string(r.metrics.simulatedEvents)});
  }
  return csv.render();
}

}  // namespace casched::exp
