#pragma once
/// \file suite.hpp
/// The suite layer: runs a list of registry scenarios as replicated
/// campaigns - sweep axes expanded into variants - and renders each one as
/// its paper-style table, a CSV twin, and a machine-readable JSON record
/// with per-scenario throughput (simulated events / wall second). Every
/// former table/ablation bench is a thin declaration over this driver.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "obs/metrics.hpp"
#include "scenario/faults.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "util/table.hpp"

namespace casched::exp {

/// Suite-wide knobs. The zero/empty members are overrides: they replace the
/// scenario's own [campaign]/[workload] values only when set, so a suite can
/// shrink every scenario to a smoke run (--tasks 60 --replications 1)
/// without touching the registry.
struct SuiteOptions {
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< replication threads (0 = hardware)
  std::size_t replications = 0;
  std::size_t metatasks = 0;
  std::size_t taskCount = 0;
  std::vector<std::string> heuristics;
  std::optional<FaultTolerancePolicy> ftPolicy;
};

/// One sweep point of a scenario campaign (a plain scenario has exactly one
/// variant with no coordinates).
struct SuiteVariant {
  std::vector<std::pair<std::string, std::string>> coordinates;
  ExperimentSpec spec;
  CampaignResult result;
};

/// Everything one scenario produced under the suite driver.
struct SuiteScenarioResult {
  std::string scenario;
  std::string description;
  std::string title;        ///< resolved display title
  CampaignConfig campaign;  ///< after suite overrides
  std::string ftPolicyName;
  std::size_t servers = 0;      ///< initial testbed size (base variant)
  std::size_t churnEvents = 0;  ///< scheduled membership timeline length
  /// Stochastic churn of the base variant at this suite's seed: how many of
  /// the timeline's events [faults] generated, their digest and the per-seed
  /// summary (crash count, mean downtime, peak dead servers/domains).
  std::size_t generatedChurn = 0;
  std::uint64_t churnDigest = 0;
  scenario::ChurnTimelineSummary churnSummary;
  std::vector<SuiteVariant> variants;

  /// What this scenario's campaign added to the process-wide metrics
  /// registry (counters and histograms as deltas against the pre-run
  /// snapshot; scenarios run sequentially, so parallel replication threads
  /// all land inside their own scenario's delta).
  obs::RegistrySnapshot metricsDelta;

  /// Per-scenario perf record, aggregated over every variant and run.
  double wallSeconds = 0.0;
  std::uint64_t simulatedEvents = 0;
  double eventsPerSecond() const {
    return wallSeconds > 0.0 ? static_cast<double>(simulatedEvents) / wallSeconds
                             : 0.0;
  }

  bool swept() const {
    return variants.size() != 1 || !variants.front().coordinates.empty();
  }
};

struct SuiteResult {
  std::uint64_t seed = 0;
  std::vector<SuiteScenarioResult> scenarios;
};

/// Maps a scenario's [campaign] section onto the campaign runner's config.
CampaignConfig campaignFromSpec(const scenario::CampaignSpec& spec);

/// Runs one scenario (already parsed - registry entry, file, or sweep base)
/// under the suite driver: overrides applied, sweep expanded, one campaign
/// per variant.
SuiteScenarioResult runSuiteScenario(const scenario::ScenarioSpec& spec,
                                     const SuiteOptions& options);

/// Runs every named registry scenario in order.
SuiteResult runSuite(const std::vector<std::string>& names,
                     const SuiteOptions& options);

/// Paper-style table of one scenario: Table 5/6 layout for one metatask,
/// Table 7/8 layout for several, and the generic sweep grid (one row per
/// variant x heuristic) for swept scenarios.
util::TablePrinter renderSuiteScenarioTable(const SuiteScenarioResult& scenario);

/// Raw per-run CSV of one scenario, sweep coordinates included.
std::string suiteScenarioCsv(const SuiteScenarioResult& scenario);

/// The whole suite as one JSON document: campaign setup, per-variant
/// aggregates (mean/sd per metric) and the per-scenario perf record
/// (wall_seconds, simulated_events, events_per_second).
std::string suiteJson(const SuiteResult& suite);

/// "paper/table5_matmul_low" -> "paper_table5_matmul_low" (output file stem).
std::string scenarioFileBase(const std::string& scenarioName);

/// Writes per-scenario table + CSV twins under `outDir` plus the suite JSON
/// as `<outDir>/<jsonBase>.json`.
void emitSuite(const SuiteResult& suite, const std::string& outDir,
               const std::string& jsonBase = "suite");

}  // namespace casched::exp
