#pragma once
/// \file parallel.hpp
/// Thread pool for independent experiment replications. Each simulation is
/// single-threaded and deterministic; the pool simply runs many of them at
/// once. Results must be written to pre-sized slots so output order never
/// depends on thread scheduling.

#include <cstddef>
#include <functional>
#include <vector>

namespace casched::exp {

class ParallelRunner {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1).
  explicit ParallelRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Runs all jobs, blocking until completion. Jobs are claimed in index
  /// order. The first exception thrown by any job is rethrown here after all
  /// workers finished.
  void run(const std::vector<std::function<void()>>& jobs) const;

 private:
  unsigned threads_;
};

}  // namespace casched::exp
