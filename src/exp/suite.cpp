#include "exp/suite.hpp"

#include "exp/tables.hpp"
#include "scenario/registry.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace casched::exp {

namespace {

/// The scenario spec with every suite override folded in.
scenario::ScenarioSpec applyOverrides(scenario::ScenarioSpec spec,
                                      const SuiteOptions& options) {
  if (options.taskCount > 0) spec.workload.count = options.taskCount;
  if (options.metatasks > 0) spec.campaign.metatasks = options.metatasks;
  if (options.replications > 0) spec.campaign.replications = options.replications;
  if (!options.heuristics.empty()) spec.campaign.heuristics = options.heuristics;
  if (options.ftPolicy) {
    spec.campaign.ftPolicy = faultTolerancePolicyName(*options.ftPolicy);
  }
  return spec;
}

void addStat(util::JsonWriter& json, const char* name, const util::RunningStat& s) {
  json.key(name).beginObject();
  json.key("mean").value(s.mean());
  json.key("sd").value(s.stddev());
  json.endObject();
}

}  // namespace

CampaignConfig campaignFromSpec(const scenario::CampaignSpec& spec) {
  CampaignConfig cc;
  cc.heuristics = spec.heuristics;
  cc.baseline = spec.baseline;
  cc.metataskCount = spec.metatasks;
  cc.replications = spec.replications;
  cc.ftPolicy = parseFaultTolerancePolicy(spec.ftPolicy);
  return cc;
}

SuiteScenarioResult runSuiteScenario(const scenario::ScenarioSpec& baseSpec,
                                     const SuiteOptions& options) {
  const scenario::ScenarioSpec spec = applyOverrides(baseSpec, options);

  SuiteScenarioResult out;
  out.scenario = spec.name;
  out.description = spec.description;
  out.campaign = campaignFromSpec(spec.campaign);
  out.campaign.threads = options.threads;
  out.ftPolicyName = spec.campaign.ftPolicy;
  out.title = !spec.campaign.title.empty()
                  ? spec.campaign.title +
                        util::strformat(" (mean of %zu runs)", out.campaign.replications)
                  : "Scenario '" + spec.name + "'" +
                        (spec.description.empty() ? "" : ": " + spec.description);

  const obs::RegistrySnapshot beforeRun = obs::Registry::global().snapshot();
  for (const scenario::SweepPoint& point : scenario::expandSweep(spec)) {
    SuiteVariant variant;
    variant.coordinates = point.coordinates;
    variant.spec = specFromScenarioSpec(point.spec, options.seed);
    variant.result = runCampaign(variant.spec, out.campaign);
    out.wallSeconds += variant.result.wallSeconds;
    out.simulatedEvents += variant.result.simulatedEvents;
    out.variants.push_back(std::move(variant));
  }
  CASCHED_CHECK(!out.variants.empty(), "sweep expansion produced no variants");
  out.metricsDelta = obs::Registry::global().snapshot().since(beforeRun);
  const ExperimentSpec& base = out.variants.front().spec;
  out.servers = base.testbed.servers.size();
  out.churnEvents = base.churn.size();
  out.generatedChurn = base.generatedChurn;
  out.churnDigest = scenario::churnTimelineDigest(base.churn);
  out.churnSummary = scenario::summarizeChurnTimeline(base.churn, base.faultDomains);
  return out;
}

SuiteResult runSuite(const std::vector<std::string>& names,
                     const SuiteOptions& options) {
  SuiteResult suite;
  suite.seed = options.seed;
  for (const std::string& name : names) {
    suite.scenarios.push_back(
        runSuiteScenario(scenario::findScenario(name), options));
  }
  return suite;
}

namespace {

util::TablePrinter renderSweepTable(const SuiteScenarioResult& s) {
  util::TablePrinter t(s.title);
  std::vector<std::string> header;
  for (const auto& [param, value] : s.variants.front().coordinates) {
    (void)value;
    header.push_back(param);
  }
  const std::size_t axisCols = header.size();
  header.insert(header.end(),
                {"heuristic", "completed", "collapses", "sumflow", "maxflow",
                 "maxstretch", "HTM err %", "sooner vs " + s.campaign.baseline});
  t.setHeader(std::move(header));

  for (std::size_t v = 0; v < s.variants.size(); ++v) {
    const SuiteVariant& variant = s.variants[v];
    bool firstRow = true;
    for (const std::string& h : s.campaign.heuristics) {
      const CellAggregate& c = variant.result.cell(h, 0);
      std::vector<std::string> row;
      row.reserve(axisCols + 8);
      for (const auto& [param, value] : variant.coordinates) {
        (void)param;
        row.push_back(firstRow ? value : "");
      }
      firstRow = false;
      row.push_back(h);
      row.push_back(metrics::formatMeanSd(c.metrics.completed, 0));
      row.push_back(metrics::formatMeanSd(c.collapses, 1));
      row.push_back(metrics::formatMeanSd(c.metrics.sumFlow, 0));
      row.push_back(metrics::formatMeanSd(c.metrics.maxFlow, 0));
      row.push_back(metrics::formatMeanSd(c.metrics.maxStretch, 1));
      row.push_back(metrics::formatMeanSd(c.htmRelErrorPct, 2));
      row.push_back(c.metrics.sooner.count() == 0
                        ? "-"
                        : metrics::formatMeanSd(c.metrics.sooner, 0));
      t.addRow(std::move(row));
    }
    // Rule between variants; single-row variants only rule when the slowest
    // axis advances, so a two-axis grid reads as one block per outer value.
    if (v + 1 < s.variants.size() &&
        (s.campaign.heuristics.size() > 1 ||
         s.variants[v + 1].coordinates.front().second !=
             variant.coordinates.front().second)) {
      t.addRule();
    }
  }
  return t;
}

}  // namespace

util::TablePrinter renderSuiteScenarioTable(const SuiteScenarioResult& s) {
  if (s.swept()) return renderSweepTable(s);
  const CampaignResult& result = s.variants.front().result;
  return s.campaign.metataskCount > 1 ? renderMultiMetataskTable(s.title, result)
                                      : renderSingleMetataskTable(s.title, result);
}

std::string suiteScenarioCsv(const SuiteScenarioResult& s) {
  std::vector<std::string> header{"scenario"};
  for (const auto& [param, value] : s.variants.front().coordinates) {
    (void)value;
    header.push_back(param);
  }
  header.insert(header.end(),
                {"heuristic", "metatask", "replication", "completed", "lost",
                 "makespan", "sumflow", "maxflow", "maxstretch", "meanstretch",
                 "sooner_vs_baseline", "collapses", "htm_rel_err_pct",
                 "simulated_events"});
  util::CsvWriter csv(std::move(header));
  for (const SuiteVariant& variant : s.variants) {
    for (const RawRow& r : variant.result.raw) {
      std::vector<std::string> row{s.scenario};
      for (const auto& [param, value] : variant.coordinates) {
        (void)param;
        row.push_back(value);
      }
      row.insert(row.end(),
                 {r.heuristic, std::to_string(r.metataskIndex + 1),
                  std::to_string(r.replication + 1),
                  std::to_string(r.metrics.completed), std::to_string(r.metrics.lost),
                  util::strformat("%.2f", r.metrics.makespan),
                  util::strformat("%.2f", r.metrics.sumFlow),
                  util::strformat("%.2f", r.metrics.maxFlow),
                  util::strformat("%.3f", r.metrics.maxStretch),
                  util::strformat("%.3f", r.metrics.meanStretch),
                  std::to_string(r.sooner), std::to_string(r.collapses),
                  util::strformat("%.3f", r.htmRelErrorPct),
                  std::to_string(r.metrics.simulatedEvents)});
      csv.addRow(std::move(row));
    }
  }
  return csv.render();
}

std::string suiteJson(const SuiteResult& suite) {
  util::JsonWriter json;
  json.beginObject();
  json.key("seed").value(static_cast<std::uint64_t>(suite.seed));
  json.key("scenario_count").value(suite.scenarios.size());
  json.key("scenarios").beginArray();
  for (const SuiteScenarioResult& s : suite.scenarios) {
    json.beginObject();
    json.key("name").value(s.scenario);
    json.key("description").value(s.description);
    json.key("title").value(s.title);
    json.key("servers").value(s.servers);
    json.key("churn_events").value(s.churnEvents);
    if (s.generatedChurn > 0) {
      // Per-seed record of the generated fault stream, so a suite artifact
      // and a live-run artifact from the same (scenario, seed) can prove
      // they replayed one identical timeline (equal digests).
      json.key("generated_churn").value(s.generatedChurn);
      json.key("churn_digest").value(s.churnDigest);
      json.key("churn_summary");
      json.beginObject();
      json.key("crashes").value(s.churnSummary.crashes);
      json.key("slowdowns").value(s.churnSummary.slowdowns);
      json.key("links").value(s.churnSummary.linkEvents);
      json.key("mean_downtime").value(s.churnSummary.meanDowntime);
      json.key("max_concurrent_down").value(s.churnSummary.maxConcurrentDown);
      json.key("max_dead_domains").value(s.churnSummary.maxConcurrentDeadDomains);
      json.endObject();
    }
    json.key("metatasks").value(s.campaign.metataskCount);
    json.key("replications").value(s.campaign.replications);
    json.key("baseline").value(s.campaign.baseline);
    json.key("ft_policy").value(s.ftPolicyName);
    json.key("heuristics").beginArray();
    for (const std::string& h : s.campaign.heuristics) json.value(h);
    json.endArray();

    json.key("variants").beginArray();
    for (const SuiteVariant& variant : s.variants) {
      json.beginObject();
      json.key("coordinates").beginObject();
      for (const auto& [param, value] : variant.coordinates) {
        json.key(param).value(value);
      }
      json.endObject();
      json.key("wall_seconds").value(variant.result.wallSeconds);
      json.key("simulated_events")
          .value(static_cast<std::uint64_t>(variant.result.simulatedEvents));
      json.key("events_per_second").value(variant.result.eventsPerSecond());
      json.key("heuristics").beginObject();
      for (const std::string& h : s.campaign.heuristics) {
        json.key(h).beginArray();
        for (std::size_t m = 0; m < s.campaign.metataskCount; ++m) {
          const CellAggregate& c = variant.result.cell(h, m);
          json.beginObject();
          json.key("metatask").value(m + 1);
          addStat(json, "completed", c.metrics.completed);
          addStat(json, "lost", c.lost);
          addStat(json, "makespan", c.metrics.makespan);
          addStat(json, "sumflow", c.metrics.sumFlow);
          addStat(json, "maxflow", c.metrics.maxFlow);
          addStat(json, "maxstretch", c.metrics.maxStretch);
          addStat(json, "meanstretch", c.metrics.meanStretch);
          addStat(json, "collapses", c.collapses);
          addStat(json, "htm_rel_err_pct", c.htmRelErrorPct);
          addStat(json, "simulated_events", c.metrics.simulatedEvents);
          if (c.metrics.sooner.count() > 0) {
            addStat(json, "sooner_vs_baseline", c.metrics.sooner);
          }
          json.endObject();
        }
        json.endArray();
      }
      json.endObject();
      json.endObject();
    }
    json.endArray();

    // Per-scenario slice of the process-wide metrics registry: counter and
    // histogram deltas attributable to this scenario's campaign.
    json.key("metrics").beginObject();
    for (const obs::MetricSample& m : s.metricsDelta.metrics) {
      if (m.kind == obs::MetricKind::kHistogram) {
        if (m.histogram.count == 0) continue;
        json.key(m.fullName()).beginObject();
        json.key("count").value(m.histogram.count);
        json.key("sum").value(m.histogram.sum);
        json.endObject();
      } else {
        if (m.kind == obs::MetricKind::kCounter && m.value == 0.0) continue;
        json.key(m.fullName()).value(m.value);
      }
    }
    json.endObject();

    // The ROADMAP's per-scenario perf baseline: events/sec over the whole
    // campaign of this scenario (every variant, heuristic and replication).
    json.key("wall_seconds").value(s.wallSeconds);
    json.key("simulated_events").value(static_cast<std::uint64_t>(s.simulatedEvents));
    json.key("events_per_second").value(s.eventsPerSecond());
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

std::string scenarioFileBase(const std::string& scenarioName) {
  std::string base = scenarioName;
  for (char& c : base) {
    if (c == '/' || c == ' ') c = '_';
  }
  return base;
}

void emitSuite(const SuiteResult& suite, const std::string& outDir,
               const std::string& jsonBase) {
  for (const SuiteScenarioResult& s : suite.scenarios) {
    emitTable(renderSuiteScenarioTable(s), suiteScenarioCsv(s), outDir,
              scenarioFileBase(s.scenario));
  }
  emitText(suiteJson(suite), outDir, jsonBase + ".json");
}

}  // namespace casched::exp
