#include "exp/tables.hpp"

#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::exp {

namespace {
std::string heuristicLabel(const std::string& name) {
  if (name == "mct") return "NetSolve's MCT";
  if (name == "hmct") return "HMCT";
  if (name == "mp") return "MP";
  if (name == "msf") return "MSF";
  if (name == "mni") return "MNI";
  if (name == "met") return "MET";
  return name;
}
}  // namespace

util::TablePrinter renderSingleMetataskTable(const std::string& title,
                                             const CampaignResult& result) {
  util::TablePrinter t(title);
  std::vector<std::string> header{""};
  for (const std::string& h : result.heuristics) header.push_back(heuristicLabel(h));
  t.setHeader(std::move(header));

  const auto row = [&](const std::string& label, auto getter, int prec) {
    std::vector<std::string> cells{label};
    for (const std::string& h : result.heuristics) {
      cells.push_back(metrics::formatMeanSd(getter(result.cell(h, 0)), prec));
    }
    t.addRow(std::move(cells));
  };

  row("number of completed tasks",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.completed; }, 0);
  row("makespan",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.makespan; }, 0);
  row("sumflow",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.sumFlow; }, 0);
  row("maxflow",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.maxFlow; }, 0);
  row("maxstretch",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.maxStretch; }, 1);

  std::vector<std::string> sooner{"tasks finishing sooner than MCT"};
  for (const std::string& h : result.heuristics) {
    const CellAggregate& c = result.cell(h, 0);
    sooner.push_back(c.metrics.sooner.count() == 0 ? "-"
                                                   : metrics::formatMeanSd(c.metrics.sooner, 0));
  }
  t.addRow(std::move(sooner));
  return t;
}

util::TablePrinter renderMultiMetataskTable(const std::string& title,
                                            const CampaignResult& result) {
  util::TablePrinter t(title);
  std::vector<std::string> header{""};
  for (const std::string& h : result.heuristics) {
    for (std::size_t m = 0; m < result.metataskCount; ++m) {
      header.push_back(heuristicLabel(h) + util::strformat(" M%zu", m + 1));
    }
  }
  t.setHeader(std::move(header));

  const auto row = [&](const std::string& label, auto getter, int prec) {
    std::vector<std::string> cells{label};
    for (const std::string& h : result.heuristics) {
      for (std::size_t m = 0; m < result.metataskCount; ++m) {
        cells.push_back(metrics::formatMeanSd(getter(result.cell(h, m)), prec));
      }
    }
    t.addRow(std::move(cells));
  };

  row("completed",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.completed; }, 0);
  row("makespan",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.makespan; }, 0);
  row("sumflow",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.sumFlow; }, 0);
  row("maxflow",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.maxFlow; }, 0);
  row("maxstretch",
      [](const CellAggregate& c) -> const util::RunningStat& { return c.metrics.maxStretch; }, 1);

  std::vector<std::string> sooner{"sooner than MCT"};
  for (const std::string& h : result.heuristics) {
    for (std::size_t m = 0; m < result.metataskCount; ++m) {
      const CellAggregate& c = result.cell(h, m);
      sooner.push_back(c.metrics.sooner.count() == 0
                           ? "-"
                           : metrics::formatMeanSd(c.metrics.sooner, 0));
    }
  }
  t.addRow(std::move(sooner));
  return t;
}

util::TablePrinter renderServerDiagnostics(const std::string& title,
                                           const CampaignResult& result) {
  util::TablePrinter t(title);
  t.setHeader({"heuristic", "server", "completed", "failed", "collapses",
               "peak resident MB", "peak reported load", "busy s"});
  for (const std::string& h : result.heuristics) {
    auto it = result.sampleRuns.find(h);
    if (it == result.sampleRuns.end()) continue;
    for (const auto& [server, s] : it->second.servers) {
      t.addRow({heuristicLabel(h), server, std::to_string(s.tasksCompleted),
                std::to_string(s.tasksFailed), std::to_string(s.collapses),
                util::strformat("%.0f", s.peakResidentMB),
                util::strformat("%.1f", s.peakLoadReported),
                util::strformat("%.0f", s.busySeconds)});
    }
  }
  return t;
}

void emitTable(const util::TablePrinter& table, const std::string& csv,
               const std::string& outDir, const std::string& baseName) {
  emitText(table.render(), outDir, baseName + ".txt");
  if (!csv.empty()) emitText(csv, outDir, baseName + ".csv");
}

void emitText(const std::string& content, const std::string& outDir,
              const std::string& fileName) {
  std::error_code ec;
  std::filesystem::create_directories(outDir, ec);
  std::ofstream os(outDir + "/" + fileName, std::ios::trunc);
  if (!os) throw util::IoError("cannot write " + outDir + "/" + fileName);
  os << content;
}

}  // namespace casched::exp
