#pragma once
/// \file tables.hpp
/// Renders campaign results in the layout of the paper's result tables:
/// Table 5/6 style (one metatask, one column per heuristic) and Table 7/8
/// style (three metatasks, three sub-columns per heuristic, mean +- sd).

#include <string>

#include "exp/campaign.hpp"
#include "util/table.hpp"

namespace casched::exp {

/// Table 5/6 layout: rows = number of completed tasks, makespan, sumflow,
/// maxflow, maxstretch, number of tasks that finish sooner than baseline.
util::TablePrinter renderSingleMetataskTable(const std::string& title,
                                             const CampaignResult& result);

/// Table 7/8 layout: per heuristic, one column per metatask; mean +- sd over
/// replications.
util::TablePrinter renderMultiMetataskTable(const std::string& title,
                                            const CampaignResult& result);

/// Extra per-server diagnostics of the representative runs (collapses, peak
/// resident memory, utilization) - the paper discusses these in the Table 6
/// narrative ("load average more than 12 on pulney", "servers collapsed").
util::TablePrinter renderServerDiagnostics(const std::string& title,
                                           const CampaignResult& result);

/// Writes a rendered table plus its CSV twin under `outDir`.
void emitTable(const util::TablePrinter& table, const std::string& csv,
               const std::string& outDir, const std::string& baseName);

/// Writes `content` verbatim to `outDir/fileName`, creating directories.
void emitText(const std::string& content, const std::string& outDir,
              const std::string& fileName);

}  // namespace casched::exp
