#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::exp {

namespace {

/// Mean/sd rendering for report tables: enough digits to read the paper's
/// tables, few enough that a sub-ulp cross-toolchain wobble cannot flip the
/// rounding of the generated doc sections.
std::string fmtValue(double v) {
  const double a = std::abs(v);
  if (a >= 1000.0) return util::strformat("%.0f", v);
  if (a >= 10.0) return util::strformat("%.1f", v);
  return util::strformat("%.3f", v);
}

std::string fmtStat(const ReportStat& s) {
  return fmtValue(s.mean) + " ± " + fmtValue(s.sd);
}

/// Markdown cell text must not open/close columns.
std::string mdEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

std::string headingMark(int level) {
  return std::string(static_cast<std::size_t>(std::clamp(level, 1, 6)), '#');
}

/// The eight-step block ramp used for inline sparkline bars.
const char* const kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};

std::string sparkBar(double v, double lo, double hi) {
  if (!(hi > lo)) return kBlocks[3];
  const double t = (v - lo) / (hi - lo);
  const int idx = std::clamp(static_cast<int>(std::lround(t * 7.0)), 0, 7);
  return kBlocks[idx];
}

std::string joinCoordinateNames(const ReportVariant& v) {
  std::vector<std::string> names;
  names.reserve(v.coordinates.size());
  for (const auto& [param, value] : v.coordinates) names.push_back(param);
  return util::join(names, ", ");
}

std::string joinCoordinateValues(const ReportVariant& v) {
  std::vector<std::string> values;
  values.reserve(v.coordinates.size());
  for (const auto& [param, value] : v.coordinates) values.push_back(value);
  return util::join(values, ", ");
}

/// The metric stat of a heuristic's first metatask cell at one sweep point;
/// nullptr when the record lacks the heuristic or the metric.
const ReportStat* firstCellStat(const ReportVariant& variant,
                                const std::string& heuristic,
                                const std::string& metric) {
  const std::vector<ReportCell>* cells = variant.cells(heuristic);
  if (cells == nullptr || cells->empty()) return nullptr;
  return cells->front().find(metric);
}

/// Best heuristic at one sweep point under the metric's orientation;
/// empty when no heuristic carries the metric.
std::string bestHeuristic(const ReportScenario& scenario,
                          const ReportVariant& variant,
                          const std::string& metric) {
  const bool lower = metricLowerIsBetter(metric);
  std::string best;
  double bestMean = 0.0;
  for (const std::string& h : scenario.heuristics) {
    const ReportStat* stat = firstCellStat(variant, h, metric);
    if (stat == nullptr) continue;
    if (best.empty() || (lower ? stat->mean < bestMean : stat->mean > bestMean)) {
      best = h;
      bestMean = stat->mean;
    }
  }
  return best;
}

/// How many standard errors apart two heuristics are at one sweep point.
double separationAt(const ReportVariant& variant, const std::string& a,
                    const std::string& b, const std::string& metric,
                    std::uint64_t replications) {
  const ReportStat* sa = firstCellStat(variant, a, metric);
  const ReportStat* sb = firstCellStat(variant, b, metric);
  if (sa == nullptr || sb == nullptr) return 0.0;
  const double n = static_cast<double>(std::max<std::uint64_t>(replications, 1));
  const double seA = sa->sd / std::sqrt(n);
  const double seB = sb->sd / std::sqrt(n);
  const double denom = std::sqrt(seA * seA + seB * seB);
  const double gap = std::abs(sa->mean - sb->mean);
  if (denom <= 0.0) return gap > 0.0 ? 99.0 : 0.0;
  return std::min(99.0, gap / denom);
}

}  // namespace

const ReportStat* ReportCell::find(const std::string& metric) const {
  for (const auto& [name, stat] : metrics) {
    if (name == metric) return &stat;
  }
  return nullptr;
}

const std::vector<ReportCell>* ReportVariant::cells(
    const std::string& heuristic) const {
  for (const auto& [name, cs] : heuristics) {
    if (name == heuristic) return &cs;
  }
  return nullptr;
}

const ReportScenario* ReportSuite::find(const std::string& name) const {
  for (const ReportScenario& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ReportSuite parseSuiteRecord(const util::JsonValue& root, std::string label) {
  ReportSuite suite;
  suite.label = std::move(label);
  suite.seed = root.at("seed").asUint();
  for (const util::JsonValue& sc : root.at("scenarios").items()) {
    ReportScenario s;
    s.name = sc.at("name").asString();
    s.description = sc.at("description").asString();
    s.title = sc.at("title").asString();
    s.servers = sc.at("servers").asUint();
    s.churnEvents = sc.at("churn_events").asUint();
    if (const util::JsonValue* generated = sc.find("generated_churn")) {
      s.generatedChurn = generated->asUint();
      s.churnDigest = sc.at("churn_digest").asUint();
    }
    s.metatasks = sc.at("metatasks").asUint();
    s.replications = sc.at("replications").asUint();
    s.baseline = sc.at("baseline").asString();
    s.ftPolicy = sc.at("ft_policy").asString();
    for (const util::JsonValue& h : sc.at("heuristics").items()) {
      s.heuristics.push_back(h.asString());
    }
    for (const util::JsonValue& v : sc.at("variants").items()) {
      ReportVariant variant;
      for (const auto& [param, value] : v.at("coordinates").members()) {
        variant.coordinates.emplace_back(param, value.asString());
      }
      for (const auto& [heuristic, cells] : v.at("heuristics").members()) {
        std::vector<ReportCell> parsed;
        for (const util::JsonValue& cell : cells.items()) {
          ReportCell c;
          c.metatask = cell.at("metatask").asUint();
          for (const auto& [metric, stat] : cell.members()) {
            if (!stat.isObject() || !stat.has("mean")) continue;
            c.metrics.emplace_back(
                metric,
                ReportStat{stat.at("mean").asDouble(), stat.at("sd").asDouble()});
          }
          parsed.push_back(std::move(c));
        }
        variant.heuristics.emplace_back(heuristic, std::move(parsed));
      }
      s.variants.push_back(std::move(variant));
    }
    suite.scenarios.push_back(std::move(s));
  }
  return suite;
}

ReportSuite loadSuiteRecord(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("cannot open suite record '" + path + "'");
  std::ostringstream text;
  text << is.rdbuf();
  std::string label = path;
  const std::size_t slash = label.find_last_of('/');
  if (slash != std::string::npos) label = label.substr(slash + 1);
  const std::size_t dot = label.find_last_of('.');
  if (dot != std::string::npos && dot > 0) label = label.substr(0, dot);
  try {
    return parseSuiteRecord(util::JsonValue::parse(text.str()), label);
  } catch (const util::ConfigError& e) {
    throw util::ConfigError(std::string(e.what()) + " (in '" + path + "')");
  }
}

bool metricLowerIsBetter(const std::string& metric) {
  return metric != "completed" && metric != "sooner_vs_baseline";
}

std::vector<Crossover> detectCrossovers(const ReportScenario& scenario,
                                        const std::string& metric) {
  std::vector<Crossover> out;
  if (!scenario.swept() || scenario.variants.size() < 2) return out;
  const std::string axis = joinCoordinateNames(scenario.variants.front());
  for (std::size_t i = 0; i + 1 < scenario.variants.size(); ++i) {
    const ReportVariant& before = scenario.variants[i];
    const ReportVariant& after = scenario.variants[i + 1];
    const std::string w1 = bestHeuristic(scenario, before, metric);
    const std::string w2 = bestHeuristic(scenario, after, metric);
    if (w1.empty() || w2.empty() || w1 == w2) continue;
    Crossover c;
    c.axis = axis;
    c.metric = metric;
    c.fromValue = joinCoordinateValues(before);
    c.toValue = joinCoordinateValues(after);
    c.winnerBefore = w1;
    c.winnerAfter = w2;
    // The flip is only as trustworthy as its weaker endpoint: the two
    // contenders must be separated on both sides of the boundary.
    c.separationSigma =
        std::min(separationAt(before, w1, w2, metric, scenario.replications),
                 separationAt(after, w2, w1, metric, scenario.replications));
    out.push_back(std::move(c));
  }
  return out;
}

namespace {

void appendScenarioHeader(std::ostringstream& out, const ReportScenario& s,
                          int level) {
  out << headingMark(level) << " " << s.name << "\n\n";
  if (!s.description.empty()) out << s.description << "\n\n";
  out << "- campaign: `" << util::join(s.heuristics, ", ") << "` vs baseline `"
      << s.baseline << "`, " << s.replications << " replication(s), "
      << s.metatasks << " metatask(s), ft-policy `" << s.ftPolicy << "`\n";
  out << "- platform: " << s.servers << " server(s), " << s.churnEvents
      << " churn event(s)";
  if (s.generatedChurn > 0) {
    out << " (" << s.generatedChurn << " generated, digest `"
        << util::strformat("%016llx",
                           static_cast<unsigned long long>(s.churnDigest))
        << "`)";
  }
  out << "\n\n";
}

void appendUnsweptTables(std::ostringstream& out, const ReportScenario& s,
                         const ReportOptions& options) {
  const ReportVariant& variant = s.variants.front();
  for (std::uint64_t m = 0; m < s.metatasks; ++m) {
    if (s.metatasks > 1) {
      out << headingMark(options.headingLevel + 1) << " Metatask " << (m + 1)
          << "\n\n";
    }
    out << "| heuristic |";
    for (const std::string& metric : options.metrics) out << " " << metric << " |";
    out << "\n|---|";
    for (std::size_t i = 0; i < options.metrics.size(); ++i) out << "---:|";
    out << "\n";
    for (const std::string& h : s.heuristics) {
      const std::vector<ReportCell>* cells = variant.cells(h);
      out << "| " << h << " |";
      for (const std::string& metric : options.metrics) {
        const ReportStat* stat =
            (cells != nullptr && m < cells->size()) ? (*cells)[m].find(metric)
                                                    : nullptr;
        out << " " << (stat != nullptr ? fmtStat(*stat) : "—") << " |";
      }
      out << "\n";
    }
    out << "\n";
  }
}

void appendSweepSeries(std::ostringstream& out, const ReportScenario& s,
                       const ReportOptions& options) {
  const std::string axis = joinCoordinateNames(s.variants.front());
  for (const std::string& metric : options.metrics) {
    out << headingMark(options.headingLevel + 1) << " " << metric << " by "
        << axis << " (mean over " << s.replications << " replication(s))\n\n";
    // Bars scale per heuristic column across the series, so each column
    // reads as that heuristic's own trajectory.
    std::vector<double> lo(s.heuristics.size(), 0.0);
    std::vector<double> hi(s.heuristics.size(), 0.0);
    std::vector<bool> seen(s.heuristics.size(), false);
    for (const ReportVariant& v : s.variants) {
      for (std::size_t h = 0; h < s.heuristics.size(); ++h) {
        const ReportStat* stat = firstCellStat(v, s.heuristics[h], metric);
        if (stat == nullptr) continue;
        if (!seen[h]) {
          lo[h] = hi[h] = stat->mean;
          seen[h] = true;
        } else {
          lo[h] = std::min(lo[h], stat->mean);
          hi[h] = std::max(hi[h], stat->mean);
        }
      }
    }
    out << "| " << axis << " |";
    for (const std::string& h : s.heuristics) out << " " << h << " |";
    out << "\n|---:|";
    for (std::size_t h = 0; h < s.heuristics.size(); ++h) out << "---:|";
    out << "\n";
    for (const ReportVariant& v : s.variants) {
      out << "| " << joinCoordinateValues(v) << " |";
      for (std::size_t h = 0; h < s.heuristics.size(); ++h) {
        const ReportStat* stat = firstCellStat(v, s.heuristics[h], metric);
        if (stat == nullptr) {
          out << " — |";
        } else {
          out << " " << fmtValue(stat->mean) << " "
              << sparkBar(stat->mean, lo[h], hi[h]) << " |";
        }
      }
      out << "\n";
    }
    out << "\n";
  }
}

void appendCrossovers(std::ostringstream& out, const ReportScenario& s,
                      const ReportOptions& options) {
  out << headingMark(options.headingLevel + 1) << " Crossovers\n\n";
  bool any = false;
  for (const std::string& metric : options.metrics) {
    for (const Crossover& c : detectCrossovers(s, metric)) {
      any = true;
      out << "- `" << c.metric << "`: best heuristic flips from `"
          << c.winnerBefore << "` to `" << c.winnerAfter << "` between "
          << c.axis << " = " << c.fromValue << " and " << c.axis << " = "
          << c.toValue << " (separation "
          << util::strformat("%.1f", c.separationSigma) << "σ, "
          << (c.confident() ? "confident" : "within noise") << ")\n";
    }
  }
  if (!any) {
    out << "- none: the best-heuristic ranking is stable across the sweep on "
           "every scanned metric\n";
  }
  out << "\n";
}

}  // namespace

std::string scenarioReportMarkdown(const ReportScenario& scenario,
                                   const ReportOptions& options) {
  std::ostringstream out;
  appendScenarioHeader(out, scenario, options.headingLevel);
  if (scenario.variants.empty()) return out.str();
  if (!scenario.swept()) {
    appendUnsweptTables(out, scenario, options);
  } else {
    appendSweepSeries(out, scenario, options);
    appendCrossovers(out, scenario, options);
  }
  return out.str();
}

std::string suiteReportMarkdown(const ReportSuite& suite,
                                const ReportOptions& options) {
  std::ostringstream out;
  out << headingMark(std::max(1, options.headingLevel - 1))
      << " Campaign report: " << suite.label << "\n\n";
  out << "- seed: " << suite.seed << "\n- scenarios: " << suite.scenarios.size()
      << "\n\n";
  for (const ReportScenario& s : suite.scenarios) {
    out << scenarioReportMarkdown(s, options);
  }
  return out.str();
}

CompareOutcome compareSuites(const ReportSuite& a, const ReportSuite& b,
                             const CompareOptions& options) {
  CompareOutcome outcome;
  std::ostringstream out;
  out << "## Re-planning comparison: " << a.label << " vs " << b.label << "\n\n";
  out << "Flag threshold: ±" << util::strformat("%g", options.thresholdPct)
      << "% (direction-aware: toward-worse past the threshold is a "
         "regression).\n\n";

  std::vector<std::string> unmatched;
  bool anyRows = false;
  std::ostringstream table;
  table << "| scenario | variant | heuristic | metric | " << a.label << " | "
        << b.label << " | Δ% | flag |\n";
  table << "|---|---|---|---|---:|---:|---:|---|\n";
  for (const ReportScenario& sa : a.scenarios) {
    const ReportScenario* sb = b.find(sa.name);
    if (sb == nullptr) {
      unmatched.push_back(sa.name + " (only in " + a.label + ")");
      continue;
    }
    for (const ReportVariant& va : sa.variants) {
      const ReportVariant* vb = nullptr;
      for (const ReportVariant& candidate : sb->variants) {
        if (candidate.coordinates == va.coordinates) {
          vb = &candidate;
          break;
        }
      }
      if (vb == nullptr) continue;
      const std::string variantLabel =
          va.coordinates.empty()
              ? "—"
              : joinCoordinateNames(va) + " = " + joinCoordinateValues(va);
      for (const std::string& h : sa.heuristics) {
        for (const std::string& metric : options.metrics) {
          const ReportStat* statA = firstCellStat(va, h, metric);
          const ReportStat* statB = firstCellStat(*vb, h, metric);
          if (statA == nullptr || statB == nullptr) continue;
          ++outcome.comparisons;
          std::string delta = "n/a";
          std::string flag;
          if (statA->mean != 0.0) {
            const double pct =
                (statB->mean - statA->mean) / std::abs(statA->mean) * 100.0;
            delta = util::strformat("%+.1f%%", pct);
            const bool lower = metricLowerIsBetter(metric);
            const double worse = lower ? pct : -pct;
            if (worse > options.thresholdPct) {
              flag = "**regression**";
              ++outcome.regressions;
            } else if (worse < -options.thresholdPct) {
              flag = "improvement";
              ++outcome.improvements;
            }
          } else if (statB->mean != 0.0) {
            delta = "from 0";
          }
          anyRows = true;
          table << "| " << sa.name << " | " << mdEscape(variantLabel) << " | "
                << h << " | " << metric << " | " << fmtStat(*statA) << " | "
                << fmtStat(*statB) << " | " << delta << " | " << flag
                << " |\n";
        }
      }
    }
  }
  for (const ReportScenario& sb : b.scenarios) {
    if (a.find(sb.name) == nullptr) {
      unmatched.push_back(sb.name + " (only in " + b.label + ")");
    }
  }

  if (anyRows) {
    out << table.str() << "\n";
  } else {
    out << "No comparable (scenario, variant, heuristic, metric) cells.\n\n";
  }
  out << "Summary: " << outcome.regressions << " regression(s), "
      << outcome.improvements << " improvement(s) past the threshold across "
      << outcome.comparisons << " comparison(s).\n";
  if (!unmatched.empty()) {
    out << "\nUnmatched scenarios: " << util::join(unmatched, "; ") << ".\n";
  }
  outcome.markdown = out.str();
  return outcome;
}

std::string registryCatalogMarkdown() {
  std::ostringstream out;
  out << "| scenario | heuristics | repl | sweep | description |\n";
  out << "|---|---|---:|---|---|\n";
  for (const std::string& name : scenario::scenarioNames()) {
    const scenario::ScenarioSpec spec =
        scenario::parseScenario(scenario::scenarioText(name));
    std::vector<std::string> axes;
    for (const scenario::SweepAxis& axis : spec.sweep) {
      axes.push_back(axis.parameter + " × " +
                     std::to_string(axis.values.size()));
    }
    out << "| `" << name << "` | `"
        << util::join(spec.campaign.heuristics, ", ") << "` | "
        << spec.campaign.replications << " | "
        << (axes.empty() ? "—" : util::join(axes, "; ")) << " | "
        << mdEscape(spec.description) << " |\n";
  }
  return out.str();
}

std::string replaceGeneratedRegion(const std::string& document,
                                   const std::string& name,
                                   const std::string& generated) {
  const std::string begin = "<!-- BEGIN GENERATED: " + name + " -->";
  const std::string end = "<!-- END GENERATED: " + name + " -->";
  const std::size_t beginAt = document.find(begin);
  if (beginAt == std::string::npos) {
    throw util::ConfigError("document has no '" + begin + "' sentinel");
  }
  const std::size_t bodyAt = beginAt + begin.size();
  const std::size_t endAt = document.find(end, bodyAt);
  if (endAt == std::string::npos) {
    throw util::ConfigError("document has no '" + end + "' sentinel after the "
                            "begin sentinel");
  }
  std::string body = generated;
  if (!body.empty() && body.back() != '\n') body += "\n";
  return document.substr(0, bodyAt) + "\n" + body + document.substr(endAt);
}

}  // namespace casched::exp
