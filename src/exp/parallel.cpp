#include "exp/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace casched::exp {

ParallelRunner::ParallelRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void ParallelRunner::run(const std::vector<std::function<void()>>& jobs) const {
  if (jobs.empty()) return;
  const unsigned workers = std::min<unsigned>(threads_, static_cast<unsigned>(jobs.size()));
  if (workers <= 1) {
    for (const auto& job : jobs) job();
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        jobs[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace casched::exp
