#pragma once
/// \file report.hpp
/// Campaign intelligence: turns the suite's machine-readable JSON records
/// into paper-style Markdown reports - per-scenario mean ± sd tables,
/// per-axis sweep series with inline sparkline bars, automatic crossover
/// detection (where the best-heuristic ranking flips between adjacent sweep
/// points, with a confidence separation derived from the replication sd),
/// and re-planning comparisons between two records (seed-vs-seed or
/// run-vs-run) with direction-aware regression flagging.
///
/// Everything here consumes the parsed record, never live state, and never
/// touches wall-clock fields (wall_seconds, events_per_second): report
/// output for a fixed (scenario, seed) is deterministic, which is what lets
/// EXPERIMENTS.md carry generated sections checked for drift in CI.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace casched::exp {

/// One aggregated metric cell: mean ± sd over a campaign's replications.
struct ReportStat {
  double mean = 0.0;
  double sd = 0.0;
};

/// One (heuristic, metatask) cell of a variant: the named metric stats in
/// record order.
struct ReportCell {
  std::uint64_t metatask = 1;
  std::vector<std::pair<std::string, ReportStat>> metrics;

  /// nullptr when the record has no such metric.
  const ReportStat* find(const std::string& metric) const;
};

/// One sweep point (or the single point of an unswept campaign).
struct ReportVariant {
  /// Sweep coordinates, e.g. {{"rate", "30"}}; empty when unswept.
  std::vector<std::pair<std::string, std::string>> coordinates;
  /// Per-heuristic cells, one per metatask, in record order.
  std::vector<std::pair<std::string, std::vector<ReportCell>>> heuristics;

  const std::vector<ReportCell>* cells(const std::string& heuristic) const;
};

/// One scenario's slice of a suite record.
struct ReportScenario {
  std::string name;
  std::string description;
  std::string title;
  std::uint64_t servers = 0;
  std::uint64_t churnEvents = 0;
  std::uint64_t generatedChurn = 0;
  std::uint64_t churnDigest = 0;  ///< valid when generatedChurn > 0
  std::uint64_t metatasks = 1;
  std::uint64_t replications = 1;
  std::string baseline;
  std::string ftPolicy;
  std::vector<std::string> heuristics;
  std::vector<ReportVariant> variants;

  bool swept() const {
    return !variants.empty() && !variants.front().coordinates.empty();
  }
};

/// A parsed suite record (one `bench_suite --json` artifact).
struct ReportSuite {
  std::string label;  ///< file base name (or caller-supplied), used in headings
  std::uint64_t seed = 0;
  std::vector<ReportScenario> scenarios;

  const ReportScenario* find(const std::string& name) const;
};

/// Parses the JSON document a `suiteJson()` record produces. Throws
/// util::ConfigError naming the missing/mistyped key on schema mismatch.
ReportSuite parseSuiteRecord(const util::JsonValue& root, std::string label);

/// Reads + parses a record file; the label is the file's base name.
ReportSuite loadSuiteRecord(const std::string& path);

/// Orientation of a metric: completed counts up, every flow/stretch/loss
/// metric counts down. Unknown metrics default to lower-is-better.
bool metricLowerIsBetter(const std::string& metric);

/// One detected ranking flip on a sweep axis: between the adjacent points
/// `fromValue` and `toValue` the best heuristic under `metric` changes from
/// `winnerBefore` to `winnerAfter`. `separationSigma` is the weaker of the
/// two endpoint separations, each |Δmean| / sqrt(seA² + seB²) with
/// se = sd / sqrt(replications) - how many standard errors apart the
/// contenders are on the side where they are closest.
struct Crossover {
  std::string axis;
  std::string metric;
  std::string fromValue;
  std::string toValue;
  std::string winnerBefore;
  std::string winnerAfter;
  double separationSigma = 0.0;

  bool confident() const { return separationSigma >= 2.0; }
};

/// Scans a swept scenario's adjacent variant pairs for best-heuristic flips
/// under `metric` (first metatask). Empty for unswept scenarios and when the
/// winner never changes.
std::vector<Crossover> detectCrossovers(const ReportScenario& scenario,
                                        const std::string& metric);

/// Report shaping: which metrics the tables, sweep series and crossover
/// scan cover, and the heading depth reports are emitted at.
struct ReportOptions {
  std::vector<std::string> metrics = {"completed", "sumflow", "maxflow",
                                      "maxstretch"};
  int headingLevel = 2;  ///< scenario headings: 2 = "##"
};

/// Markdown for one scenario: the campaign header, mean ± sd tables
/// (unswept) or per-axis series tables with sparkline bars plus the
/// crossover scan (swept). Deterministic per (scenario, seed).
std::string scenarioReportMarkdown(const ReportScenario& scenario,
                                   const ReportOptions& options = {});

/// Markdown for a whole record: a header plus every scenario's report.
std::string suiteReportMarkdown(const ReportSuite& suite,
                                const ReportOptions& options = {});

struct CompareOptions {
  /// Direction-aware flag threshold: a metric that moved past this many
  /// percent toward "worse" is a regression, toward "better" an improvement.
  double thresholdPct = 10.0;
  std::vector<std::string> metrics = {"completed", "sumflow", "maxstretch"};
};

struct CompareOutcome {
  std::string markdown;
  std::size_t comparisons = 0;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
};

/// Re-planning study: matches scenarios by name and variants by sweep
/// coordinates across two records, tabulates per-heuristic metric deltas,
/// and flags direction-aware regressions past the threshold. The Markdown
/// section is what the nightly soak uploads to $GITHUB_STEP_SUMMARY.
CompareOutcome compareSuites(const ReportSuite& a, const ReportSuite& b,
                             const CompareOptions& options = {});

/// Deterministic catalog of every registry entry (name, campaign shape,
/// sweep axes, description) derived purely from the scenario specs - no
/// simulation, so it can never drift except when the registry itself does.
std::string registryCatalogMarkdown();

/// Replaces the body between `<!-- BEGIN GENERATED: name -->` and
/// `<!-- END GENERATED: name -->` in `document`, keeping the sentinels.
/// Throws util::ConfigError when the sentinels are missing or out of order.
std::string replaceGeneratedRegion(const std::string& document,
                                   const std::string& name,
                                   const std::string& generated);

}  // namespace casched::exp
