#pragma once
/// \file runner.hpp
/// Single-experiment execution: one metatask, one heuristic, one system
/// configuration -> one RunResult. The campaign layer builds on this.

#include <string>

#include "cas/system.hpp"
#include "metrics/record.hpp"
#include "platform/testbed.hpp"
#include "scenario/spec.hpp"
#include "workload/metatask.hpp"

namespace casched::exp {

/// Everything that defines an experiment except the heuristic under test.
struct ExperimentSpec {
  std::string name;
  platform::Testbed testbed;
  workload::MetataskConfig metatask;
  cas::SystemConfig system;
  /// Registry scenario this spec was materialized from ("" when hand-built).
  std::string scenario;
  /// Membership events replayed in every run of the experiment (hand-written
  /// [churn] plus the [faults]-generated stream, one per seed).
  std::vector<cas::ChurnEvent> churn;
  /// How many of `churn`'s events the [faults] processes generated.
  std::size_t generatedChurn = 0;
  /// Resolved correlated-failure domains ([faults] rack/zone tagging).
  std::vector<scenario::FaultDomainSpec> faultDomains;
};

/// Materializes a registry scenario into an ExperimentSpec: testbed, metatask
/// config (arrival pattern and mix included), system parameters and churn
/// timeline. Campaigns built on it re-derive per-metatask seeds as usual.
ExperimentSpec specFromScenario(const std::string& scenarioName, std::uint64_t seed);

/// Same, from an already-parsed spec (sweep variants, scenario files).
ExperimentSpec specFromScenarioSpec(const scenario::ScenarioSpec& spec,
                                    std::uint64_t seed);

/// How fault tolerance is granted across heuristics in a campaign.
/// kPaper is the paper's setup: NetSolve's MCT has its native re-submission
/// mechanisms, the authors' HMCT/MP/MSF implementations do not (section 5.1).
/// kScenario defers to the scenario's own [system] fault-tolerance flag,
/// applied uniformly to every heuristic.
enum class FaultTolerancePolicy : std::uint8_t { kPaper, kAll, kNone, kScenario };

/// Parses "paper" | "all" | "none" | "scenario"; throws util::ConfigError.
FaultTolerancePolicy parseFaultTolerancePolicy(const std::string& name);
const char* faultTolerancePolicyName(FaultTolerancePolicy policy);

/// True when `heuristic` gets fault tolerance under `policy`. kScenario
/// resolves to false here; use resolveFaultTolerance when a scenario default
/// is in scope.
bool grantsFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic);

/// grantsFaultTolerance with the kScenario case resolved to the scenario's
/// own [system] flag.
bool resolveFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic,
                           bool scenarioDefault);

/// Runs one heuristic on one concrete metatask. `noiseSeed` overrides the
/// spec's system noise seed (replications vary it).
metrics::RunResult runOne(const ExperimentSpec& spec, const workload::Metatask& metatask,
                          const std::string& heuristic, bool faultTolerance,
                          std::uint64_t noiseSeed);

}  // namespace casched::exp
