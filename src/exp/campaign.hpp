#pragma once
/// \file campaign.hpp
/// A campaign reproduces one of the paper's result tables: several heuristics
/// run on identical metatasks (so the "finish sooner" comparison is fair),
/// over one or more metatasks and replications, aggregated as mean +- sd.

#include <map>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "metrics/aggregate.hpp"

namespace casched::exp {

struct CampaignConfig {
  /// Column order of the resulting table; the paper uses
  /// {mct, hmct, mp, msf}.
  std::vector<std::string> heuristics{"mct", "hmct", "mp", "msf"};
  /// Baseline for the "number of tasks that finish sooner" row.
  std::string baseline = "mct";
  /// Distinct metatasks (paper Tables 7-8 use three).
  std::size_t metataskCount = 1;
  /// Replications per metatask (noise seeds vary; arrivals stay fixed).
  std::size_t replications = 1;
  FaultTolerancePolicy ftPolicy = FaultTolerancePolicy::kPaper;
  unsigned threads = 0;  ///< 0: hardware concurrency
};

/// Aggregate of one (heuristic, metatask) cell across replications.
struct CellAggregate {
  metrics::MetricAggregate metrics;
  util::RunningStat collapses;        ///< total server collapses per run
  util::RunningStat lost;             ///< tasks never completed
  util::RunningStat htmRelErrorPct;   ///< HTM prediction error (diagnostic)
};

/// One run's scalar results (raw CSV row).
struct RawRow {
  std::string heuristic;
  std::size_t metataskIndex = 0;
  std::size_t replication = 0;
  metrics::RunMetrics metrics;
  std::size_t sooner = 0;  ///< vs baseline, same (metatask, replication)
  std::uint64_t collapses = 0;
  double htmRelErrorPct = 0.0;
};

struct CampaignResult {
  std::vector<std::string> heuristics;
  std::size_t metataskCount = 0;
  /// cells[heuristic][metataskIndex]
  std::map<std::string, std::vector<CellAggregate>> cells;
  /// One representative run per (heuristic, metatask 0) with replication 0
  /// (benches introspect per-server data from it).
  std::map<std::string, metrics::RunResult> sampleRuns;
  std::vector<RawRow> raw;  ///< every run, deterministic order

  /// Throughput record of the whole campaign (all runs, all threads).
  double wallSeconds = 0.0;
  std::uint64_t simulatedEvents = 0;
  double eventsPerSecond() const {
    return wallSeconds > 0.0 ? static_cast<double>(simulatedEvents) / wallSeconds : 0.0;
  }

  const CellAggregate& cell(const std::string& heuristic, std::size_t metataskIdx) const;
};

/// Runs the campaign. (metatask, replication) pairs execute in parallel;
/// all heuristics of one pair run sequentially inside the job so the
/// baseline comparison never crosses threads.
CampaignResult runCampaign(const ExperimentSpec& spec, const CampaignConfig& config);

/// Raw per-run CSV of a campaign (one row per heuristic x metatask x
/// replication) for archival/plotting.
std::string campaignRawCsv(const CampaignResult& result);

}  // namespace casched::exp
