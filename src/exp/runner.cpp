#include "exp/runner.hpp"

#include "scenario/generate.hpp"
#include "scenario/registry.hpp"
#include "util/strings.hpp"

namespace casched::exp {

ExperimentSpec specFromScenario(const std::string& scenarioName, std::uint64_t seed) {
  const scenario::ScenarioSpec parsed = scenario::findScenario(scenarioName);
  const scenario::CompiledScenario compiled = scenario::compileScenario(parsed, seed);
  ExperimentSpec spec;
  spec.name = compiled.name;
  spec.scenario = scenarioName;
  spec.testbed = compiled.testbed;
  spec.metatask = compiled.metataskConfig;
  spec.system = compiled.system;
  spec.churn = compiled.churn;
  return spec;
}

bool grantsFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic) {
  switch (policy) {
    case FaultTolerancePolicy::kPaper: return util::toLower(heuristic) == "mct";
    case FaultTolerancePolicy::kAll: return true;
    case FaultTolerancePolicy::kNone: return false;
  }
  return false;
}

metrics::RunResult runOne(const ExperimentSpec& spec, const workload::Metatask& metatask,
                          const std::string& heuristic, bool faultTolerance,
                          std::uint64_t noiseSeed) {
  cas::SystemConfig config = spec.system;
  config.faultTolerance = faultTolerance;
  config.noiseSeed = noiseSeed;
  return cas::runExperimentSystem(spec.testbed, metatask, heuristic, config,
                                  spec.churn);
}

}  // namespace casched::exp
