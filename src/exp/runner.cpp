#include "exp/runner.hpp"

#include "util/strings.hpp"

namespace casched::exp {

bool grantsFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic) {
  switch (policy) {
    case FaultTolerancePolicy::kPaper: return util::toLower(heuristic) == "mct";
    case FaultTolerancePolicy::kAll: return true;
    case FaultTolerancePolicy::kNone: return false;
  }
  return false;
}

metrics::RunResult runOne(const ExperimentSpec& spec, const workload::Metatask& metatask,
                          const std::string& heuristic, bool faultTolerance,
                          std::uint64_t noiseSeed) {
  cas::SystemConfig config = spec.system;
  config.faultTolerance = faultTolerance;
  config.noiseSeed = noiseSeed;
  return cas::runExperimentSystem(spec.testbed, metatask, heuristic, config);
}

}  // namespace casched::exp
