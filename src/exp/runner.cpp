#include "exp/runner.hpp"

#include "scenario/generate.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::exp {

ExperimentSpec specFromScenarioSpec(const scenario::ScenarioSpec& scenarioSpec,
                                    std::uint64_t seed) {
  const scenario::CompiledScenario compiled =
      scenario::compileScenario(scenarioSpec, seed);
  ExperimentSpec spec;
  spec.name = compiled.name;
  spec.scenario = scenarioSpec.name;
  spec.testbed = compiled.testbed;
  spec.metatask = compiled.metataskConfig;
  spec.system = compiled.system;
  spec.churn = compiled.churn;
  spec.generatedChurn = compiled.generatedChurn;
  spec.faultDomains = compiled.faultDomains;
  return spec;
}

ExperimentSpec specFromScenario(const std::string& scenarioName, std::uint64_t seed) {
  return specFromScenarioSpec(scenario::findScenario(scenarioName), seed);
}

FaultTolerancePolicy parseFaultTolerancePolicy(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "paper") return FaultTolerancePolicy::kPaper;
  if (n == "all") return FaultTolerancePolicy::kAll;
  if (n == "none") return FaultTolerancePolicy::kNone;
  if (n == "scenario") return FaultTolerancePolicy::kScenario;
  throw util::ConfigError("unknown fault-tolerance policy '" + name +
                          "' (want scenario | paper | all | none)");
}

const char* faultTolerancePolicyName(FaultTolerancePolicy policy) {
  switch (policy) {
    case FaultTolerancePolicy::kPaper: return "paper";
    case FaultTolerancePolicy::kAll: return "all";
    case FaultTolerancePolicy::kNone: return "none";
    case FaultTolerancePolicy::kScenario: return "scenario";
  }
  return "?";
}

bool grantsFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic) {
  switch (policy) {
    case FaultTolerancePolicy::kPaper: return util::toLower(heuristic) == "mct";
    case FaultTolerancePolicy::kAll: return true;
    case FaultTolerancePolicy::kNone: return false;
    case FaultTolerancePolicy::kScenario: return false;
  }
  return false;
}

bool resolveFaultTolerance(FaultTolerancePolicy policy, const std::string& heuristic,
                           bool scenarioDefault) {
  if (policy == FaultTolerancePolicy::kScenario) return scenarioDefault;
  return grantsFaultTolerance(policy, heuristic);
}

metrics::RunResult runOne(const ExperimentSpec& spec, const workload::Metatask& metatask,
                          const std::string& heuristic, bool faultTolerance,
                          std::uint64_t noiseSeed) {
  cas::SystemConfig config = spec.system;
  config.faultTolerance = faultTolerance;
  config.noiseSeed = noiseSeed;
  return cas::runExperimentSystem(spec.testbed, metatask, heuristic, config,
                                  spec.churn);
}

}  // namespace casched::exp
