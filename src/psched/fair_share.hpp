#pragma once
/// \file fair_share.hpp
/// Equal-share (processor-sharing) resource - the paper's shared-resource
/// model (section 2.3): a resource serving k jobs gives each k-th of its
/// capacity. Used for server CPUs (capacity in unloaded-seconds of work per
/// second) and network links (capacity in MB/s).
///
/// Between membership changes the per-job rate is constant, so the next
/// completion date is analytic; the resource keeps exactly one pending
/// completion event armed in the simulator and re-arms it on every change.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "simcore/engine.hpp"

namespace casched::psched {

class FairShareResource {
 public:
  using JobId = std::uint64_t;
  using CompletionFn = std::function<void(JobId)>;
  /// Observes the number of active jobs after each membership change.
  using MembershipFn = std::function<void(std::size_t)>;

  /// `capacity` is total work units processed per second when factor == 1.
  FairShareResource(simcore::Simulator& sim, std::string name, double capacity);
  ~FairShareResource();

  FairShareResource(const FairShareResource&) = delete;
  FairShareResource& operator=(const FairShareResource&) = delete;

  /// Adds a job with `work` units remaining; `onComplete` fires (via the
  /// simulator) when the job's service finishes. Zero-work jobs complete at
  /// the next event dispatch at the current time.
  JobId add(double work, CompletionFn onComplete);

  /// Removes a job without completing it (task abort). Returns false when the
  /// job already finished or was cancelled.
  bool cancel(JobId job);

  /// Removes every job without completing them (server collapse).
  void cancelAll();

  /// Scales effective capacity (memory thrashing, CPU/link noise). Progress
  /// up to now is integrated at the old factor first.
  void setCapacityFactor(double factor);

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  double capacityFactor() const { return factor_; }
  std::size_t activeJobs() const { return jobs_.size(); }

  /// Remaining work of a job as of the last internal sync; NaN if unknown.
  double remainingWork(JobId job) const;
  double totalRemainingWork() const;

  /// Service rate currently granted to each job (capacity*factor/k).
  double ratePerJob() const;

  /// Time at which the next job would complete if nothing changes.
  simcore::SimTime predictedNextCompletion() const;

  void setMembershipObserver(MembershipFn fn) { membership_ = std::move(fn); }

  /// Forces integration of progress up to sim.now() (used by inspectors).
  void syncNow() { sync(); }

 private:
  struct Job {
    double remaining;
    CompletionFn onComplete;
  };

  void sync();
  void rearm();
  void onTimer();
  void notifyMembership();

  simcore::Simulator& sim_;
  std::string name_;
  double capacity_;
  double factor_ = 1.0;
  std::map<JobId, Job> jobs_;  // ordered => deterministic completion order
  simcore::SimTime lastSync_ = 0.0;
  simcore::EventHandle timer_{};
  JobId nextJob_ = 1;
  MembershipFn membership_;
};

}  // namespace casched::psched
