#include "psched/load_monitor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace casched::psched {

LoadMonitor::LoadMonitor(double tau) : tau_(tau) {
  CASCHED_CHECK(tau_ > 0.0, "load average time constant must be positive");
}

double LoadMonitor::decayTo(simcore::SimTime now) const {
  if (now <= last_) return load_;
  const double e = std::exp(-(now - last_) / tau_);
  return load_ * e + static_cast<double>(runnable_) * (1.0 - e);
}

void LoadMonitor::update(simcore::SimTime now, std::size_t runnable) {
  load_ = decayTo(now);
  last_ = now > last_ ? now : last_;
  runnable_ = runnable;
}

double LoadMonitor::load(simcore::SimTime now) const { return decayTo(now); }

}  // namespace casched::psched
