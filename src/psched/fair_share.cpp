#include "psched/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace casched::psched {

namespace {
/// Jobs whose remaining work drops below this are considered finished. Work
/// units in this codebase are seconds (CPU) or MB (links), both O(1)-O(1e3),
/// so an absolute epsilon is adequate.
constexpr double kWorkEpsilon = 1e-7;
}  // namespace

FairShareResource::FairShareResource(simcore::Simulator& sim, std::string name,
                                     double capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity), lastSync_(sim.now()) {
  CASCHED_CHECK(capacity_ > 0.0, "resource capacity must be positive");
}

FairShareResource::~FairShareResource() {
  if (timer_.valid()) sim_.cancel(timer_);
}

void FairShareResource::sync() {
  const simcore::SimTime now = sim_.now();
  if (now <= lastSync_) return;
  if (!jobs_.empty()) {
    const double rate = ratePerJob();
    const double done = rate * (now - lastSync_);
    for (auto& [id, job] : jobs_) {
      job.remaining = std::max(0.0, job.remaining - done);
    }
  }
  lastSync_ = now;
}

double FairShareResource::ratePerJob() const {
  if (jobs_.empty()) return 0.0;
  return capacity_ * factor_ / static_cast<double>(jobs_.size());
}

void FairShareResource::rearm() {
  if (timer_.valid()) {
    sim_.cancel(timer_);
    timer_ = {};
  }
  if (jobs_.empty()) return;
  double minRemaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    minRemaining = std::min(minRemaining, job.remaining);
  }
  const double rate = ratePerJob();
  CASCHED_CHECK(rate > 0.0, "fair-share rate must be positive while jobs are active");
  const double dt = std::max(0.0, minRemaining) / rate;
  timer_ = sim_.scheduleAfter(dt, [this] { onTimer(); });
}

void FairShareResource::onTimer() {
  timer_ = {};
  sync();
  // Collect every job that finished at this instant (ties are legal: jobs
  // admitted together with equal work finish together).
  std::vector<std::pair<JobId, CompletionFn>> finished;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kWorkEpsilon) {
      finished.emplace_back(it->first, std::move(it->second.onComplete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  CASCHED_CHECK(!finished.empty(), "completion timer fired with no finished job");
  notifyMembership();
  rearm();
  // Callbacks run after internal state is consistent; they may freely add or
  // cancel jobs on this resource (each mutation re-arms the timer itself).
  for (auto& [id, cb] : finished) {
    if (cb) cb(id);
  }
}

FairShareResource::JobId FairShareResource::add(double work, CompletionFn onComplete) {
  CASCHED_CHECK(work >= 0.0, "job work must be non-negative");
  CASCHED_CHECK(std::isfinite(work), "job work must be finite");
  sync();
  const JobId id = nextJob_++;
  jobs_.emplace(id, Job{work, std::move(onComplete)});
  notifyMembership();
  rearm();
  return id;
}

bool FairShareResource::cancel(JobId job) {
  sync();
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return false;
  jobs_.erase(it);
  notifyMembership();
  rearm();
  return true;
}

void FairShareResource::cancelAll() {
  sync();
  if (jobs_.empty()) return;
  jobs_.clear();
  notifyMembership();
  rearm();
}

void FairShareResource::setCapacityFactor(double factor) {
  CASCHED_CHECK(factor > 0.0, "capacity factor must be positive");
  sync();
  factor_ = factor;
  rearm();
}

double FairShareResource::remainingWork(JobId job) const {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return std::numeric_limits<double>::quiet_NaN();
  // Account for progress since the last sync without mutating state.
  const double elapsed = sim_.now() - lastSync_;
  return std::max(0.0, it->second.remaining - ratePerJob() * elapsed);
}

double FairShareResource::totalRemainingWork() const {
  double total = 0.0;
  const double elapsed = sim_.now() - lastSync_;
  const double done = ratePerJob() * elapsed;
  for (const auto& [id, job] : jobs_) {
    total += std::max(0.0, job.remaining - done);
  }
  return total;
}

simcore::SimTime FairShareResource::predictedNextCompletion() const {
  if (jobs_.empty()) return simcore::kTimeInfinity;
  double minRemaining = std::numeric_limits<double>::infinity();
  const double elapsed = sim_.now() - lastSync_;
  const double done = ratePerJob() * elapsed;
  for (const auto& [id, job] : jobs_) {
    minRemaining = std::min(minRemaining, std::max(0.0, job.remaining - done));
  }
  return sim_.now() + minRemaining / ratePerJob();
}

void FairShareResource::notifyMembership() {
  if (membership_) membership_(jobs_.size());
}

}  // namespace casched::psched
