#include "psched/task_exec.hpp"

#include <utility>

#include "util/error.hpp"

namespace casched::psched {

TaskExecution::TaskExecution(simcore::Simulator& sim, ExecResources res,
                             ExecRequest req, DoneFn done)
    : sim_(sim), res_(res), done_(std::move(done)) {
  CASCHED_CHECK(res_.linkIn && res_.cpu && res_.linkOut, "execution needs all resources");
  CASCHED_CHECK(req.inMB >= 0 && req.cpuSeconds >= 0 && req.outMB >= 0 && req.memMB >= 0,
                "execution request fields must be non-negative");
  record_.request = req;
}

TaskExecution::~TaskExecution() {
  // Defensive: a destroyed execution must leave nothing armed.
  if (record_.status == ExecStatus::kRunning) abort();
}

void TaskExecution::start() {
  CASCHED_CHECK(record_.submitTime < 0.0, "start() called twice");
  record_.submitTime = sim_.now();
  beginInput();
}

void TaskExecution::beginInput() {
  record_.inputStart = sim_.now();
  auto launch = [this] {
    pendingEvent_ = {};
    if (record_.request.inMB <= 0.0) {
      onInputDone();
      return;
    }
    activeResource_ = res_.linkIn;
    activeJob_ = res_.linkIn->add(record_.request.inMB,
                                  [this](FairShareResource::JobId) {
                                    activeResource_ = nullptr;
                                    onInputDone();
                                  });
  };
  if (res_.latencyIn > 0.0) {
    pendingEvent_ = sim_.scheduleAfter(res_.latencyIn, launch);
  } else {
    launch();
  }
}

void TaskExecution::onInputDone() { beginCompute(); }

void TaskExecution::beginCompute() {
  record_.computeStart = sim_.now();
  if (record_.request.cpuSeconds <= 0.0) {
    onComputeDone();
    return;
  }
  activeResource_ = res_.cpu;
  activeJob_ = res_.cpu->add(record_.request.cpuSeconds,
                             [this](FairShareResource::JobId) {
                               activeResource_ = nullptr;
                               onComputeDone();
                             });
}

void TaskExecution::onComputeDone() { beginOutput(); }

void TaskExecution::beginOutput() {
  record_.outputStart = sim_.now();
  auto launch = [this] {
    pendingEvent_ = {};
    if (record_.request.outMB <= 0.0) {
      onOutputDone();
      return;
    }
    activeResource_ = res_.linkOut;
    activeJob_ = res_.linkOut->add(record_.request.outMB,
                                   [this](FairShareResource::JobId) {
                                     activeResource_ = nullptr;
                                     onOutputDone();
                                   });
  };
  if (res_.latencyOut > 0.0) {
    pendingEvent_ = sim_.scheduleAfter(res_.latencyOut, launch);
  } else {
    launch();
  }
}

void TaskExecution::onOutputDone() {
  record_.endTime = sim_.now();
  record_.status = ExecStatus::kCompleted;
  if (done_) {
    // The owner may destroy *this inside done_; do not touch members after.
    DoneFn done = std::move(done_);
    done(*this);
  }
}

void TaskExecution::abort() {
  if (record_.status != ExecStatus::kRunning) return;
  if (pendingEvent_.valid()) {
    sim_.cancel(pendingEvent_);
    pendingEvent_ = {};
  }
  if (activeResource_ != nullptr) {
    activeResource_->cancel(activeJob_);
    activeResource_ = nullptr;
  }
  record_.endTime = sim_.now();
  record_.status = ExecStatus::kFailed;
}

}  // namespace casched::psched
