#include "psched/noise.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace casched::psched {

NoiseProcess::NoiseProcess(simcore::Simulator& sim, simcore::RandomStream& rng,
                           NoiseConfig config, ApplyFn apply)
    : sim_(sim), rng_(rng), config_(config), apply_(std::move(apply)) {
  CASCHED_CHECK(config_.amplitude >= 0.0 && config_.amplitude < 1.0,
                "noise amplitude must be in [0,1)");
  CASCHED_CHECK(config_.period > 0.0, "noise period must be positive");
  CASCHED_CHECK(apply_ != nullptr, "noise apply callback required");
}

NoiseProcess::~NoiseProcess() {
  if (event_.valid()) sim_.cancel(event_);
}

void NoiseProcess::start() {
  if (config_.amplitude <= 0.0 || event_.valid()) return;
  tick();
}

void NoiseProcess::stop() {
  if (event_.valid()) {
    sim_.cancel(event_);
    event_ = {};
  }
  if (factor_ != 1.0) {
    factor_ = 1.0;
    apply_(factor_);
  }
}

void NoiseProcess::tick() {
  factor_ = 1.0 + rng_.uniform(-config_.amplitude, config_.amplitude);
  factor_ = std::max(factor_, 0.05);  // keep the resource schedulable
  apply_(factor_);
  event_ = sim_.scheduleAfter(config_.period, [this] { tick(); });
}

}  // namespace casched::psched
