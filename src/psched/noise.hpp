#pragma once
/// \file noise.hpp
/// Piecewise-constant multiplicative capacity noise. The paper's testbed ran
/// on a shared laboratory network with other users on the links; this module
/// reproduces that background variability so the HTM's predictions diverge
/// from "real" executions by a few percent (paper Table 1: <3% mean error).

#include <functional>

#include "simcore/engine.hpp"
#include "simcore/rng.hpp"

namespace casched::psched {

struct NoiseConfig {
  /// Relative half-amplitude: each window draws factor = 1 + U(-a, +a).
  /// 0 disables the process entirely.
  double amplitude = 0.0;
  /// Window length between redraws, seconds.
  double period = 5.0;
};

/// Drives a capacity factor through `apply` on a fixed cadence. Owns its
/// pending event; stop() (or destruction) detaches it from the simulator so
/// runs can drain.
class NoiseProcess {
 public:
  using ApplyFn = std::function<void(double)>;

  NoiseProcess(simcore::Simulator& sim, simcore::RandomStream& rng,
               NoiseConfig config, ApplyFn apply);
  ~NoiseProcess();

  NoiseProcess(const NoiseProcess&) = delete;
  NoiseProcess& operator=(const NoiseProcess&) = delete;

  /// Begins redrawing; no-op when amplitude == 0.
  void start();

  /// Cancels the pending redraw and restores factor 1.
  void stop();

  double factor() const { return factor_; }
  bool active() const { return event_.valid(); }

 private:
  void tick();

  simcore::Simulator& sim_;
  simcore::RandomStream& rng_;
  NoiseConfig config_;
  ApplyFn apply_;
  double factor_ = 1.0;
  simcore::EventHandle event_{};
};

}  // namespace casched::psched
