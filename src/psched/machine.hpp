#pragma once
/// \file machine.hpp
/// A time-shared computational server: equal-share CPU, shared in/out links,
/// RAM+swap memory accounting with thrashing and collapse, and a damped load
/// average (what NetSolve's monitors report to the agent).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "psched/fair_share.hpp"
#include "psched/load_monitor.hpp"
#include "psched/task_exec.hpp"
#include "simcore/engine.hpp"

namespace casched::psched {

/// Static description of a server machine (paper Table 2 plus calibrated
/// network parameters).
struct MachineSpec {
  std::string name;
  std::string cpuModel;     ///< catalog metadata only
  int cpuMHz = 0;           ///< catalog metadata only
  double bwInMBps = 10.0;   ///< input-link bandwidth, MB/s
  double bwOutMBps = 10.0;  ///< output-link bandwidth, MB/s
  double latencyIn = 0.05;  ///< per-transfer latency, s
  double latencyOut = 0.05;
  double ramMB = 1.0e9;     ///< physical memory
  double swapMB = 0.0;      ///< swap space
  /// Thrashing exponent: when resident memory M exceeds RAM, CPU capacity is
  /// scaled by (RAM/M)^theta. theta=0 disables thrashing. The default 1.5 is
  /// calibrated so the paper's Table 6 collapse regime reproduces.
  double thrashTheta = 1.5;
  /// Downtime after a collapse before the server is usable again.
  double recoverySeconds = 300.0;
  /// Load-average damping constant (Linux 1-minute average).
  double loadTau = 60.0;
};

/// Aggregate statistics since construction.
struct MachineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t collapses = 0;
  double peakResidentMB = 0.0;
  double busyCpuSeconds = 0.0;  ///< integral of (cpu busy ? 1 : 0) dt
};

/// A server machine in the ground-truth simulation.
///
/// Memory model (needed for the paper's Table 6): each admitted task holds
/// `memMB` from submission to completion. Resident > RAM slows the CPU
/// (thrashing); resident > RAM+swap collapses the server: every running task
/// fails, the machine goes down for `recoverySeconds`, then comes back empty.
class Machine {
 public:
  /// Fires when an execution reaches a terminal state (completed or failed).
  using ExecDoneFn = std::function<void(const ExecRecord&)>;
  /// Fires on collapse with the records of all failed executions.
  using CollapseFn = std::function<void(const std::vector<ExecRecord>&)>;
  using RecoverFn = std::function<void()>;

  Machine(simcore::Simulator& sim, MachineSpec spec);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Admits and starts a task. Returns false when the machine is down or when
  /// admitting this task collapses the machine (the task is then failed and
  /// `done` is NOT called; the collapse observer reports the other victims).
  bool submit(const ExecRequest& request, ExecDoneFn done);

  bool up() const { return up_; }
  const MachineSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  double residentMB() const { return residentMB_; }
  std::size_t activeTasks() const { return execs_.size(); }

  /// Damped load average as NetSolve's monitor would report it.
  double loadAverage() const;
  /// Instantaneous number of tasks in their compute phase.
  std::size_t runningCpuJobs() const { return cpu_.activeJobs(); }

  FairShareResource& cpu() { return cpu_; }
  FairShareResource& linkIn() { return linkIn_; }
  FairShareResource& linkOut() { return linkOut_; }

  /// External noise hooks (used by NoiseProcess). The effective CPU factor is
  /// noise * churn * thrash, so all mechanisms compose.
  void setCpuNoiseFactor(double factor);
  void setLinkNoiseFactor(double factor);

  /// Capacity scaling from a churn timeline (scenario slowdown events);
  /// unlike the noise factor it is never overwritten by a NoiseProcess. 1.0
  /// restores full speed. A positive `restoreAfter` schedules an automatic
  /// restore to 1.0 that many seconds later (generated slowdown-with-recovery
  /// churn); a later explicit set cancels any pending restore.
  void setChurnSpeedFactor(double factor, double restoreAfter = 0.0);

  /// Same, for the in/out link bandwidth (generated bandwidth churn). The
  /// effective link factor is noise * churn, so both mechanisms compose.
  void setChurnLinkFactor(double factor, double restoreAfter = 0.0);

  /// Injected crash (scenario churn): every running task fails, the machine
  /// goes down and recovers after `downtime` (0 = the spec's
  /// `recoverySeconds`) - exactly the memory-collapse path. Returns false
  /// (no-op) when already down.
  bool forceCollapse(double downtime = 0.0);

  void setCollapseObserver(CollapseFn fn) { onCollapse_ = std::move(fn); }
  void setRecoverObserver(RecoverFn fn) { onRecover_ = std::move(fn); }

  const MachineStats& stats() const { return stats_; }

  /// Unloaded end-to-end duration of a request on this machine (latencies +
  /// transfers at full bandwidth + compute at full speed). This is the rho
  /// used by the paper's stretch metric.
  double unloadedDuration(const ExecRequest& request) const;

 private:
  void updateThrash();
  void applyCpuFactor();
  void applyLinkFactor();
  void collapse(double downtime);
  void recover();
  void finishExecution(TaskExecution& exec);

  simcore::Simulator& sim_;
  MachineSpec spec_;
  FairShareResource cpu_;
  FairShareResource linkIn_;
  FairShareResource linkOut_;
  LoadMonitor loadMonitor_;
  std::map<std::uint64_t, std::unique_ptr<TaskExecution>> execs_;  // by taskId
  double residentMB_ = 0.0;
  double cpuNoise_ = 1.0;
  double linkNoise_ = 1.0;
  double churnSpeed_ = 1.0;
  double churnLink_ = 1.0;
  double thrash_ = 1.0;
  bool up_ = true;
  simcore::EventHandle recoverEvent_{};
  simcore::EventHandle speedRestoreEvent_{};
  simcore::EventHandle linkRestoreEvent_{};
  std::map<std::uint64_t, ExecDoneFn> doneFns_;
  CollapseFn onCollapse_;
  RecoverFn onRecover_;
  MachineStats stats_;
  simcore::SimTime busySince_ = -1.0;
};

}  // namespace casched::psched
