#pragma once
/// \file load_monitor.hpp
/// Linux-style exponentially damped load average. NetSolve's MCT schedules on
/// the load averages servers report (paper section 2.2); the damping is what
/// makes that information lag behind reality and is a key reason the HTM
/// heuristics win.

#include "simcore/time.hpp"

namespace casched::psched {

/// Continuous-time exact EMA of the number of runnable jobs:
///   L(t) = L(t0)*e^{-(t-t0)/tau} + n*(1 - e^{-(t-t0)/tau})
/// with n constant on [t0, t]. Updates are event-driven (no sampling error).
class LoadMonitor {
 public:
  /// tau defaults to 60 s, matching the Linux 1-minute load average.
  explicit LoadMonitor(double tau = 60.0);

  /// Records that the runnable count becomes `runnable` at time `now`. The
  /// previous count is integrated up to `now` first.
  void update(simcore::SimTime now, std::size_t runnable);

  /// Damped load average at `now` (>= time of last update).
  double load(simcore::SimTime now) const;

  /// Instantaneous runnable count last reported.
  std::size_t runnable() const { return runnable_; }

  double tau() const { return tau_; }

 private:
  double decayTo(simcore::SimTime now) const;

  double tau_;
  double load_ = 0.0;
  std::size_t runnable_ = 0;
  simcore::SimTime last_ = 0.0;
};

}  // namespace casched::psched
