#include "psched/machine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "psched.machine"

namespace casched::psched {

namespace {
obs::Counter& machineSubmitsCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_machine_submits_total", "Task executions accepted by a machine");
  return *c;
}

obs::Counter& machineCollapsesCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_machine_collapses_total", "Machine collapses (OOM, churn, forced)");
  return *c;
}
}  // namespace

Machine::Machine(simcore::Simulator& sim, MachineSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      cpu_(sim, spec_.name + ".cpu", 1.0),
      linkIn_(sim, spec_.name + ".linkIn", spec_.bwInMBps),
      linkOut_(sim, spec_.name + ".linkOut", spec_.bwOutMBps),
      loadMonitor_(spec_.loadTau) {
  CASCHED_CHECK(spec_.bwInMBps > 0 && spec_.bwOutMBps > 0, "bandwidth must be positive");
  CASCHED_CHECK(spec_.ramMB > 0, "ram must be positive");
  CASCHED_CHECK(spec_.swapMB >= 0, "swap must be non-negative");
  CASCHED_CHECK(spec_.thrashTheta >= 0, "thrash exponent must be non-negative");
  // The load monitor tracks the number of tasks in their compute phase; the
  // busy-time integral for utilization statistics shares the same hook.
  cpu_.setMembershipObserver([this](std::size_t n) {
    const simcore::SimTime now = sim_.now();
    loadMonitor_.update(now, n);
    if (n > 0 && busySince_ < 0.0) {
      busySince_ = now;
    } else if (n == 0 && busySince_ >= 0.0) {
      stats_.busyCpuSeconds += now - busySince_;
      busySince_ = -1.0;
    }
  });
}

double Machine::loadAverage() const { return loadMonitor_.load(sim_.now()); }

double Machine::unloadedDuration(const ExecRequest& request) const {
  double total = request.cpuSeconds;
  if (request.inMB > 0.0) total += spec_.latencyIn + request.inMB / spec_.bwInMBps;
  else if (spec_.latencyIn > 0.0) total += spec_.latencyIn;
  if (request.outMB > 0.0) total += spec_.latencyOut + request.outMB / spec_.bwOutMBps;
  else if (spec_.latencyOut > 0.0) total += spec_.latencyOut;
  return total;
}

void Machine::applyCpuFactor() {
  cpu_.setCapacityFactor(std::max(1e-6, cpuNoise_ * churnSpeed_ * thrash_));
}

void Machine::setCpuNoiseFactor(double factor) {
  cpuNoise_ = factor;
  applyCpuFactor();
}

void Machine::setChurnSpeedFactor(double factor, double restoreAfter) {
  CASCHED_CHECK(factor > 0.0, "churn speed factor must be positive");
  CASCHED_CHECK(restoreAfter >= 0.0, "churn restore delay must be non-negative");
  if (speedRestoreEvent_.valid()) {
    sim_.cancel(speedRestoreEvent_);
    speedRestoreEvent_ = {};
  }
  churnSpeed_ = factor;
  applyCpuFactor();
  if (restoreAfter > 0.0 && factor != 1.0) {
    speedRestoreEvent_ = sim_.scheduleAfter(restoreAfter, [this] {
      speedRestoreEvent_ = {};
      churnSpeed_ = 1.0;
      applyCpuFactor();
    });
  }
}

void Machine::setChurnLinkFactor(double factor, double restoreAfter) {
  CASCHED_CHECK(factor > 0.0, "churn link factor must be positive");
  CASCHED_CHECK(restoreAfter >= 0.0, "churn restore delay must be non-negative");
  if (linkRestoreEvent_.valid()) {
    sim_.cancel(linkRestoreEvent_);
    linkRestoreEvent_ = {};
  }
  churnLink_ = factor;
  applyLinkFactor();
  if (restoreAfter > 0.0 && factor != 1.0) {
    linkRestoreEvent_ = sim_.scheduleAfter(restoreAfter, [this] {
      linkRestoreEvent_ = {};
      churnLink_ = 1.0;
      applyLinkFactor();
    });
  }
}

bool Machine::forceCollapse(double downtime) {
  if (!up_) return false;
  CASCHED_CHECK(downtime >= 0.0, "crash downtime must be non-negative");
  LOG_DEBUG("machine " << spec_.name << " crash injected at t=" << sim_.now());
  collapse(downtime > 0.0 ? downtime : spec_.recoverySeconds);
  return true;
}

void Machine::setLinkNoiseFactor(double factor) {
  linkNoise_ = factor;
  applyLinkFactor();
}

void Machine::applyLinkFactor() {
  linkIn_.setCapacityFactor(std::max(1e-6, linkNoise_ * churnLink_));
  linkOut_.setCapacityFactor(std::max(1e-6, linkNoise_ * churnLink_));
}

void Machine::updateThrash() {
  double t = 1.0;
  if (spec_.thrashTheta > 0.0 && residentMB_ > spec_.ramMB) {
    t = std::pow(spec_.ramMB / residentMB_, spec_.thrashTheta);
  }
  if (t != thrash_) {
    thrash_ = t;
    applyCpuFactor();
  }
}

bool Machine::submit(const ExecRequest& request, ExecDoneFn done) {
  if (!up_) return false;
  ++stats_.submitted;
  machineSubmitsCounter().inc();
  residentMB_ += request.memMB;
  stats_.peakResidentMB = std::max(stats_.peakResidentMB, residentMB_);
  if (residentMB_ > spec_.ramMB + spec_.swapMB) {
    // The allocation that does not fit kills the machine (OOM on a 2003 Linux
    // box with NetSolve servers was not graceful; paper section 5.1).
    LOG_DEBUG("machine " << spec_.name << " collapses at t=" << sim_.now()
                         << " resident=" << residentMB_ << "MB");
    ++stats_.failed;  // the triggering task
    collapse(spec_.recoverySeconds);
    return false;
  }
  updateThrash();
  CASCHED_CHECK(execs_.find(request.taskId) == execs_.end(),
                "duplicate taskId submitted to machine");
  auto exec = std::make_unique<TaskExecution>(
      sim_, ExecResources{&linkIn_, &cpu_, &linkOut_, spec_.latencyIn, spec_.latencyOut},
      request, [this](TaskExecution& e) { finishExecution(e); });
  TaskExecution* raw = exec.get();
  execs_.emplace(request.taskId, std::move(exec));
  doneFns_.emplace(request.taskId, std::move(done));
  raw->start();
  return true;
}

void Machine::finishExecution(TaskExecution& exec) {
  const std::uint64_t taskId = exec.taskId();
  auto it = execs_.find(taskId);
  CASCHED_CHECK(it != execs_.end(), "finished execution not registered");
  // Keep the execution alive until this frame unwinds: we are called from
  // inside TaskExecution::onOutputDone.
  std::unique_ptr<TaskExecution> owned = std::move(it->second);
  execs_.erase(it);
  ExecDoneFn done = std::move(doneFns_.at(taskId));
  doneFns_.erase(taskId);

  residentMB_ = std::max(0.0, residentMB_ - owned->record().request.memMB);
  updateThrash();
  ++stats_.completed;
  if (done) done(owned->record());
  // `owned` destroys the execution here; onOutputDone touches nothing after
  // invoking us (see TaskExecution lifetime contract).
}

void Machine::collapse(double downtime) {
  up_ = false;
  std::vector<ExecRecord> victims;
  victims.reserve(execs_.size());
  for (auto& [taskId, exec] : execs_) {
    exec->abort();
    victims.push_back(exec->record());
    ++stats_.failed;
  }
  execs_.clear();
  doneFns_.clear();
  residentMB_ = 0.0;
  thrash_ = 1.0;
  applyCpuFactor();
  ++stats_.collapses;
  machineCollapsesCounter().inc();
  recoverEvent_ = sim_.scheduleAfter(downtime, [this] { recover(); });
  if (onCollapse_) onCollapse_(victims);
}

void Machine::recover() {
  recoverEvent_ = {};
  up_ = true;
  LOG_DEBUG("machine " << spec_.name << " recovered at t=" << sim_.now());
  if (onRecover_) onRecover_();
}

}  // namespace casched::psched
