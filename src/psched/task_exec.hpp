#pragma once
/// \file task_exec.hpp
/// Three-phase execution of a single task on a server (paper fig. 1):
/// input-data transfer -> compute -> output-data transfer, each phase a job on
/// the server's shared link-in / CPU / link-out resources, transfers preceded
/// by a fixed latency.

#include <cstdint>
#include <functional>

#include "psched/fair_share.hpp"
#include "simcore/engine.hpp"

namespace casched::psched {

/// What a server is asked to run. `cpuSeconds` is the task's duration on this
/// server when unloaded (the paper's static cost information, Tables 3-4).
struct ExecRequest {
  std::uint64_t taskId = 0;
  double inMB = 0.0;        ///< input data volume
  double cpuSeconds = 0.0;  ///< unloaded compute duration on this machine
  double outMB = 0.0;       ///< output data volume
  double memMB = 0.0;       ///< resident footprint, held for the whole execution
};

enum class ExecStatus : std::uint8_t { kRunning, kCompleted, kFailed };

/// Timestamped outcome of one execution; -1 marks phases never entered.
struct ExecRecord {
  ExecRequest request;
  simcore::SimTime submitTime = -1.0;
  simcore::SimTime inputStart = -1.0;
  simcore::SimTime computeStart = -1.0;
  simcore::SimTime outputStart = -1.0;
  simcore::SimTime endTime = -1.0;
  ExecStatus status = ExecStatus::kRunning;
};

/// Resources a TaskExecution runs on (owned by the Machine).
struct ExecResources {
  FairShareResource* linkIn = nullptr;
  FairShareResource* cpu = nullptr;
  FairShareResource* linkOut = nullptr;
  double latencyIn = 0.0;
  double latencyOut = 0.0;
};

/// State machine driving one task through its three phases.
///
/// Lifetime contract: the owner (Machine) constructs it, calls start() once,
/// and destroys it either after `done` fires or after abort(). `done` is
/// invoked from inside the final phase callback; the owner may destroy the
/// execution there, so TaskExecution never touches members after firing it.
class TaskExecution {
 public:
  using DoneFn = std::function<void(TaskExecution&)>;

  TaskExecution(simcore::Simulator& sim, ExecResources res, ExecRequest req,
                DoneFn done);
  ~TaskExecution();

  TaskExecution(const TaskExecution&) = delete;
  TaskExecution& operator=(const TaskExecution&) = delete;

  void start();

  /// Cancels whatever the task is waiting on (latency event or resource job)
  /// and marks the record failed. Does NOT invoke the done callback; the
  /// owner decides how failures propagate (server collapse).
  void abort();

  const ExecRecord& record() const { return record_; }
  std::uint64_t taskId() const { return record_.request.taskId; }
  bool finished() const { return record_.status != ExecStatus::kRunning; }

 private:
  void beginInput();
  void onInputDone();
  void beginCompute();
  void onComputeDone();
  void beginOutput();
  void onOutputDone();

  simcore::Simulator& sim_;
  ExecResources res_;
  ExecRecord record_;
  DoneFn done_;

  simcore::EventHandle pendingEvent_{};
  FairShareResource* activeResource_ = nullptr;
  FairShareResource::JobId activeJob_ = 0;
};

}  // namespace casched::psched
