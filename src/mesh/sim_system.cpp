#include "mesh/sim_system.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cas/server_daemon.hpp"
#include "mesh/router.hpp"
#include "obs/decision.hpp"
#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "mesh.sim"

namespace casched::mesh {

namespace {

/// One agent + its rack of server daemons + the mesh bookkeeping around it.
struct Node {
  std::string name;
  std::unique_ptr<cas::Agent> agent;
  std::vector<std::unique_ptr<cas::ServerDaemon>> daemons;
  /// Queued-but-undispatched tasks awaiting a steal (arrival order).
  std::deque<workload::TaskInstance> parked;
  /// taskId -> "forward:<agent>" / "steal:<agent>" for decision attribution.
  std::unordered_map<std::uint64_t, std::string> origin;
};

class MeshSimSystem {
 public:
  MeshSimSystem(const platform::Testbed& testbed, const workload::Metatask& metatask,
                const std::string& schedulerName, const cas::SystemConfig& config,
                const scenario::MeshSpec& mesh, const scenario::AgentsSpec& agents)
      : metatask_(metatask),
        schedulerName_(schedulerName),
        config_(config),
        mesh_(mesh),
        router_(routerConfigFrom(mesh)) {
    CASCHED_CHECK(!testbed.servers.empty(), "testbed has no servers");
    CASCHED_CHECK(!metatask_.tasks.empty(), "metatask is empty");
    CASCHED_CHECK(agents.count >= 2, "mesh needs at least two agents");
    if (config_.controlLatency < 0.0) config_.controlLatency = testbed.controlLatency;

    cas::AgentConfig agentConfig;
    agentConfig.controlLatency = config_.controlLatency;
    agentConfig.faultTolerance = config_.faultTolerance;
    agentConfig.maxRetries = config_.maxRetries;
    agentConfig.htmSync = config_.htmSync;

    nodes_.resize(agents.count);
    for (std::size_t i = 0; i < agents.count; ++i) {
      Node& node = nodes_[i];
      node.name = util::strformat("agent%zu", i);
      node.agent = std::make_unique<cas::Agent>(
          sim_, core::makeScheduler(schedulerName, config_.schedulerSeed),
          testbed.costs, agentConfig);
      node.agent->setExpectedTasks(metatask_.size());
      node.agent->setDecisionLabel(node.name);
      node.agent->setDecisionAnnotator(
          [&node](std::uint64_t taskId, obs::DecisionRecord& record) {
            auto it = node.origin.find(taskId);
            record.origin = it == node.origin.end() ? "local" : it->second;
          });
      node.agent->setTaskTerminalObserver(
          [this](const metrics::TaskOutcome&) { onTerminal(); });
    }

    // Home each server on its rack owner (compileScenario validated total
    // disjoint coverage, so every server lands exactly once).
    for (const scenario::RackSpec& rack : mesh.racks) {
      for (const std::size_t serverIndex : rack.servers) {
        addServer(nodes_[rack.agentIndex], testbed.servers.at(serverIndex));
      }
    }
  }

  metrics::RunResult run() {
    for (const workload::TaskInstance& task : metatask_.tasks) {
      const std::size_t target = mesh_.topology == "tree"
                                     ? mesh_.root
                                     : task.index % nodes_.size();
      // Client -> agent control latency, exactly like cas::Client.
      sim_.scheduleAt(task.arrival + config_.controlLatency, [this, target, &task] {
        onRequest(target, task, /*hops=*/0, /*origin=*/std::string());
      });
    }
    if (router_.stealing) {
      sim_.scheduleAt(mesh_.stealPeriod, [this] { stealTick(); });
    }
    sim_.run(config_.horizon);

    if (terminal_ < metatask_.size()) {
      LOG_WARN("mesh run hit the horizon with " << metatask_.size() - terminal_
                                                << " unfinished tasks");
    }
    for (Node& node : nodes_) {
      for (auto& d : node.daemons) d->quiesce();
    }
    return buildResult();
  }

 private:
  void addServer(Node& node, const psched::MachineSpec& spec) {
    cas::ServerDaemonConfig daemonConfig;
    daemonConfig.reportPeriod = config_.reportPeriod;
    daemonConfig.controlLatency = config_.controlLatency;
    daemonConfig.cpuNoise = config_.cpuNoise;
    daemonConfig.linkNoise = config_.linkNoise;
    daemonConfig.noiseSeed = simcore::deriveSeed(config_.noiseSeed, nextNoiseStream_++);
    auto daemon = std::make_unique<cas::ServerDaemon>(
        sim_, spec, std::vector<std::string>{"*"}, daemonConfig);

    core::ServerModel model;
    model.name = spec.name;
    model.bwInMBps = spec.bwInMBps;
    model.bwOutMBps = spec.bwOutMBps;
    model.latencyIn = spec.latencyIn;
    model.latencyOut = spec.latencyOut;
    node.agent->registerServer(daemon.get(), model, {"*"}, spec.ramMB,
                               spec.ramMB + spec.swapMB);
    daemon->connectAgent(node.agent.get());
    node.daemons.push_back(std::move(daemon));
  }

  /// Peer digests for a decision at `self`, excluding the agent the request
  /// came from (a forward never bounces straight back). The simulator reads
  /// peers directly - the live mesh sees the same numbers one sync period
  /// stale, which can shift individual placements but not completion counts.
  std::vector<PeerDigest> peerDigests(std::size_t self, std::size_t exclude) {
    std::vector<PeerDigest> digests;
    digests.reserve(nodes_.size());
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (j == self || j == exclude) continue;
      const Node& peer = nodes_[j];
      PeerDigest d;
      d.index = j;
      d.meanLoad = peer.agent->meanLoadEstimate();
      d.liveServers = static_cast<std::uint32_t>(peer.agent->liveServerCount());
      d.queuedTasks = static_cast<std::uint32_t>(peer.parked.size());
      digests.push_back(d);
    }
    return digests;
  }

  void onRequest(std::size_t self, const workload::TaskInstance& task,
                 std::uint32_t hops, const std::string& origin) {
    Node& node = nodes_[self];
    LocalView local;
    local.feasible = node.agent->hasFeasibleServer(task.type.name);
    if (local.feasible && router_.overloadThreshold > 0.0) {
      local.predictedCompletion = node.agent->previewBestCompletion(task);
    }
    local.now = sim_.now();
    local.meanLoad = node.agent->meanLoadEstimate();
    local.hops = hops;

    const std::size_t from = origin.empty() ? self : originIndex_.at(task.index);
    const std::vector<PeerDigest> peers = peerDigests(self, from);
    const RouteDecision decision = decideRoute(router_, local, peers);

    switch (decision.kind) {
      case RouteKind::kLocal:
        if (!origin.empty()) node.origin[task.index] = origin;
        node.agent->requestSchedule(task);
        return;
      case RouteKind::kForward: {
        ++meshStats_.forwards;
        originIndex_[task.index] = self;
        const std::size_t target = decision.peer;
        const std::string forwardOrigin = "forward:" + node.name;
        LOG_DEBUG("task " << task.index << " forwarded " << node.name << " -> "
                          << nodes_[target].name << " (" << decision.reason << ")");
        sim_.scheduleAfter(config_.controlLatency,
                           [this, target, task, hops, forwardOrigin] {
                             onRequest(target, task, hops + 1, forwardOrigin);
                           });
        return;
      }
      case RouteKind::kPark:
        ++meshStats_.parked;
        node.parked.push_back(task);
        return;
      case RouteKind::kDeny:
        ++meshStats_.forwardDenies;
        LOG_DEBUG("task " << task.index << " denied at " << node.name << " ("
                          << decision.reason << ")");
        loseTask(task);
        return;
    }
  }

  /// One global steal round: idle agents (live servers, nothing parked) pull
  /// up to stealBatch tasks off the most-loaded parked queue. A single
  /// ordered sweep keeps the round deterministic.
  void stealTick() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& thief = nodes_[i];
      if (thief.agent->liveServerCount() == 0 || !thief.parked.empty()) continue;
      std::size_t victimIndex = nodes_.size();
      for (std::size_t j = 0; j < nodes_.size(); ++j) {
        if (j == i || nodes_[j].parked.empty()) continue;
        if (victimIndex == nodes_.size() ||
            nodes_[j].parked.size() > nodes_[victimIndex].parked.size()) {
          victimIndex = j;
        }
      }
      if (victimIndex == nodes_.size()) continue;
      Node& victim = nodes_[victimIndex];
      const std::size_t grant = std::min(mesh_.stealBatch, victim.parked.size());
      const std::string stealOrigin = "steal:" + victim.name;
      for (std::size_t k = 0; k < grant; ++k) {
        workload::TaskInstance task = victim.parked.front();
        victim.parked.pop_front();
        ++meshStats_.steals;
        thief.origin[task.index] = stealOrigin;
        // Steal request + grant round trip before the task can be placed.
        cas::Agent* agent = thief.agent.get();
        sim_.scheduleAfter(2.0 * config_.controlLatency,
                           [agent, task] { agent->requestSchedule(task); });
      }
    }
    if (terminal_ < metatask_.size()) {
      sim_.scheduleAfter(mesh_.stealPeriod, [this] { stealTick(); });
    }
  }

  void loseTask(const workload::TaskInstance& task) {
    metrics::TaskOutcome o;
    o.index = task.index;
    o.typeName = task.type.name;
    o.arrival = task.arrival;
    o.status = metrics::TaskStatus::kLost;
    extraLost_.push_back(std::move(o));
    onTerminal();
  }

  void onTerminal() {
    ++terminal_;
    if (terminal_ == metatask_.size()) sim_.requestStop();
  }

  metrics::RunResult buildResult() {
    metrics::RunResult result;
    result.heuristic = schedulerName_;
    result.metataskName = metatask_.name;
    result.endTime = sim_.now();
    result.simulatedEvents = sim_.executedEvents();
    result.mesh = meshStats_;

    result.tasks.reserve(metatask_.size());
    for (const Node& node : nodes_) {
      for (metrics::TaskOutcome& o : node.agent->collectOutcomes()) {
        result.tasks.push_back(std::move(o));
      }
    }
    for (const metrics::TaskOutcome& o : extraLost_) result.tasks.push_back(o);
    // Tasks still parked when the horizon hit never reached any agent.
    for (const Node& node : nodes_) {
      for (const workload::TaskInstance& task : node.parked) {
        metrics::TaskOutcome o;
        o.index = task.index;
        o.typeName = task.type.name;
        o.arrival = task.arrival;
        o.status = metrics::TaskStatus::kLost;
        result.tasks.push_back(std::move(o));
      }
    }
    std::sort(result.tasks.begin(), result.tasks.end(),
              [](const metrics::TaskOutcome& a, const metrics::TaskOutcome& b) {
                return a.index < b.index;
              });

    double errorWeight = 0.0;
    double errorSum = 0.0;
    for (const Node& node : nodes_) {
      const double decisions = static_cast<double>(node.agent->scheduleDecisions());
      if (decisions > 0.0) {
        errorSum += node.agent->htm().stats().meanRelErrorPercent() * decisions;
        errorWeight += decisions;
      }
      for (const auto& d : node.daemons) {
        const psched::MachineStats& ms = d->machine().stats();
        metrics::ServerSummary s;
        s.tasksCompleted = ms.completed;
        s.tasksFailed = ms.failed;
        s.collapses = ms.collapses;
        s.peakResidentMB = ms.peakResidentMB;
        s.busySeconds = ms.busyCpuSeconds;
        s.peakLoadReported = node.agent->peakReportedLoad(d->name());
        result.servers.emplace(d->name(), s);
      }
    }
    result.htmMeanRelErrorPercent = errorWeight > 0.0 ? errorSum / errorWeight : 0.0;
    return result;
  }

  simcore::Simulator sim_;
  const workload::Metatask metatask_;
  std::string schedulerName_;
  cas::SystemConfig config_;
  scenario::MeshSpec mesh_;
  RouterConfig router_;
  std::vector<Node> nodes_;
  /// taskId -> forwarding agent index (so the receiver can exclude it).
  std::unordered_map<std::uint64_t, std::size_t> originIndex_;
  std::vector<metrics::TaskOutcome> extraLost_;
  metrics::MeshSummary meshStats_;
  std::size_t terminal_ = 0;
  std::uint64_t nextNoiseStream_ = 0;
};

}  // namespace

metrics::RunResult runMeshSim(const platform::Testbed& testbed,
                              const workload::Metatask& metatask,
                              const std::string& schedulerName,
                              const cas::SystemConfig& config,
                              const scenario::MeshSpec& mesh,
                              const scenario::AgentsSpec& agents) {
  MeshSimSystem system(testbed, metatask, schedulerName, config, mesh, agents);
  return system.run();
}

}  // namespace casched::mesh
