#pragma once
/// \file sim_system.hpp
/// Multi-agent mesh simulation: N cas::Agents in one Simulator, each owning a
/// rack of the testbed's servers, joined by the mesh router - request
/// forwarding to the least-loaded peer, work-stealing off parked queues, and
/// flat or tree (root routes, leaves own racks) topologies. This is what
/// scenario::runScenario dispatches to when a scenario has an enabled [mesh]
/// section; the live loopback harness deploys the same shape over TCP, and
/// the two agree on completed/lost counts at the same seed (locked by test).

#include <string>

#include "cas/system.hpp"
#include "metrics/record.hpp"
#include "platform/testbed.hpp"
#include "scenario/spec.hpp"
#include "workload/metatask.hpp"

namespace casched::mesh {

/// Runs one metatask over the mesh to completion. Expects a validated spec
/// (compileScenario's [mesh] checks: >= 2 agents, partitioned mode, total
/// disjoint rack coverage, tree root owning no rack, no churn/agent events).
/// The result's `mesh` summary carries the forward/steal/deny accounting and
/// `tasks` covers every metatask entry (denied or never-stolen tasks appear
/// as kLost outcomes).
metrics::RunResult runMeshSim(const platform::Testbed& testbed,
                              const workload::Metatask& metatask,
                              const std::string& schedulerName,
                              const cas::SystemConfig& config,
                              const scenario::MeshSpec& mesh,
                              const scenario::AgentsSpec& agents);

}  // namespace casched::mesh
