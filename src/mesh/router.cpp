#include "mesh/router.hpp"

namespace casched::mesh {

RouterConfig routerConfigFrom(const scenario::MeshSpec& spec) {
  RouterConfig config;
  config.forwarding = spec.forwarding;
  config.hopLimit = spec.hopLimit;
  config.overloadThreshold = spec.overloadThreshold;
  config.stealing = spec.stealPeriod > 0.0;
  return config;
}

namespace {

/// Least-loaded peer with live servers; ties break on the lower table index
/// (both sides iterate peers in the same deterministic order).
const PeerDigest* bestPeer(std::span<const PeerDigest> peers) {
  const PeerDigest* best = nullptr;
  for (const PeerDigest& p : peers) {
    if (p.liveServers == 0) continue;
    if (best == nullptr || p.meanLoad < best->meanLoad ||
        (p.meanLoad == best->meanLoad && p.index < best->index)) {
      best = &p;
    }
  }
  return best;
}

}  // namespace

RouteDecision decideRoute(const RouterConfig& config, const LocalView& local,
                          std::span<const PeerDigest> peers) {
  const bool overloaded =
      config.overloadThreshold > 0.0 && local.predictedCompletion.has_value() &&
      *local.predictedCompletion - local.now > config.overloadThreshold;

  if (local.feasible && !overloaded) return {RouteKind::kLocal, 0, "local"};

  const bool canForward = config.forwarding && local.hops < config.hopLimit;
  if (canForward) {
    const PeerDigest* peer = bestPeer(peers);
    // The overload trigger only pays off when the peer really is less
    // loaded; the no-feasible-server trigger takes any capable peer.
    if (peer != nullptr && (!local.feasible || peer->meanLoad < local.meanLoad)) {
      return {RouteKind::kForward, peer->index,
              local.feasible ? "overloaded" : "no-feasible-server"};
    }
  }

  if (local.feasible) return {RouteKind::kLocal, 0, "no-better-peer"};
  if (config.stealing) return {RouteKind::kPark, 0, "awaiting-steal"};
  return {RouteKind::kDeny, 0,
          canForward ? "no-capable-peer" : "hop-limit"};
}

}  // namespace casched::mesh
