#pragma once
/// \file router.hpp
/// The mesh routing decision, shared verbatim by the simulator's MeshSystem
/// and the live agent daemons: given the local partition's state and the
/// latest peer digests, decide whether a schedule request is placed locally,
/// forwarded to the least-loaded capable peer, parked for work-stealing, or
/// denied. Keeping the policy in one pure function is what makes the
/// sim/live count-agreement invariant hold for mesh scenarios.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "scenario/spec.hpp"

namespace casched::mesh {

/// The routing knobs of a [mesh] section, distilled for the decision path.
struct RouterConfig {
  bool forwarding = true;
  /// Max agent-to-agent transfers per request; a request arriving with
  /// hops >= hopLimit can no longer forward (no ping-pong).
  std::uint32_t hopLimit = 1;
  /// Forward when the best local predicted completion exceeds
  /// now + overloadThreshold; <= 0 disables the overload trigger.
  double overloadThreshold = 0.0;
  /// Parking (instead of denying) infeasible requests is only useful when
  /// somebody will come and steal them.
  bool stealing = false;
};

RouterConfig routerConfigFrom(const scenario::MeshSpec& spec);

/// One peer's advertised state. Live daemons fill this from the latest
/// kAgentSync digest (stale by up to one sync period); the simulator reads
/// the peer agent directly. `index` is the peer's slot in the caller's peer
/// table and is echoed back in RouteDecision::peer.
struct PeerDigest {
  std::size_t index = 0;
  double meanLoad = 0.0;
  std::uint32_t liveServers = 0;
  std::uint32_t queuedTasks = 0;
};

/// The local partition's state at decision time.
struct LocalView {
  /// At least one live local server can solve the request's problem.
  bool feasible = false;
  /// Best predicted completion (absolute time) of the request placed locally;
  /// empty when not feasible or the scheduler could not preview.
  std::optional<double> predictedCompletion;
  double now = 0.0;
  double meanLoad = 0.0;
  /// Transfers this request already took (0 for a fresh client request).
  std::uint32_t hops = 0;
};

enum class RouteKind : std::uint8_t {
  kLocal,    ///< place on the local partition
  kForward,  ///< hand to peers[decision.peer]
  kPark,     ///< queue undispatched, awaiting a steal
  kDeny,     ///< reply schedule-deny; nobody can run this
};

struct RouteDecision {
  RouteKind kind = RouteKind::kLocal;
  std::size_t peer = 0;   ///< valid when kind == kForward
  const char* reason = "";  ///< stable tag for accounting/log lines
};

/// The mesh policy. `peers` must not contain the agent that sent this request
/// to us (the caller filters; a request never bounces straight back).
///
/// Order of play: a feasible, non-overloaded request is placed locally.
/// Otherwise forwarding (if enabled and hops remain) targets the least-loaded
/// peer that has live servers - for the overload trigger only a peer less
/// loaded than us is worth the hop. A request nobody can take is parked when
/// stealing is on, denied otherwise; a feasible-but-overloaded request with
/// no better peer just runs locally.
RouteDecision decideRoute(const RouterConfig& config, const LocalView& local,
                          std::span<const PeerDigest> peers);

}  // namespace casched::mesh
