#include "util/csv.hpp"

#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace casched::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::addRow(std::vector<std::string> row) {
  CASCHED_CHECK(row.size() == header_.size(), "csv row width mismatch");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needsQuote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += ',';
    out += escape(header_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void CsvWriter::writeFile(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  os << render();
}

std::vector<std::vector<std::string>> parseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool inQuotes = false;
  bool cellStarted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (inQuotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        inQuotes = true;
        cellStarted = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        cellStarted = true;
        break;
      case '\r':
        break;
      case '\n':
        if (cellStarted || !cell.empty() || !row.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
          cellStarted = false;
        }
        break;
      default:
        cell += c;
        cellStarted = true;
        break;
    }
  }
  if (inQuotes) throw DecodeError("unterminated quote in csv");
  if (cellStarted || !cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace casched::util
