#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace casched::util {

void TablePrinter::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::addRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TablePrinter::addRule() { rows_.push_back(Row{{}, true}); }

std::vector<std::size_t> TablePrinter::columnWidths() const {
  std::size_t cols = header_.size();
  for (const Row& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }
  return widths;
}

std::string TablePrinter::pad(const std::string& s, std::size_t width, Align a) {
  if (s.size() >= width) return s;
  const std::size_t extra = width - s.size();
  switch (a) {
    case Align::kLeft: return s + repeated(' ', extra);
    case Align::kRight: return repeated(' ', extra) + s;
    case Align::kCenter: {
      const std::size_t left = extra / 2;
      return repeated(' ', left) + s + repeated(' ', extra - left);
    }
  }
  return s;
}

std::string TablePrinter::render() const {
  const std::vector<std::size_t> widths = columnWidths();
  const auto alignFor = [this](std::size_t c) {
    if (c < aligns_.size()) return aligns_[c];
    return c == 0 ? Align::kLeft : Align::kRight;
  };

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1) + 4;
  for (std::size_t w : widths) total += w;

  std::ostringstream os;
  const std::string rule = repeated('-', total);
  if (!title_.empty()) {
    os << title_ << "\n";
  }
  os << rule << "\n";
  if (!header_.empty()) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < header_.size() ? header_[c] : "";
      os << pad(cell, widths[c], Align::kCenter);
      os << (c + 1 == widths.size() ? " |" : " | ");
    }
    os << "\n" << rule << "\n";
  }
  for (const Row& r : rows_) {
    if (r.rule) {
      os << rule << "\n";
      continue;
    }
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < r.cells.size() ? r.cells[c] : "";
      os << pad(cell, widths[c], alignFor(c));
      os << (c + 1 == widths.size() ? " |" : " | ");
    }
    os << "\n";
  }
  os << rule << "\n";
  return os.str();
}

void TablePrinter::print(std::ostream& os) const { os << render(); }

}  // namespace casched::util
