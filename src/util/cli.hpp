#pragma once
/// \file cli.hpp
/// Tiny declarative CLI flag parser shared by the examples and benches.
/// Supports `--name=value`, `--name value`, and boolean `--flag`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace casched::util {

class ArgParser {
 public:
  ArgParser(std::string programName, std::string description);

  /// Declares a flag with a default; appears in --help output.
  void addString(const std::string& name, const std::string& defaultValue,
                 const std::string& help);
  void addInt(const std::string& name, std::int64_t defaultValue, const std::string& help);
  void addDouble(const std::string& name, double defaultValue, const std::string& help);
  void addBool(const std::string& name, bool defaultValue, const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was given.
  /// Throws ConfigError for unknown flags or unparseable values.
  bool parse(int argc, const char* const* argv);

  std::string getString(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string defaultValue;
    std::string value;
    std::string help;
  };

  const Flag& find(const std::string& name, Type expected) const;

  std::string programName_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace casched::util
