#pragma once
/// \file flat_hash.hpp
/// Open-addressing hash map from uint64 keys to small values.
///
/// The agent's task table is looked up on every completion/failure notice;
/// std::map pays a node allocation per insert and pointer-chasing per lookup.
/// FlatMap64 keeps keys and values in two flat arrays with linear probing
/// (splitmix64-mixed hash, backshift deletion, power-of-two capacity), so
/// steady-state insert/find/erase never allocate once the table is warm.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace casched::util {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(full_.begin(), full_.end(), std::uint8_t{0});
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 3 / 4 < n) cap *= 2;
    if (cap > slots()) rehash(cap);
  }

  /// Pointer to the value for `key`, or nullptr.
  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    for (std::size_t i = probe(key);; i = next(i)) {
      if (!full_[i]) return nullptr;
      if (keys_[i] == key) return &vals_[i];
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Inserts {key, value}; overwrites an existing entry.
  void insert(std::uint64_t key, V value) {
    if ((size_ + 1) * 4 > slots() * 3) rehash(slots() == 0 ? 16 : slots() * 2);
    for (std::size_t i = probe(key);; i = next(i)) {
      if (!full_[i]) {
        full_[i] = 1;
        keys_[i] = key;
        vals_[i] = std::move(value);
        ++size_;
        return;
      }
      if (keys_[i] == key) {
        vals_[i] = std::move(value);
        return;
      }
    }
  }

  /// Removes `key`; returns true when an entry was removed. Backshift
  /// deletion keeps probe chains intact without tombstones.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = probe(key);
    for (;; i = next(i)) {
      if (!full_[i]) return false;
      if (keys_[i] == key) break;
    }
    std::size_t hole = i;
    for (std::size_t j = next(hole);; j = next(j)) {
      if (!full_[j]) break;
      const std::size_t home = probe(keys_[j]);
      // Shift j into the hole when its home position does not lie in the
      // (cyclic) interval (hole, j] - i.e. probing for it would have passed
      // through the hole.
      const bool shift = hole <= j ? (home <= hole || home > j)
                                   : (home <= hole && home > j);
      if (shift) {
        keys_[hole] = keys_[j];
        vals_[hole] = std::move(vals_[j]);
        hole = j;
      }
    }
    full_[hole] = 0;
    --size_;
    return true;
  }

 private:
  std::size_t slots() const { return full_.size(); }
  std::size_t next(std::size_t i) const { return (i + 1) & (slots() - 1); }

  std::size_t probe(std::uint64_t key) const {
    // splitmix64 finalizer: full-avalanche mix so sequential task ids spread.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (slots() - 1);
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> oldKeys = std::move(keys_);
    std::vector<V> oldVals = std::move(vals_);
    std::vector<std::uint8_t> oldFull = std::move(full_);
    keys_.assign(cap, 0);
    vals_.assign(cap, V{});
    full_.assign(cap, 0);
    size_ = 0;
    for (std::size_t i = 0; i < oldFull.size(); ++i) {
      if (oldFull[i]) insert(oldKeys[i], std::move(oldVals[i]));
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> vals_;
  std::vector<std::uint8_t> full_;
  std::size_t size_ = 0;
};

}  // namespace casched::util
