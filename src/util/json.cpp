#include "util/json.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::util {

void JsonWriter::newline() {
  out_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (stack_.empty()) {
    CASCHED_CHECK(out_.str().empty(), "json: only one top-level value allowed");
    return;
  }
  if (stack_.back()) {  // object: a key must be pending
    CASCHED_CHECK(pendingKey_, "json: object member needs a key first");
    pendingKey_ = false;
    return;
  }
  if (hasMember_.back()) out_ << ",";
  hasMember_.back() = true;
  newline();
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << "{";
  stack_.push_back(true);
  hasMember_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  CASCHED_CHECK(!stack_.empty() && stack_.back() && !pendingKey_,
                "json: endObject without matching beginObject");
  const bool empty = !hasMember_.back();
  stack_.pop_back();
  hasMember_.pop_back();
  if (!empty) newline();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << "[";
  stack_.push_back(false);
  hasMember_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  CASCHED_CHECK(!stack_.empty() && !stack_.back(),
                "json: endArray without matching beginArray");
  const bool empty = !hasMember_.back();
  stack_.pop_back();
  hasMember_.pop_back();
  if (!empty) newline();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  CASCHED_CHECK(!stack_.empty() && stack_.back() && !pendingKey_,
                "json: key() is only valid directly inside an object");
  if (hasMember_.back()) out_ << ",";
  hasMember_.back() = true;
  newline();
  out_ << "\"" << escape(name) << "\": ";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << "\"" << escape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  out_ << strformat("%.17g", v);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  CASCHED_CHECK(stack_.empty() && !pendingKey_,
                "json: document has unclosed containers or a dangling key");
  return out_.str() + "\n";
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace casched::util
