#include "util/json.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::util {

void JsonWriter::newline() {
  out_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::beforeValue() {
  if (stack_.empty()) {
    CASCHED_CHECK(out_.str().empty(), "json: only one top-level value allowed");
    return;
  }
  if (stack_.back()) {  // object: a key must be pending
    CASCHED_CHECK(pendingKey_, "json: object member needs a key first");
    pendingKey_ = false;
    return;
  }
  if (hasMember_.back()) out_ << ",";
  hasMember_.back() = true;
  newline();
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << "{";
  stack_.push_back(true);
  hasMember_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  CASCHED_CHECK(!stack_.empty() && stack_.back() && !pendingKey_,
                "json: endObject without matching beginObject");
  const bool empty = !hasMember_.back();
  stack_.pop_back();
  hasMember_.pop_back();
  if (!empty) newline();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << "[";
  stack_.push_back(false);
  hasMember_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  CASCHED_CHECK(!stack_.empty() && !stack_.back(),
                "json: endArray without matching beginArray");
  const bool empty = !hasMember_.back();
  stack_.pop_back();
  hasMember_.pop_back();
  if (!empty) newline();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  CASCHED_CHECK(!stack_.empty() && stack_.back() && !pendingKey_,
                "json: key() is only valid directly inside an object");
  if (hasMember_.back()) out_ << ",";
  hasMember_.back() = true;
  newline();
  out_ << "\"" << escape(name) << "\": ";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << "\"" << escape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  out_ << strformat("%.17g", v);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  beforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  CASCHED_CHECK(stack_.empty() && !pendingKey_,
                "json: document has unclosed containers or a dangling key");
  return out_.str() + "\n";
}

// ---------------------------------------------------------------------------
// Reader

/// Recursive-descent parser over the raw document text. Kept out of the
/// header so JsonValue's interface stays allocation-shape agnostic.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ConfigError("json parse error at line " + std::to_string(line) +
                      ", column " + std::to_string(column) + ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parseString();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        if (consumeLiteral("true")) {
          v.bool_ = true;
        } else if (consumeLiteral("false")) {
          v.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consumeLiteral("null")) fail("invalid literal");
        return JsonValue();
      }
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWhitespace();
      if (peek() != '"') fail("expected object key string");
      std::string name = parseString();
      skipWhitespace();
      expect(':');
      v.members_.emplace_back(std::move(name), parseValue());
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parseValue());
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parseUnicodeEscape(); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  /// \uXXXX escapes, encoded back to UTF-8. Surrogate pairs are accepted;
  /// the writer only ever emits \u00XX control escapes.
  std::string parseUnicodeEscape() {
    std::uint32_t code = parseHex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!consumeLiteral("\\u")) fail("unpaired UTF-16 surrogate");
      const std::uint32_t low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  std::uint32_t parseHex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t consumed = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(token, &consumed);
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
    if (consumed != token.size()) fail("invalid number '" + token + "'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = parsed;
    // Keep the raw token: integral values wider than double's 53-bit
    // mantissa (e.g. the 64-bit churn digests) stay exact through asUint.
    v.string_ = token;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parseDocument();
}

namespace {

const char* kindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "unknown";
}

[[noreturn]] void wrongKind(const char* wanted, JsonValue::Kind got) {
  throw ConfigError(std::string("json: expected ") + wanted + ", found " +
                    kindName(got));
}

}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::kBool) wrongKind("bool", kind_);
  return bool_;
}

double JsonValue::asDouble() const {
  if (kind_ != Kind::kNumber) wrongKind("number", kind_);
  return number_;
}

std::uint64_t JsonValue::asUint() const {
  const double d = asDouble();
  // Plain decimal tokens are converted exactly: a 64-bit digest round-trips
  // even though its double approximation would not.
  if (!string_.empty() &&
      string_.find_first_not_of("0123456789") == std::string::npos) {
    try {
      return std::stoull(string_);
    } catch (const std::exception&) {
      throw ConfigError("json: integer '" + string_ + "' out of range");
    }
  }
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    throw ConfigError("json: expected non-negative integer, found " +
                      strformat("%.17g", d));
  }
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::kString) wrongKind("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) wrongKind("array", kind_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) wrongKind("object", kind_);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& name) const {
  if (kind_ != Kind::kObject) wrongKind("object", kind_);
  for (const auto& [key, value] : members_) {
    if (key == name) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& name) const {
  const JsonValue* v = find(name);
  if (v == nullptr) throw ConfigError("json: missing key \"" + name + "\"");
  return *v;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace casched::util
