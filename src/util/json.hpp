#pragma once
/// \file json.hpp
/// Minimal streaming JSON writer (objects, arrays, scalars) for the suite's
/// machine-readable records. No parsing, no dependencies; emits 2-space
/// indented UTF-8 with escaped strings and %.17g doubles (round-trip exact).

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace casched::util {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Member key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  // One overload per fundamental integer type (not the <cstdint> typedefs),
  // so std::uint64_t and std::size_t resolve unambiguously on every platform
  // regardless of which type they alias.
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document; throws LogicError when containers are still open.
  std::string str() const;

  static std::string escape(const std::string& s);

 private:
  void beforeValue();
  void newline();

  std::ostringstream out_;
  /// One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  /// Whether the current container already holds a member.
  std::vector<bool> hasMember_;
  bool pendingKey_ = false;
};

}  // namespace casched::util
