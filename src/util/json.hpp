#pragma once
/// \file json.hpp
/// Minimal JSON support for the suite's machine-readable records: a
/// streaming writer (2-space indented UTF-8, escaped strings, %.17g doubles,
/// round-trip exact) and a recursive-descent reader (`JsonValue::parse`)
/// that consumes what the writer emits — and any other standard JSON — with
/// order-preserving objects. No dependencies.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace casched::util {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Member key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  // One overload per fundamental integer type (not the <cstdint> typedefs),
  // so std::uint64_t and std::size_t resolve unambiguously on every platform
  // regardless of which type they alias.
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document; throws LogicError when containers are still open.
  std::string str() const;

  static std::string escape(const std::string& s);

 private:
  void beforeValue();
  void newline();

  std::ostringstream out_;
  /// One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  /// Whether the current container already holds a member.
  std::vector<bool> hasMember_;
  bool pendingKey_ = false;
};

/// A parsed JSON document node. Objects preserve member order (the suite
/// records rely on insertion order for stable report output), numbers are
/// stored as double (exact for the writer's %.17g output and every integral
/// count the suite emits), and all parse/lookup failures throw ConfigError
/// with a position- or path-qualified message.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  static JsonValue parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isObject() const { return kind_ == Kind::kObject; }
  bool isArray() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw ConfigError naming the expected kind.
  bool asBool() const;
  double asDouble() const;
  /// asDouble narrowed to a checked non-negative integer.
  std::uint64_t asUint() const;
  const std::string& asString() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup. `find` returns nullptr when absent; `at` throws
  /// ConfigError naming the missing key.
  bool has(const std::string& name) const { return find(name) != nullptr; }
  const JsonValue* find(const std::string& name) const;
  const JsonValue& at(const std::string& name) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace casched::util
