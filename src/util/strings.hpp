#pragma once
/// \file strings.hpp
/// printf-style formatting (libstdc++ 12 has no std::format) and small string
/// helpers used by tables, logs and CSV output.

#include <string>
#include <string_view>
#include <vector>

namespace casched::util {

/// Formats like std::snprintf into a std::string.
/// Example: `strformat("%-8s %6.1f", name.c_str(), value)`.
[[gnu::format(printf, 1, 2)]] std::string strformat(const char* fmt, ...);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string toLower(std::string_view s);

/// Renders a double the way the paper's tables do: integers without a
/// fractional part, otherwise with `prec` digits (trailing zeros kept).
std::string formatNumber(double v, int prec = 1);

/// Repeats character `c` `n` times.
std::string repeated(char c, std::size_t n);

}  // namespace casched::util
