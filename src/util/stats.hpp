#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used to aggregate experiment replications
/// (the paper's Tables 7-8 report mean +/- spread over repeated runs).

#include <cstddef>
#include <vector>

namespace casched::util {

/// Welford online mean/variance accumulator. Numerically stable; O(1) space.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction of replication shards).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a sample batch.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a full summary of `values` (copies to sort for the median).
Summary summarize(const std::vector<double>& values);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
double percentile(std::vector<double> values, double p);

/// Half-width of the ~95% normal confidence interval for the mean.
double confidenceHalfWidth95(const RunningStat& s);

}  // namespace casched::util
