#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::util {

ArgParser::ArgParser(std::string programName, std::string description)
    : programName_(std::move(programName)), description_(std::move(description)) {}

namespace {

/// Every flag ships documented: an empty help string is a programming error
/// caught the moment the tool declares the flag, not in a --help audit.
void requireHelp(const std::string& name, const std::string& help) {
  CASCHED_CHECK(!help.empty(), "flag --" + name + " declared without help text");
}

}  // namespace

void ArgParser::addString(const std::string& name, const std::string& defaultValue,
                          const std::string& help) {
  requireHelp(name, help);
  flags_[name] = Flag{Type::kString, defaultValue, defaultValue, help};
  order_.push_back(name);
}

void ArgParser::addInt(const std::string& name, std::int64_t defaultValue,
                       const std::string& help) {
  requireHelp(name, help);
  const std::string d = std::to_string(defaultValue);
  flags_[name] = Flag{Type::kInt, d, d, help};
  order_.push_back(name);
}

void ArgParser::addDouble(const std::string& name, double defaultValue,
                          const std::string& help) {
  requireHelp(name, help);
  const std::string d = strformat("%g", defaultValue);
  flags_[name] = Flag{Type::kDouble, d, d, help};
  order_.push_back(name);
}

void ArgParser::addBool(const std::string& name, bool defaultValue, const std::string& help) {
  requireHelp(name, help);
  const std::string d = defaultValue ? "true" : "false";
  flags_[name] = Flag{Type::kBool, d, d, help};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (!startsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool haveValue = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      haveValue = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      // Enumerate what WOULD have worked: a typo'd flag should not force a
      // second run with --help to find the real name.
      std::string valid;
      for (const std::string& name : order_) {
        if (!valid.empty()) valid += ", ";
        valid += "--" + name;
      }
      throw ConfigError("unknown flag --" + arg + " (valid flags: " +
                        (valid.empty() ? "none" : valid) + ", --help)");
    }
    Flag& flag = it->second;
    if (!haveValue) {
      if (flag.type == Type::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) throw ConfigError("flag --" + arg + " expects a value");
        value = argv[++i];
      }
    }
    // Validate eagerly so errors carry the flag name.
    switch (flag.type) {
      case Type::kInt: {
        char* end = nullptr;
        (void)std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          throw ConfigError("flag --" + arg + " expects an integer, got '" + value + "'");
        }
        break;
      }
      case Type::kDouble: {
        char* end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          throw ConfigError("flag --" + arg + " expects a number, got '" + value + "'");
        }
        break;
      }
      case Type::kBool: {
        const std::string v = toLower(value);
        if (v != "true" && v != "false" && v != "1" && v != "0" && v != "yes" && v != "no") {
          throw ConfigError("flag --" + arg + " expects a boolean, got '" + value + "'");
        }
        break;
      }
      case Type::kString:
        break;
    }
    flag.value = value;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name, Type expected) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw ConfigError("flag --" + name + " was never declared");
  CASCHED_CHECK(it->second.type == expected, "flag type mismatch for --" + name);
  return it->second;
}

std::string ArgParser::getString(const std::string& name) const {
  return find(name, Type::kString).value;
}

std::int64_t ArgParser::getInt(const std::string& name) const {
  return std::strtoll(find(name, Type::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::getDouble(const std::string& name) const {
  return std::strtod(find(name, Type::kDouble).value.c_str(), nullptr);
}

bool ArgParser::getBool(const std::string& name) const {
  const std::string v = toLower(find(name, Type::kBool).value);
  return v == "true" || v == "1" || v == "yes";
}

std::string ArgParser::usage() const {
  std::string out = programName_ + " - " + description_ + "\n\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    out += strformat("  --%-24s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                     f.defaultValue.empty() ? "\"\"" : f.defaultValue.c_str());
  }
  return out;
}

}  // namespace casched::util
