#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::setLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
bool Log::enabled(LogLevel level) { return static_cast<int>(level) >= static_cast<int>(Log::level()); }

std::mutex& Log::mutex() {
  static std::mutex m;
  return m;
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex());
  std::cerr << "[" << tag(level) << "] " << message << "\n";
}

LogLevel parseLogLevel(const std::string& name) {
  const std::string n = toLower(name);
  if (n == "trace") return LogLevel::kTrace;
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  throw ConfigError("unknown log level '" + name + "'");
}

namespace detail {
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg) {
  throw Error(strformat("invariant violated: %s (%s) at %s:%d", msg.c_str(), expr, file, line));
}
}  // namespace detail

}  // namespace casched::util
