#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

std::string formatLogLine(LogLevel level, const std::string& component,
                          const std::string& message,
                          std::chrono::system_clock::time_point when) {
  const std::time_t seconds = std::chrono::system_clock::to_time_t(when);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          when.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return std::string(stamp) + " [" + tag(level) + "] [" + component + "] " + message;
}

void Log::setLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
bool Log::enabled(LogLevel level) { return static_cast<int>(level) >= static_cast<int>(Log::level()); }

std::mutex& Log::mutex() {
  static std::mutex m;
  return m;
}

void Log::write(LogLevel level, const std::string& component, const std::string& message) {
  const std::string line =
      formatLogLine(level, component, message, std::chrono::system_clock::now());
  std::lock_guard<std::mutex> lock(mutex());
  std::cerr << line << "\n";
}

void Log::write(LogLevel level, const std::string& message) {
  write(level, "casched", message);
}

LogLevel parseLogLevel(const std::string& name) {
  const std::string n = toLower(name);
  if (n == "trace") return LogLevel::kTrace;
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  throw ConfigError("unknown log level '" + name +
                    "' (valid: trace, debug, info, warn, error, off)");
}

namespace detail {
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg) {
  throw Error(strformat("invariant violated: %s (%s) at %s:%d", msg.c_str(), expr, file, line));
}
}  // namespace detail

}  // namespace casched::util
