#pragma once
/// \file small_fn.hpp
/// Move-only callable wrapper with a large inline buffer.
///
/// libstdc++'s std::function only stores captures up to two pointers inline;
/// anything bigger (e.g. a lambda capturing a TaskInstance by value, ~100
/// bytes) heap-allocates on every construction. The simulator schedules one
/// callback per event, so that allocation is pure hot-path churn. SmallFn
/// trades object size for allocation-free storage: captures up to
/// kInlineBytes live in the event arena itself, larger ones (rare: churn
/// timeline events carrying strings) fall back to the heap.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace casched::util {

template <typename Signature>
class SmallFn;

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  /// Sized so the agent's dispatch lambda (this + a TaskInstance copy) and
  /// the client's submission lambda fit inline.
  static constexpr std::size_t kInlineBytes = 120;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  SmallFn(SmallFn&& other) noexcept { moveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) { return f.ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the stored callable into `dst` from `src`, then
    /// destroys the `src` copy (one-shot relocation for SmallFn's own move).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p, Args&&... args) -> R {
        return (*std::launder(static_cast<Fn*>(p)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p, Args&&... args) -> R {
        return (**std::launder(static_cast<Fn**>(p)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn** from = std::launder(static_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
        *from = nullptr;
      },
      [](void* p) { delete *std::launder(static_cast<Fn**>(p)); },
  };

  void moveFrom(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace casched::util
