#pragma once
/// \file error.hpp
/// Error types and assertion helpers shared by every casched module.

#include <stdexcept>
#include <string>

namespace casched::util {

/// Base class for all casched errors. Thrown for programming errors and
/// malformed inputs; simulation-level failures (task failure, server collapse)
/// are modelled as data, not exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Raised when decoding a wire message fails (truncated / corrupt frame).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode error: " + what) {}
};

/// Raised on I/O failures (sockets, files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace casched::util

/// Always-on invariant check (active in Release too; simulation correctness
/// depends on these and their cost is negligible next to the event loop).
#define CASCHED_CHECK(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::casched::util::detail::assertFail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                         \
  } while (false)
