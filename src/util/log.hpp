#pragma once
/// \file log.hpp
/// Minimal leveled logger. Simulation code logs through this so experiment
/// binaries can silence or redirect diagnostics; it is thread-safe because the
/// replication runner executes simulations concurrently.

#include <mutex>
#include <sstream>
#include <string>

namespace casched::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log configuration. Defaults to kWarn so tests and benches stay quiet.
class Log {
 public:
  static void setLevel(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);

  /// Emits one line, prefixed with the level tag, to stderr.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::mutex& mutex();
};

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off".
LogLevel parseLogLevel(const std::string& name);

}  // namespace casched::util

#define CASCHED_LOG(levelEnum, streamExpr)                                  \
  do {                                                                      \
    if (::casched::util::Log::enabled(levelEnum)) {                         \
      std::ostringstream casched_log_oss;                                   \
      casched_log_oss << streamExpr;                                        \
      ::casched::util::Log::write(levelEnum, casched_log_oss.str());        \
    }                                                                       \
  } while (false)

#define LOG_TRACE(s) CASCHED_LOG(::casched::util::LogLevel::kTrace, s)
#define LOG_DEBUG(s) CASCHED_LOG(::casched::util::LogLevel::kDebug, s)
#define LOG_INFO(s) CASCHED_LOG(::casched::util::LogLevel::kInfo, s)
#define LOG_WARN(s) CASCHED_LOG(::casched::util::LogLevel::kWarn, s)
#define LOG_ERROR(s) CASCHED_LOG(::casched::util::LogLevel::kError, s)
