#pragma once
/// \file log.hpp
/// Minimal leveled logger. Simulation code logs through this so experiment
/// binaries can silence or redirect diagnostics; it is thread-safe because the
/// replication runner executes simulations concurrently. Every line carries an
/// ISO-8601 UTC wall-clock timestamp, the level tag and a component tag:
///   2003-04-22T09:15:00.000Z [WARN ] [net.agent] message
/// A translation unit picks its component tag by redefining
/// CASCHED_LOG_COMPONENT after its includes; the default is "casched".

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>

namespace casched::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// One fully formatted line (no trailing newline); split out from the writer
/// so tests can lock the format against a known time point.
std::string formatLogLine(LogLevel level, const std::string& component,
                          const std::string& message,
                          std::chrono::system_clock::time_point when);

/// Global log configuration. Defaults to kWarn so tests and benches stay quiet.
class Log {
 public:
  static void setLevel(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level);

  /// Emits one line - timestamp, level tag, component tag, message - to
  /// stderr.
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
  /// Component-less overload (tagged "casched").
  static void write(LogLevel level, const std::string& message);

 private:
  static std::mutex& mutex();
};

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"; throws
/// ConfigError enumerating the valid names on anything else.
LogLevel parseLogLevel(const std::string& name);

}  // namespace casched::util

/// Default component tag; a .cpp file overrides it (after its includes) with
///   #undef CASCHED_LOG_COMPONENT
///   #define CASCHED_LOG_COMPONENT "net.agent"
/// The macro is expanded at each log call site, so the redefinition applies
/// to every LOG_* below it in that translation unit.
#ifndef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "casched"
#endif

#define CASCHED_LOG(levelEnum, streamExpr)                                  \
  do {                                                                      \
    if (::casched::util::Log::enabled(levelEnum)) {                         \
      std::ostringstream casched_log_oss;                                   \
      casched_log_oss << streamExpr;                                        \
      ::casched::util::Log::write(levelEnum, CASCHED_LOG_COMPONENT,         \
                                  casched_log_oss.str());                   \
    }                                                                       \
  } while (false)

#define LOG_TRACE(s) CASCHED_LOG(::casched::util::LogLevel::kTrace, s)
#define LOG_DEBUG(s) CASCHED_LOG(::casched::util::LogLevel::kDebug, s)
#define LOG_INFO(s) CASCHED_LOG(::casched::util::LogLevel::kInfo, s)
#define LOG_WARN(s) CASCHED_LOG(::casched::util::LogLevel::kWarn, s)
#define LOG_ERROR(s) CASCHED_LOG(::casched::util::LogLevel::kError, s)
