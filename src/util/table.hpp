#pragma once
/// \file table.hpp
/// ASCII table renderer used to print the paper's tables (Tables 1-8) in a
/// layout close to the original publication.

#include <iosfwd>
#include <string>
#include <vector>

namespace casched::util {

enum class Align { kLeft, kRight, kCenter };

/// Column-oriented table builder.
///
/// Usage:
///   TablePrinter t("Table 5. results for 1/lambda = 45s");
///   t.setHeader({"", "MCT", "HMCT", "MP", "MSF"});
///   t.addRow({"makespan", "9906", "9908", "10162", "9905"});
///   t.print(std::cout);
class TablePrinter {
 public:
  TablePrinter() = default;
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void setTitle(std::string title) { title_ = std::move(title); }
  void setHeader(std::vector<std::string> header);
  /// Default alignment is right for every column except the first (left).
  void setAlignments(std::vector<Align> aligns) { aligns_ = std::move(aligns); }
  void addRow(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void addRule();

  std::size_t rowCount() const { return rows_.size(); }
  std::string render() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;  // horizontal separator instead of content
  };

  std::vector<std::size_t> columnWidths() const;
  static std::string pad(const std::string& s, std::size_t width, Align a);

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace casched::util
