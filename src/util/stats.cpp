#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace casched::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }
double RunningStat::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStat::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  RunningStat rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return s;
}

double percentile(std::vector<double> values, double p) {
  CASCHED_CHECK(!values.empty(), "percentile of empty sample");
  CASCHED_CHECK(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double confidenceHalfWidth95(const RunningStat& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

}  // namespace casched::util
