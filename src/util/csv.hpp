#pragma once
/// \file csv.hpp
/// CSV emission for every bench (machine-readable twin of the ASCII tables).

#include <string>
#include <vector>

namespace casched::util {

/// Builds an RFC-4180-ish CSV document in memory, then writes it to a file.
/// Cells containing separators/quotes/newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);
  std::size_t rowCount() const { return rows_.size(); }

  std::string render() const;

  /// Writes to `path`, creating parent directories if needed.
  void writeFile(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text produced by CsvWriter (used by metatask save/load).
std::vector<std::vector<std::string>> parseCsv(const std::string& text);

}  // namespace casched::util
