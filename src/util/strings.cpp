#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace casched::util {

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args2);
    throw Error("strformat: invalid format string");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string formatNumber(double v, int prec) {
  if (std::isnan(v)) return "-";
  const double rounded = std::round(v);
  if (std::abs(v - rounded) < 1e-9 && std::abs(v) < 1e15) {
    return strformat("%.0f", rounded);
  }
  return strformat("%.*f", prec, v);
}

std::string repeated(char c, std::size_t n) { return std::string(n, c); }

}  // namespace casched::util
