#pragma once
/// \file rng.hpp
/// Deterministic random streams. Every experiment is reproducible from one
/// master seed; independent concerns (arrival dates, task types, noise, each
/// replication) get independent streams derived with splitmix64 so adding a
/// consumer never perturbs another stream's draws.

#include <cstdint>
#include <vector>

namespace casched::simcore {

/// splitmix64 step; also used to derive child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a child seed from (master, streamId). Distinct streamIds give
/// statistically independent streams.
std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t streamId);

/// xoshiro256** - fast, high-quality PRNG; satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()();

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t nextBelow(std::uint64_t bound);

 private:
  std::uint64_t s_[4];
};

/// Named distribution helpers bound to a generator.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : gen_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given MEAN (the paper parameterizes arrivals by the
  /// mean inter-arrival time 1/lambda, e.g. 45 s or 30 s).
  double exponentialMean(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// Index drawn from (unnormalized, non-negative) weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// True with probability p.
  bool bernoulli(double p);

  Xoshiro256& generator() { return gen_; }

 private:
  Xoshiro256 gen_;
  bool haveSpareNormal_ = false;
  double spareNormal_ = 0.0;
};

}  // namespace casched::simcore
