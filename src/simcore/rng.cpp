#include "simcore/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace casched::simcore {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t streamId) {
  std::uint64_t state = master ^ (0xA0761D6478BD642FULL * (streamId + 1));
  std::uint64_t out = splitmix64(state);
  // A second scramble round decorrelates adjacent streamIds.
  return splitmix64(state) ^ (out << 1);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::nextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::nextBelow(std::uint64_t bound) {
  CASCHED_CHECK(bound > 0, "nextBelow(0)");
  // Lemire's nearly-divisionless unbiased reduction.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double RandomStream::uniform(double lo, double hi) {
  CASCHED_CHECK(lo <= hi, "uniform: lo > hi");
  return lo + (hi - lo) * gen_.nextDouble();
}

std::int64_t RandomStream::uniformInt(std::int64_t lo, std::int64_t hi) {
  CASCHED_CHECK(lo <= hi, "uniformInt: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(gen_.nextBelow(span));
}

double RandomStream::exponentialMean(double mean) {
  CASCHED_CHECK(mean > 0.0, "exponentialMean: non-positive mean");
  double u = gen_.nextDouble();
  // Guard against log(0); nextDouble() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RandomStream::normal(double mean, double stddev) {
  if (haveSpareNormal_) {
    haveSpareNormal_ = false;
    return mean + stddev * spareNormal_;
  }
  double u, v, s;
  do {
    u = 2.0 * gen_.nextDouble() - 1.0;
    v = 2.0 * gen_.nextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spareNormal_ = v * factor;
  haveSpareNormal_ = true;
  return mean + stddev * u * factor;
}

std::size_t RandomStream::discrete(const std::vector<double>& weights) {
  CASCHED_CHECK(!weights.empty(), "discrete: empty weights");
  double total = 0.0;
  for (double w : weights) {
    CASCHED_CHECK(w >= 0.0, "discrete: negative weight");
    total += w;
  }
  CASCHED_CHECK(total > 0.0, "discrete: all-zero weights");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

bool RandomStream::bernoulli(double p) {
  CASCHED_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return gen_.nextDouble() < p;
}

}  // namespace casched::simcore
