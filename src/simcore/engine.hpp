#pragma once
/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// Events are (time, sequence) ordered; the sequence number makes simultaneous
/// events fire in scheduling order, so runs are bit-reproducible.
///
/// Storage is a pooled arena: each event lives in a recycled slot, callbacks
/// are held in a SmallFn (captures up to ~120 bytes stay inline in the slot),
/// and the ready order is an indexed 4-ary min-heap of slot numbers. Steady
/// state schedules, cancels and fires events without touching the heap
/// allocator, and cancellation is a true O(log n) removal through
/// generation-tagged handles - no lazy-deletion sets to purge.

#include <cstdint>
#include <vector>

#include "simcore/time.hpp"
#include "util/small_fn.hpp"

namespace casched::simcore {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Encodes (slot, generation): a recycled slot bumps its
/// generation, so stale handles can never cancel an unrelated later event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Discrete-event simulator. Single-threaded by design: one simulation per
/// engine; the experiment layer parallelizes across engines.
class Simulator {
 public:
  using Callback = util::SmallFn<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (>= now). Returns a cancellable
  /// handle.
  EventHandle scheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (>= 0).
  EventHandle scheduleAfter(SimTime delay, Callback cb);

  /// Cancels a pending event; no-op when the event already fired or was
  /// cancelled. Returns true when something was cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue drains or `until` is reached (events at exactly
  /// `until` still fire). Returns the number of events executed.
  std::uint64_t run(SimTime until = kTimeInfinity);

  /// Executes at most one event; returns false when the queue is empty or the
  /// head is beyond `until`.
  bool step(SimTime until = kTimeInfinity);

  /// Runs every event due up to `t`, then moves the clock forward to `t` even
  /// when no event lands exactly there. This is how the distributed runtime
  /// slaves a simulator to the wall clock: each daemon pump advances its
  /// engine to the scaled wall time. Times before `now` are a no-op.
  std::uint64_t advanceTo(SimTime t);

  /// Requests run() to return after the current event completes.
  void requestStop() { stopRequested_ = true; }

  bool empty() const { return heap_.empty(); }
  std::size_t pendingEvents() const { return heap_.size(); }
  std::uint64_t executedEvents() const { return executed_; }

  /// Time of the earliest pending event, or kTimeInfinity.
  SimTime nextEventTime() const {
    return heap_.empty() ? kTimeInfinity : pool_[heap_[0]].time;
  }

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  struct Event {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // tie-break: FIFO among simultaneous events
    std::uint32_t gen = 0;  // bumped on release; invalidates old handles
    std::uint32_t heapPos = kNotInHeap;
    Callback cb;
  };

  /// Fires-before order: earlier time, then earlier sequence number.
  bool before(std::uint32_t a, std::uint32_t b) const {
    const Event& ea = pool_[a];
    const Event& eb = pool_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.seq < eb.seq;
  }

  void siftUp(std::uint32_t pos);
  void siftDown(std::uint32_t pos);
  void heapPlace(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    pool_[slot].heapPos = pos;
  }
  /// Detaches the slot at heap position `pos` and restores the heap order.
  void heapRemove(std::uint32_t pos);
  /// Returns the slot to the free list and invalidates outstanding handles.
  void release(std::uint32_t slot);

  /// Handle layout: (slot + 1) in the high 32 bits (so id 0 stays the
  /// explicit "no event" value), generation in the low 32.
  static std::uint64_t packHandle(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
  }

  std::vector<Event> pool_;
  std::vector<std::uint32_t> free_;  // recycled pool slots
  std::vector<std::uint32_t> heap_;  // 4-ary min-heap of pending slots
  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopRequested_ = false;
};

}  // namespace casched::simcore
