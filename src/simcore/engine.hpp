#pragma once
/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// Events are (time, sequence) ordered; the sequence number makes simultaneous
/// events fire in scheduling order, so runs are bit-reproducible. Events can
/// be cancelled through handles; cancellation is O(1) (lazy deletion).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/time.hpp"

namespace casched::simcore {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Discrete-event simulator. Single-threaded by design: one simulation per
/// engine; the experiment layer parallelizes across engines.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (>= now). Returns a cancellable
  /// handle.
  EventHandle scheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (>= 0).
  EventHandle scheduleAfter(SimTime delay, Callback cb);

  /// Cancels a pending event; no-op when the event already fired or was
  /// cancelled. Returns true when something was cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue drains or `until` is reached (events at exactly
  /// `until` still fire). Returns the number of events executed.
  std::uint64_t run(SimTime until = kTimeInfinity);

  /// Executes at most one event; returns false when the queue is empty or the
  /// head is beyond `until`.
  bool step(SimTime until = kTimeInfinity);

  /// Runs every event due up to `t`, then moves the clock forward to `t` even
  /// when no event lands exactly there. This is how the distributed runtime
  /// slaves a simulator to the wall clock: each daemon pump advances its
  /// engine to the scaled wall time. Times before `now` are a no-op.
  std::uint64_t advanceTo(SimTime t);

  /// Requests run() to return after the current event completes.
  void requestStop() { stopRequested_ = true; }

  bool empty() const { return pending_.empty(); }
  std::size_t pendingEvents() const { return pending_.size(); }
  std::uint64_t executedEvents() const { return executed_; }

  /// Time of the earliest pending event, or kTimeInfinity.
  SimTime nextEventTime() const;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;    // tie-break: FIFO among simultaneous events
    std::uint64_t id;     // handle identity for cancellation
    Callback cb;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void purgeCancelledHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_;             // ids not yet fired/cancelled
  mutable std::unordered_set<std::uint64_t> cancelled_;   // lazy deletion set
  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t nextId_ = 1;
  std::uint64_t executed_ = 0;
  bool stopRequested_ = false;
};

}  // namespace casched::simcore
