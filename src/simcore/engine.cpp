#include "simcore/engine.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::simcore {

EventHandle Simulator::scheduleAt(SimTime at, Callback cb) {
  CASCHED_CHECK(cb != nullptr, "scheduleAt: null callback");
  // Tolerate tiny negative drift from floating-point arithmetic on completion
  // dates but reject genuinely past times.
  if (at < now_) {
    CASCHED_CHECK(timeAlmostEqual(at, now_),
                  util::strformat("scheduleAt: time %.9f is before now %.9f", at, now_));
    at = now_;
  }
  const std::uint64_t id = nextId_++;
  queue_.push(Entry{at, nextSeq_++, id, std::move(cb)});
  pending_.insert(id);
  return EventHandle{id};
}

EventHandle Simulator::scheduleAfter(SimTime delay, Callback cb) {
  CASCHED_CHECK(delay >= 0.0, "scheduleAfter: negative delay");
  return scheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (pending_.erase(handle.id) == 0) return false;  // already fired/cancelled
  cancelled_.insert(handle.id);
  return true;
}

void Simulator::purgeCancelledHead() const {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

SimTime Simulator::nextEventTime() const {
  purgeCancelledHead();
  return queue_.empty() ? kTimeInfinity : queue_.top().time;
}

bool Simulator::step(SimTime until) {
  purgeCancelledHead();
  if (queue_.empty() || queue_.top().time > until) return false;
  // Move the callback out before popping so self-rescheduling callbacks work.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  CASCHED_CHECK(entry.time >= now_, "event queue went backwards in time");
  now_ = entry.time;
  pending_.erase(entry.id);
  ++executed_;
  entry.cb();
  return true;
}

std::uint64_t Simulator::run(SimTime until) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && step(until)) ++n;
  if (until != kTimeInfinity && now_ < until && nextEventTime() > until) {
    now_ = until;  // advance the clock to the horizon even with no event there
  }
  return n;
}

std::uint64_t Simulator::advanceTo(SimTime t) {
  if (t <= now_) return 0;
  return run(t);
}

}  // namespace casched::simcore
