#include "simcore/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::simcore {

EventHandle Simulator::scheduleAt(SimTime at, Callback cb) {
  CASCHED_CHECK(cb != nullptr, "scheduleAt: null callback");
  // Tolerate tiny negative drift from floating-point arithmetic on completion
  // dates but reject genuinely past times.
  if (at < now_) {
    CASCHED_CHECK(timeAlmostEqual(at, now_),
                  util::strformat("scheduleAt: time %.9f is before now %.9f", at, now_));
    at = now_;
  }
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Event& ev = pool_[slot];
  ev.time = at;
  ev.seq = nextSeq_++;
  ev.cb = std::move(cb);
  const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  ev.heapPos = pos;
  siftUp(pos);
  return EventHandle{packHandle(slot, ev.gen)};
}

EventHandle Simulator::scheduleAfter(SimTime delay, Callback cb) {
  CASCHED_CHECK(delay >= 0.0, "scheduleAfter: negative delay");
  return scheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((handle.id >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(handle.id);
  if (slot >= pool_.size()) return false;
  Event& ev = pool_[slot];
  if (ev.gen != gen || ev.heapPos == kNotInHeap) return false;  // fired/cancelled
  heapRemove(ev.heapPos);
  release(slot);
  return true;
}

void Simulator::siftUp(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(slot, heap_[parent])) break;
    heapPlace(pos, heap_[parent]);
    pos = parent;
  }
  heapPlace(pos, slot);
}

void Simulator::siftDown(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t first = pos * 4 + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t last = std::min(first + 4, n);
    for (std::uint32_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], slot)) break;
    heapPlace(pos, heap_[best]);
    pos = best;
  }
  heapPlace(pos, slot);
}

void Simulator::heapRemove(std::uint32_t pos) {
  pool_[heap_[pos]].heapPos = kNotInHeap;
  const std::uint32_t lastSlot = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  heapPlace(pos, lastSlot);
  // The moved slot may need to go either way relative to its new neighbors.
  siftUp(pos);
  siftDown(pool_[lastSlot].heapPos);
}

void Simulator::release(std::uint32_t slot) {
  Event& ev = pool_[slot];
  ++ev.gen;
  ev.heapPos = kNotInHeap;
  ev.cb.reset();
  free_.push_back(slot);
}

bool Simulator::step(SimTime until) {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0];
  Event& ev = pool_[slot];
  if (ev.time > until) return false;
  CASCHED_CHECK(ev.time >= now_, "event queue went backwards in time");
  now_ = ev.time;
  // Move the callback out and free the slot BEFORE invoking: the callback may
  // schedule new events (reusing this slot) or re-enter the engine.
  Callback cb = std::move(ev.cb);
  heapRemove(0);
  release(slot);
  ++executed_;
  cb();
  return true;
}

std::uint64_t Simulator::run(SimTime until) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && step(until)) ++n;
  if (until != kTimeInfinity && now_ < until && nextEventTime() > until) {
    now_ = until;  // advance the clock to the horizon even with no event there
  }
  return n;
}

std::uint64_t Simulator::advanceTo(SimTime t) {
  if (t <= now_) return 0;
  return run(t);
}

}  // namespace casched::simcore
