#pragma once
/// \file time.hpp
/// Simulation time. The paper works in wall-clock seconds; we keep time as a
/// double (seconds since experiment start) with helpers for tolerant
/// comparison, since equal-share completion dates are computed analytically.

#include <cmath>
#include <limits>

namespace casched::simcore {

using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Absolute-plus-relative tolerance comparison for completion dates.
inline bool timeAlmostEqual(SimTime a, SimTime b, double tol = 1e-7) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

}  // namespace casched::simcore
