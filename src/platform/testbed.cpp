#include "platform/testbed.hpp"

#include "platform/machine_catalog.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::platform {

psched::MachineSpec buildPaperMachine(const std::string& name) {
  const auto info = findMachine(name);
  CASCHED_CHECK(info.has_value(), "machine '" + name + "' is not in the catalog");
  const LinkCalibration link = calibrateLink(name);
  psched::MachineSpec spec;
  spec.name = info->name;
  spec.cpuModel = info->cpuModel;
  spec.cpuMHz = info->cpuMHz;
  spec.ramMB = info->ramMB;
  spec.swapMB = info->swapMB;
  spec.bwInMBps = link.bwInMBps;
  spec.bwOutMBps = link.bwOutMBps;
  spec.latencyIn = link.latencyIn;
  spec.latencyOut = link.latencyOut;
  return spec;
}

namespace {
Testbed buildNamedSet(std::string name, const std::vector<std::string>& servers) {
  Testbed bed;
  bed.name = std::move(name);
  for (const std::string& s : servers) {
    bed.servers.push_back(buildPaperMachine(s));
  }
  bed.costs = paperCostModel();
  return bed;
}
}  // namespace

Testbed buildSet1() {
  return buildNamedSet("set1", {"chamagne", "pulney", "cabestan", "artimon"});
}

Testbed buildSet2() {
  return buildNamedSet("set2", {"valette", "spinnaker", "cabestan", "artimon"});
}

Testbed buildUniform(std::size_t n, double bwMBps, double latency) {
  CASCHED_CHECK(n > 0, "uniform testbed needs at least one server");
  Testbed bed;
  bed.name = util::strformat("uniform-%zu", n);
  for (std::size_t i = 0; i < n; ++i) {
    psched::MachineSpec spec;
    spec.name = util::strformat("server-%zu", i);
    spec.bwInMBps = bwMBps;
    spec.bwOutMBps = bwMBps;
    spec.latencyIn = latency;
    spec.latencyOut = latency;
    bed.servers.push_back(std::move(spec));
  }
  return bed;
}

}  // namespace casched::platform
