#pragma once
/// \file calibration.hpp
/// Cost calibration. The paper placed measured per-(machine, problem) costs
/// into the NetSolve agent as static information (Tables 3-4); this module
/// carries those published numbers and derives link bandwidths from them.
///
/// CostModel keys costs by (machine name, task-type name) strings so it stays
/// independent of the workload module; unknown pairs fall back to
/// refSeconds / speedIndex(machine).

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace casched::platform {

/// Per-machine link parameters derived from the paper's transfer-cost rows.
struct LinkCalibration {
  double bwInMBps = 8.0;
  double bwOutMBps = 8.0;
  double latencyIn = 0.05;
  double latencyOut = 0.05;
};

/// Static compute-cost database plus generic speed fallback.
class CostModel {
 public:
  /// Registers an exact unloaded compute cost (seconds).
  void setComputeCost(const std::string& machine, const std::string& typeName,
                      double seconds);

  /// Exact entry if present.
  std::optional<double> lookupCost(const std::string& machine,
                                   const std::string& typeName) const;

  /// Relative speed for machines without exact entries (1.0 = reference).
  void setSpeedIndex(const std::string& machine, double index);
  double speedIndex(const std::string& machine) const;

  /// Unloaded compute seconds of a task on a machine: exact entry when
  /// available, otherwise refSeconds / speedIndex.
  double computeCost(const std::string& machine, const std::string& typeName,
                     double refSeconds) const;

  std::size_t entryCount() const { return costs_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, double> costs_;
  std::map<std::string, double> speed_;
};

/// Paper Table 3 / Table 4 as structured data (publication column order).
struct PhaseCostTable {
  std::vector<std::string> machines;
  std::vector<int> params;                          ///< sizes or parameters
  std::vector<std::vector<double>> inputSeconds;    ///< [param][machine]
  std::vector<std::vector<double>> computeSeconds;  ///< [param][machine]
  std::vector<std::vector<double>> outputSeconds;   ///< [param][machine]
};

/// Table 3: multiplication tasks' needs on chamagne/cabestan/artimon/pulney.
const PhaseCostTable& matmulCostTable();

/// Table 4: waste-cpu tasks' needs on valette/spinnaker/cabestan/artimon.
const PhaseCostTable& wasteCpuCostTable();

/// Input/output data volumes of a matmul size (paper Table 3 memory column).
double matmulInputMB(int size);
double matmulOutputMB(int size);

/// Link parameters for a paper machine, least-squares fit of the transfer
/// rows (volume / (time - latency), averaged across sizes).
LinkCalibration calibrateLink(const std::string& machine);

/// Cost model loaded with every entry of Tables 3 and 4 plus speed indices
/// for the six servers (relative to artimon).
CostModel paperCostModel();

}  // namespace casched::platform
