#include "platform/machine_catalog.hpp"

namespace casched::platform {

const std::vector<MachineInfo>& machineCatalog() {
  // Paper Table 2. "Mo" in the paper is MB; 1 Go = 1024 MB.
  static const std::vector<MachineInfo> catalog = {
      {"chamagne", "pentium II", 330, 512.0, 134.0, MachineRole::kServer},
      {"cabestan", "pentium III", 500, 192.0, 400.0, MachineRole::kServer},
      {"artimon", "pentium IV", 1700, 512.0, 1024.0, MachineRole::kServer},
      {"pulney", "xeon", 1400, 256.0, 533.0, MachineRole::kServer},
      {"valette", "pentium II", 400, 128.0, 126.0, MachineRole::kServer},
      {"spinnaker", "xeon", 2000, 1024.0, 2048.0, MachineRole::kServer},
      {"xrousse", "pentium II bipro", 400, 512.0, 512.0, MachineRole::kAgent},
      {"zanzibar", "pentium III", 550, 256.0, 500.0, MachineRole::kClient},
  };
  return catalog;
}

std::optional<MachineInfo> findMachine(const std::string& name) {
  for (const MachineInfo& m : machineCatalog()) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

std::string roleName(MachineRole role) {
  switch (role) {
    case MachineRole::kServer: return "server";
    case MachineRole::kAgent: return "agent";
    case MachineRole::kClient: return "client";
  }
  return "?";
}

}  // namespace casched::platform
