#pragma once
/// \file testbed.hpp
/// Testbed presets: the two server sets of the paper's experiments plus a
/// generic uniform platform for tests and examples.

#include <string>
#include <vector>

#include "platform/calibration.hpp"
#include "psched/machine.hpp"

namespace casched::platform {

/// A ready-to-instantiate platform: server machine specs + middleware
/// parameters + the static cost database the agent is given.
struct Testbed {
  std::string name;
  std::vector<psched::MachineSpec> servers;
  CostModel costs;
  /// One-way client<->agent and agent<->server message latency (scheduling
  /// RPCs and notifications; bulk data moves over the server links instead).
  double controlLatency = 0.005;
};

/// First experiment set (paper section 5.1): servers chamagne, pulney,
/// cabestan, artimon; client zanzibar; agent xrousse.
Testbed buildSet1();

/// Second experiment set (paper section 5.2): servers valette, spinnaker,
/// cabestan, artimon.
Testbed buildSet2();

/// Builds the MachineSpec of one catalog machine with calibrated links.
psched::MachineSpec buildPaperMachine(const std::string& name);

/// n identical servers (speed index 1.0, ample memory) for tests/examples.
Testbed buildUniform(std::size_t n, double bwMBps = 10.0, double latency = 0.01);

}  // namespace casched::platform
