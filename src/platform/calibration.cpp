#include "platform/calibration.hpp"

#include <cmath>

#include "util/error.hpp"

namespace casched::platform {

void CostModel::setComputeCost(const std::string& machine, const std::string& typeName,
                               double seconds) {
  CASCHED_CHECK(seconds > 0.0, "compute cost must be positive");
  costs_[{machine, typeName}] = seconds;
}

std::optional<double> CostModel::lookupCost(const std::string& machine,
                                            const std::string& typeName) const {
  auto it = costs_.find({machine, typeName});
  if (it == costs_.end()) return std::nullopt;
  return it->second;
}

void CostModel::setSpeedIndex(const std::string& machine, double index) {
  CASCHED_CHECK(index > 0.0, "speed index must be positive");
  speed_[machine] = index;
}

double CostModel::speedIndex(const std::string& machine) const {
  auto it = speed_.find(machine);
  return it == speed_.end() ? 1.0 : it->second;
}

double CostModel::computeCost(const std::string& machine, const std::string& typeName,
                              double refSeconds) const {
  if (auto exact = lookupCost(machine, typeName)) return *exact;
  CASCHED_CHECK(refSeconds > 0.0,
                "no calibrated cost for '" + typeName + "' on '" + machine +
                    "' and no reference cost to fall back on");
  return refSeconds / speedIndex(machine);
}

const PhaseCostTable& matmulCostTable() {
  // Paper Table 3, columns chamagne / cabestan / artimon / pulney.
  static const PhaseCostTable table = {
      {"chamagne", "cabestan", "artimon", "pulney"},
      {1200, 1500, 1800},
      {{4, 4, 3, 3}, {6, 5, 5, 5}, {8, 8, 8, 7}},
      {{149, 70, 18, 14}, {292, 136, 33, 25}, {504, 231, 53, 40}},
      {{1, 1, 1, 1}, {2, 2, 1, 1}, {3, 3, 2, 2}},
  };
  return table;
}

const PhaseCostTable& wasteCpuCostTable() {
  // Paper Table 4, columns valette / spinnaker / cabestan / artimon.
  static const PhaseCostTable table = {
      {"valette", "spinnaker", "cabestan", "artimon"},
      {200, 400, 600},
      {{0.08, 0.09, 0.1, 0.12}, {0.08, 0.14, 0.09, 0.13}, {0.13, 0.09, 0.08, 0.14}},
      {{91.81, 16, 74.86, 17.1}, {182.52, 30.6, 148.48, 33.2}, {273.28, 45.6, 222.26, 49.4}},
      {{0.03, 0.05, 0.03, 0.03}, {0.03, 0.06, 0.03, 0.03}, {0.03, 0.05, 0.03, 0.03}},
  };
  return table;
}

double matmulInputMB(int size) {
  return 2.0 * static_cast<double>(size) * size * 8.0 / (1024.0 * 1024.0);
}

double matmulOutputMB(int size) {
  return static_cast<double>(size) * size * 8.0 / (1024.0 * 1024.0);
}

LinkCalibration calibrateLink(const std::string& machine) {
  LinkCalibration cal;
  const PhaseCostTable& mm = matmulCostTable();
  for (std::size_t m = 0; m < mm.machines.size(); ++m) {
    if (mm.machines[m] != machine) continue;
    double bwIn = 0.0, bwOut = 0.0;
    for (std::size_t p = 0; p < mm.params.size(); ++p) {
      const int size = mm.params[p];
      bwIn += matmulInputMB(size) / std::max(0.1, mm.inputSeconds[p][m] - cal.latencyIn);
      bwOut += matmulOutputMB(size) / std::max(0.1, mm.outputSeconds[p][m] - cal.latencyOut);
    }
    cal.bwInMBps = bwIn / static_cast<double>(mm.params.size());
    cal.bwOutMBps = bwOut / static_cast<double>(mm.params.size());
    return cal;
  }
  // Machines only in the waste-cpu set (valette, spinnaker) never move large
  // data in the paper; their sub-second transfer rows are latency-dominated,
  // so a nominal LAN calibration is used.
  cal.bwInMBps = 8.0;
  cal.bwOutMBps = 8.0;
  cal.latencyIn = 0.02;
  cal.latencyOut = 0.01;
  return cal;
}

CostModel paperCostModel() {
  CostModel model;
  const auto load = [&model](const PhaseCostTable& table, const char* prefix) {
    for (std::size_t p = 0; p < table.params.size(); ++p) {
      for (std::size_t m = 0; m < table.machines.size(); ++m) {
        model.setComputeCost(table.machines[m],
                             prefix + std::to_string(table.params[p]),
                             table.computeSeconds[p][m]);
      }
    }
  };
  load(matmulCostTable(), "matmul-");
  load(wasteCpuCostTable(), "waste-cpu-");
  // Speed indices relative to artimon (matmul-1200 where available, else
  // waste-cpu-200); used only for task types absent from the tables.
  model.setSpeedIndex("artimon", 1.0);
  model.setSpeedIndex("chamagne", 18.0 / 149.0);
  model.setSpeedIndex("cabestan", 18.0 / 70.0);
  model.setSpeedIndex("pulney", 18.0 / 14.0);
  model.setSpeedIndex("valette", 17.1 / 91.81);
  model.setSpeedIndex("spinnaker", 17.1 / 16.0);
  return model;
}

}  // namespace casched::platform
