#pragma once
/// \file machine_catalog.hpp
/// The paper's testbed machines (Table 2) as static data. The calibration
/// module turns these plus the cost tables (Tables 3-4) into runnable
/// psched::MachineSpec configurations.

#include <optional>
#include <string>
#include <vector>

namespace casched::platform {

enum class MachineRole { kServer, kAgent, kClient };

/// One row of the paper's Table 2.
struct MachineInfo {
  std::string name;
  std::string cpuModel;
  int cpuMHz = 0;
  double ramMB = 0.0;
  double swapMB = 0.0;
  MachineRole role = MachineRole::kServer;
};

/// All eight machines of Table 2, in publication order.
const std::vector<MachineInfo>& machineCatalog();

/// Catalog lookup by machine name; empty when unknown.
std::optional<MachineInfo> findMachine(const std::string& name);

/// Human-readable role name ("server" / "agent" / "client").
std::string roleName(MachineRole role);

}  // namespace casched::platform
