#include "wire/transport.hpp"

#include "util/strings.hpp"

namespace casched::wire {

void Transport::queue(MessageType type, Bytes payload) {
  queued_.emplace_back(type, std::move(payload));
}

std::size_t Transport::flushQueued() {
  if (queued_.empty()) return 0;
  std::vector<std::pair<MessageType, Bytes>> batch;
  batch.swap(queued_);
  if (closed()) return 0;

  std::size_t frames = 0;
  std::vector<Bytes> run;
  MessageType runType = MessageType::kSchemaHello;
  std::size_t runBytes = 0;
  auto emitRun = [&] {
    if (run.empty()) return;
    if (run.size() == 1) {
      send(runType, run.front());
    } else {
      send(MessageType::kCoalesced, buildCoalescedPayload(runType, run));
    }
    ++frames;
    run.clear();
    runBytes = 0;
  };

  for (auto& [type, payload] : batch) {
    if (!isCoalescableType(type)) {
      emitRun();
      send(type, payload);
      ++frames;
      continue;
    }
    const bool runFull = runBytes + payload.size() > kMaxCoalescedBatchBytes ||
                         run.size() >= kMaxCoalescedBatchCount;
    if (!run.empty() && (type != runType || runFull)) emitRun();
    runType = type;
    runBytes += payload.size();
    run.push_back(std::move(payload));
  }
  emitRun();
  return frames;
}

bool Transport::consumeHandshake(const Frame& frame) {
  if (frame.type != MessageType::kSchemaHello) {
    if (!peerVerified_) {
      throw FrameDecodeError(FrameError::kSchemaMismatch,
                             "peer sent " + messageTypeName(frame.type) +
                                 " before the schema handshake");
    }
    return false;
  }
  SchemaHelloMsg hello;
  try {
    hello = decodeSchemaHello(frame.payload);
  } catch (const util::DecodeError& e) {
    throw FrameDecodeError(FrameError::kSchemaMismatch,
                           std::string("malformed schema hello: ") + e.what());
  }
  if (hello.magic != kWireMagic) {
    throw FrameDecodeError(
        FrameError::kSchemaMismatch,
        util::strformat("bad handshake magic %08x (want %08x)", hello.magic,
                        kWireMagic));
  }
  if (hello.schemaHash != kSchemaHash) {
    throw FrameDecodeError(
        FrameError::kSchemaMismatch,
        util::strformat("schema hash mismatch: peer %016llx, ours %016llx "
                        "(peer protocol v%u, ours v%u)",
                        static_cast<unsigned long long>(hello.schemaHash),
                        static_cast<unsigned long long>(kSchemaHash),
                        static_cast<unsigned>(hello.protocolVersion),
                        static_cast<unsigned>(kProtocolVersion)));
  }
  peerVerified_ = true;
  return true;
}

std::pair<std::shared_ptr<LoopbackTransport>, std::shared_ptr<LoopbackTransport>>
LoopbackTransport::createPair(bool withHandshake) {
  auto shared = std::make_shared<Shared>();
  auto a = std::shared_ptr<LoopbackTransport>(new LoopbackTransport(shared, true));
  auto b = std::shared_ptr<LoopbackTransport>(new LoopbackTransport(shared, false));
  if (withHandshake) {
    const Bytes hello = buildFrame(MessageType::kSchemaHello, encode(SchemaHelloMsg{}));
    shared->aToB.push_back(hello);
    shared->bToA.push_back(hello);
  }
  return {a, b};
}

void LoopbackTransport::send(MessageType type, const Bytes& payload) {
  const Bytes frame = buildFrame(type, payload);
  std::lock_guard<std::mutex> lock(shared_->mutex);
  if (shared_->closed) return;
  (isA_ ? shared_->aToB : shared_->bToA).push_back(frame);
}

std::size_t LoopbackTransport::poll(const FrameFn& fn) {
  std::deque<Bytes> incoming;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    incoming.swap(isA_ ? shared_->bToA : shared_->aToB);
  }
  std::size_t delivered = 0;
  for (const Bytes& chunk : incoming) decoder_.feed(chunk);
  while (auto frame = decoder_.next()) {
    if (consumeHandshake(*frame)) continue;
    ++delivered;
    if (fn) fn(std::move(*frame));
  }
  return delivered;
}

bool LoopbackTransport::closed() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->closed;
}

void LoopbackTransport::close() {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->closed = true;
}

}  // namespace casched::wire
