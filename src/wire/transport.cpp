#include "wire/transport.hpp"

namespace casched::wire {

std::pair<std::shared_ptr<LoopbackTransport>, std::shared_ptr<LoopbackTransport>>
LoopbackTransport::createPair() {
  auto shared = std::make_shared<Shared>();
  auto a = std::shared_ptr<LoopbackTransport>(new LoopbackTransport(shared, true));
  auto b = std::shared_ptr<LoopbackTransport>(new LoopbackTransport(shared, false));
  return {a, b};
}

void LoopbackTransport::send(MessageType type, const Bytes& payload) {
  const Bytes frame = buildFrame(type, payload);
  std::lock_guard<std::mutex> lock(shared_->mutex);
  if (shared_->closed) return;
  (isA_ ? shared_->aToB : shared_->bToA).push_back(frame);
}

std::size_t LoopbackTransport::poll(const FrameFn& fn) {
  std::deque<Bytes> incoming;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    incoming.swap(isA_ ? shared_->bToA : shared_->aToB);
  }
  std::size_t delivered = 0;
  for (const Bytes& chunk : incoming) decoder_.feed(chunk);
  while (auto frame = decoder_.next()) {
    ++delivered;
    if (fn) fn(std::move(*frame));
  }
  return delivered;
}

bool LoopbackTransport::closed() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->closed;
}

void LoopbackTransport::close() {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->closed = true;
}

}  // namespace casched::wire
