#include "wire/messages.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace casched::wire {

std::string messageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kRegister: return "register";
    case MessageType::kRegisterAck: return "register-ack";
    case MessageType::kScheduleRequest: return "schedule-request";
    case MessageType::kScheduleReply: return "schedule-reply";
    case MessageType::kTaskSubmit: return "task-submit";
    case MessageType::kTaskComplete: return "task-complete";
    case MessageType::kTaskFailed: return "task-failed";
    case MessageType::kLoadReport: return "load-report";
    case MessageType::kServerDown: return "server-down";
    case MessageType::kServerUp: return "server-up";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kAgentHello: return "agent-hello";
    case MessageType::kAgentSync: return "agent-sync";
    case MessageType::kStatsRequest: return "stats-request";
    case MessageType::kStatsReply: return "stats-reply";
    case MessageType::kForwardRequest: return "forward-request";
    case MessageType::kForwardDeny: return "forward-deny";
    case MessageType::kScheduleDeny: return "schedule-deny";
    case MessageType::kStealRequest: return "steal-request";
    case MessageType::kStealGrant: return "steal-grant";
    case MessageType::kResolverProbe: return "resolver-probe";
    case MessageType::kResolverInfo: return "resolver-info";
    case MessageType::kSchemaHello: return "schema-hello";
    case MessageType::kCoalesced: return "coalesced";
  }
  return "unknown";
}

bool isKnownMessageType(std::uint16_t rawType) {
  return rawType >= static_cast<std::uint16_t>(MessageType::kRegister) &&
         rawType <= static_cast<std::uint16_t>(MessageType::kCoalesced);
}

bool isCoalescableType(MessageType type) {
  switch (type) {
    case MessageType::kScheduleRequest:
    case MessageType::kScheduleReply:
    case MessageType::kTaskSubmit:
    case MessageType::kTaskComplete:
    case MessageType::kTaskFailed:
    case MessageType::kLoadReport:
    case MessageType::kHeartbeat:
    case MessageType::kAgentSync:
      return true;
    default:
      return false;
  }
}

namespace {
void writeStringList(Writer& w, const std::vector<std::string>& v) {
  CASCHED_CHECK(v.size() <= 0xFFFFFFFFull, "list too long for wire format");
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::string& s : v) w.str(s);
}

/// Clamp a wire-supplied element count before reserve(): a corrupt frame
/// claiming 2^32 elements must fail with DecodeError when the payload runs
/// dry, not throw bad_alloc past the util::Error handlers and kill the
/// daemon. Every element consumes at least `minElemBytes` of payload.
std::size_t clampCount(std::uint32_t n, const Reader& r, std::size_t minElemBytes) {
  return std::min<std::size_t>(n, r.remaining() / minElemBytes);
}

std::vector<std::string> readStringList(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::string> v;
  v.reserve(clampCount(n, r, 4));  // a string is at least its u32 length prefix
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
  return v;
}
}  // namespace

Bytes encode(const RegisterMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  w.f64(m.bwInMBps);
  w.f64(m.bwOutMBps);
  w.f64(m.latencyIn);
  w.f64(m.latencyOut);
  w.f64(m.ramMB);
  w.f64(m.swapMB);
  w.f64(m.speedIndex);
  writeStringList(w, m.problems);
  return out;
}

RegisterMsg decodeRegister(const Bytes& payload) {
  Reader r(payload);
  RegisterMsg m;
  m.serverName = r.str();
  m.bwInMBps = r.f64();
  m.bwOutMBps = r.f64();
  m.latencyIn = r.f64();
  m.latencyOut = r.f64();
  m.ramMB = r.f64();
  m.swapMB = r.f64();
  m.speedIndex = r.f64();
  m.problems = readStringList(r);
  return m;
}

Bytes encode(const RegisterAckMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  w.u8(m.accepted ? 1 : 0);
  w.f64(m.agentTime);
  return out;
}

RegisterAckMsg decodeRegisterAck(const Bytes& payload) {
  Reader r(payload);
  RegisterAckMsg m;
  m.serverName = r.str();
  m.accepted = r.u8() != 0;
  m.agentTime = r.f64();
  return m;
}

Bytes encode(const ScheduleRequestMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.problem);
  w.f64(m.inMB);
  w.f64(m.outMB);
  w.f64(m.memMB);
  w.f64(m.refSeconds);
  return out;
}

ScheduleRequestMsg decodeScheduleRequest(const Bytes& payload) {
  Reader r(payload);
  ScheduleRequestMsg m;
  m.taskId = r.u64();
  m.problem = r.str();
  m.inMB = r.f64();
  m.outMB = r.f64();
  m.memMB = r.f64();
  m.refSeconds = r.f64();
  return m;
}

Bytes encode(const ScheduleReplyMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  writeStringList(w, m.servers);
  return out;
}

ScheduleReplyMsg decodeScheduleReply(const Bytes& payload) {
  Reader r(payload);
  ScheduleReplyMsg m;
  m.taskId = r.u64();
  m.servers = readStringList(r);
  return m;
}

Bytes encode(const TaskSubmitMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.problem);
  w.f64(m.inMB);
  w.f64(m.cpuSeconds);
  w.f64(m.outMB);
  w.f64(m.memMB);
  return out;
}

TaskSubmitMsg decodeTaskSubmit(const Bytes& payload) {
  Reader r(payload);
  TaskSubmitMsg m;
  m.taskId = r.u64();
  m.problem = r.str();
  m.inMB = r.f64();
  m.cpuSeconds = r.f64();
  m.outMB = r.f64();
  m.memMB = r.f64();
  return m;
}

Bytes encode(const TaskCompleteMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.serverName);
  w.f64(m.completionTime);
  w.f64(m.unloadedDuration);
  return out;
}

TaskCompleteMsg decodeTaskComplete(const Bytes& payload) {
  Reader r(payload);
  TaskCompleteMsg m;
  m.taskId = r.u64();
  m.serverName = r.str();
  m.completionTime = r.f64();
  m.unloadedDuration = r.f64();
  return m;
}

Bytes encode(const TaskFailedMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.serverName);
  w.str(m.reason);
  return out;
}

TaskFailedMsg decodeTaskFailed(const Bytes& payload) {
  Reader r(payload);
  TaskFailedMsg m;
  m.taskId = r.u64();
  m.serverName = r.str();
  m.reason = r.str();
  return m;
}

Bytes encode(const LoadReportMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  w.f64(m.loadAverage);
  w.f64(m.sampleTime);
  w.f64(m.residentMB);
  return out;
}

LoadReportMsg decodeLoadReport(const Bytes& payload) {
  Reader r(payload);
  LoadReportMsg m;
  m.serverName = r.str();
  m.loadAverage = r.f64();
  m.sampleTime = r.f64();
  m.residentMB = r.f64();
  return m;
}

Bytes encode(const ServerDownMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  return out;
}

ServerDownMsg decodeServerDown(const Bytes& payload) {
  Reader r(payload);
  ServerDownMsg m;
  m.serverName = r.str();
  return m;
}

Bytes encode(const ServerUpMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  return out;
}

ServerUpMsg decodeServerUp(const Bytes& payload) {
  Reader r(payload);
  ServerUpMsg m;
  m.serverName = r.str();
  return m;
}

Bytes encode(const ShutdownMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.reason);
  return out;
}

ShutdownMsg decodeShutdown(const Bytes& payload) {
  Reader r(payload);
  ShutdownMsg m;
  m.reason = r.str();
  return m;
}

Bytes encode(const HeartbeatMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.serverName);
  w.f64(m.sampleTime);
  return out;
}

HeartbeatMsg decodeHeartbeat(const Bytes& payload) {
  Reader r(payload);
  HeartbeatMsg m;
  m.serverName = r.str();
  m.sampleTime = r.f64();
  return m;
}

Bytes encode(const AgentHelloMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  w.str(m.mode);
  w.f64(m.sampleTime);
  writeStringList(w, m.ownedServers);
  w.u16(m.listenPort);
  return out;
}

AgentHelloMsg decodeAgentHello(const Bytes& payload) {
  Reader r(payload);
  AgentHelloMsg m;
  m.agentName = r.str();
  m.mode = r.str();
  m.sampleTime = r.f64();
  m.ownedServers = readStringList(r);
  m.listenPort = r.u16();
  return m;
}

Bytes encode(const AgentSyncMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  w.f64(m.sampleTime);
  CASCHED_CHECK(m.loads.size() <= 0xFFFFFFFFull, "load digest list too long");
  w.u32(static_cast<std::uint32_t>(m.loads.size()));
  for (const LoadDigest& d : m.loads) {
    w.str(d.serverName);
    w.f64(d.loadAverage);
    w.f64(d.sampleTime);
  }
  w.u64(m.snapshotSeq);
  w.u32(m.chunkIndex);
  w.u32(m.chunkCount);
  w.bytes(m.snapshotChunk);
  w.u32(m.queuedTasks);
  return out;
}

AgentSyncMsg decodeAgentSync(const Bytes& payload) {
  Reader r(payload);
  AgentSyncMsg m;
  m.agentName = r.str();
  m.sampleTime = r.f64();
  const std::uint32_t n = r.u32();
  m.loads.reserve(clampCount(n, r, 20));  // name prefix + two f64s
  for (std::uint32_t i = 0; i < n; ++i) {
    LoadDigest d;
    d.serverName = r.str();
    d.loadAverage = r.f64();
    d.sampleTime = r.f64();
    m.loads.push_back(std::move(d));
  }
  m.snapshotSeq = r.u64();
  m.chunkIndex = r.u32();
  m.chunkCount = r.u32();
  m.snapshotChunk = r.bytes();
  m.queuedTasks = r.u32();
  return m;
}

Bytes encode(const StatsRequestMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.format);
  return out;
}

StatsRequestMsg decodeStatsRequest(const Bytes& payload) {
  Reader r(payload);
  StatsRequestMsg m;
  m.format = r.str();
  return m;
}

Bytes encode(const StatsReplyMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  w.f64(m.sampleTime);
  w.str(m.format);
  w.str(m.body);
  return out;
}

StatsReplyMsg decodeStatsReply(const Bytes& payload) {
  Reader r(payload);
  StatsReplyMsg m;
  m.agentName = r.str();
  m.sampleTime = r.f64();
  m.format = r.str();
  m.body = r.str();
  return m;
}

namespace {
void writeTaskSpec(Writer& w, const ScheduleRequestMsg& t) {
  w.u64(t.taskId);
  w.str(t.problem);
  w.f64(t.inMB);
  w.f64(t.outMB);
  w.f64(t.memMB);
  w.f64(t.refSeconds);
}

ScheduleRequestMsg readTaskSpec(Reader& r) {
  ScheduleRequestMsg t;
  t.taskId = r.u64();
  t.problem = r.str();
  t.inMB = r.f64();
  t.outMB = r.f64();
  t.memMB = r.f64();
  t.refSeconds = r.f64();
  return t;
}
}  // namespace

Bytes encode(const ForwardRequestMsg& m) {
  Bytes out;
  Writer w(out);
  writeTaskSpec(w, m.task);
  w.str(m.originAgent);
  w.u32(m.hops);
  return out;
}

ForwardRequestMsg decodeForwardRequest(const Bytes& payload) {
  Reader r(payload);
  ForwardRequestMsg m;
  m.task = readTaskSpec(r);
  m.originAgent = r.str();
  m.hops = r.u32();
  return m;
}

Bytes encode(const ForwardDenyMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.agentName);
  w.str(m.reason);
  return out;
}

ForwardDenyMsg decodeForwardDeny(const Bytes& payload) {
  Reader r(payload);
  ForwardDenyMsg m;
  m.taskId = r.u64();
  m.agentName = r.str();
  m.reason = r.str();
  return m;
}

Bytes encode(const ScheduleDenyMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.taskId);
  w.str(m.agentName);
  w.str(m.reason);
  return out;
}

ScheduleDenyMsg decodeScheduleDeny(const Bytes& payload) {
  Reader r(payload);
  ScheduleDenyMsg m;
  m.taskId = r.u64();
  m.agentName = r.str();
  m.reason = r.str();
  return m;
}

Bytes encode(const StealRequestMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  w.u32(m.capacity);
  return out;
}

StealRequestMsg decodeStealRequest(const Bytes& payload) {
  Reader r(payload);
  StealRequestMsg m;
  m.agentName = r.str();
  m.capacity = r.u32();
  return m;
}

Bytes encode(const StealGrantMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  CASCHED_CHECK(m.tasks.size() <= 0xFFFFFFFFull, "steal grant list too long");
  w.u32(static_cast<std::uint32_t>(m.tasks.size()));
  for (const ScheduleRequestMsg& t : m.tasks) writeTaskSpec(w, t);
  return out;
}

StealGrantMsg decodeStealGrant(const Bytes& payload) {
  Reader r(payload);
  StealGrantMsg m;
  m.agentName = r.str();
  const std::uint32_t n = r.u32();
  m.tasks.reserve(clampCount(n, r, 44));  // u64 id + str prefix + four f64s
  for (std::uint32_t i = 0; i < n; ++i) m.tasks.push_back(readTaskSpec(r));
  return m;
}

Bytes encode(const ResolverProbeMsg& m) {
  Bytes out;
  Writer w(out);
  w.u64(m.probeId);
  w.f64(m.sendTime);
  return out;
}

ResolverProbeMsg decodeResolverProbe(const Bytes& payload) {
  Reader r(payload);
  ResolverProbeMsg m;
  m.probeId = r.u64();
  m.sendTime = r.f64();
  return m;
}

Bytes encode(const ResolverInfoMsg& m) {
  Bytes out;
  Writer w(out);
  w.str(m.agentName);
  w.u64(m.probeId);
  w.f64(m.echoSendTime);
  w.f64(m.sampleTime);
  w.f64(m.meanLoad);
  w.u32(m.liveServers);
  w.u32(m.queuedTasks);
  writeStringList(w, m.peerAddresses);
  return out;
}

ResolverInfoMsg decodeResolverInfo(const Bytes& payload) {
  Reader r(payload);
  ResolverInfoMsg m;
  m.agentName = r.str();
  m.probeId = r.u64();
  m.echoSendTime = r.f64();
  m.sampleTime = r.f64();
  m.meanLoad = r.f64();
  m.liveServers = r.u32();
  m.queuedTasks = r.u32();
  m.peerAddresses = readStringList(r);
  return m;
}

Bytes encode(const SchemaHelloMsg& m) {
  Bytes out;
  Writer w(out);
  w.u32(m.magic);
  w.u64(m.schemaHash);
  w.u16(m.protocolVersion);
  return out;
}

SchemaHelloMsg decodeSchemaHello(const Bytes& payload) {
  Reader r(payload);
  SchemaHelloMsg m;
  m.magic = r.u32();
  m.schemaHash = r.u64();
  m.protocolVersion = r.u16();
  return m;
}

}  // namespace casched::wire
