#include "wire/buffer.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace casched::wire {

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& v) {
  CASCHED_CHECK(v.size() <= 0xFFFFFFFFull, "string too long for wire format");
  u32(static_cast<std::uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Writer::bytes(const Bytes& v) {
  CASCHED_CHECK(v.size() <= 0xFFFFFFFFull, "byte blob too long for wire format");
  u32(static_cast<std::uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > size_) throw util::DecodeError("truncated message");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string v(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return v;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  need(n);
  Bytes v(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return v;
}

}  // namespace casched::wire
