#pragma once
/// \file framing.hpp
/// Stream framing: every frame is [u32 totalLen][u16 version][u16 type]
/// [payload...], little-endian, where totalLen counts version+type+payload.
/// The decoder is incremental - feed arbitrary chunks (as TCP delivers them)
/// and pull complete frames out.

#include <cstdint>
#include <deque>
#include <optional>

#include "wire/buffer.hpp"
#include "wire/messages.hpp"

namespace casched::wire {

struct Frame {
  MessageType type;
  Bytes payload;
};

/// Builds one wire frame from a typed payload.
Bytes buildFrame(MessageType type, const Bytes& payload);

/// Incremental frame decoder with a hard limit on frame size (malformed or
/// hostile length prefixes must not allocate unbounded memory).
class FrameDecoder {
 public:
  static constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

  /// Appends raw stream bytes.
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame, if any. Throws util::DecodeError on a
  /// corrupt header (wrong version, oversized length).
  std::optional<Frame> next();

  std::size_t bufferedBytes() const { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
};

}  // namespace casched::wire
