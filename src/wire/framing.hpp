#pragma once
/// \file framing.hpp
/// Stream framing, protocol v5: every frame is [u32 totalLen][u16 version]
/// [u16 type][payload...][u32 crc32], little-endian, where totalLen counts
/// version+type+payload+crc and the CRC covers version+type+payload. The
/// decoder is incremental - feed arbitrary chunks (as TCP delivers them) and
/// pull complete frames out; kCoalesced envelopes are expanded transparently
/// into their inner frames.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "util/error.hpp"
#include "wire/buffer.hpp"
#include "wire/messages.hpp"

namespace casched::wire {

struct Frame {
  MessageType type;
  Bytes payload;
};

/// Every way a frame can be rejected, as a closed enum so the transport
/// metrics can count rejections per kind.
enum class FrameError {
  kBadLength,      ///< totalLen smaller than the fixed header+trailer
  kOversized,      ///< totalLen beyond kMaxFrameBytes (checked pre-allocation)
  kBadVersion,     ///< peer speaks another protocol version
  kBadType,        ///< message type this build does not know
  kBadChecksum,    ///< CRC32 trailer does not match the frame body
  kSchemaMismatch, ///< handshake magic/hash wrong, or traffic before handshake
  kBadCoalesce,    ///< malformed kCoalesced envelope (type, count, lengths)
};

/// Stable label for a FrameError ("checksum", "schema", ...); used as the
/// `kind` label on the decode-error counters.
const char* frameErrorName(FrameError kind);

/// Decode failure carrying its FrameError kind. Still a util::DecodeError, so
/// every existing catch site (daemon poll loops close the link) works
/// unchanged.
class FrameDecodeError : public util::DecodeError {
 public:
  FrameDecodeError(FrameError kind, const std::string& what)
      : util::DecodeError(what), kind_(kind) {}
  FrameError kind() const { return kind_; }

 private:
  FrameError kind_;
};

/// Builds one wire frame from a typed payload (header + payload + CRC32).
Bytes buildFrame(MessageType type, const Bytes& payload);

/// Builds the kCoalesced envelope body carrying `payloads` as inner messages
/// of `inner` type: [u16 inner][u32 count][(u32 len)(bytes)]*count. `inner`
/// must satisfy isCoalescableType.
Bytes buildCoalescedPayload(MessageType inner, const std::vector<Bytes>& payloads);

/// buildCoalescedPayload, framed and CRC'd like any other payload.
Bytes buildCoalescedFrame(MessageType inner, const std::vector<Bytes>& payloads);

/// Expands a kCoalesced payload into its inner frames, validating the inner
/// type, count and lengths (bounded before any allocation). Throws
/// FrameDecodeError(kBadCoalesce) on any malformation.
std::vector<Frame> expandCoalesced(const Bytes& payload);

/// Incremental frame decoder with a hard limit on frame size (malformed or
/// hostile length prefixes must not allocate unbounded memory). Checks run in
/// fixed order: length bounds, version, CRC trailer, type - so a v4 peer is
/// named by version, not drowned in checksum noise.
class FrameDecoder {
 public:
  static constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;
  /// Fixed bytes after the length prefix: version + type + CRC trailer.
  static constexpr std::uint32_t kFrameOverhead = 8;
  /// Ceiling on inner messages per kCoalesced envelope.
  static constexpr std::uint32_t kMaxCoalescedMessages = 65536;

  /// Appends raw stream bytes.
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame, if any. kCoalesced envelopes never
  /// surface: their inner frames are returned one by one, in order. Throws
  /// FrameDecodeError on a corrupt frame (bad length/version/type/CRC or
  /// malformed envelope).
  std::optional<Frame> next();

  std::size_t bufferedBytes() const { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
  /// Inner frames from the last kCoalesced envelope, drained before the
  /// byte buffer is parsed further (preserves arrival order).
  std::deque<Frame> expanded_;
};

}  // namespace casched::wire
