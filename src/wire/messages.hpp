#pragma once
/// \file messages.hpp
/// The middleware's wire protocol: every interaction of the client-agent-
/// server model as a typed, versioned message. The simulation dispatches the
/// same logical events through direct calls for speed; the grid_rpc_demo
/// example and the protocol tests exercise these encodings end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "wire/buffer.hpp"

namespace casched::wire {

/// v2 added the heartbeat message and the registration speed index; v3 added
/// the agent-to-agent replication messages (kAgentHello registration and
/// kAgentSync load-digest + HTM-snapshot-chunk sync); v4 adds the agent mesh:
/// peer request forwarding (kForwardRequest/kForwardDeny), an explicit
/// client-facing deny (kScheduleDeny), work-stealing (kStealRequest/
/// kStealGrant) and the client-side resolver probe pair (kResolverProbe/
/// kResolverInfo), plus the hello's listen port and the sync's parked-task
/// count; v5 adds the integrity layer: a CRC32 trailer on every frame, the
/// magic + schema-hash connect handshake (kSchemaHello), and multi-message
/// coalesced frames (kCoalesced). Peers speaking an older version are
/// rejected with a typed error naming both versions.
constexpr std::uint16_t kProtocolVersion = 5;

enum class MessageType : std::uint16_t {
  kRegister = 1,       ///< server -> agent: problems + peak performances
  kRegisterAck = 2,    ///< agent -> server
  kScheduleRequest = 3,///< client -> agent: solve this problem
  kScheduleReply = 4,  ///< agent -> client: ranked server list
  kTaskSubmit = 5,     ///< client -> server: run it (input data follows)
  kTaskComplete = 6,   ///< server -> agent/client: done + completion date
  kTaskFailed = 7,     ///< server -> agent/client
  kLoadReport = 8,     ///< server -> agent: damped load average
  kServerDown = 9,     ///< server -> agent (collapse)
  kServerUp = 10,      ///< server -> agent (recovery / re-registration)
  kShutdown = 11,      ///< orderly teardown
  kHeartbeat = 12,     ///< server -> agent: liveness beacon between reports
  kAgentHello = 13,    ///< agent -> agent: peer registration (name, mode, owned servers)
  kAgentSync = 14,     ///< agent -> agent: load digests + HTM snapshot chunk
  kStatsRequest = 15,  ///< operator -> agent: metrics snapshot, please
  kStatsReply = 16,    ///< agent -> operator: rendered metrics snapshot
  kForwardRequest = 17,///< agent -> agent: place this task on your partition
  kForwardDeny = 18,   ///< agent -> agent: cannot place the forwarded task
  kScheduleDeny = 19,  ///< agent -> client: request refused (no servers, no peer)
  kStealRequest = 20,  ///< agent -> agent: idle; hand me parked tasks
  kStealGrant = 21,    ///< agent -> agent: parked tasks handed over
  kResolverProbe = 22, ///< client -> agent: RTT/load probe
  kResolverInfo = 23,  ///< agent -> client: probe echo + load + peer gossip
  kSchemaHello = 24,   ///< both directions: first frame; magic + schema hash
  kCoalesced = 25,     ///< envelope: N same-type messages behind one header
};

std::string messageTypeName(MessageType type);

/// True when `rawType` names a MessageType this build understands. The frame
/// decoder rejects everything else with the offending value.
bool isKnownMessageType(std::uint16_t rawType);

/// True for the high-volume types that may ride inside a kCoalesced frame
/// (load reports, heartbeats, schedule/submit bursts, terminal acks, sync
/// chunks, replies). Control traffic - registration, hellos, stats,
/// forwarding/stealing negotiation, shutdown - always travels as singleton
/// frames so each step of a handshake stays individually observable.
bool isCoalescableType(MessageType type);

/// Magic constant opening every kSchemaHello payload: rejects non-protocol
/// peers (or misrouted byte streams) by name instead of by decode garbage.
constexpr std::uint32_t kWireMagic = 0x43415335;  // "CAS5"

/// Compile-time FNV-1a 64-bit hash.
constexpr std::uint64_t fnv1a64(const char* s) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// The message schemas, spelled out as one flat definition string. Any change
/// to a message's fields (or their order/width) must be reflected here, which
/// changes kSchemaHash and makes mismatched builds reject each other at
/// connect time instead of mis-decoding each other's frames.
constexpr char kSchemaDefinition[] =
    "v5;"
    "register{str server;f64 bwIn,bwOut,latIn,latOut,ram,swap,speed;str[] problems};"
    "registerAck{str server;u8 accepted;f64 agentTime};"
    "scheduleRequest{u64 task;str problem;f64 in,out,mem,ref};"
    "scheduleReply{u64 task;str[] servers};"
    "taskSubmit{u64 task;str problem;f64 in,cpu,out,mem};"
    "taskComplete{u64 task;str server;f64 completion,unloaded};"
    "taskFailed{u64 task;str server,reason};"
    "loadReport{str server;f64 load,sample,resident};"
    "serverDown{str server};serverUp{str server};shutdown{str reason};"
    "heartbeat{str server;f64 sample};"
    "agentHello{str agent,mode;f64 sample;str[] owned;u16 port};"
    "agentSync{str agent;f64 sample;digest[]{str server;f64 load,sample};"
    "u64 seq;u32 chunkIndex,chunkCount;bytes chunk;u32 queued};"
    "statsRequest{str format};statsReply{str agent;f64 sample;str format,body};"
    "forwardRequest{scheduleRequest task;str origin;u32 hops};"
    "forwardDeny{u64 task;str agent,reason};scheduleDeny{u64 task;str agent,reason};"
    "stealRequest{str agent;u32 capacity};stealGrant{str agent;scheduleRequest[] tasks};"
    "resolverProbe{u64 probe;f64 send};"
    "resolverInfo{str agent;u64 probe;f64 echo,sample,load;u32 live,queued;str[] peers};"
    "schemaHello{u32 magic;u64 hash;u16 version};"
    "coalesced{u16 inner;u32 count;(u32 len;bytes)[]};";

/// What each peer asserts about its build in the connect handshake.
constexpr std::uint64_t kSchemaHash = fnv1a64(kSchemaDefinition);

struct RegisterMsg {
  std::string serverName;
  double bwInMBps = 0.0;
  double bwOutMBps = 0.0;
  double latencyIn = 0.0;
  double latencyOut = 0.0;
  double ramMB = 0.0;
  double swapMB = 0.0;
  /// Relative compute speed (1.0 = reference machine); the agent's cost-model
  /// fallback for machines without calibrated per-type entries.
  double speedIndex = 1.0;
  std::vector<std::string> problems;
};

struct RegisterAckMsg {
  std::string serverName;
  /// False when the name is already taken by a live connection.
  bool accepted = false;
  /// Agent's simulation clock at acknowledgement; a freshly started server
  /// daemon resyncs its own paced clock to this, so completion dates and
  /// sample times stay comparable across processes started at different
  /// wall times.
  double agentTime = 0.0;
};

struct ScheduleRequestMsg {
  std::uint64_t taskId = 0;
  std::string problem;
  double inMB = 0.0;
  double outMB = 0.0;
  double memMB = 0.0;
  double refSeconds = 0.0;
};

struct ScheduleReplyMsg {
  std::uint64_t taskId = 0;
  /// Ranked list, best first (NetSolve returns a ranked server list).
  std::vector<std::string> servers;
};

struct TaskSubmitMsg {
  std::uint64_t taskId = 0;
  std::string problem;
  double inMB = 0.0;
  double cpuSeconds = 0.0;
  double outMB = 0.0;
  double memMB = 0.0;
};

struct TaskCompleteMsg {
  std::uint64_t taskId = 0;
  std::string serverName;
  double completionTime = 0.0;
  double unloadedDuration = 0.0;
};

struct TaskFailedMsg {
  std::uint64_t taskId = 0;
  std::string serverName;
  std::string reason;
};

struct LoadReportMsg {
  std::string serverName;
  double loadAverage = 0.0;
  double sampleTime = 0.0;
  double residentMB = 0.0;
};

struct ServerDownMsg {
  std::string serverName;
};

struct ServerUpMsg {
  std::string serverName;
};

struct ShutdownMsg {
  std::string reason;
};

struct HeartbeatMsg {
  std::string serverName;
  /// Sender's clock at emission (sim seconds); lets the agent spot skew.
  double sampleTime = 0.0;
};

/// Agent-to-agent registration: the dialing agent introduces itself; the
/// accepting agent answers with its own hello on the same connection.
struct AgentHelloMsg {
  std::string agentName;
  /// Replication mode the sender runs under: "replicated" | "partitioned".
  std::string mode;
  double sampleTime = 0.0;
  /// Servers currently registered with (owned by) the sender.
  std::vector<std::string> ownedServers;
  /// The sender's own listening port (v4): lets the receiver of an inbound
  /// link reconstruct a dialable address for resolver gossip.
  std::uint16_t listenPort = 0;
};

/// One server's last load report, as the owning agent saw it.
struct LoadDigest {
  std::string serverName;
  double loadAverage = 0.0;
  double sampleTime = 0.0;
};

/// Periodic agent-to-agent state sync: digests of the sender's own servers'
/// load reports, plus (replicated mode) one chunk of the sender's serialized
/// HTM snapshot. chunkCount == 0 means "no snapshot in this sync"; otherwise
/// the receiver reassembles chunks [0, chunkCount) of the same snapshotSeq
/// and decodes the concatenation (core/htm_snapshot.hpp).
struct AgentSyncMsg {
  std::string agentName;
  double sampleTime = 0.0;
  std::vector<LoadDigest> loads;
  std::uint64_t snapshotSeq = 0;
  std::uint32_t chunkIndex = 0;
  std::uint32_t chunkCount = 0;
  Bytes snapshotChunk;
  /// Tasks the sender accepted but has not dispatched yet (v4): the mesh's
  /// work-stealing target signal - idle peers steal from the deepest queue.
  std::uint32_t queuedTasks = 0;
};

/// Operator request for the agent's metrics registry; additive to protocol
/// v3 (older peers never send it, and the agent ignores unknown senders'
/// other traffic as usual). `format` is "prometheus" or "json".
struct StatsRequestMsg {
  std::string format = "prometheus";
};

struct StatsReplyMsg {
  std::string agentName;
  /// Agent's simulation clock when the snapshot was taken.
  double sampleTime = 0.0;
  /// "prometheus" | "json" - the format actually rendered.
  std::string format;
  /// The rendered registry snapshot.
  std::string body;
};

/// Agent-to-agent request forwarding (v4): a saturated agent hands a client's
/// schedule request to a peer. `task` is the original request verbatim;
/// `originAgent` names the first agent that accepted it (terminal outcomes
/// travel back along the forwarding link); `hops` counts agent-to-agent
/// transfers so far, so a hop limit can stop ping-pong.
struct ForwardRequestMsg {
  ScheduleRequestMsg task;
  std::string originAgent;
  std::uint32_t hops = 1;
};

/// Peer's refusal of a forwarded task; the origin falls back to its own
/// no-server handling (retry or client-facing deny).
struct ForwardDenyMsg {
  std::uint64_t taskId = 0;
  std::string agentName;
  std::string reason;
};

/// Agent-to-client refusal of a schedule request (v4): sent instead of
/// silence when the agent has no feasible server and no peer to forward to,
/// so the client fails fast instead of timing out.
struct ScheduleDenyMsg {
  std::uint64_t taskId = 0;
  std::string agentName;
  std::string reason;
};

/// Idle agent's pull request (v4): "hand me up to `capacity` parked tasks".
struct StealRequestMsg {
  std::string agentName;
  std::uint32_t capacity = 0;
};

/// The loaded peer's reply: parked tasks now owned by the thief. `tasks` may
/// be empty (nothing was parked by the time the request arrived).
struct StealGrantMsg {
  std::string agentName;
  std::vector<ScheduleRequestMsg> tasks;
};

/// Client-side resolver probe (v4): `sendTime` is the client's wall clock at
/// emission, echoed back verbatim so the client measures RTT without shared
/// clocks. `probeId` matches replies to probes across re-ranks.
struct ResolverProbeMsg {
  std::uint64_t probeId = 0;
  double sendTime = 0.0;
};

/// Agent's answer to a resolver probe: identity, echoed timestamp, advertised
/// load and capacity, plus gossip - dialable "host:port" addresses of the
/// agent's own peers, so a client discovers agents it was never configured
/// with.
struct ResolverInfoMsg {
  std::string agentName;
  std::uint64_t probeId = 0;
  double echoSendTime = 0.0;
  /// Agent's simulation clock when the reply was built.
  double sampleTime = 0.0;
  /// Mean corrected load estimate across the agent's live servers.
  double meanLoad = 0.0;
  std::uint32_t liveServers = 0;
  std::uint32_t queuedTasks = 0;
  std::vector<std::string> peerAddresses;
};

/// First frame on every connection, both directions (v5): the transport layer
/// sends it automatically on connect/accept, verifies the peer's copy, and
/// swallows it - daemons never see handshake frames. A wrong magic or hash is
/// rejected with a named schema-mismatch error before any other frame is
/// decoded.
struct SchemaHelloMsg {
  std::uint32_t magic = kWireMagic;
  std::uint64_t schemaHash = kSchemaHash;
  std::uint16_t protocolVersion = kProtocolVersion;
};

// Encoding: each message encodes its payload; the framing layer prepends
// (length, version, type) and appends the CRC32 trailer.
Bytes encode(const RegisterMsg& m);
Bytes encode(const RegisterAckMsg& m);
Bytes encode(const ScheduleRequestMsg& m);
Bytes encode(const ScheduleReplyMsg& m);
Bytes encode(const TaskSubmitMsg& m);
Bytes encode(const TaskCompleteMsg& m);
Bytes encode(const TaskFailedMsg& m);
Bytes encode(const LoadReportMsg& m);
Bytes encode(const ServerDownMsg& m);
Bytes encode(const ServerUpMsg& m);
Bytes encode(const ShutdownMsg& m);
Bytes encode(const HeartbeatMsg& m);
Bytes encode(const AgentHelloMsg& m);
Bytes encode(const AgentSyncMsg& m);
Bytes encode(const StatsRequestMsg& m);
Bytes encode(const StatsReplyMsg& m);
Bytes encode(const ForwardRequestMsg& m);
Bytes encode(const ForwardDenyMsg& m);
Bytes encode(const ScheduleDenyMsg& m);
Bytes encode(const StealRequestMsg& m);
Bytes encode(const StealGrantMsg& m);
Bytes encode(const ResolverProbeMsg& m);
Bytes encode(const ResolverInfoMsg& m);
Bytes encode(const SchemaHelloMsg& m);

RegisterMsg decodeRegister(const Bytes& payload);
RegisterAckMsg decodeRegisterAck(const Bytes& payload);
ScheduleRequestMsg decodeScheduleRequest(const Bytes& payload);
ScheduleReplyMsg decodeScheduleReply(const Bytes& payload);
TaskSubmitMsg decodeTaskSubmit(const Bytes& payload);
TaskCompleteMsg decodeTaskComplete(const Bytes& payload);
TaskFailedMsg decodeTaskFailed(const Bytes& payload);
LoadReportMsg decodeLoadReport(const Bytes& payload);
ServerDownMsg decodeServerDown(const Bytes& payload);
ServerUpMsg decodeServerUp(const Bytes& payload);
ShutdownMsg decodeShutdown(const Bytes& payload);
HeartbeatMsg decodeHeartbeat(const Bytes& payload);
AgentHelloMsg decodeAgentHello(const Bytes& payload);
AgentSyncMsg decodeAgentSync(const Bytes& payload);
StatsRequestMsg decodeStatsRequest(const Bytes& payload);
StatsReplyMsg decodeStatsReply(const Bytes& payload);
ForwardRequestMsg decodeForwardRequest(const Bytes& payload);
ForwardDenyMsg decodeForwardDeny(const Bytes& payload);
ScheduleDenyMsg decodeScheduleDeny(const Bytes& payload);
StealRequestMsg decodeStealRequest(const Bytes& payload);
StealGrantMsg decodeStealGrant(const Bytes& payload);
ResolverProbeMsg decodeResolverProbe(const Bytes& payload);
ResolverInfoMsg decodeResolverInfo(const Bytes& payload);
SchemaHelloMsg decodeSchemaHello(const Bytes& payload);

}  // namespace casched::wire
