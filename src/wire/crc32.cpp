#include "wire/crc32.hpp"

#include <array>

namespace casched::wire {

namespace {
constexpr std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kTable = makeTable();
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace casched::wire
