#include "wire/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace casched::wire {

namespace {
[[noreturn]] void throwErrno(const std::string& what) {
  throw util::IoError(what + ": " + std::strerror(errno));
}

/// Process-wide wire traffic instruments: every TcpTransport (agent, server,
/// client, peer links) funnels through send/poll, so counting here covers
/// the whole daemon. messagesOut counts logical messages (each inner message
/// of a coalesced frame counts), so messagesOut - framesOut is the traffic
/// coalescing saved.
struct WireInstruments {
  obs::Counter& framesOut;
  obs::Counter& bytesOut;
  obs::Counter& framesIn;
  obs::Counter& bytesIn;
  obs::Counter& decodeErrors;
  obs::Counter& messagesOut;
  obs::Counter& coalescedFramesOut;

  static WireInstruments& get() {
    auto& reg = obs::Registry::global();
    static WireInstruments* instruments = new WireInstruments{
        reg.counter("casched_net_frames_out_total", "Wire frames sent over TCP"),
        reg.counter("casched_net_bytes_out_total", "Bytes sent over TCP (framing included)"),
        reg.counter("casched_net_frames_in_total", "Wire frames decoded from TCP"),
        reg.counter("casched_net_bytes_in_total", "Bytes received over TCP"),
        reg.counter("casched_net_decode_errors_total",
                    "Frames rejected by the decoder (any kind)"),
        reg.counter("casched_net_messages_out_total",
                    "Logical messages sent over TCP (coalesced frames count "
                    "every inner message)"),
        reg.counter("casched_net_coalesced_frames_out_total",
                    "Frames that carried more than one message"),
    };
    return *instruments;
  }
};

/// Per-kind rejection counters ("checksum", "version", "schema", ...); the
/// plain total above stays for dashboards that predate the kinds.
void countDecodeError(const util::DecodeError& e) {
  WireInstruments::get().decodeErrors.inc();
  const char* kind = "message";
  if (const auto* framed = dynamic_cast<const FrameDecodeError*>(&e)) {
    kind = frameErrorName(framed->kind());
  }
  obs::Registry::global()
      .counter("casched_net_decode_errors_total",
               "Frames rejected by the decoder (any kind)", {{"kind", kind}})
      .inc();
}
}  // namespace

std::shared_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw util::IoError("invalid address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throwErrno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::shared_ptr<TcpTransport>(new TcpTransport(fd));
  transport->sendSchemaHello();
  return transport;
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::send(MessageType type, const Bytes& payload) {
  if (closed_) return;
  const Bytes frame = buildFrame(type, payload);
  WireInstruments& ins = WireInstruments::get();
  ins.framesOut.inc();
  ins.bytesOut.inc(frame.size());
  if (type == MessageType::kCoalesced && payload.size() >= 6) {
    // Envelope body is [u16 inner][u32 count]...; count the inner messages.
    std::uint32_t count = 0;
    for (int i = 0; i < 4; ++i) {
      count |= static_cast<std::uint32_t>(payload[2 + static_cast<std::size_t>(i)]) << (8 * i);
    }
    ins.messagesOut.inc(count);
    ins.coalescedFramesOut.inc();
  } else {
    ins.messagesOut.inc();
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      closed_ = true;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t TcpTransport::poll(const FrameFn& fn) {
  if (closed_) return 0;
  WireInstruments& ins = WireInstruments::get();
  std::size_t delivered = 0;
  std::uint8_t buf[4096];
  while (true) {
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, 0);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      closed_ = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      closed_ = true;
      break;
    }
    ins.bytesIn.inc(static_cast<std::uint64_t>(n));
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
  try {
    while (auto frame = decoder_.next()) {
      if (consumeHandshake(*frame)) continue;
      ++delivered;
      ins.framesIn.inc();
      if (fn) fn(std::move(*frame));
    }
  } catch (const util::DecodeError& e) {
    countDecodeError(e);
    throw;  // the daemon's poll loop closes the link on bad frames
  }
  return delivered;
}

bool TcpTransport::closed() const { return closed_; }

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  closed_ = true;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throwErrno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throwErrno("bind");
  }
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    throwErrno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throwErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<TcpTransport> TcpListener::accept(int timeoutMs) {
  pollfd p{fd_, POLLIN, 0};
  const int ready = ::poll(&p, 1, timeoutMs);
  if (ready <= 0) return nullptr;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::shared_ptr<TcpTransport>(new TcpTransport(client));
  transport->sendSchemaHello();
  return transport;
}

}  // namespace casched::wire
