#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) used as the frame
/// integrity trailer (protocol v5). Table-driven, one byte per step - the
/// frames here are small (hundreds of bytes) so portability beats hardware
/// CRC instructions.

#include <cstddef>
#include <cstdint>

#include "wire/buffer.hpp"

namespace casched::wire {

/// CRC of `size` bytes starting at `data`. `seed` chains partial computations:
/// crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(const Bytes& data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace casched::wire
