#pragma once
/// \file tcp_transport.hpp
/// Frame transport over real TCP sockets (loopback demo of the middleware
/// protocol). Blocking sockets with a short poll timeout; one Transport per
/// connection. POSIX-only, which matches the paper's all-Linux testbed.

#include <cstdint>
#include <memory>
#include <string>

#include "wire/transport.hpp"

namespace casched::wire {

/// A connected TCP endpoint speaking the frame protocol.
class TcpTransport final : public Transport {
 public:
  /// Connects to host:port; throws util::IoError on failure.
  static std::shared_ptr<TcpTransport> connect(const std::string& host, std::uint16_t port);

  ~TcpTransport() override;

  void send(MessageType type, const Bytes& payload) override;
  /// Drains whatever is readable right now without blocking.
  std::size_t poll(const FrameFn& fn) override;
  bool closed() const override;
  void close() override;

  int fd() const { return fd_; }

 private:
  explicit TcpTransport(int fd) : fd_(fd) {}
  friend class TcpListener;

  int fd_ = -1;
  bool closed_ = false;
  FrameDecoder decoder_;
};

/// Listening socket; accept() yields TcpTransport connections.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:port (port 0 picks a free port).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting up to `timeoutMs`; nullptr on timeout.
  std::shared_ptr<TcpTransport> accept(int timeoutMs);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace casched::wire
