#include "wire/framing.hpp"

#include "util/error.hpp"

namespace casched::wire {

Bytes buildFrame(MessageType type, const Bytes& payload) {
  Bytes out;
  Writer w(out);
  const std::uint32_t totalLen = static_cast<std::uint32_t>(payload.size()) + 4;
  CASCHED_CHECK(totalLen <= FrameDecoder::kMaxFrameBytes, "frame too large");
  w.u32(totalLen);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t totalLen = 0;
  for (int i = 0; i < 4; ++i) {
    totalLen |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)]) << (8 * i);
  }
  if (totalLen < 4) throw util::DecodeError("frame length too small");
  if (totalLen > kMaxFrameBytes) throw util::DecodeError("frame length exceeds limit");
  if (buffer_.size() < 4u + totalLen) return std::nullopt;

  // Drop the length prefix, then materialize the frame body contiguously.
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  Bytes body(buffer_.begin(), buffer_.begin() + totalLen);
  buffer_.erase(buffer_.begin(), buffer_.begin() + totalLen);

  Reader r(body);
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) throw util::DecodeError("unsupported protocol version");
  const std::uint16_t rawType = r.u16();
  Frame frame;
  frame.type = static_cast<MessageType>(rawType);
  frame.payload.assign(body.begin() + 4, body.end());
  return frame;
}

}  // namespace casched::wire
