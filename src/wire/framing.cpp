#include "wire/framing.hpp"

#include "util/strings.hpp"
#include "wire/crc32.hpp"

namespace casched::wire {

const char* frameErrorName(FrameError kind) {
  switch (kind) {
    case FrameError::kBadLength: return "length";
    case FrameError::kOversized: return "oversized";
    case FrameError::kBadVersion: return "version";
    case FrameError::kBadType: return "type";
    case FrameError::kBadChecksum: return "checksum";
    case FrameError::kSchemaMismatch: return "schema";
    case FrameError::kBadCoalesce: return "coalesce";
  }
  return "unknown";
}

Bytes buildFrame(MessageType type, const Bytes& payload) {
  Bytes out;
  Writer w(out);
  const std::uint32_t totalLen =
      static_cast<std::uint32_t>(payload.size()) + FrameDecoder::kFrameOverhead;
  CASCHED_CHECK(totalLen <= FrameDecoder::kMaxFrameBytes, "frame too large");
  w.u32(totalLen);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  w.u32(crc32(out.data() + 4, out.size() - 4));
  return out;
}

Bytes buildCoalescedPayload(MessageType inner, const std::vector<Bytes>& payloads) {
  CASCHED_CHECK(isCoalescableType(inner),
                "message type is not coalescable: " + messageTypeName(inner));
  CASCHED_CHECK(!payloads.empty() && payloads.size() <= FrameDecoder::kMaxCoalescedMessages,
                "coalesced batch size out of range");
  Bytes body;
  Writer w(body);
  w.u16(static_cast<std::uint16_t>(inner));
  w.u32(static_cast<std::uint32_t>(payloads.size()));
  for (const Bytes& p : payloads) w.bytes(p);
  return body;
}

Bytes buildCoalescedFrame(MessageType inner, const std::vector<Bytes>& payloads) {
  return buildFrame(MessageType::kCoalesced, buildCoalescedPayload(inner, payloads));
}

std::vector<Frame> expandCoalesced(const Bytes& payload) {
  try {
    Reader r(payload);
    const std::uint16_t rawInner = r.u16();
    if (!isKnownMessageType(rawInner) ||
        !isCoalescableType(static_cast<MessageType>(rawInner))) {
      throw FrameDecodeError(
          FrameError::kBadCoalesce,
          util::strformat("coalesced frame carries non-coalescable inner type %u",
                          static_cast<unsigned>(rawInner)));
    }
    const MessageType inner = static_cast<MessageType>(rawInner);
    const std::uint32_t count = r.u32();
    // Bound the count by the policy ceiling AND by what the payload could
    // physically hold (4 length bytes per message) before reserving anything.
    if (count == 0 || count > FrameDecoder::kMaxCoalescedMessages ||
        count > r.remaining() / 4) {
      throw FrameDecodeError(
          FrameError::kBadCoalesce,
          util::strformat("coalesced message count %u out of range (payload holds "
                          "at most %zu)",
                          count, r.remaining() / 4));
    }
    std::vector<Frame> frames;
    frames.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Frame frame;
      frame.type = inner;
      frame.payload = r.bytes();  // length-prefixed; truncation wrapped below
      frames.push_back(std::move(frame));
    }
    if (r.remaining() != 0) {
      throw FrameDecodeError(
          FrameError::kBadCoalesce,
          util::strformat("coalesced frame has %zu trailing bytes", r.remaining()));
    }
    return frames;
  } catch (const FrameDecodeError&) {
    throw;
  } catch (const util::DecodeError& e) {
    // Reader truncation inside the envelope: surface it under the same kind.
    throw FrameDecodeError(FrameError::kBadCoalesce,
                           std::string("malformed coalesced frame: ") + e.what());
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (!expanded_.empty()) {
    Frame frame = std::move(expanded_.front());
    expanded_.pop_front();
    return frame;
  }
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t totalLen = 0;
  for (int i = 0; i < 4; ++i) {
    totalLen |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)]) << (8 * i);
  }
  if (totalLen < kFrameOverhead) {
    throw FrameDecodeError(
        FrameError::kBadLength,
        util::strformat("frame length %u too small (need >= %u)", totalLen,
                        kFrameOverhead));
  }
  if (totalLen > kMaxFrameBytes) {
    throw FrameDecodeError(
        FrameError::kOversized,
        util::strformat("frame length %u exceeds the %u-byte limit", totalLen,
                        kMaxFrameBytes));
  }
  if (buffer_.size() < 4u + totalLen) return std::nullopt;

  // Drop the length prefix, then materialize the frame body contiguously.
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  Bytes body(buffer_.begin(), buffer_.begin() + totalLen);
  buffer_.erase(buffer_.begin(), buffer_.begin() + totalLen);

  Reader r(body);
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) {
    throw FrameDecodeError(
        FrameError::kBadVersion,
        util::strformat("protocol version mismatch: got %u, want %u",
                        static_cast<unsigned>(version),
                        static_cast<unsigned>(kProtocolVersion)));
  }
  // CRC covers version+type+payload; the trailer is the last 4 bytes.
  const std::size_t bodyLen = body.size() - 4;
  std::uint32_t wireCrc = 0;
  for (int i = 0; i < 4; ++i) {
    wireCrc |= static_cast<std::uint32_t>(body[bodyLen + static_cast<std::size_t>(i)])
               << (8 * i);
  }
  const std::uint32_t computed = crc32(body.data(), bodyLen);
  if (wireCrc != computed) {
    throw FrameDecodeError(
        FrameError::kBadChecksum,
        util::strformat("frame checksum mismatch: trailer %08x, computed %08x",
                        wireCrc, computed));
  }
  const std::uint16_t rawType = r.u16();
  if (!isKnownMessageType(rawType)) {
    throw FrameDecodeError(FrameError::kBadType,
                           util::strformat("unknown message type %u",
                                           static_cast<unsigned>(rawType)));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(rawType);
  frame.payload.assign(body.begin() + 4, body.end() - 4);
  if (frame.type == MessageType::kCoalesced) {
    std::vector<Frame> inner = expandCoalesced(frame.payload);
    // expandCoalesced guarantees at least one inner frame.
    for (auto& f : inner) expanded_.push_back(std::move(f));
    Frame first = std::move(expanded_.front());
    expanded_.pop_front();
    return first;
  }
  return frame;
}

}  // namespace casched::wire
