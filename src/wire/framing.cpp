#include "wire/framing.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::wire {

Bytes buildFrame(MessageType type, const Bytes& payload) {
  Bytes out;
  Writer w(out);
  const std::uint32_t totalLen = static_cast<std::uint32_t>(payload.size()) + 4;
  CASCHED_CHECK(totalLen <= FrameDecoder::kMaxFrameBytes, "frame too large");
  w.u32(totalLen);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t totalLen = 0;
  for (int i = 0; i < 4; ++i) {
    totalLen |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)]) << (8 * i);
  }
  if (totalLen < 4) {
    throw util::DecodeError(
        util::strformat("frame length %u too small (need >= 4)", totalLen));
  }
  if (totalLen > kMaxFrameBytes) {
    throw util::DecodeError(util::strformat("frame length %u exceeds the %u-byte limit",
                                            totalLen, kMaxFrameBytes));
  }
  if (buffer_.size() < 4u + totalLen) return std::nullopt;

  // Drop the length prefix, then materialize the frame body contiguously.
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  Bytes body(buffer_.begin(), buffer_.begin() + totalLen);
  buffer_.erase(buffer_.begin(), buffer_.begin() + totalLen);

  Reader r(body);
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) {
    throw util::DecodeError(util::strformat("protocol version mismatch: got %u, want %u",
                                            static_cast<unsigned>(version),
                                            static_cast<unsigned>(kProtocolVersion)));
  }
  const std::uint16_t rawType = r.u16();
  if (!isKnownMessageType(rawType)) {
    throw util::DecodeError(util::strformat("unknown message type %u",
                                            static_cast<unsigned>(rawType)));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(rawType);
  frame.payload.assign(body.begin() + 4, body.end());
  return frame;
}

}  // namespace casched::wire
