#pragma once
/// \file transport.hpp
/// Message transports. LoopbackTransport is a thread-safe in-process pipe
/// used by the protocol tests and as a stand-in for sockets; TcpTransport
/// (tcp_transport.hpp) carries the same frames over real sockets for the
/// grid_rpc_demo example. Both speak the v5 handshake: the first frame in
/// each direction is a kSchemaHello, verified and swallowed here so daemons
/// only ever see application frames.

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "wire/framing.hpp"

namespace casched::wire {

/// A bidirectional, frame-oriented endpoint.
class Transport {
 public:
  using FrameFn = std::function<void(Frame)>;

  /// Coalescing caps per envelope: a run is split when it would exceed either.
  static constexpr std::size_t kMaxCoalescedBatchBytes = 1u * 1024u * 1024u;
  static constexpr std::size_t kMaxCoalescedBatchCount = 1024;

  virtual ~Transport() = default;

  /// Sends one typed message (encoded + framed) immediately.
  virtual void send(MessageType type, const Bytes& payload) = 0;

  /// Receives all frames queued so far, invoking `fn` per frame, in order.
  /// Returns the number of frames delivered (handshake frames are consumed
  /// here and not counted). Throws FrameDecodeError(kSchemaMismatch) when the
  /// peer's hello is wrong or application traffic precedes it.
  virtual std::size_t poll(const FrameFn& fn) = 0;

  virtual bool closed() const = 0;
  virtual void close() = 0;

  /// Defers one typed message to the next flushQueued() call. Daemons queue
  /// their per-poll-cycle outbound traffic and flush once per cycle, letting
  /// consecutive same-type messages share one kCoalesced frame. Order across
  /// types is preserved exactly (only consecutive runs coalesce). Not
  /// thread-safe: queue/flush belong to the daemon's poll thread.
  void queue(MessageType type, Bytes payload);

  /// Encodes and sends everything queued, coalescing consecutive runs of
  /// coalescable types; returns the number of wire frames emitted. Queued
  /// messages are dropped if the transport closed in the meantime (the link
  /// is dying; the daemons' retry paths own recovery).
  std::size_t flushQueued();

 protected:
  /// Sends this side's schema hello; transports call it once at connect time.
  void sendSchemaHello() { send(MessageType::kSchemaHello, encode(SchemaHelloMsg{})); }

  /// Consumes handshake bookkeeping: returns true when `frame` was a valid
  /// kSchemaHello (now verified and swallowed). Throws
  /// FrameDecodeError(kSchemaMismatch) on a bad magic/hash, or when an
  /// application frame arrives before the peer introduced itself.
  bool consumeHandshake(const Frame& frame);

 private:
  std::vector<std::pair<MessageType, Bytes>> queued_;
  bool peerVerified_ = false;
};

/// One end of an in-process pipe. Frames written to A are readable from B
/// and vice versa. Thread-safe; byte-accurate (frames are actually encoded
/// and re-decoded so the codec path is exercised).
class LoopbackTransport final : public Transport {
 public:
  /// Creates a connected pair. `withHandshake` pre-loads both directions with
  /// a valid schema hello (the default, matching TCP behavior); tests pass
  /// false to probe the handshake enforcement itself.
  static std::pair<std::shared_ptr<LoopbackTransport>, std::shared_ptr<LoopbackTransport>>
  createPair(bool withHandshake = true);

  void send(MessageType type, const Bytes& payload) override;
  std::size_t poll(const FrameFn& fn) override;
  bool closed() const override;
  void close() override;

 private:
  struct Shared {
    std::mutex mutex;
    std::deque<Bytes> aToB;
    std::deque<Bytes> bToA;
    bool closed = false;
  };

  LoopbackTransport(std::shared_ptr<Shared> shared, bool isA)
      : shared_(std::move(shared)), isA_(isA) {}

  std::shared_ptr<Shared> shared_;
  bool isA_;
  FrameDecoder decoder_;
};

}  // namespace casched::wire
