#pragma once
/// \file transport.hpp
/// Message transports. LoopbackTransport is a thread-safe in-process pipe
/// used by the protocol tests and as a stand-in for sockets; TcpTransport
/// (tcp_transport.hpp) carries the same frames over real sockets for the
/// grid_rpc_demo example.

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "wire/framing.hpp"

namespace casched::wire {

/// A bidirectional, frame-oriented endpoint.
class Transport {
 public:
  using FrameFn = std::function<void(Frame)>;

  virtual ~Transport() = default;

  /// Sends one typed message (encoded + framed).
  virtual void send(MessageType type, const Bytes& payload) = 0;

  /// Receives all frames queued so far, invoking `fn` per frame, in order.
  /// Returns the number of frames delivered.
  virtual std::size_t poll(const FrameFn& fn) = 0;

  virtual bool closed() const = 0;
  virtual void close() = 0;
};

/// One end of an in-process pipe. Frames written to A are readable from B
/// and vice versa. Thread-safe; byte-accurate (frames are actually encoded
/// and re-decoded so the codec path is exercised).
class LoopbackTransport final : public Transport {
 public:
  /// Creates a connected pair.
  static std::pair<std::shared_ptr<LoopbackTransport>, std::shared_ptr<LoopbackTransport>>
  createPair();

  void send(MessageType type, const Bytes& payload) override;
  std::size_t poll(const FrameFn& fn) override;
  bool closed() const override;
  void close() override;

 private:
  struct Shared {
    std::mutex mutex;
    std::deque<Bytes> aToB;
    std::deque<Bytes> bToA;
    bool closed = false;
  };

  LoopbackTransport(std::shared_ptr<Shared> shared, bool isA)
      : shared_(std::move(shared)), isA_(isA) {}

  std::shared_ptr<Shared> shared_;
  bool isA_;
  FrameDecoder decoder_;
};

}  // namespace casched::wire
