#pragma once
/// \file buffer.hpp
/// Byte-order-safe serialization primitives. All integers travel little-
/// endian; doubles as IEEE-754 bit patterns. Readers are bounds-checked and
/// throw DecodeError on truncated input - malformed frames must never crash
/// an agent.

#include <cstdint>
#include <string>
#include <vector>

namespace casched::wire {

using Bytes = std::vector<std::uint8_t>;

/// Appends typed values to a byte vector.
class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& v);
  /// Length-prefixed (u32) raw bytes.
  void bytes(const Bytes& v);

 private:
  Bytes& out_;
};

/// Consumes typed values from a byte span; throws util::DecodeError when the
/// input is too short.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const Bytes& data) : Reader(data.data(), data.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  Bytes bytes();

  std::size_t remaining() const { return size_ - pos_; }
  bool atEnd() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace casched::wire
