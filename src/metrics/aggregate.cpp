#include "metrics/aggregate.hpp"

#include "util/strings.hpp"

namespace casched::metrics {

void MetricAggregate::addRun(const RunMetrics& m) {
  completed.add(static_cast<double>(m.completed));
  makespan.add(m.makespan);
  sumFlow.add(m.sumFlow);
  maxFlow.add(m.maxFlow);
  maxStretch.add(m.maxStretch);
  meanStretch.add(m.meanStretch);
  simulatedEvents.add(static_cast<double>(m.simulatedEvents));
}

void MetricAggregate::addSooner(std::size_t count) {
  sooner.add(static_cast<double>(count));
}

std::string formatMeanSd(const util::RunningStat& s, int prec) {
  if (s.count() == 0) return "-";
  if (s.count() == 1) return util::formatNumber(s.mean(), prec);
  return util::formatNumber(s.mean(), prec) + " +-" + util::formatNumber(s.stddev(), prec);
}

}  // namespace casched::metrics
