#pragma once
/// \file metrics.hpp
/// The paper's metrics (section 3): makespan, sum-flow, max-flow,
/// max-stretch, plus the pairwise "number of tasks that finish sooner"
/// comparison against a baseline run. All are computed over completed tasks.

#include <cstddef>
#include <string>

#include "metrics/record.hpp"

namespace casched::metrics {

/// Scalar metrics of one run.
struct RunMetrics {
  std::size_t completed = 0;
  std::size_t lost = 0;
  double makespan = 0.0;     ///< max completion date
  double sumFlow = 0.0;      ///< sum of (completion - arrival)
  double maxFlow = 0.0;      ///< max flow
  double meanFlow = 0.0;
  double maxStretch = 0.0;   ///< max flow / unloaded duration
  double meanStretch = 0.0;
  /// Discrete events processed by the simulation engine (throughput
  /// accounting: events / wall second is the per-scenario perf record).
  std::uint64_t simulatedEvents = 0;
};

/// Computes every section-3 metric from a run.
RunMetrics computeMetrics(const RunResult& run);

/// |{ tasks j completed in both runs : C^a_j < C^b_j }| - the paper's
/// "number of tasks that finish sooner" with b = NetSolve's MCT.
std::size_t countSooner(const RunResult& a, const RunResult& b);

/// Mean absolute relative completion-date difference between two runs of the
/// same metatask (diagnostic for determinism/noise studies).
double meanCompletionShiftPercent(const RunResult& a, const RunResult& b);

/// One-line human-readable rendering (examples' output).
std::string formatMetrics(const RunMetrics& m);

}  // namespace casched::metrics
