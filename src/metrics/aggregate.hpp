#pragma once
/// \file aggregate.hpp
/// Aggregation of run metrics over replications - the paper's Tables 7-8
/// report the mean of several executions of each metatask per heuristic.

#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace casched::metrics {

/// Mean/stddev per metric over a set of replications of the same
/// (metatask, heuristic) cell.
struct MetricAggregate {
  util::RunningStat completed;
  util::RunningStat makespan;
  util::RunningStat sumFlow;
  util::RunningStat maxFlow;
  util::RunningStat maxStretch;
  util::RunningStat meanStretch;
  util::RunningStat simulatedEvents;  ///< engine events per run (throughput)
  util::RunningStat sooner;  ///< vs the baseline runs (when computed)

  void addRun(const RunMetrics& m);
  void addSooner(std::size_t count);
};

/// Formats "mean +- sd" the way the paper annotates Tables 7-8.
std::string formatMeanSd(const util::RunningStat& s, int prec = 0);

}  // namespace casched::metrics
