#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::metrics {

std::size_t RunResult::completedCount() const {
  return static_cast<std::size_t>(
      std::count_if(tasks.begin(), tasks.end(), [](const TaskOutcome& t) {
        return t.status == TaskStatus::kCompleted;
      }));
}

std::size_t RunResult::lostCount() const { return tasks.size() - completedCount(); }

RunMetrics computeMetrics(const RunResult& run) {
  RunMetrics m;
  m.simulatedEvents = run.simulatedEvents;
  for (const TaskOutcome& t : run.tasks) {
    if (t.status != TaskStatus::kCompleted) {
      ++m.lost;
      continue;
    }
    CASCHED_CHECK(t.completion >= t.arrival, "completion before arrival");
    ++m.completed;
    const double flow = t.flow();
    m.makespan = std::max(m.makespan, t.completion);
    m.sumFlow += flow;
    m.maxFlow = std::max(m.maxFlow, flow);
    m.meanFlow += flow;
    const double stretch = t.stretch();
    m.maxStretch = std::max(m.maxStretch, stretch);
    m.meanStretch += stretch;
  }
  if (m.completed > 0) {
    m.meanFlow /= static_cast<double>(m.completed);
    m.meanStretch /= static_cast<double>(m.completed);
  }
  return m;
}

std::size_t countSooner(const RunResult& a, const RunResult& b) {
  CASCHED_CHECK(a.tasks.size() == b.tasks.size(),
                "countSooner requires runs of the same metatask");
  std::size_t sooner = 0;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const TaskOutcome& ta = a.tasks[i];
    const TaskOutcome& tb = b.tasks[i];
    CASCHED_CHECK(ta.index == tb.index, "task order mismatch between runs");
    if (ta.status == TaskStatus::kCompleted && tb.status == TaskStatus::kCompleted &&
        ta.completion < tb.completion) {
      ++sooner;
    }
  }
  return sooner;
}

double meanCompletionShiftPercent(const RunResult& a, const RunResult& b) {
  CASCHED_CHECK(a.tasks.size() == b.tasks.size(),
                "comparison requires runs of the same metatask");
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const TaskOutcome& ta = a.tasks[i];
    const TaskOutcome& tb = b.tasks[i];
    if (ta.status != TaskStatus::kCompleted || tb.status != TaskStatus::kCompleted) {
      continue;
    }
    const double ref = std::max(1e-9, tb.completion - tb.arrival);
    sum += std::abs(ta.completion - tb.completion) / ref;
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * sum / static_cast<double>(n);
}

std::string formatMetrics(const RunMetrics& m) {
  return util::strformat(
      "completed=%zu lost=%zu makespan=%.1f sumflow=%.1f maxflow=%.1f "
      "maxstretch=%.2f meanstretch=%.2f",
      m.completed, m.lost, m.makespan, m.sumFlow, m.maxFlow, m.maxStretch,
      m.meanStretch);
}

}  // namespace casched::metrics
