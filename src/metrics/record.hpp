#pragma once
/// \file record.hpp
/// Per-run observational data: one outcome per metatask task plus per-server
/// summaries. Everything the paper's metrics (section 3) need is here.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace casched::metrics {

enum class TaskStatus : std::uint8_t {
  kCompleted,  ///< finished and returned its output
  kLost,       ///< failed and (if fault tolerance was on) exhausted retries
};

/// Outcome of one task of the metatask.
struct TaskOutcome {
  std::uint64_t index = 0;      ///< position in the metatask
  std::string typeName;
  std::string server;           ///< final server it ran on ("" when lost)
  simcore::SimTime arrival = 0.0;
  simcore::SimTime scheduledAt = -1.0;
  simcore::SimTime completion = -1.0;       ///< valid when kCompleted
  double unloadedDuration = 0.0;            ///< rho on the final server
  simcore::SimTime htmPredictedCompletion = -1.0;  ///< last committed sigma'
  int attempts = 0;                         ///< 1 + retries
  TaskStatus status = TaskStatus::kLost;

  double flow() const { return completion - arrival; }
  double stretch() const {
    return unloadedDuration > 0.0 ? flow() / unloadedDuration : 0.0;
  }
};

/// Server-membership events applied during a run (scenario churn timeline).
struct ChurnSummary {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t slowdowns = 0;
  std::uint64_t links = 0;  ///< link-bandwidth churn episodes

  std::uint64_t total() const {
    return joins + leaves + crashes + slowdowns + links;
  }
};

/// Mesh-routing events applied during a run (multi-agent mesh deployments;
/// all-zero for the paper's single agent).
struct MeshSummary {
  std::uint64_t forwards = 0;       ///< requests transferred to a peer agent
  std::uint64_t forwardDenies = 0;  ///< requests denied (no feasible agent anywhere)
  std::uint64_t steals = 0;         ///< tasks pulled off a peer's parked queue
  std::uint64_t parked = 0;         ///< tasks ever parked awaiting a steal

  std::uint64_t total() const { return forwards + forwardDenies + steals + parked; }
};

/// Per-server aggregate over a run.
struct ServerSummary {
  std::uint64_t tasksCompleted = 0;
  std::uint64_t tasksFailed = 0;
  std::uint64_t collapses = 0;
  double peakResidentMB = 0.0;
  double busySeconds = 0.0;
  double peakLoadReported = 0.0;
};

/// Full result of executing one metatask under one heuristic.
struct RunResult {
  std::string heuristic;
  std::string metataskName;
  std::vector<TaskOutcome> tasks;          ///< ordered by metatask index
  std::map<std::string, ServerSummary> servers;
  simcore::SimTime endTime = 0.0;
  std::uint64_t simulatedEvents = 0;
  double htmMeanRelErrorPercent = 0.0;     ///< prediction accuracy (Table 1)
  ChurnSummary churn;                      ///< membership events applied
  MeshSummary mesh;                        ///< mesh-routing events applied

  std::size_t completedCount() const;
  std::size_t lostCount() const;
};

}  // namespace casched::metrics
