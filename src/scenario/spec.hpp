#pragma once
/// \file spec.hpp
/// Declarative description of a full experiment: arrival process, workload
/// mix, platform, system parameters and a server-churn timeline. A spec is
/// pure data - the parser reads/writes it as sectioned `key = value` text and
/// the generator compiles it (plus a seed) into the concrete
/// Testbed + Metatask + SystemConfig + ChurnEvent objects the middleware runs.

#include <cstdint>
#include <string>
#include <vector>

#include "workload/arrival.hpp"
#include "workload/task_types.hpp"

namespace casched::scenario {

/// [arrival] section.
struct ArrivalSpec {
  workload::ArrivalPattern pattern;
  double meanInterarrival = 20.0;  ///< long-run mean gap, every process kind
};

/// One `mix = <type> : <weight>` line; the type name must resolve against the
/// paper families ("matmul-<size>" or "waste-cpu-<param>").
struct MixEntry {
  std::string typeName;
  double weight = 1.0;
};

/// One `custom = name, inMB, refSeconds, outMB, memMB, weight` line: a fully
/// parameterized synthetic task type joining the draw.
struct CustomType {
  workload::TaskType type;
  double weight = 1.0;
};

/// [workload] section.
struct WorkloadSpec {
  std::size_t count = 500;
  std::vector<MixEntry> mix;
  std::vector<CustomType> custom;
};

enum class PlatformKind : std::uint8_t {
  kPreset,    ///< one of the fixed testbeds: set1 | set2 | uniform-<n>
  kTemplate,  ///< n servers stamped from the machine catalog (or synthetic)
};

/// [platform] section.
struct PlatformSpec {
  PlatformKind kind = PlatformKind::kPreset;
  std::string preset = "set2";
  /// Template: number of servers to stamp.
  std::size_t servers = 4;
  /// Template: catalog machine names cycled over the servers. The single
  /// entry "uniform" stamps synthetic machines from the parameters below.
  std::vector<std::string> catalog{"uniform"};
  /// Template: relative speed spread; each server's speed index is scaled by
  /// a factor drawn uniformly from [1 - h, 1 + h].
  double heterogeneity = 0.0;
  /// Synthetic machine parameters (uniform template and churn joiners).
  double bwMBps = 10.0;
  double latency = 0.01;
  double ramMB = 1024.0;
  double swapMB = 256.0;
};

/// [system] section.
struct SystemSpec {
  double reportPeriod = 30.0;
  bool faultTolerance = false;
  int maxRetries = 5;
  double cpuNoiseAmplitude = 0.0;
  double linkNoiseAmplitude = 0.0;
  std::string htmSync = "drop-on-notice";
};

/// One `event = time, action, server[, value[, duration]]` line of the
/// [churn] section. `value` is the joiner's speed index (join) or the
/// capacity factor (slowdown | link). `duration` is the crash downtime in
/// seconds (crash's optional 4th field; 0 = the machine's own recovery time)
/// or, for slowdown | link, the optional 5th field after which the factor
/// restores to 1.0 on its own (0 = persistent).
struct ChurnSpec {
  double time = 0.0;
  std::string action;  ///< join | leave | crash | slowdown | link
  std::string server;
  double value = 1.0;
  double duration = 0.0;
};

/// One `domain = name : server, server, ...` line of the [faults] section: a
/// correlated failure domain (rack/zone). One outage draw kills every member.
struct FaultDomainSpec {
  std::string name;
  std::vector<std::string> servers;
};

/// One timestamped down/up observation from a recorded failure trace:
/// either an inline `trace-event = time, down | up, server` line or one CSV
/// row of a `trace = file.csv` import. Compiled by pairing each server's
/// down with the matching up into a crash ChurnEvent of that duration.
struct FaultTraceEventSpec {
  double time = 0.0;
  bool down = true;
  std::string server;
};

/// [faults] section: seeded generative fault processes, compiled into the
/// same churn timeline hand-written [churn] events produce. All processes
/// are disabled by default; enabling any requires a positive horizon. Times
/// are simulated seconds throughout.
struct FaultsSpec {
  /// Generation window: events are drawn in [0, horizon).
  double horizon = 0.0;
  /// Per-server crash-repair renewal process: Weibull time-to-failure with
  /// mean `crashMtbf` and shape `crashShape` (1 = exponential/memoryless,
  /// >1 = wear-out), exponential repair with mean `crashMttr`.
  double crashMtbf = 0.0;  ///< 0 disables
  double crashMttr = 120.0;
  double crashShape = 1.0;
  /// Markov flapping: a sticky two-state up/down chain sampled every
  /// `flapTick` seconds; stay probabilities near 1 make both states sticky.
  /// Each maximal down run becomes one crash event with that downtime.
  double flapTick = 0.0;  ///< 0 disables
  double flapStayUp = 0.98;
  double flapStayDown = 0.6;
  /// Correlated failure domains: either explicit `domain = name : servers`
  /// lines or `domains = N` (round-robin assignment of the platform's
  /// servers into N zones). One outage draw crashes the whole domain.
  std::vector<FaultDomainSpec> domains;
  std::size_t autoDomains = 0;
  double outageMtbf = 0.0;  ///< 0 disables; per-domain mean time between outages
  double outageMttr = 180.0;
  /// CPU slowdown churn: per server, exponential gaps of mean `slowMtbf`
  /// between episodes, factor uniform in [slowMin, slowMax], episode length
  /// exponential with mean `slowDuration` (restores to full speed after).
  double slowMtbf = 0.0;  ///< 0 disables
  double slowMin = 0.5;
  double slowMax = 0.9;
  double slowDuration = 120.0;
  /// Bandwidth churn on links: same shape as the slowdown process, applied
  /// to the server's in/out link capacity.
  double linkMtbf = 0.0;  ///< 0 disables
  double linkMin = 0.3;
  double linkMax = 0.8;
  double linkDuration = 120.0;
  /// Trace-driven replay: a recorded down/up timeline imported from
  /// `trace = file.csv` (rows `time, down | up, server`; `#` comments) and/or
  /// inline `trace-event =` lines, validated at compile (timestamps
  /// monotone per server, servers must exist, downs must close or run to the
  /// horizon) and merged into the same churn timeline the stochastic
  /// processes feed.
  std::string traceFile;
  std::vector<FaultTraceEventSpec> traceEvents;
  /// Diurnal (time-varying) failure intensity: when `diurnalAmplitude` > 0,
  /// every stochastic gap draw at simulated time t is scaled by
  /// 1 / (1 + amplitude * sin(2*pi * t / period + phase)) — failures bunch
  /// when the modulation peaks and thin out in the trough, deterministically
  /// per seed, so sim and live replay stay digest-identical.
  double diurnalPeriod = 0.0;  ///< seconds per cycle; 0 disables
  double diurnalAmplitude = 0.0;
  double diurnalPhase = 0.0;  ///< radians

  /// True when any stochastic process is armed (these require a horizon).
  bool stochastic() const {
    return crashMtbf > 0.0 || flapTick > 0.0 || outageMtbf > 0.0 ||
           slowMtbf > 0.0 || linkMtbf > 0.0;
  }
  bool hasTrace() const { return !traceFile.empty() || !traceEvents.empty(); }
  bool enabled() const { return stochastic() || hasTrace(); }
};

/// One `event = time, crash, <agent-index>[, restart-after]` line of the
/// [agents] section: agent churn for multi-agent live deployments. A negative
/// restart-after (the default) means the agent stays dead and the deployment
/// fails over to the survivors; otherwise a fresh daemon comes back on the
/// same port that many simulated seconds later, warm-starting from the last
/// snapshot file.
struct AgentEventSpec {
  double time = 0.0;
  std::size_t agentIndex = 0;
  double restartAfter = -1.0;
};

/// [agents] section: how many agent daemons a live deployment runs and how
/// they replicate. The simulator always runs the paper's single agent; this
/// section only shapes the loopback/net deployment of the same spec.
struct AgentsSpec {
  std::size_t count = 1;
  std::string mode = "replicated";  ///< replicated | partitioned
  /// Simulated seconds between kAgentSync broadcasts + snapshot saves.
  double syncPeriod = 5.0;
  std::vector<AgentEventSpec> events;
};

/// One `rack = <agent-index> : <server-index>[, <server-index>...]` line of
/// the [mesh] section: the platform servers (by testbed order) owned by that
/// agent. Servers not named in any rack line keep the deployment's default
/// round-robin homing.
struct RackSpec {
  std::size_t agentIndex = 0;
  std::vector<std::size_t> servers;
};

/// [mesh] section: the agent mesh layered on a partitioned multi-agent
/// deployment - request forwarding between peers, work-stealing, and
/// hierarchical (tree) topologies. Compiled into both the simulator's mesh
/// system and the live loopback deployment, so mesh scenarios keep the
/// sim/live count-agreement invariant.
struct MeshSpec {
  bool enabled = false;  ///< set by the presence of a [mesh] section
  /// Forward a request to the least-loaded peer when the local partition is
  /// saturated (no feasible server, or the overload threshold trips).
  bool forwarding = true;
  /// Max agent-to-agent transfers per task; 1 means a forwarded task cannot
  /// be forwarded again (no ping-pong).
  std::uint32_t hopLimit = 1;
  /// Forward when the best local predicted completion exceeds
  /// now + overloadThreshold simulated seconds; <= 0 disables the overload
  /// trigger (only no-feasible-server requests forward).
  double overloadThreshold = 0.0;
  /// Work-stealing: idle agents pull parked tasks from the most-loaded peer
  /// every stealPeriod simulated seconds; <= 0 disables stealing.
  double stealPeriod = 0.0;
  /// Max parked tasks handed over per steal.
  std::size_t stealBatch = 4;
  /// "flat": clients spread tasks over every agent. "tree": clients talk to
  /// the root agent only; the root owns no rack and routes to the leaves.
  std::string topology = "flat";
  /// Tree topology: index of the routing (root) agent.
  std::size_t root = 0;
  std::vector<RackSpec> racks;
};

/// [campaign] section: how the suite driver replicates and tabulates the
/// scenario. Absent sections keep these defaults, so every plain scenario is
/// already a one-metatask campaign.
struct CampaignSpec {
  /// Column order of the resulting table (paper order).
  std::vector<std::string> heuristics{"mct", "hmct", "mp", "msf"};
  /// Baseline of the "number of tasks that finish sooner" row.
  std::string baseline = "mct";
  std::size_t metatasks = 1;
  std::size_t replications = 3;
  /// scenario | paper | all | none - how fault tolerance is granted per
  /// heuristic ("scenario" applies the [system] flag uniformly).
  std::string ftPolicy = "scenario";
  /// Paper-style table title; empty derives one from name + description.
  std::string title;
};

/// One `axis = <parameter> : <v1, v2, ...>` line of the [sweep] section. The
/// suite runs the cross product of all axes as separate campaign variants.
/// Parameters: rate | report-period | noise | cpu-noise | link-noise |
/// htm-sync | count.
struct SweepAxis {
  std::string parameter;
  std::vector<std::string> values;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  ArrivalSpec arrival;
  WorkloadSpec workload;
  PlatformSpec platform;
  SystemSpec system;
  std::vector<ChurnSpec> churn;
  FaultsSpec faults;
  AgentsSpec agents;
  MeshSpec mesh;
  CampaignSpec campaign;
  std::vector<SweepAxis> sweep;
};

}  // namespace casched::scenario
