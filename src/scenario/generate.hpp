#pragma once
/// \file generate.hpp
/// Compiles a declarative ScenarioSpec + master seed into the concrete
/// objects one experiment run needs: a materialized Metatask, a Testbed, the
/// middleware SystemConfig and the churn timeline. Same spec + same seed =>
/// bit-identical compilation (all randomness flows through derived streams).

#include <cstdint>
#include <string>
#include <vector>

#include "cas/churn.hpp"
#include "cas/system.hpp"
#include "metrics/record.hpp"
#include "platform/testbed.hpp"
#include "scenario/spec.hpp"
#include "workload/metatask.hpp"

namespace casched::scenario {

/// Everything a run (or a campaign) needs, materialized from one seed.
struct CompiledScenario {
  std::string name;
  /// The generating config (campaigns re-derive per-metatask seeds from it).
  workload::MetataskConfig metataskConfig;
  workload::Metatask metatask;
  platform::Testbed testbed;
  cas::SystemConfig system;
  /// Hand-written [churn] events followed by the [faults]-generated stream
  /// (same seed => identical timeline), validated as one merged whole.
  std::vector<cas::ChurnEvent> churn;
  /// How many of `churn`'s events the [faults] processes generated.
  std::size_t generatedChurn = 0;
  /// Resolved correlated-failure domains ([faults] rack/zone tagging).
  std::vector<FaultDomainSpec> faultDomains;
  /// Multi-agent deployment shape ([agents] section, validated). The
  /// simulator runs the paper's single agent regardless; the live loopback
  /// harness deploys `agents.count` daemons and applies the agent-crash
  /// events.
  AgentsSpec agents;
  /// Agent-mesh shape ([mesh] section, validated): rack ownership, request
  /// forwarding, work-stealing and topology. When enabled, runScenario runs
  /// the multi-agent mesh simulator instead of the paper's single agent, and
  /// the live harness deploys the same mesh over loopback TCP.
  MeshSpec mesh;
};

/// Resolves a paper-family type name: "matmul-<size>" or "waste-cpu-<param>".
/// Throws util::ConfigError for anything else.
workload::TaskType resolveTypeName(const std::string& name);

CompiledScenario compileScenario(const ScenarioSpec& spec, std::uint64_t seed);

/// Runs one heuristic on a compiled scenario (churn timeline included).
metrics::RunResult runScenario(const CompiledScenario& compiled,
                               const std::string& heuristic);

}  // namespace casched::scenario
