#include "scenario/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <numbers>
#include <set>
#include <sstream>

#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::scenario {

namespace {

/// Process tags for two-level seed derivation: the faults seed derives one
/// sub-seed per process, which then derives one stream per server (or
/// domain) index. Unlike a fixed base-plus-index offset this cannot alias at
/// any fleet size, so enabling one process never perturbs another's draws.
constexpr std::uint64_t kCrashProcess = 1;
constexpr std::uint64_t kFlapProcess = 2;
constexpr std::uint64_t kSlowProcess = 3;
constexpr std::uint64_t kLinkProcess = 4;
constexpr std::uint64_t kOutageProcess = 5;

std::uint64_t processStream(std::uint64_t seed, std::uint64_t process,
                            std::size_t index) {
  return simcore::deriveSeed(simcore::deriveSeed(seed, process), index);
}

/// Downtimes and episode lengths stay strictly positive: a drawn 0 would
/// read as "machine default" (crash) or "persistent" (slowdown/link).
constexpr double kMinEpisode = 0.1;

/// Diurnal intensity modulation: a gap drawn at simulated time t is divided
/// by the instantaneous intensity 1 + A * sin(2*pi * t / P + phase), so
/// failures bunch where the modulation peaks and thin out in the trough.
/// Deterministic scaling of an already-drawn value - the RNG stream
/// consumption is unchanged, so enabling diurnal modulation never perturbs
/// which numbers the underlying processes draw.
double modulateGap(const FaultsSpec& spec, double t, double gap) {
  if (spec.diurnalAmplitude <= 0.0) return gap;
  const double angle =
      2.0 * std::numbers::pi * t / spec.diurnalPeriod + spec.diurnalPhase;
  return gap / (1.0 + spec.diurnalAmplitude * std::sin(angle));
}

double weibull(simcore::RandomStream& rng, double mean, double shape) {
  // Scale so the distribution's mean is `mean`: E = scale * Gamma(1 + 1/k).
  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  const double u = rng.uniform(0.0, 1.0);
  return scale * std::pow(-std::log1p(-u), 1.0 / shape);
}

cas::ChurnEvent crashEvent(double time, const std::string& server, double downtime) {
  cas::ChurnEvent e;
  e.time = time;
  e.action = cas::ChurnAction::kCrash;
  e.server = server;
  e.duration = std::max(kMinEpisode, downtime);
  return e;
}

cas::ChurnEvent factorEvent(cas::ChurnAction action, double time,
                            const std::string& server, double factor,
                            double duration) {
  cas::ChurnEvent e;
  e.time = time;
  e.action = action;
  e.server = server;
  e.factor = factor;
  e.duration = std::max(kMinEpisode, duration);
  return e;
}

/// Per-server crash-repair renewal: Weibull TTF, exponential repair. The
/// next failure clock starts when the repair finishes, so episodes on one
/// server never overlap.
void generateCrashRepair(const FaultsSpec& spec, const std::string& server,
                         std::uint64_t seed, std::vector<cas::ChurnEvent>& out) {
  simcore::RandomStream rng(seed);
  double t = modulateGap(spec, 0.0, weibull(rng, spec.crashMtbf, spec.crashShape));
  while (t < spec.horizon) {
    const double repair = std::max(kMinEpisode, rng.exponentialMean(spec.crashMttr));
    out.push_back(crashEvent(t, server, repair));
    const double up = t + repair;
    t = up + modulateGap(spec, up, weibull(rng, spec.crashMtbf, spec.crashShape));
  }
}

/// Markov flapping: sample the sticky two-state chain on its tick and emit
/// one crash per maximal down run (downtime = the run's length). A run still
/// open at the horizon is truncated there.
void generateFlapping(const FaultsSpec& spec, const std::string& server,
                      std::uint64_t seed, std::vector<cas::ChurnEvent>& out) {
  simcore::RandomStream rng(seed);
  bool up = true;
  double downStart = 0.0;
  for (double t = spec.flapTick; t < spec.horizon; t += spec.flapTick) {
    if (up) {
      if (!rng.bernoulli(spec.flapStayUp)) {
        up = false;
        downStart = t;
      }
    } else if (!rng.bernoulli(spec.flapStayDown)) {
      up = true;
      out.push_back(crashEvent(downStart, server, t - downStart));
    }
  }
  if (!up) out.push_back(crashEvent(downStart, server, spec.horizon - downStart));
}

/// Correlated outage: one renewal process per domain; each draw crashes
/// every member at the same instant with the same repair time.
void generateOutages(const FaultsSpec& spec, const FaultDomainSpec& domain,
                     std::uint64_t seed, std::vector<cas::ChurnEvent>& out) {
  simcore::RandomStream rng(seed);
  double t = modulateGap(spec, 0.0, rng.exponentialMean(spec.outageMtbf));
  while (t < spec.horizon) {
    const double repair = std::max(kMinEpisode, rng.exponentialMean(spec.outageMttr));
    for (const std::string& server : domain.servers) {
      out.push_back(crashEvent(t, server, repair));
    }
    const double up = t + repair;
    t = up + modulateGap(spec, up, rng.exponentialMean(spec.outageMtbf));
  }
}

/// Capacity churn (CPU or link): exponential gaps between episodes, uniform
/// factor, exponential episode length; the factor restores on its own.
void generateCapacityChurn(const FaultsSpec& spec, cas::ChurnAction action,
                           const std::string& server, double mtbf, double lo,
                           double hi, double meanDuration, std::uint64_t seed,
                           std::vector<cas::ChurnEvent>& out) {
  simcore::RandomStream rng(seed);
  double t = modulateGap(spec, 0.0, rng.exponentialMean(mtbf));
  while (t < spec.horizon) {
    const double factor = rng.uniform(lo, hi);
    const double duration = std::max(kMinEpisode, rng.exponentialMean(meanDuration));
    out.push_back(factorEvent(action, t, server, factor, duration));
    const double end = t + duration;
    t = end + modulateGap(spec, end, rng.exponentialMean(mtbf));
  }
}

void checkProbability(double p, const char* what) {
  if (p < 0.0 || p >= 1.0) {
    throw util::ConfigError(std::string("[faults] ") + what + " must be in [0, 1)");
  }
}

void checkFactorRange(double lo, double hi, const char* what) {
  if (lo <= 0.0 || hi > 1.0 || lo > hi) {
    throw util::ConfigError(std::string("[faults] ") + what +
                            " range wants 0 < min <= max <= 1");
  }
}

}  // namespace

void validateFaultsSpec(const FaultsSpec& spec) {
  // A negative rate/tick would read as "disabled" through enabled()'s > 0
  // tests; reject it instead of silently dropping the process.
  if (spec.horizon < 0.0 || spec.crashMtbf < 0.0 || spec.flapTick < 0.0 ||
      spec.outageMtbf < 0.0 || spec.slowMtbf < 0.0 || spec.linkMtbf < 0.0) {
    throw util::ConfigError("[faults] rates, ticks and horizon must be non-negative");
  }
  if (spec.diurnalAmplitude < 0.0 || spec.diurnalAmplitude >= 1.0) {
    throw util::ConfigError("[faults] diurnal-amplitude must be in [0, 1)");
  }
  if (!spec.enabled()) {
    if (!spec.domains.empty() || spec.autoDomains > 0) {
      throw util::ConfigError(
          "[faults] declares failure domains but no outage process (set "
          "outage-mtbf)");
    }
    if (spec.diurnalAmplitude > 0.0) {
      throw util::ConfigError(
          "[faults] diurnal modulation needs a stochastic process to modulate");
    }
    return;
  }
  if (spec.stochastic() && spec.horizon <= 0.0) {
    throw util::ConfigError("[faults] needs a positive horizon");
  }
  if (spec.diurnalAmplitude > 0.0) {
    if (spec.diurnalPeriod <= 0.0) {
      throw util::ConfigError(
          "[faults] diurnal-amplitude needs a positive diurnal-period");
    }
    if (!spec.stochastic()) {
      throw util::ConfigError(
          "[faults] diurnal modulation needs a stochastic process to modulate");
    }
  }
  for (const FaultTraceEventSpec& e : spec.traceEvents) {
    if (e.time < 0.0) {
      throw util::ConfigError("[faults] trace-event timestamps must be non-negative");
    }
  }
  if (spec.crashMtbf > 0.0 && spec.crashMttr <= 0.0) {
    throw util::ConfigError("[faults] crash-mttr must be positive");
  }
  if (spec.crashMtbf > 0.0 && spec.crashShape <= 0.0) {
    throw util::ConfigError("[faults] crash-shape must be positive");
  }
  if (spec.flapTick > 0.0) {
    checkProbability(spec.flapStayUp, "flap-stay-up");
    checkProbability(spec.flapStayDown, "flap-stay-down");
  }
  if (spec.outageMtbf > 0.0) {
    if (spec.domains.empty() && spec.autoDomains == 0) {
      throw util::ConfigError(
          "[faults] outage process needs failure domains (domain = ... lines "
          "or domains = N)");
    }
    if (spec.outageMttr <= 0.0) {
      throw util::ConfigError("[faults] outage-mttr must be positive");
    }
  }
  if (!spec.domains.empty() && spec.autoDomains > 0) {
    throw util::ConfigError(
        "[faults] wants either explicit domain lines or domains = N, not both");
  }
  if (spec.slowMtbf > 0.0) {
    checkFactorRange(spec.slowMin, spec.slowMax, "slowdown factor");
    if (spec.slowDuration <= 0.0) {
      throw util::ConfigError("[faults] slow-duration must be positive");
    }
  }
  if (spec.linkMtbf > 0.0) {
    checkFactorRange(spec.linkMin, spec.linkMax, "link factor");
    if (spec.linkDuration <= 0.0) {
      throw util::ConfigError("[faults] link-duration must be positive");
    }
  }
}

std::vector<FaultDomainSpec> resolveFaultDomains(
    const FaultsSpec& spec, const std::vector<std::string>& servers) {
  if (spec.autoDomains > 0) {
    std::vector<FaultDomainSpec> out(std::min(spec.autoDomains, servers.size()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].name = util::strformat("zone-%zu", i);
    }
    for (std::size_t i = 0; i < servers.size(); ++i) {
      out[i % out.size()].servers.push_back(servers[i]);
    }
    return out;
  }
  const std::set<std::string> known(servers.begin(), servers.end());
  std::set<std::string> assigned;
  for (const FaultDomainSpec& d : spec.domains) {
    for (const std::string& server : d.servers) {
      if (known.count(server) == 0) {
        throw util::ConfigError("[faults] domain '" + d.name +
                                "' names unknown server '" + server + "'");
      }
      if (!assigned.insert(server).second) {
        throw util::ConfigError("[faults] server '" + server +
                                "' appears in more than one domain");
      }
    }
  }
  return spec.domains;
}

std::vector<cas::ChurnEvent> generateFaultTimeline(
    const FaultsSpec& spec, const std::vector<std::string>& servers,
    const std::vector<FaultDomainSpec>& domains, std::uint64_t seed) {
  validateFaultsSpec(spec);
  std::vector<cas::ChurnEvent> out;
  if (!spec.enabled()) return out;

  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (spec.crashMtbf > 0.0) {
      generateCrashRepair(spec, servers[i], processStream(seed, kCrashProcess, i),
                          out);
    }
    if (spec.flapTick > 0.0) {
      generateFlapping(spec, servers[i], processStream(seed, kFlapProcess, i), out);
    }
    if (spec.slowMtbf > 0.0) {
      generateCapacityChurn(spec, cas::ChurnAction::kSlowdown, servers[i],
                            spec.slowMtbf, spec.slowMin, spec.slowMax,
                            spec.slowDuration, processStream(seed, kSlowProcess, i),
                            out);
    }
    if (spec.linkMtbf > 0.0) {
      generateCapacityChurn(spec, cas::ChurnAction::kLink, servers[i], spec.linkMtbf,
                            spec.linkMin, spec.linkMax, spec.linkDuration,
                            processStream(seed, kLinkProcess, i), out);
    }
  }
  if (spec.outageMtbf > 0.0) {
    for (std::size_t d = 0; d < domains.size(); ++d) {
      generateOutages(spec, domains[d], processStream(seed, kOutageProcess, d), out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const cas::ChurnEvent& a, const cas::ChurnEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::vector<FaultTraceEventSpec> parseFaultTrace(const std::string& text,
                                                 const std::string& source) {
  std::vector<FaultTraceEventSpec> out;
  const std::vector<std::string> lines = util::split(text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = util::trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& what) {
      throw util::ConfigError("[faults] trace '" + source + "' row " +
                              std::to_string(i + 1) + ": " + what);
    };
    const std::vector<std::string> fields = util::split(line, ',');
    if (fields.size() != 3) fail("wants 'time, down | up, server'");
    FaultTraceEventSpec e;
    try {
      std::size_t consumed = 0;
      const std::string token(util::trim(fields[0]));
      e.time = std::stod(token, &consumed);
      if (consumed != token.size()) fail("bad timestamp '" + token + "'");
    } catch (const util::ConfigError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad timestamp '" + std::string(util::trim(fields[0])) + "'");
    }
    const std::string action = util::toLower(util::trim(fields[1]));
    if (action == "down") {
      e.down = true;
    } else if (action == "up") {
      e.down = false;
    } else {
      fail("action must be down | up, got '" + action + "'");
    }
    e.server = std::string(util::trim(fields[2]));
    if (e.server.empty()) fail("wants a server name");
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<cas::ChurnEvent> compileFaultTrace(
    const FaultsSpec& spec, const std::vector<std::string>& servers) {
  std::vector<FaultTraceEventSpec> events = spec.traceEvents;
  if (!spec.traceFile.empty()) {
    std::ifstream is(spec.traceFile);
    if (!is) {
      throw util::ConfigError("[faults] cannot open trace file '" +
                              spec.traceFile + "'");
    }
    std::ostringstream text;
    text << is.rdbuf();
    std::vector<FaultTraceEventSpec> fromFile =
        parseFaultTrace(text.str(), spec.traceFile);
    events.insert(events.end(), std::make_move_iterator(fromFile.begin()),
                  std::make_move_iterator(fromFile.end()));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultTraceEventSpec& a, const FaultTraceEventSpec& b) {
                     return a.time < b.time;
                   });

  const std::set<std::string> known(servers.begin(), servers.end());
  std::map<std::string, double> openDown;  // server -> time it went down
  std::map<std::string, double> lastTime;  // server -> last transition time
  std::vector<cas::ChurnEvent> out;
  for (const FaultTraceEventSpec& e : events) {
    if (e.time < 0.0) {
      throw util::ConfigError("[faults] trace timestamps must be non-negative");
    }
    if (known.count(e.server) == 0) {
      throw util::ConfigError("[faults] trace names unknown server '" +
                              e.server + "'");
    }
    const auto [it, inserted] = lastTime.try_emplace(e.server, e.time);
    if (!inserted) {
      if (e.time <= it->second) {
        throw util::ConfigError(
            "[faults] trace timestamps for server '" + e.server +
            "' must be strictly increasing (saw " +
            util::strformat("%g after %g", e.time, it->second) + ")");
      }
      it->second = e.time;
    }
    if (e.down) {
      if (openDown.count(e.server) != 0) {
        throw util::ConfigError("[faults] trace server '" + e.server +
                                "' goes down twice with no up in between");
      }
      openDown.emplace(e.server, e.time);
    } else {
      const auto down = openDown.find(e.server);
      if (down == openDown.end()) {
        throw util::ConfigError("[faults] trace server '" + e.server +
                                "' comes up without going down first");
      }
      out.push_back(crashEvent(down->second, e.server, e.time - down->second));
      openDown.erase(down);
    }
  }
  // A down with no matching up replays as "down for the rest of the run":
  // the horizon closes it, exactly as it truncates the stochastic processes.
  for (const auto& [server, downTime] : openDown) {
    if (spec.horizon <= downTime) {
      throw util::ConfigError(
          "[faults] trace leaves server '" + server +
          "' down with no up event; set a horizon past " +
          util::strformat("%g", downTime) + " to close it");
    }
    out.push_back(crashEvent(downTime, server, spec.horizon - downTime));
  }
  return out;
}

ChurnTimelineSummary summarizeChurnTimeline(
    const std::vector<cas::ChurnEvent>& events,
    const std::vector<FaultDomainSpec>& domains) {
  ChurnTimelineSummary s;
  struct DownInterval {
    std::string server;
    double start;
    double end;
  };
  std::vector<DownInterval> down;
  double downtimeSum = 0.0;
  for (const cas::ChurnEvent& e : events) {
    switch (e.action) {
      case cas::ChurnAction::kCrash:
        ++s.crashes;
        downtimeSum += e.duration;
        if (e.duration > 0.0) down.push_back({e.server, e.time, e.time + e.duration});
        break;
      case cas::ChurnAction::kSlowdown: ++s.slowdowns; break;
      case cas::ChurnAction::kLink: ++s.linkEvents; break;
      case cas::ChurnAction::kJoin: ++s.joins; break;
      case cas::ChurnAction::kLeave: ++s.leaves; break;
    }
  }
  if (s.crashes > 0) downtimeSum /= static_cast<double>(s.crashes);
  s.meanDowntime = downtimeSum;

  // Sweep the interval starts: concurrency only changes when something goes
  // down, so evaluating membership at each start is exact (half-open ends).
  for (const DownInterval& probe : down) {
    const double t = probe.start;
    std::set<std::string> deadServers;
    for (const DownInterval& d : down) {
      if (d.start <= t && t < d.end) deadServers.insert(d.server);
    }
    s.maxConcurrentDown = std::max(s.maxConcurrentDown, deadServers.size());
    std::size_t deadDomains = 0;
    for (const FaultDomainSpec& domain : domains) {
      if (domain.servers.empty()) continue;
      bool allDead = true;
      for (const std::string& server : domain.servers) {
        if (deadServers.count(server) == 0) {
          allDead = false;
          break;
        }
      }
      if (allDead) ++deadDomains;
    }
    s.maxConcurrentDeadDomains = std::max(s.maxConcurrentDeadDomains, deadDomains);
  }
  return s;
}

void ChurnDigest::fold(const cas::ChurnEvent& e) {
  const auto mix = [this](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ULL;  // FNV prime
    }
  };
  const auto mixDouble = [&mix](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(&bits, sizeof(bits));
  };
  mixDouble(e.time);
  const auto action = static_cast<unsigned char>(e.action);
  mix(&action, 1);
  mix(e.server.data(), e.server.size());
  mixDouble(e.factor);
  mixDouble(e.duration);
  mixDouble(e.speedIndex);
}

std::uint64_t churnTimelineDigest(std::vector<cas::ChurnEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const cas::ChurnEvent& a, const cas::ChurnEvent& b) {
                     return a.time < b.time;
                   });
  ChurnDigest digest;
  for (const cas::ChurnEvent& e : events) digest.fold(e);
  return digest.value();
}

}  // namespace casched::scenario
