#include "scenario/parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "cas/churn.hpp"
#include "scenario/faults.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::scenario {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw util::ConfigError("scenario line " + std::to_string(line) + ": " + what);
}

double parseDouble(std::size_t line, std::string_view value) {
  try {
    std::size_t consumed = 0;
    const std::string s(value);
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) fail(line, "trailing characters in number '" + s + "'");
    return v;
  } catch (const util::Error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "cannot parse number '" + std::string(value) + "'");
  }
}

std::size_t parseCount(std::size_t line, std::string_view value) {
  const double v = parseDouble(line, value);
  // Guard before the cast: float->integer conversion of NaN or out-of-range
  // values is undefined behavior. 2^53 keeps the double exactly integral.
  if (!std::isfinite(v) || v < 0.0 || v > 9007199254740992.0 ||
      v != std::floor(v)) {
    fail(line, "expected a non-negative integer, got '" + std::string(value) + "'");
  }
  return static_cast<std::size_t>(v);
}

bool parseBool(std::size_t line, std::string_view value) {
  const std::string v = util::toLower(value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  fail(line, "expected a boolean, got '" + std::string(value) + "'");
}

/// Comma-separated fields, each trimmed.
std::vector<std::string> commaFields(std::string_view value) {
  std::vector<std::string> fields;
  for (const std::string& f : util::split(value, ',')) {
    fields.push_back(std::string(util::trim(f)));
  }
  return fields;
}

void setArrivalKey(ArrivalSpec& a, std::size_t line, const std::string& key,
                   std::string_view value) {
  if (key == "process") {
    try {
      a.pattern.kind = workload::parseArrivalKind(std::string(value));
    } catch (const util::Error& e) {
      fail(line, e.what());
    }
  } else if (key == "mean") {
    a.meanInterarrival = parseDouble(line, value);
  } else if (key == "on") {
    a.pattern.burstOn = parseDouble(line, value);
  } else if (key == "off") {
    a.pattern.burstOff = parseDouble(line, value);
  } else if (key == "period") {
    a.pattern.period = parseDouble(line, value);
  } else if (key == "amplitude") {
    a.pattern.amplitude = parseDouble(line, value);
  } else if (key == "alpha") {
    a.pattern.alpha = parseDouble(line, value);
  } else {
    fail(line, "unknown [arrival] key '" + key + "'");
  }
}

void setWorkloadKey(WorkloadSpec& w, std::size_t line, const std::string& key,
                    std::string_view value) {
  if (key == "count") {
    w.count = parseCount(line, value);
  } else if (key == "mix") {
    // <type-name> [: <weight>]
    const auto parts = util::split(value, ':');
    if (parts.empty() || parts.size() > 2) fail(line, "mix wants 'type : weight'");
    MixEntry entry;
    entry.typeName = std::string(util::trim(parts[0]));
    if (entry.typeName.empty()) fail(line, "mix needs a type name");
    if (parts.size() == 2) entry.weight = parseDouble(line, util::trim(parts[1]));
    if (entry.weight <= 0.0) fail(line, "mix weight must be positive");
    w.mix.push_back(std::move(entry));
  } else if (key == "custom") {
    // name, inMB, refSeconds, outMB, memMB [, weight]
    const auto fields = commaFields(value);
    if (fields.size() != 5 && fields.size() != 6) {
      fail(line, "custom wants 'name, inMB, refSeconds, outMB, memMB[, weight]'");
    }
    CustomType custom;
    custom.type = workload::makeSyntheticType(
        fields[0], parseDouble(line, fields[1]), parseDouble(line, fields[2]),
        parseDouble(line, fields[3]), parseDouble(line, fields[4]));
    if (fields.size() == 6) custom.weight = parseDouble(line, fields[5]);
    if (custom.weight <= 0.0) fail(line, "custom weight must be positive");
    w.custom.push_back(std::move(custom));
  } else {
    fail(line, "unknown [workload] key '" + key + "'");
  }
}

void setPlatformKey(PlatformSpec& p, std::size_t line, const std::string& key,
                    std::string_view value) {
  if (key == "kind") {
    const std::string v = util::toLower(value);
    if (v == "preset") p.kind = PlatformKind::kPreset;
    else if (v == "template") p.kind = PlatformKind::kTemplate;
    else fail(line, "platform kind must be 'preset' or 'template'");
  } else if (key == "preset") {
    p.preset = std::string(value);
  } else if (key == "servers") {
    p.servers = parseCount(line, value);
  } else if (key == "catalog") {
    p.catalog = commaFields(value);
    if (p.catalog.empty()) fail(line, "catalog list must not be empty");
  } else if (key == "heterogeneity") {
    p.heterogeneity = parseDouble(line, value);
    if (p.heterogeneity < 0.0 || p.heterogeneity >= 1.0) {
      fail(line, "heterogeneity must be in [0, 1)");
    }
  } else if (key == "bandwidth") {
    p.bwMBps = parseDouble(line, value);
  } else if (key == "latency") {
    p.latency = parseDouble(line, value);
  } else if (key == "ram") {
    p.ramMB = parseDouble(line, value);
  } else if (key == "swap") {
    p.swapMB = parseDouble(line, value);
  } else {
    fail(line, "unknown [platform] key '" + key + "'");
  }
}

void setSystemKey(SystemSpec& s, std::size_t line, const std::string& key,
                  std::string_view value) {
  if (key == "report-period") {
    s.reportPeriod = parseDouble(line, value);
  } else if (key == "fault-tolerance") {
    s.faultTolerance = parseBool(line, value);
  } else if (key == "max-retries") {
    s.maxRetries = static_cast<int>(parseCount(line, value));
  } else if (key == "cpu-noise") {
    s.cpuNoiseAmplitude = parseDouble(line, value);
  } else if (key == "link-noise") {
    s.linkNoiseAmplitude = parseDouble(line, value);
  } else if (key == "htm-sync") {
    s.htmSync = std::string(value);
  } else {
    fail(line, "unknown [system] key '" + key + "'");
  }
}

void setCampaignKey(CampaignSpec& c, std::size_t line, const std::string& key,
                    std::string_view value) {
  if (key == "heuristics") {
    c.heuristics = commaFields(value);
    if (c.heuristics.empty() || c.heuristics[0].empty()) {
      fail(line, "heuristics list must not be empty");
    }
  } else if (key == "baseline") {
    c.baseline = std::string(value);
  } else if (key == "metatasks") {
    c.metatasks = parseCount(line, value);
    if (c.metatasks == 0) fail(line, "metatasks must be positive");
  } else if (key == "replications") {
    c.replications = parseCount(line, value);
    if (c.replications == 0) fail(line, "replications must be positive");
  } else if (key == "ft-policy") {
    const std::string v = util::toLower(value);
    if (v != "scenario" && v != "paper" && v != "all" && v != "none") {
      fail(line, "ft-policy must be scenario | paper | all | none");
    }
    c.ftPolicy = v;
  } else if (key == "title") {
    c.title = std::string(value);
  } else {
    fail(line, "unknown [campaign] key '" + key + "'");
  }
}

void addSweepAxis(std::vector<SweepAxis>& sweep, std::size_t line,
                  const std::string& key, std::string_view value) {
  if (key != "axis") fail(line, "unknown [sweep] key '" + key + "'");
  // <parameter> : <v1, v2, ...>
  const std::size_t colon = value.find(':');
  if (colon == std::string_view::npos) fail(line, "axis wants 'parameter : values'");
  SweepAxis axis;
  axis.parameter = util::toLower(util::trim(value.substr(0, colon)));
  if (axis.parameter.empty()) fail(line, "axis needs a parameter name");
  axis.values = commaFields(value.substr(colon + 1));
  if (axis.values.empty() || axis.values[0].empty()) {
    fail(line, "axis needs at least one value");
  }
  for (const SweepAxis& existing : sweep) {
    if (existing.parameter == axis.parameter) {
      fail(line, "duplicate sweep axis '" + axis.parameter + "'");
    }
  }
  sweep.push_back(std::move(axis));
}

void addChurnEvent(std::vector<ChurnSpec>& churn, std::size_t line,
                   const std::string& key, std::string_view value) {
  if (key != "event") fail(line, "unknown [churn] key '" + key + "'");
  // time, action, server [, value[, duration]] - the optional fields are
  // action-specific: join takes a speed index, crash a downtime, and
  // slowdown | link a capacity factor plus an optional self-recovery delay.
  const auto fields = commaFields(value);
  if (fields.size() < 3 || fields.size() > 5) {
    fail(line, "event wants 'time, action, server[, value[, duration]]'");
  }
  ChurnSpec e;
  e.time = parseDouble(line, fields[0]);
  e.action = util::toLower(fields[1]);
  cas::ChurnAction action;
  try {
    action = cas::parseChurnAction(e.action);  // one authoritative action list
  } catch (const util::Error& err) {
    fail(line, err.what());
  }
  e.server = fields[2];
  if (e.server.empty()) fail(line, "event needs a server name");
  switch (action) {
    case cas::ChurnAction::kLeave:
      if (fields.size() != 3) fail(line, "leave wants 'time, leave, server'");
      break;
    case cas::ChurnAction::kJoin:
      if (fields.size() > 4) fail(line, "join wants 'time, join, server[, speed]'");
      if (fields.size() == 4) e.value = parseDouble(line, fields[3]);
      break;
    case cas::ChurnAction::kCrash:
      if (fields.size() > 4) fail(line, "crash wants 'time, crash, server[, downtime]'");
      if (fields.size() == 4) {
        e.duration = parseDouble(line, fields[3]);
        if (e.duration <= 0.0) fail(line, "crash downtime must be positive");
      }
      break;
    case cas::ChurnAction::kSlowdown:
    case cas::ChurnAction::kLink:
      if (fields.size() >= 4) e.value = parseDouble(line, fields[3]);
      if (fields.size() == 5) {
        e.duration = parseDouble(line, fields[4]);
        if (e.duration <= 0.0) fail(line, "event duration must be positive");
      }
      break;
  }
  churn.push_back(std::move(e));
}

void setFaultsKey(FaultsSpec& f, std::size_t line, const std::string& key,
                  std::string_view value) {
  if (key == "horizon") {
    f.horizon = parseDouble(line, value);
  } else if (key == "crash-mtbf") {
    f.crashMtbf = parseDouble(line, value);
  } else if (key == "crash-mttr") {
    f.crashMttr = parseDouble(line, value);
  } else if (key == "crash-shape") {
    f.crashShape = parseDouble(line, value);
  } else if (key == "flap-tick") {
    f.flapTick = parseDouble(line, value);
  } else if (key == "flap-stay-up") {
    f.flapStayUp = parseDouble(line, value);
  } else if (key == "flap-stay-down") {
    f.flapStayDown = parseDouble(line, value);
  } else if (key == "domain") {
    // name : server, server, ...
    const std::size_t colon = value.find(':');
    if (colon == std::string_view::npos) fail(line, "domain wants 'name : servers'");
    FaultDomainSpec domain;
    domain.name = std::string(util::trim(value.substr(0, colon)));
    if (domain.name.empty()) fail(line, "domain needs a name");
    domain.servers = commaFields(value.substr(colon + 1));
    if (domain.servers.empty() || domain.servers[0].empty()) {
      fail(line, "domain needs at least one server");
    }
    for (const FaultDomainSpec& existing : f.domains) {
      if (existing.name == domain.name) {
        fail(line, "duplicate domain '" + domain.name + "'");
      }
    }
    f.domains.push_back(std::move(domain));
  } else if (key == "domains") {
    f.autoDomains = parseCount(line, value);
    if (f.autoDomains == 0) fail(line, "domains must be positive");
  } else if (key == "outage-mtbf") {
    f.outageMtbf = parseDouble(line, value);
  } else if (key == "outage-mttr") {
    f.outageMttr = parseDouble(line, value);
  } else if (key == "slow-mtbf") {
    f.slowMtbf = parseDouble(line, value);
  } else if (key == "slow-min") {
    f.slowMin = parseDouble(line, value);
  } else if (key == "slow-max") {
    f.slowMax = parseDouble(line, value);
  } else if (key == "slow-duration") {
    f.slowDuration = parseDouble(line, value);
  } else if (key == "link-mtbf") {
    f.linkMtbf = parseDouble(line, value);
  } else if (key == "link-min") {
    f.linkMin = parseDouble(line, value);
  } else if (key == "link-max") {
    f.linkMax = parseDouble(line, value);
  } else if (key == "link-duration") {
    f.linkDuration = parseDouble(line, value);
  } else if (key == "trace") {
    f.traceFile = std::string(util::trim(value));
    if (f.traceFile.empty()) fail(line, "trace wants a file path");
  } else if (key == "trace-event") {
    // time, down | up, server
    const std::vector<std::string> fields = commaFields(value);
    if (fields.size() != 3) {
      fail(line, "trace-event wants 'time, down | up, server'");
    }
    FaultTraceEventSpec e;
    e.time = parseDouble(line, fields[0]);
    if (e.time < 0.0) fail(line, "trace-event time must be non-negative");
    const std::string action = util::toLower(fields[1]);
    if (action == "down") {
      e.down = true;
    } else if (action == "up") {
      e.down = false;
    } else {
      fail(line, "trace-event action must be down | up, got '" + action + "'");
    }
    e.server = fields[2];
    if (e.server.empty()) fail(line, "trace-event wants a server name");
    f.traceEvents.push_back(std::move(e));
  } else if (key == "diurnal-period") {
    f.diurnalPeriod = parseDouble(line, value);
  } else if (key == "diurnal-amplitude") {
    f.diurnalAmplitude = parseDouble(line, value);
  } else if (key == "diurnal-phase") {
    f.diurnalPhase = parseDouble(line, value);
  } else {
    fail(line, "unknown [faults] key '" + key + "'");
  }
}

void setAgentsKey(AgentsSpec& a, std::size_t line, const std::string& key,
                  std::string_view value) {
  if (key == "count") {
    a.count = parseCount(line, value);
    if (a.count == 0) fail(line, "agent count must be positive");
  } else if (key == "mode") {
    const std::string v = util::toLower(value);
    if (v != "replicated" && v != "partitioned") {
      fail(line, "agent mode must be replicated | partitioned");
    }
    a.mode = v;
  } else if (key == "sync-period") {
    a.syncPeriod = parseDouble(line, value);
    if (a.syncPeriod <= 0.0) fail(line, "sync-period must be positive");
  } else if (key == "event") {
    // time, crash, agent-index [, restart-after]
    const auto fields = commaFields(value);
    if (fields.size() != 3 && fields.size() != 4) {
      fail(line, "event wants 'time, crash, agent-index[, restart-after]'");
    }
    if (util::toLower(fields[1]) != "crash") {
      fail(line, "only 'crash' agent events are supported, got '" + fields[1] + "'");
    }
    AgentEventSpec e;
    e.time = parseDouble(line, fields[0]);
    e.agentIndex = parseCount(line, fields[2]);
    if (fields.size() == 4) e.restartAfter = parseDouble(line, fields[3]);
    a.events.push_back(e);
  } else {
    fail(line, "unknown [agents] key '" + key + "'");
  }
}

void setMeshKey(MeshSpec& m, std::size_t line, const std::string& key,
                std::string_view value) {
  m.enabled = true;
  if (key == "forwarding") {
    m.forwarding = parseBool(line, value);
  } else if (key == "hop-limit") {
    m.hopLimit = static_cast<std::uint32_t>(parseCount(line, value));
    if (m.hopLimit == 0) fail(line, "hop-limit must be positive");
  } else if (key == "overload-threshold") {
    m.overloadThreshold = parseDouble(line, value);
  } else if (key == "steal-period") {
    m.stealPeriod = parseDouble(line, value);
  } else if (key == "steal-batch") {
    m.stealBatch = parseCount(line, value);
    if (m.stealBatch == 0) fail(line, "steal-batch must be positive");
  } else if (key == "topology") {
    const std::string v = util::toLower(value);
    if (v != "flat" && v != "tree") fail(line, "topology must be flat | tree");
    m.topology = v;
  } else if (key == "root") {
    m.root = parseCount(line, value);
  } else if (key == "rack") {
    // rack = <agent-index> : <server-index>[, <server-index>...]
    const std::size_t colon = value.find(':');
    if (colon == std::string_view::npos) {
      fail(line, "rack wants '<agent-index> : <server-index>, ...'");
    }
    RackSpec rack;
    rack.agentIndex = parseCount(line, util::trim(value.substr(0, colon)));
    for (const std::string& field : commaFields(value.substr(colon + 1))) {
      rack.servers.push_back(parseCount(line, field));
    }
    if (rack.servers.empty()) fail(line, "rack needs at least one server index");
    m.racks.push_back(std::move(rack));
  } else {
    fail(line, "unknown [mesh] key '" + key + "'");
  }
}

}  // namespace

ScenarioSpec parseScenario(const std::string& text) {
  ScenarioSpec spec;
  std::string section;
  std::size_t lineNo = 0;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineNo;
    // Strip comments and whitespace.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string_view lineView = util::trim(raw);
    if (lineView.empty()) continue;

    if (lineView.front() == '[') {
      if (lineView.back() != ']') fail(lineNo, "unterminated section header");
      section = util::toLower(lineView.substr(1, lineView.size() - 2));
      if (section != "scenario" && section != "arrival" && section != "workload" &&
          section != "platform" && section != "system" && section != "churn" &&
          section != "faults" && section != "agents" && section != "mesh" &&
          section != "campaign" && section != "sweep") {
        fail(lineNo, "unknown section [" + section + "]");
      }
      continue;
    }

    const std::size_t eq = lineView.find('=');
    if (eq == std::string::npos) fail(lineNo, "expected 'key = value'");
    const std::string key = util::toLower(util::trim(lineView.substr(0, eq)));
    const std::string_view value = util::trim(lineView.substr(eq + 1));
    if (key.empty()) fail(lineNo, "empty key");
    if (section.empty()) fail(lineNo, "key before any [section] header");

    if (section == "scenario") {
      if (key == "name") spec.name = std::string(value);
      else if (key == "description") spec.description = std::string(value);
      else fail(lineNo, "unknown [scenario] key '" + key + "'");
    } else if (section == "arrival") {
      setArrivalKey(spec.arrival, lineNo, key, value);
    } else if (section == "workload") {
      setWorkloadKey(spec.workload, lineNo, key, value);
    } else if (section == "platform") {
      setPlatformKey(spec.platform, lineNo, key, value);
    } else if (section == "system") {
      setSystemKey(spec.system, lineNo, key, value);
    } else if (section == "faults") {
      setFaultsKey(spec.faults, lineNo, key, value);
    } else if (section == "agents") {
      setAgentsKey(spec.agents, lineNo, key, value);
    } else if (section == "mesh") {
      setMeshKey(spec.mesh, lineNo, key, value);
    } else if (section == "campaign") {
      setCampaignKey(spec.campaign, lineNo, key, value);
    } else if (section == "sweep") {
      addSweepAxis(spec.sweep, lineNo, key, value);
    } else {  // churn
      addChurnEvent(spec.churn, lineNo, key, value);
    }
  }
  if (spec.name.empty()) throw util::ConfigError("scenario has no name");
  validateFaultsSpec(spec.faults);
  return spec;
}

std::string renderScenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "[scenario]\n"
      << "name = " << spec.name << "\n";
  if (!spec.description.empty()) out << "description = " << spec.description << "\n";

  const ArrivalSpec& a = spec.arrival;
  out << "\n[arrival]\n"
      << "process = " << workload::arrivalKindName(a.pattern.kind) << "\n"
      << "mean = " << util::strformat("%g", a.meanInterarrival) << "\n";
  switch (a.pattern.kind) {
    case workload::ArrivalKind::kBursty:
      out << "on = " << util::strformat("%g", a.pattern.burstOn) << "\n"
          << "off = " << util::strformat("%g", a.pattern.burstOff) << "\n";
      break;
    case workload::ArrivalKind::kDiurnal:
      out << "period = " << util::strformat("%g", a.pattern.period) << "\n"
          << "amplitude = " << util::strformat("%g", a.pattern.amplitude) << "\n";
      break;
    case workload::ArrivalKind::kPareto:
      out << "alpha = " << util::strformat("%g", a.pattern.alpha) << "\n";
      break;
    case workload::ArrivalKind::kPoisson:
      break;
  }

  const WorkloadSpec& w = spec.workload;
  out << "\n[workload]\n"
      << "count = " << w.count << "\n";
  for (const MixEntry& m : w.mix) {
    out << "mix = " << m.typeName << " : " << util::strformat("%g", m.weight) << "\n";
  }
  for (const CustomType& c : w.custom) {
    out << "custom = " << c.type.name << ", " << util::strformat("%g", c.type.inMB)
        << ", " << util::strformat("%g", c.type.refSeconds) << ", "
        << util::strformat("%g", c.type.outMB) << ", "
        << util::strformat("%g", c.type.memMB) << ", "
        << util::strformat("%g", c.weight) << "\n";
  }

  const PlatformSpec& p = spec.platform;
  out << "\n[platform]\n";
  if (p.kind == PlatformKind::kPreset) {
    out << "kind = preset\n"
        << "preset = " << p.preset << "\n";
  } else {
    out << "kind = template\n"
        << "servers = " << p.servers << "\n"
        << "catalog = " << util::join(p.catalog, ", ") << "\n"
        << "heterogeneity = " << util::strformat("%g", p.heterogeneity) << "\n";
  }
  out << "bandwidth = " << util::strformat("%g", p.bwMBps) << "\n"
      << "latency = " << util::strformat("%g", p.latency) << "\n"
      << "ram = " << util::strformat("%g", p.ramMB) << "\n"
      << "swap = " << util::strformat("%g", p.swapMB) << "\n";

  const SystemSpec& s = spec.system;
  out << "\n[system]\n"
      << "report-period = " << util::strformat("%g", s.reportPeriod) << "\n"
      << "fault-tolerance = " << (s.faultTolerance ? "true" : "false") << "\n"
      << "max-retries = " << s.maxRetries << "\n"
      << "cpu-noise = " << util::strformat("%g", s.cpuNoiseAmplitude) << "\n"
      << "link-noise = " << util::strformat("%g", s.linkNoiseAmplitude) << "\n"
      << "htm-sync = " << s.htmSync << "\n";

  const CampaignSpec& c = spec.campaign;
  out << "\n[campaign]\n"
      << "heuristics = " << util::join(c.heuristics, ", ") << "\n"
      << "baseline = " << c.baseline << "\n"
      << "metatasks = " << c.metatasks << "\n"
      << "replications = " << c.replications << "\n"
      << "ft-policy = " << c.ftPolicy << "\n";
  if (!c.title.empty()) out << "title = " << c.title << "\n";

  if (!spec.sweep.empty()) {
    out << "\n[sweep]\n";
    for (const SweepAxis& axis : spec.sweep) {
      out << "axis = " << axis.parameter << " : " << util::join(axis.values, ", ")
          << "\n";
    }
  }

  if (!spec.churn.empty()) {
    out << "\n[churn]\n";
    for (const ChurnSpec& e : spec.churn) {
      out << "event = " << util::strformat("%g", e.time) << ", " << e.action << ", "
          << e.server;
      if (e.action == "join") {
        out << ", " << util::strformat("%g", e.value);
      } else if (e.action == "crash") {
        if (e.duration > 0.0) out << ", " << util::strformat("%g", e.duration);
      } else if (e.action == "slowdown" || e.action == "link") {
        out << ", " << util::strformat("%g", e.value);
        if (e.duration > 0.0) out << ", " << util::strformat("%g", e.duration);
      }
      out << "\n";
    }
  }

  const FaultsSpec& f = spec.faults;
  if (f.enabled()) {
    out << "\n[faults]\n"
        << "horizon = " << util::strformat("%g", f.horizon) << "\n";
    if (f.crashMtbf > 0.0) {
      out << "crash-mtbf = " << util::strformat("%g", f.crashMtbf) << "\n"
          << "crash-mttr = " << util::strformat("%g", f.crashMttr) << "\n"
          << "crash-shape = " << util::strformat("%g", f.crashShape) << "\n";
    }
    if (f.flapTick > 0.0) {
      out << "flap-tick = " << util::strformat("%g", f.flapTick) << "\n"
          << "flap-stay-up = " << util::strformat("%g", f.flapStayUp) << "\n"
          << "flap-stay-down = " << util::strformat("%g", f.flapStayDown) << "\n";
    }
    for (const FaultDomainSpec& d : f.domains) {
      out << "domain = " << d.name << " : " << util::join(d.servers, ", ") << "\n";
    }
    if (f.autoDomains > 0) out << "domains = " << f.autoDomains << "\n";
    if (f.outageMtbf > 0.0) {
      out << "outage-mtbf = " << util::strformat("%g", f.outageMtbf) << "\n"
          << "outage-mttr = " << util::strformat("%g", f.outageMttr) << "\n";
    }
    if (f.slowMtbf > 0.0) {
      out << "slow-mtbf = " << util::strformat("%g", f.slowMtbf) << "\n"
          << "slow-min = " << util::strformat("%g", f.slowMin) << "\n"
          << "slow-max = " << util::strformat("%g", f.slowMax) << "\n"
          << "slow-duration = " << util::strformat("%g", f.slowDuration) << "\n";
    }
    if (f.linkMtbf > 0.0) {
      out << "link-mtbf = " << util::strformat("%g", f.linkMtbf) << "\n"
          << "link-min = " << util::strformat("%g", f.linkMin) << "\n"
          << "link-max = " << util::strformat("%g", f.linkMax) << "\n"
          << "link-duration = " << util::strformat("%g", f.linkDuration) << "\n";
    }
    if (!f.traceFile.empty()) out << "trace = " << f.traceFile << "\n";
    for (const FaultTraceEventSpec& e : f.traceEvents) {
      out << "trace-event = " << util::strformat("%g", e.time) << ", "
          << (e.down ? "down" : "up") << ", " << e.server << "\n";
    }
    if (f.diurnalAmplitude > 0.0) {
      out << "diurnal-period = " << util::strformat("%g", f.diurnalPeriod) << "\n"
          << "diurnal-amplitude = " << util::strformat("%g", f.diurnalAmplitude)
          << "\n"
          << "diurnal-phase = " << util::strformat("%g", f.diurnalPhase) << "\n";
    }
  }

  const AgentsSpec& ag = spec.agents;
  if (ag.count > 1 || !ag.events.empty()) {
    out << "\n[agents]\n"
        << "count = " << ag.count << "\n"
        << "mode = " << ag.mode << "\n"
        << "sync-period = " << util::strformat("%g", ag.syncPeriod) << "\n";
    for (const AgentEventSpec& e : ag.events) {
      out << "event = " << util::strformat("%g", e.time) << ", crash, " << e.agentIndex
          << ", " << util::strformat("%g", e.restartAfter) << "\n";
    }
  }

  const MeshSpec& mesh = spec.mesh;
  if (mesh.enabled) {
    out << "\n[mesh]\n"
        << "forwarding = " << (mesh.forwarding ? "true" : "false") << "\n"
        << "hop-limit = " << mesh.hopLimit << "\n"
        << "overload-threshold = " << util::strformat("%g", mesh.overloadThreshold)
        << "\n";
    if (mesh.stealPeriod > 0.0) {
      out << "steal-period = " << util::strformat("%g", mesh.stealPeriod) << "\n"
          << "steal-batch = " << mesh.stealBatch << "\n";
    }
    out << "topology = " << mesh.topology << "\n";
    if (mesh.topology == "tree") out << "root = " << mesh.root << "\n";
    for (const RackSpec& rack : mesh.racks) {
      out << "rack = " << rack.agentIndex << " : ";
      for (std::size_t i = 0; i < rack.servers.size(); ++i) {
        out << (i == 0 ? "" : ", ") << rack.servers[i];
      }
      out << "\n";
    }
  }
  return out.str();
}

ScenarioSpec loadScenario(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("cannot open scenario file '" + path + "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return parseScenario(ss.str());
}

}  // namespace casched::scenario
