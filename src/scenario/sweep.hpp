#pragma once
/// \file sweep.hpp
/// Expansion of a scenario's [sweep] axes into concrete variants: the cross
/// product of all axis values, each applied to a copy of the base spec. This
/// is how the ablation studies (rate sweeps, staleness sweeps, noise x
/// sync-policy grids) are expressed as plain registry entries.

#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.hpp"

namespace casched::scenario {

/// One concrete point of a sweep: the (parameter, value) coordinates that
/// produced it, applied to a copy of the base spec.
struct SweepPoint {
  std::vector<std::pair<std::string, std::string>> coordinates;
  ScenarioSpec spec;
};

/// The sweep parameters understood by applySweepValue().
const std::vector<std::string>& sweepParameters();

/// Returns a copy of `spec` with one swept parameter set. Throws
/// util::ConfigError for unknown parameters or unparseable values.
ScenarioSpec applySweepValue(ScenarioSpec spec, const std::string& parameter,
                             const std::string& value);

/// Cross product of the spec's sweep axes in declaration order (the last
/// axis varies fastest). A spec without a [sweep] section yields exactly one
/// point with no coordinates.
std::vector<SweepPoint> expandSweep(const ScenarioSpec& spec);

/// "rate=30 report-period=15" - human-readable coordinate label ("" for the
/// base point of an unswept scenario).
std::string sweepLabel(const SweepPoint& point);

}  // namespace casched::scenario
