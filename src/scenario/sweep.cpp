#include "scenario/sweep.hpp"

#include <cmath>

#include "core/htm.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::scenario {

namespace {

double sweepDouble(const std::string& parameter, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size() || !std::isfinite(v)) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw util::ConfigError("sweep axis '" + parameter + "': cannot parse number '" +
                            value + "'");
  }
}

double sweepPositive(const std::string& parameter, const std::string& value) {
  const double v = sweepDouble(parameter, value);
  if (v <= 0.0) {
    throw util::ConfigError("sweep axis '" + parameter + "' needs positive values");
  }
  return v;
}

double sweepNonNegative(const std::string& parameter, const std::string& value) {
  const double v = sweepDouble(parameter, value);
  if (v < 0.0) {
    throw util::ConfigError("sweep axis '" + parameter + "' needs non-negative values");
  }
  return v;
}

}  // namespace

const std::vector<std::string>& sweepParameters() {
  static const std::vector<std::string> params{
      "rate", "count", "report-period", "noise", "cpu-noise", "link-noise",
      "htm-sync"};
  return params;
}

ScenarioSpec applySweepValue(ScenarioSpec spec, const std::string& parameter,
                             const std::string& value) {
  const std::string p = util::toLower(parameter);
  if (p == "rate") {
    spec.arrival.meanInterarrival = sweepPositive(p, value);
  } else if (p == "count") {
    const double v = sweepPositive(p, value);
    if (v != std::floor(v)) {
      throw util::ConfigError("sweep axis 'count' needs integer values");
    }
    spec.workload.count = static_cast<std::size_t>(v);
  } else if (p == "report-period") {
    spec.system.reportPeriod = sweepPositive(p, value);
  } else if (p == "noise") {
    const double v = sweepNonNegative(p, value);
    spec.system.cpuNoiseAmplitude = v;
    spec.system.linkNoiseAmplitude = v;
  } else if (p == "cpu-noise") {
    spec.system.cpuNoiseAmplitude = sweepNonNegative(p, value);
  } else if (p == "link-noise") {
    spec.system.linkNoiseAmplitude = sweepNonNegative(p, value);
  } else if (p == "htm-sync") {
    (void)core::parseSyncPolicy(value);  // validate eagerly, fail with context
    spec.system.htmSync = value;
  } else {
    throw util::ConfigError("unknown sweep parameter '" + parameter + "' (want " +
                            util::join(sweepParameters(), " | ") + ")");
  }
  return spec;
}

std::vector<SweepPoint> expandSweep(const ScenarioSpec& spec) {
  std::vector<SweepPoint> points;
  points.push_back(SweepPoint{{}, spec});
  for (const SweepAxis& axis : spec.sweep) {
    std::vector<SweepPoint> next;
    next.reserve(points.size() * axis.values.size());
    for (const SweepPoint& base : points) {
      for (const std::string& value : axis.values) {
        SweepPoint point;
        point.coordinates = base.coordinates;
        point.coordinates.emplace_back(axis.parameter, value);
        point.spec = applySweepValue(base.spec, axis.parameter, value);
        next.push_back(std::move(point));
      }
    }
    points = std::move(next);
  }
  // The expanded variants are concrete: drop the axes so a variant rendered
  // and re-parsed does not expand again.
  for (SweepPoint& point : points) point.spec.sweep.clear();
  return points;
}

std::string sweepLabel(const SweepPoint& point) {
  std::vector<std::string> parts;
  parts.reserve(point.coordinates.size());
  for (const auto& [param, value] : point.coordinates) {
    parts.push_back(param + "=" + value);
  }
  return util::join(parts, " ");
}

}  // namespace casched::scenario
