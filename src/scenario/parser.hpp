#pragma once
/// \file parser.hpp
/// Hand-rolled parser for the scenario text format: `[section]` headers over
/// `key = value` lines, `#` comments, repeated keys only where the spec is a
/// list (mix, custom, event). The renderer writes a spec back out in the same
/// format, so parse(render(spec)) round-trips exactly.
///
///   [scenario]
///   name = churny-grid
///   description = joins, leaves and crashes on a heterogeneous grid
///
///   [arrival]
///   process = poisson          # poisson | bursty | diurnal | pareto
///   mean = 8
///
///   [workload]
///   count = 400
///   mix = waste-cpu-200 : 2
///
///   [platform]
///   kind = template            # preset | template
///   servers = 6
///
///   [campaign]
///   heuristics = mct, hmct, mp, msf
///   replications = 3           # mean +- sd over these
///   ft-policy = paper          # scenario | paper | all | none
///   title = Table 5. results for ...
///
///   [sweep]
///   axis = rate : 30, 27, 24   # cross product of all axes
///
///   [churn]
///   event = 600, leave, grid-1
///   event = 700, crash, grid-2, 45          # down for 45 s
///   event = 800, slowdown, grid-0, 0.5, 120 # half speed for 120 s
///
///   [faults]                    # generated churn (see scenario/faults.hpp)
///   horizon = 2400
///   flap-tick = 10
///   domains = 3
///   outage-mtbf = 900
///   outage-mttr = 150

#include <string>

#include "scenario/spec.hpp"

namespace casched::scenario {

/// Parses scenario text. Throws util::ConfigError with the offending line
/// number for unknown sections, unknown keys, or unparseable values.
ScenarioSpec parseScenario(const std::string& text);

/// Renders a spec as scenario text (the parser's inverse).
std::string renderScenario(const ScenarioSpec& spec);

/// Reads and parses a scenario file.
ScenarioSpec loadScenario(const std::string& path);

}  // namespace casched::scenario
