#include "scenario/registry.hpp"

#include <utility>

#include "scenario/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::scenario {

namespace {

struct NamedScenario {
  const char* name;
  const char* text;
};

/// The paper's calibrated operating points first (Tables 5-8; the numeric
/// rates reproduce the published contention regimes - see EXPERIMENTS.md),
/// then the ablation sweeps, then the production-shaped traffic scenarios,
/// membership stress and scale.
constexpr NamedScenario kRegistry[] = {
    {"paper/table5_matmul_low", R"(
[scenario]
name = paper/table5_matmul_low
description = Paper Table 5: 500 multiplication tasks on server set 1, low rate

[arrival]
process = poisson
mean = 30

[workload]
count = 500
mix = matmul-1200 : 1
mix = matmul-1500 : 1
mix = matmul-1800 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, mp, msf
baseline = mct
metatasks = 1
replications = 3
ft-policy = paper
title = Table 5. results for 1/lambda = 30s for multiplication tasks
)"},
    {"paper/table6_matmul_high", R"(
[scenario]
name = paper/table6_matmul_high
description = Paper Table 6: multiplication tasks at the high rate (memory-collapse regime)

[arrival]
process = poisson
mean = 21

[workload]
count = 500
mix = matmul-1200 : 1
mix = matmul-1500 : 1
mix = matmul-1800 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, mp, msf
baseline = mct
metatasks = 1
replications = 3
ft-policy = paper
title = Table 6. results for 1/lambda = 21s for multiplication tasks (MCT has NetSolve fault tolerance)
)"},
    {"paper/table7_wastecpu_low", R"(
[scenario]
name = paper/table7_wastecpu_low
description = Paper Table 7: waste-cpu tasks on server set 2, low rate, three metatasks

[arrival]
process = poisson
mean = 30

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, mp, msf
baseline = mct
metatasks = 3
replications = 3
ft-policy = paper
title = Table 7. results for 1/lambda = 30s for waste-cpu tasks
)"},
    {"paper/table8_wastecpu_high", R"(
[scenario]
name = paper/table8_wastecpu_high
description = Paper Table 8: waste-cpu tasks on server set 2, high rate, three metatasks

[arrival]
process = poisson
mean = 18

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, mp, msf
baseline = mct
metatasks = 3
replications = 3
ft-policy = paper
title = Table 8. results for 1/lambda = 18s for waste-cpu tasks
)"},
    {"ablation/rate_sweep", R"(
[scenario]
name = ablation/rate_sweep
description = Ablation A1: arrival-rate sweep over the waste-cpu workload (set 2)

[arrival]
process = poisson
mean = 30

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, mp, msf
baseline = mct
replications = 3
ft-policy = paper
title = Ablation: arrival-rate sweep (waste-cpu, set 2)

[sweep]
axis = rate : 30, 27, 24, 21, 18, 15
)"},
    {"ablation/staleness", R"(
[scenario]
name = ablation/staleness
description = Ablation A2: load-report staleness sweep, MCT vs the HTM heuristics

[arrival]
process = poisson
mean = 18

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, msf
baseline = mct
replications = 3
ft-policy = paper
title = Ablation: MCT under load-report staleness (waste-cpu, high rate)

[sweep]
axis = report-period : 5, 15, 30, 60, 120, 300
)"},
    {"ablation/htm_sync", R"(
[scenario]
name = ablation/htm_sync
description = Ablation A3: HTM synchronization policies under ground-truth noise

[arrival]
process = poisson
mean = 18

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[campaign]
heuristics = msf
baseline = msf
replications = 3
ft-policy = paper
title = Ablation: HTM sync policy vs noise (MSF, waste-cpu)

[sweep]
axis = noise : 0, 0.05, 0.1, 0.2
axis = htm-sync : predict-only, drop-on-notice, rescale
)"},
    {"ablation/memory_aware", R"(
[scenario]
name = ablation/memory_aware
description = Ablation A4: memory-aware admission vs the Table 6 collapse regime

[arrival]
process = poisson
mean = 21

[workload]
count = 500
mix = matmul-1200 : 1
mix = matmul-1500 : 1
mix = matmul-1800 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10

[campaign]
heuristics = mct, hmct, msf, ma-hmct, ma-msf
baseline = mct
replications = 3
ft-policy = paper
title = Ablation: memory-aware admission (matmul, high rate; 'ma-' = future-work decorator)
)"},
    {"burst-storm", R"(
[scenario]
name = burst-storm
description = On/off traffic: minute-long storms at 5x the sustainable rate

[arrival]
process = bursty
mean = 15
on = 60
off = 240

[workload]
count = 300
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 8
catalog = uniform
heterogeneity = 0.2

[system]
cpu-noise = 0.05
)"},
    {"diurnal-day", R"(
[scenario]
name = diurnal-day
description = One compressed day: sinusoidal rate swing of 80% around the mean

[arrival]
process = diurnal
mean = 12
period = 7200
amplitude = 0.8

[workload]
count = 600
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"heavy-tail", R"(
[scenario]
name = heavy-tail
description = Pareto inter-arrivals (alpha 1.3): long lulls, violent clumps

[arrival]
process = pareto
mean = 40
alpha = 1.3

[workload]
count = 400
mix = matmul-1200 : 1
mix = matmul-1500 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"flash-crowd", R"(
[scenario]
name = flash-crowd
description = Three servers near saturation; reinforcements join mid-run

[arrival]
process = poisson
mean = 6

[workload]
count = 300
mix = waste-cpu-200 : 1

[platform]
kind = template
servers = 3
catalog = uniform

[system]
fault-tolerance = true
cpu-noise = 0.05

[churn]
event = 600, join, surge-0, 1.2
event = 700, join, surge-1, 1.2
event = 800, join, surge-2, 1.0
)"},
    {"churny-grid", R"(
[scenario]
name = churny-grid
description = Dynamic membership: leaves, joins, a crash and a slowdown mid-run

[arrival]
process = poisson
mean = 8

[workload]
count = 400
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 6
catalog = uniform
heterogeneity = 0.3

[system]
fault-tolerance = true
max-retries = 5
cpu-noise = 0.05

[churn]
event = 400, slowdown, grid-0, 0.5
event = 600, leave, grid-1
event = 900, join, helper-0, 1.5
event = 1200, crash, grid-2
event = 1800, join, helper-1, 1.0
event = 2200, leave, grid-3
event = 2600, slowdown, grid-0, 1.0
)"},
    {"live-loopback", R"(
[scenario]
name = live-loopback
description = Distributed-runtime smoke: 3 servers, a graceful leave and a mid-run join over real sockets

[arrival]
process = poisson
mean = 5

[workload]
count = 24
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 3
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
report-period = 10

[churn]
event = 40, leave, grid-1
event = 60, join, helper-0, 1.5
)"},
    {"multi-agent-loopback", R"(
[scenario]
name = multi-agent-loopback
description = Two replicated agents over loopback sockets, no churn: live counts must match the single-agent simulator

[arrival]
process = poisson
mean = 5

[workload]
count = 24
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
report-period = 10

[agents]
count = 2
mode = replicated
sync-period = 5
)"},
    {"multi-agent-failover", R"(
[scenario]
name = multi-agent-failover
description = Split-brain churn: the primary agent crashes mid-run, servers and client fail over to the snapshot-warmed replica with zero lost tasks

[arrival]
process = poisson
mean = 5

[workload]
count = 24
# Heavy enough (~34 s reference) that the t=60 crash always catches tasks in
# flight - the fail-over paths are the point of this scenario.
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
max-retries = 8
report-period = 10

[agents]
count = 2
mode = replicated
sync-period = 5
event = 60, crash, 0, -1
)"},
    {"churn/flapping", R"(
[scenario]
name = churn/flapping
description = Generated Markov flapping: every server runs a sticky up/down chain, short outages kill in-flight work

[arrival]
process = poisson
mean = 5

[workload]
count = 24
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.3

[system]
fault-tolerance = true
max-retries = 8
report-period = 10

[campaign]
heuristics = mct, hmct, msf
baseline = mct
replications = 3

[faults]
horizon = 150
flap-tick = 5
flap-stay-up = 0.93
flap-stay-down = 0.5
)"},
    {"churn/zone_outage", R"(
[scenario]
name = churn/zone_outage
description = Correlated rack outages: 12 servers in 3 zones, one draw kills a whole zone; bandwidth churn rides along

[arrival]
process = poisson
mean = 8

[workload]
count = 300
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 12
catalog = uniform
heterogeneity = 0.3

[system]
fault-tolerance = true
max-retries = 8
cpu-noise = 0.05

[campaign]
heuristics = mct, hmct, msf
baseline = mct
replications = 3

[faults]
horizon = 2400
domains = 3
outage-mtbf = 900
outage-mttr = 150
link-mtbf = 600
link-min = 0.3
link-max = 0.7
link-duration = 120
)"},
    {"churn/soak", R"(
[scenario]
name = churn/soak
description = Long-horizon soak: every generated fault process at once on a 16-server, 2-agent deployment

[arrival]
process = poisson
mean = 12

[workload]
count = 500
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = template
servers = 16
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
max-retries = 10
cpu-noise = 0.05
report-period = 15

[campaign]
heuristics = hmct, msf
baseline = hmct
replications = 2

[agents]
count = 2
mode = replicated
sync-period = 10

[faults]
horizon = 6000
crash-mtbf = 1500
crash-mttr = 120
crash-shape = 1.5
flap-tick = 20
flap-stay-up = 0.995
flap-stay-down = 0.5
domains = 4
outage-mtbf = 3000
outage-mttr = 200
slow-mtbf = 900
slow-min = 0.4
slow-max = 0.8
slow-duration = 180
link-mtbf = 900
link-min = 0.3
link-max = 0.8
link-duration = 150
)"},
    {"churn/trace_replay", R"(
[scenario]
name = churn/trace_replay
description = Trace-driven replay: a recorded down/up timeline plus a diurnally-modulated crash process on 4 servers, replayed digest-identically in sim and live

[arrival]
process = poisson
mean = 5

[workload]
count = 24
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.3

[system]
fault-tolerance = true
max-retries = 8
report-period = 10

[campaign]
heuristics = mct, hmct, msf
baseline = mct
replications = 3

[faults]
horizon = 150
crash-mtbf = 120
crash-mttr = 15
crash-shape = 1
trace-event = 10, down, grid-1
trace-event = 28, up, grid-1
trace-event = 45, down, grid-3
trace-event = 60, up, grid-3
trace-event = 95, down, grid-1
diurnal-period = 120
diurnal-amplitude = 0.6
diurnal-phase = 0
)"},
    {"mesh/saturated_rescue", R"(
[scenario]
name = mesh/saturated_rescue
description = Two-partition mesh: agent 0 owns one server and saturates, forwarding rescues its overflow onto agent 1's three-server rack with zero lost tasks

[arrival]
process = poisson
mean = 5

[workload]
count = 24
# Heavy enough (~34 s reference) that agent 0's single server falls behind
# its ~10 s interarrival share - the rescue path is the point.
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
report-period = 10

[agents]
count = 2
mode = partitioned
sync-period = 5

[mesh]
forwarding = true
hop-limit = 1
overload-threshold = 60
topology = flat
rack = 0 : 0
rack = 1 : 1, 2, 3
)"},
    {"mesh/hierarchy_4agent", R"(
[scenario]
name = mesh/hierarchy_4agent
description = Hierarchical mesh: a serverless root agent routes every request to the least-loaded of three leaf agents, each owning a two-server rack

[arrival]
process = poisson
mean = 4

[workload]
count = 24
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 6
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
report-period = 10

[agents]
count = 4
mode = partitioned
sync-period = 5

[mesh]
forwarding = true
hop-limit = 1
topology = tree
root = 0
rack = 1 : 0, 1
rack = 2 : 2, 3
rack = 3 : 4, 5
)"},
    {"mesh/steal_tree", R"(
[scenario]
name = mesh/steal_tree
description = Work-stealing mesh: forwarding off, so the serverless root parks every request and the two leaf agents pull them off its queue via steal grants

[arrival]
process = poisson
mean = 5

[workload]
count = 20
mix = waste-cpu-60 : 1

[platform]
kind = template
servers = 4
catalog = uniform
heterogeneity = 0.4

[system]
fault-tolerance = true
report-period = 10

[agents]
count = 3
mode = partitioned
sync-period = 5

[mesh]
forwarding = false
steal-period = 5
steal-batch = 2
topology = tree
root = 0
rack = 1 : 0, 1
rack = 2 : 2, 3
)"},
    {"mega-cluster", R"(
[scenario]
name = mega-cluster
description = Scale test: 64 heterogeneous servers at sub-second arrival rate

[arrival]
process = poisson
mean = 0.6

[workload]
count = 1500
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 64
catalog = uniform
heterogeneity = 0.5

[system]
cpu-noise = 0.05
)"},
};

}  // namespace

const std::vector<std::string>& scenarioNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const NamedScenario& s : kRegistry) out.push_back(s.name);
    return out;
  }();
  return names;
}

std::vector<std::string> scenarioNamesWithPrefix(const std::string& prefix) {
  std::vector<std::string> out;
  for (const std::string& name : scenarioNames()) {
    if (util::startsWith(name, prefix)) out.push_back(name);
  }
  return out;
}

bool hasScenario(const std::string& name) {
  for (const NamedScenario& s : kRegistry) {
    if (name == s.name) return true;
  }
  return false;
}

const std::string& scenarioText(const std::string& name) {
  static const std::vector<std::pair<std::string, std::string>> texts = [] {
    std::vector<std::pair<std::string, std::string>> out;
    for (const NamedScenario& s : kRegistry) out.emplace_back(s.name, s.text);
    return out;
  }();
  for (const auto& [n, text] : texts) {
    if (n == name) return text;
  }
  throw util::ConfigError("unknown scenario '" + name + "'; available entries: " +
                          util::join(scenarioNames(), ", "));
}

ScenarioSpec findScenario(const std::string& name) {
  return parseScenario(scenarioText(name));
}

}  // namespace casched::scenario
