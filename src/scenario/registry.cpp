#include "scenario/registry.hpp"

#include <utility>

#include "scenario/parser.hpp"
#include "util/error.hpp"

namespace casched::scenario {

namespace {

struct NamedScenario {
  const char* name;
  const char* text;
};

/// The paper's two operating points first, then the production-shaped
/// traffic scenarios, then membership stress and scale.
constexpr NamedScenario kRegistry[] = {
    {"paper-low", R"(
[scenario]
name = paper-low
description = Paper Table 5 regime: matmul metatasks on server set 1, low rate

[arrival]
process = poisson
mean = 30

[workload]
count = 500
mix = matmul-1200 : 1
mix = matmul-1500 : 1
mix = matmul-1800 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"paper-high", R"(
[scenario]
name = paper-high
description = Paper Table 8 regime: waste-cpu metatasks on server set 2, high rate

[arrival]
process = poisson
mean = 18

[workload]
count = 500
mix = waste-cpu-200 : 1
mix = waste-cpu-400 : 1
mix = waste-cpu-600 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"burst-storm", R"(
[scenario]
name = burst-storm
description = On/off traffic: minute-long storms at 5x the sustainable rate

[arrival]
process = bursty
mean = 15
on = 60
off = 240

[workload]
count = 300
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 8
catalog = uniform
heterogeneity = 0.2

[system]
cpu-noise = 0.05
)"},
    {"diurnal-day", R"(
[scenario]
name = diurnal-day
description = One compressed day: sinusoidal rate swing of 80% around the mean

[arrival]
process = diurnal
mean = 12
period = 7200
amplitude = 0.8

[workload]
count = 600
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = preset
preset = set2

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"heavy-tail", R"(
[scenario]
name = heavy-tail
description = Pareto inter-arrivals (alpha 1.3): long lulls, violent clumps

[arrival]
process = pareto
mean = 40
alpha = 1.3

[workload]
count = 400
mix = matmul-1200 : 1
mix = matmul-1500 : 1

[platform]
kind = preset
preset = set1

[system]
cpu-noise = 0.08
link-noise = 0.10
)"},
    {"flash-crowd", R"(
[scenario]
name = flash-crowd
description = Three servers near saturation; reinforcements join mid-run

[arrival]
process = poisson
mean = 6

[workload]
count = 300
mix = waste-cpu-200 : 1

[platform]
kind = template
servers = 3
catalog = uniform

[system]
fault-tolerance = true
cpu-noise = 0.05

[churn]
event = 600, join, surge-0, 1.2
event = 700, join, surge-1, 1.2
event = 800, join, surge-2, 1.0
)"},
    {"churny-grid", R"(
[scenario]
name = churny-grid
description = Dynamic membership: leaves, joins, a crash and a slowdown mid-run

[arrival]
process = poisson
mean = 8

[workload]
count = 400
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 6
catalog = uniform
heterogeneity = 0.3

[system]
fault-tolerance = true
max-retries = 5
cpu-noise = 0.05

[churn]
event = 400, slowdown, grid-0, 0.5
event = 600, leave, grid-1
event = 900, join, helper-0, 1.5
event = 1200, crash, grid-2
event = 1800, join, helper-1, 1.0
event = 2200, leave, grid-3
event = 2600, slowdown, grid-0, 1.0
)"},
    {"mega-cluster", R"(
[scenario]
name = mega-cluster
description = Scale test: 64 heterogeneous servers at sub-second arrival rate

[arrival]
process = poisson
mean = 0.6

[workload]
count = 1500
mix = waste-cpu-200 : 2
mix = waste-cpu-400 : 1

[platform]
kind = template
servers = 64
catalog = uniform
heterogeneity = 0.5

[system]
cpu-noise = 0.05
)"},
};

}  // namespace

const std::vector<std::string>& scenarioNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const NamedScenario& s : kRegistry) out.push_back(s.name);
    return out;
  }();
  return names;
}

bool hasScenario(const std::string& name) {
  for (const NamedScenario& s : kRegistry) {
    if (name == s.name) return true;
  }
  return false;
}

const std::string& scenarioText(const std::string& name) {
  static const std::vector<std::pair<std::string, std::string>> texts = [] {
    std::vector<std::pair<std::string, std::string>> out;
    for (const NamedScenario& s : kRegistry) out.emplace_back(s.name, s.text);
    return out;
  }();
  for (const auto& [n, text] : texts) {
    if (n == name) return text;
  }
  throw util::ConfigError("unknown scenario '" + name + "' (see scenarioNames())");
}

ScenarioSpec findScenario(const std::string& name) {
  return parseScenario(scenarioText(name));
}

}  // namespace casched::scenario
