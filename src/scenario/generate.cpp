#include "scenario/generate.hpp"

#include <algorithm>
#include <iterator>
#include <set>
#include <tuple>

#include "core/htm.hpp"
#include "mesh/sim_system.hpp"
#include "platform/calibration.hpp"
#include "platform/machine_catalog.hpp"
#include "scenario/faults.hpp"
#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::scenario {

namespace {

/// Stream ids for the independent randomness consumers of one compilation.
/// The metatask generator takes the master seed itself (its own sub-streams
/// are derived inside generateMetatask).
constexpr std::uint64_t kPlatformStream = 11;
constexpr std::uint64_t kNoiseStream = 12;
constexpr std::uint64_t kSchedulerStream = 13;
constexpr std::uint64_t kFaultsStream = 14;

workload::MetataskConfig buildMetataskConfig(const ScenarioSpec& spec,
                                             std::uint64_t seed) {
  CASCHED_CHECK(!spec.workload.mix.empty() || !spec.workload.custom.empty(),
                "scenario '" + spec.name + "' has an empty workload mix");
  workload::MetataskConfig mc;
  mc.count = spec.workload.count;
  mc.meanInterarrival = spec.arrival.meanInterarrival;
  mc.arrival = spec.arrival.pattern;
  mc.seed = seed;
  mc.name = spec.name;
  for (const MixEntry& m : spec.workload.mix) {
    mc.types.push_back(resolveTypeName(m.typeName));
    mc.typeWeights.push_back(m.weight);
  }
  for (const CustomType& c : spec.workload.custom) {
    mc.types.push_back(c.type);
    mc.typeWeights.push_back(c.weight);
  }
  // An all-equal mix IS the uniform draw; drop the weights so the generator
  // takes the same RNG path (and produces the same metatask) as a plain type
  // list - this is what makes the paper/* entries reproduce the historical
  // hand-built bench specs bit-for-bit.
  const bool uniformMix =
      std::all_of(mc.typeWeights.begin(), mc.typeWeights.end(),
                  [&](double w) { return w == mc.typeWeights.front(); });
  if (uniformMix) mc.typeWeights.clear();
  return mc;
}

psched::MachineSpec syntheticMachine(const PlatformSpec& p, const std::string& name) {
  psched::MachineSpec spec;
  spec.name = name;
  spec.bwInMBps = p.bwMBps;
  spec.bwOutMBps = p.bwMBps;
  spec.latencyIn = p.latency;
  spec.latencyOut = p.latency;
  spec.ramMB = p.ramMB;
  spec.swapMB = p.swapMB;
  return spec;
}

platform::Testbed buildPresetTestbed(const ScenarioSpec& spec) {
  const std::string preset = util::toLower(spec.platform.preset);
  if (preset == "set1") return platform::buildSet1();
  if (preset == "set2") return platform::buildSet2();
  if (util::startsWith(preset, "uniform-")) {
    const std::string nStr = preset.substr(std::string("uniform-").size());
    try {
      const int n = std::stoi(nStr);
      CASCHED_CHECK(n > 0, "uniform preset needs a positive server count");
      return platform::buildUniform(static_cast<std::size_t>(n),
                                    spec.platform.bwMBps, spec.platform.latency);
    } catch (const util::Error&) {
      throw;
    } catch (const std::exception&) {
      throw util::ConfigError("bad uniform preset '" + spec.platform.preset + "'");
    }
  }
  throw util::ConfigError("unknown platform preset '" + spec.platform.preset + "'");
}

platform::Testbed buildTemplateTestbed(const ScenarioSpec& spec, std::uint64_t seed) {
  const PlatformSpec& p = spec.platform;
  CASCHED_CHECK(p.servers > 0, "platform template needs at least one server");
  CASCHED_CHECK(!p.catalog.empty(), "platform template needs a catalog list");
  simcore::RandomStream spread(simcore::deriveSeed(seed, kPlatformStream));

  platform::Testbed bed;
  bed.name = spec.name + "-platform";
  const bool uniform = p.catalog.size() == 1 && util::toLower(p.catalog[0]) == "uniform";
  const platform::CostModel paperCosts = platform::paperCostModel();
  for (std::size_t i = 0; i < p.servers; ++i) {
    const double factor =
        p.heterogeneity > 0.0
            ? spread.uniform(1.0 - p.heterogeneity, 1.0 + p.heterogeneity)
            : 1.0;
    if (uniform) {
      const std::string name = util::strformat("grid-%zu", i);
      bed.servers.push_back(syntheticMachine(p, name));
      bed.costs.setSpeedIndex(name, factor);
    } else {
      const std::string& base = p.catalog[i % p.catalog.size()];
      psched::MachineSpec clone = platform::buildPaperMachine(base);
      clone.name = util::strformat("%s-%zu", base.c_str(), i);
      bed.servers.push_back(std::move(clone));
      // Clones have no calibrated per-type cost rows, so computeCost falls
      // back to refSeconds / speedIndex; anchor it at the original's speed.
      bed.costs.setSpeedIndex(bed.servers.back().name,
                              paperCosts.speedIndex(base) * factor);
    }
  }
  return bed;
}

cas::SystemConfig buildSystemConfig(const ScenarioSpec& spec, std::uint64_t seed) {
  const SystemSpec& s = spec.system;
  cas::SystemConfig config;
  config.reportPeriod = s.reportPeriod;
  config.faultTolerance = s.faultTolerance;
  config.maxRetries = s.maxRetries;
  config.htmSync = core::parseSyncPolicy(s.htmSync);
  config.cpuNoise = {s.cpuNoiseAmplitude, 5.0};
  config.linkNoise = {s.linkNoiseAmplitude, 5.0};
  config.noiseSeed = simcore::deriveSeed(seed, kNoiseStream);
  config.schedulerSeed = simcore::deriveSeed(seed, kSchedulerStream);
  return config;
}

std::vector<cas::ChurnEvent> buildHandChurn(const ScenarioSpec& spec) {
  std::vector<cas::ChurnEvent> events;
  events.reserve(spec.churn.size());
  for (const ChurnSpec& c : spec.churn) {
    cas::ChurnEvent e;
    e.time = c.time;
    e.action = cas::parseChurnAction(c.action);
    e.server = c.server;
    e.duration = c.duration;
    if (e.action == cas::ChurnAction::kJoin) {
      e.joinSpec = syntheticMachine(spec.platform, c.server);
      e.speedIndex = c.value;
      CASCHED_CHECK(e.speedIndex > 0.0, "join speed index must be positive");
    } else if (e.action == cas::ChurnAction::kSlowdown ||
               e.action == cas::ChurnAction::kLink) {
      e.factor = c.value;
      CASCHED_CHECK(e.factor > 0.0, "churn capacity factor must be positive");
    }
    events.push_back(std::move(e));
  }
  return events;
}

/// Validates a (hand-written + generated) timeline against the membership it
/// implies, in time order. Rejects events on unknown or departed servers and
/// exact duplicates - both used to silently no-op in the live path, so a
/// typo'd server name made live and simulated runs diverge without a trace.
void validateChurnTimeline(const std::vector<cas::ChurnEvent>& events,
                           const platform::Testbed& testbed) {
  std::vector<const cas::ChurnEvent*> ordered;
  ordered.reserve(events.size());
  for (const cas::ChurnEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const cas::ChurnEvent* a, const cas::ChurnEvent* b) {
                     return a->time < b->time;
                   });
  std::set<std::string> present;
  std::set<std::string> departed;
  std::set<std::tuple<double, cas::ChurnAction, std::string>> seen;
  for (const psched::MachineSpec& s : testbed.servers) present.insert(s.name);
  for (const cas::ChurnEvent* e : ordered) {
    CASCHED_CHECK(seen.emplace(e->time, e->action, e->server).second,
                  util::strformat("duplicate churn event '%s %s' at t=%g",
                                  cas::churnActionName(e->action).c_str(),
                                  e->server.c_str(), e->time));
    if (e->action == cas::ChurnAction::kJoin) {
      CASCHED_CHECK(present.insert(e->server).second && departed.count(e->server) == 0,
                    "churn join reuses server name '" + e->server + "'");
    } else {
      CASCHED_CHECK(present.count(e->server) == 1,
                    "churn event targets unknown or departed server '" + e->server + "'");
      if (e->action == cas::ChurnAction::kLeave) {
        present.erase(e->server);
        departed.insert(e->server);
      }
    }
  }
}

}  // namespace

workload::TaskType resolveTypeName(const std::string& name) {
  const auto parseParam = [&](std::string_view prefix) -> int {
    const std::string paramStr(name.substr(prefix.size()));
    try {
      return std::stoi(paramStr);
    } catch (const std::exception&) {
      throw util::ConfigError("bad task-type parameter in '" + name + "'");
    }
  };
  if (util::startsWith(name, "matmul-")) {
    return workload::makeMatmulType(parseParam("matmul-"));
  }
  if (util::startsWith(name, "waste-cpu-")) {
    return workload::makeWasteCpuType(parseParam("waste-cpu-"));
  }
  throw util::ConfigError("unknown task type '" + name +
                          "' (want matmul-<size> or waste-cpu-<param>)");
}

CompiledScenario compileScenario(const ScenarioSpec& spec, std::uint64_t seed) {
  CASCHED_CHECK(!spec.name.empty(), "scenario needs a name");
  CompiledScenario out;
  out.name = spec.name;
  out.metataskConfig = buildMetataskConfig(spec, seed);
  out.metatask = workload::generateMetatask(out.metataskConfig);
  out.testbed = spec.platform.kind == PlatformKind::kPreset
                    ? buildPresetTestbed(spec)
                    : buildTemplateTestbed(spec, seed);
  out.system = buildSystemConfig(spec, seed);
  out.churn = buildHandChurn(spec);
  if (spec.faults.enabled()) {
    std::vector<std::string> serverNames;
    serverNames.reserve(out.testbed.servers.size());
    for (const psched::MachineSpec& s : out.testbed.servers) {
      serverNames.push_back(s.name);
    }
    out.faultDomains = resolveFaultDomains(spec.faults, serverNames);
    std::vector<cas::ChurnEvent> generated =
        generateFaultTimeline(spec.faults, serverNames, out.faultDomains,
                              simcore::deriveSeed(seed, kFaultsStream));
    if (spec.faults.hasTrace()) {
      // The replayed trace joins the same generated stream: it is part of
      // the [faults] compilation, so it counts toward generatedChurn and
      // folds into the same churn digest sim and live both replay.
      std::vector<cas::ChurnEvent> traced =
          compileFaultTrace(spec.faults, serverNames);
      generated.insert(generated.end(), std::make_move_iterator(traced.begin()),
                       std::make_move_iterator(traced.end()));
      std::stable_sort(generated.begin(), generated.end(),
                       [](const cas::ChurnEvent& a, const cas::ChurnEvent& b) {
                         return a.time < b.time;
                       });
    }
    out.generatedChurn = generated.size();
    out.churn.insert(out.churn.end(), std::make_move_iterator(generated.begin()),
                     std::make_move_iterator(generated.end()));
  }
  // Hand-written and generated events are validated as one merged timeline:
  // a generated crash landing on a server the hand timeline already removed
  // is a spec error, not a silent no-op.
  validateChurnTimeline(out.churn, out.testbed);
  out.agents = spec.agents;
  CASCHED_CHECK(out.agents.count > 0, "agent count must be positive");
  CASCHED_CHECK(out.agents.syncPeriod > 0.0, "agent sync-period must be positive");
  // A single-agent deployment takes the plain loopback path, which never
  // reads agent events - reject the combination instead of dropping churn
  // the spec asked for.
  CASCHED_CHECK(out.agents.events.empty() || out.agents.count > 1,
                "agent crash events need an [agents] count of at least 2");
  for (const AgentEventSpec& e : out.agents.events) {
    CASCHED_CHECK(e.agentIndex < out.agents.count,
                  util::strformat("agent event targets agent %zu of %zu",
                                  e.agentIndex, out.agents.count));
  }
  out.mesh = spec.mesh;
  if (out.mesh.enabled) {
    CASCHED_CHECK(out.agents.count > 1, "[mesh] needs an [agents] count of at least 2");
    CASCHED_CHECK(out.agents.mode == "partitioned",
                  "[mesh] needs [agents] mode = partitioned");
    CASCHED_CHECK(out.mesh.overloadThreshold >= 0.0,
                  "mesh overload-threshold must be >= 0");
    CASCHED_CHECK(out.mesh.stealPeriod >= 0.0, "mesh steal-period must be >= 0");
    CASCHED_CHECK(out.churn.empty() && out.agents.events.empty(),
                  "[mesh] scenarios do not support churn or agent events yet");
    const bool tree = out.mesh.topology == "tree";
    if (tree) {
      CASCHED_CHECK(out.mesh.root < out.agents.count,
                    util::strformat("mesh root %zu targets agent %zu of %zu",
                                    out.mesh.root, out.mesh.root, out.agents.count));
    }
    // Rack coverage must be total and disjoint: every platform server named
    // exactly once, so sim and live derive one identical ownership map.
    std::vector<bool> owned(out.testbed.servers.size(), false);
    for (const RackSpec& rack : out.mesh.racks) {
      CASCHED_CHECK(rack.agentIndex < out.agents.count,
                    util::strformat("mesh rack targets agent %zu of %zu",
                                    rack.agentIndex, out.agents.count));
      CASCHED_CHECK(!tree || rack.agentIndex != out.mesh.root,
                    "the mesh root routes between racks; it cannot own one");
      for (const std::size_t s : rack.servers) {
        CASCHED_CHECK(s < out.testbed.servers.size(),
                      util::strformat("mesh rack names server %zu of %zu", s,
                                      out.testbed.servers.size()));
        CASCHED_CHECK(!owned[s],
                      util::strformat("server %zu appears in two mesh racks", s));
        owned[s] = true;
      }
    }
    for (std::size_t s = 0; s < owned.size(); ++s) {
      CASCHED_CHECK(owned[s], util::strformat(
                                  "server %zu is in no mesh rack (coverage "
                                  "must be total)", s));
    }
  }
  return out;
}

metrics::RunResult runScenario(const CompiledScenario& compiled,
                               const std::string& heuristic) {
  if (compiled.mesh.enabled) {
    return mesh::runMeshSim(compiled.testbed, compiled.metatask, heuristic,
                            compiled.system, compiled.mesh, compiled.agents);
  }
  return cas::runExperimentSystem(compiled.testbed, compiled.metatask, heuristic,
                                  compiled.system, compiled.churn);
}

}  // namespace casched::scenario
