#pragma once
/// \file faults.hpp
/// Stochastic churn engine: compiles a [faults] spec + master seed into a
/// concrete churn timeline - the same cas::ChurnEvent stream hand-written
/// [churn] events produce, so the simulator and the live loopback deployment
/// replay one identical generated timeline from one seed.
///
/// Four seeded generative processes, all deterministic per (spec, seed):
///  - crash-repair cycles: per-server Weibull time-to-failure (shape 1 =
///    exponential, >1 = wear-out) with exponential repair downtimes;
///  - Markov flapping: a sticky two-state up/down chain sampled on a fixed
///    tick, each maximal down run emitted as one crash with that downtime;
///  - correlated domain outages: servers tagged into rack/zone domains, one
///    exponential-renewal draw crashes every member of a domain at once;
///  - capacity churn: CPU slowdown and link-bandwidth episodes with uniform
///    factors and exponential durations that restore on their own.
///
/// Every server and every domain owns an independent derived RNG stream, so
/// adding a process (or a server) never perturbs another stream's draws.
///
/// Two extensions beyond the stochastic processes:
///  - trace-driven replay: a recorded down/up timeline (`trace = file.csv`
///    and/or inline `trace-event =` lines) compiled into the same crash
///    events, validated at compile time (unknown servers, non-monotone
///    timestamps, unpaired transitions all rejected with named errors);
///  - diurnal intensity: when `diurnal-amplitude` is set, every stochastic
///    gap draw at simulated time t is divided by
///    1 + amplitude * sin(2*pi * t / period + phase), bunching failures at
///    the modulation peak — still fully deterministic per seed.

#include <cstdint>
#include <string>
#include <vector>

#include "cas/churn.hpp"
#include "scenario/spec.hpp"

namespace casched::scenario {

/// Structural validation of the section itself (rates, probabilities,
/// ranges); membership validation against a concrete server list happens at
/// compile time. Throws util::ConfigError.
void validateFaultsSpec(const FaultsSpec& spec);

/// The concrete failure domains: the explicit `domain =` lines, or the
/// round-robin assignment of `servers` into `autoDomains` zones named
/// "zone-<k>". Empty when the spec declares neither. Throws when an explicit
/// domain names a server outside `servers`.
std::vector<FaultDomainSpec> resolveFaultDomains(
    const FaultsSpec& spec, const std::vector<std::string>& servers);

/// Generates the fault timeline over the initial platform membership,
/// sorted by time. `domains` is the resolveFaultDomains result for the same
/// (spec, servers) - resolved once by the caller so the domains the outage
/// process draws on are exactly the ones recorded in the compiled scenario.
/// Same spec + servers + seed => identical stream.
std::vector<cas::ChurnEvent> generateFaultTimeline(
    const FaultsSpec& spec, const std::vector<std::string>& servers,
    const std::vector<FaultDomainSpec>& domains, std::uint64_t seed);

/// Parses a recorded failure trace: one `time, down | up, server` row per
/// line, blank lines and `#` comments skipped. `source` names the trace in
/// error messages (the file path, or "trace-event" for inline lines). Throws
/// util::ConfigError naming the offending row.
std::vector<FaultTraceEventSpec> parseFaultTrace(const std::string& text,
                                                 const std::string& source);

/// Compiles the spec's trace timeline (the `trace =` file plus inline
/// `trace-event =` lines) against the concrete server list into crash
/// ChurnEvents: each server's down is paired with its next up (duration =
/// up - down); a down left open runs to the horizon. Throws
/// util::ConfigError on unknown servers, negative or per-server
/// non-increasing timestamps, an up without a preceding down, a second down
/// while already down, or an open down with no horizon to close against.
/// Deterministic (no RNG involvement), so sim and live replay stay
/// digest-identical. The result is unsorted; callers merge it into the
/// generated timeline and sort once.
std::vector<cas::ChurnEvent> compileFaultTrace(
    const FaultsSpec& spec, const std::vector<std::string>& servers);

/// Per-seed summary of a (generated or hand-written) churn timeline; the
/// run JSON records carry it so campaign and live records can be compared.
struct ChurnTimelineSummary {
  std::uint64_t crashes = 0;
  std::uint64_t slowdowns = 0;
  std::uint64_t linkEvents = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  /// Mean crash downtime, seconds (0 when there are no crashes; crashes
  /// with duration 0 count at the machine-default placeholder of 0).
  double meanDowntime = 0.0;
  /// Peak number of servers down at once (crash intervals overlapping).
  std::size_t maxConcurrentDown = 0;
  /// Peak number of whole failure domains dead at once (every member down).
  std::size_t maxConcurrentDeadDomains = 0;
};

ChurnTimelineSummary summarizeChurnTimeline(
    const std::vector<cas::ChurnEvent>& events,
    const std::vector<FaultDomainSpec>& domains);

/// Incremental FNV-1a digest over churn events (time, action, server,
/// factor, duration, speed index). The live harness folds each event in as
/// it dispatches it, so the resulting digest witnesses the sequence that was
/// actually replayed, not a recomputation from the compiled spec.
class ChurnDigest {
 public:
  void fold(const cas::ChurnEvent& event);
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

/// Digest of a whole timeline in canonical replay order (stable-sorted by
/// time, which is how both the simulator's event queue and the live harness
/// consume it). Suite records, live records and the demo's --compare-sim all
/// use this one definition, so equal digests mean "the identical generated
/// timeline was replayed".
std::uint64_t churnTimelineDigest(std::vector<cas::ChurnEvent> events);

}  // namespace casched::scenario
