#pragma once
/// \file registry.hpp
/// Built-in named scenarios - the single source of truth for every
/// experiment the repo ships. Each is stored as scenario-format text (see
/// parser.hpp) so the registry doubles as a living corpus for the parser.
/// The paper's calibrated operating points (`paper/table5_matmul_low` ...)
/// and the ablation sweeps (`ablation/rate_sweep` ...) carry their full
/// campaign setup ([campaign]/[sweep] sections) and sit next to
/// production-shaped traffic (bursts, diurnal cycles, heavy tails, flash
/// crowds) and dynamic-membership stress (churny-grid) up to a 64-server
/// scale test (mega-cluster).

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace casched::scenario {

/// Registry names in presentation order.
const std::vector<std::string>& scenarioNames();

/// Registry names sharing a prefix, e.g. "paper/" or "ablation/".
std::vector<std::string> scenarioNamesWithPrefix(const std::string& prefix);

bool hasScenario(const std::string& name);

/// Raw scenario text of a registry entry; throws util::ConfigError if absent.
const std::string& scenarioText(const std::string& name);

/// Parsed registry entry; throws util::ConfigError if absent.
ScenarioSpec findScenario(const std::string& name);

}  // namespace casched::scenario
