#pragma once
/// \file registry.hpp
/// Built-in named scenarios. Each is stored as scenario-format text (see
/// parser.hpp) so the registry doubles as a living corpus for the parser; the
/// two paper operating points sit next to production-shaped traffic
/// (bursts, diurnal cycles, heavy tails, flash crowds) and dynamic-membership
/// stress (churny-grid) up to a 64-server scale test (mega-cluster).

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace casched::scenario {

/// Registry names in presentation order.
const std::vector<std::string>& scenarioNames();

bool hasScenario(const std::string& name);

/// Raw scenario text of a registry entry; throws util::ConfigError if absent.
const std::string& scenarioText(const std::string& name);

/// Parsed registry entry; throws util::ConfigError if absent.
ScenarioSpec findScenario(const std::string& name);

}  // namespace casched::scenario
