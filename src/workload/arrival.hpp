#pragma once
/// \file arrival.hpp
/// Arrival processes for metatask generation. The paper draws the difference
/// between consecutive arrivals from a memoryless distribution with a fixed
/// mean (two rates are studied); we also provide a deterministic process for
/// tests and a replayed-trace process for saved metatasks.

#include <memory>
#include <string>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace casched::workload {

/// Produces a monotone sequence of arrival dates.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next arrival date (absolute seconds); strictly non-decreasing.
  virtual simcore::SimTime next() = 0;
};

/// Exponential inter-arrival gaps with the given mean (Poisson process).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double meanInterarrival, std::uint64_t seed);
  simcore::SimTime next() override;
  double meanInterarrival() const { return mean_; }

 private:
  double mean_;
  simcore::RandomStream rng_;
  simcore::SimTime t_ = 0.0;
};

/// Fixed inter-arrival gap (tests, worst-case bursts with gap 0).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double gap, simcore::SimTime start = 0.0);
  simcore::SimTime next() override;

 private:
  double gap_;
  simcore::SimTime t_;
  bool first_ = true;
};

/// Replays an explicit list of dates (saved metatasks).
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<simcore::SimTime> dates);
  simcore::SimTime next() override;

 private:
  std::vector<simcore::SimTime> dates_;
  std::size_t i_ = 0;
};

/// On/off traffic: Poisson arrivals during on-windows of `onSpan` seconds,
/// silence during the following `offSpan` seconds. The within-burst mean is
/// scaled by the duty cycle so the long-run mean inter-arrival matches the
/// requested one.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double meanInterarrival, double onSpan, double offSpan,
                 std::uint64_t seed);
  simcore::SimTime next() override;

 private:
  double withinMean_;
  double onSpan_;
  double cycle_;
  simcore::RandomStream rng_;
  /// Cumulative on-window time; wall time is derived from it in next().
  double onTime_ = 0.0;
};

/// Sinusoidally rate-modulated Poisson process (thinning construction):
/// lambda(t) = (1 + amplitude * sin(2*pi*t/period)) / meanInterarrival.
/// Models diurnal traffic; the long-run mean inter-arrival is the given one.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(double meanInterarrival, double period, double amplitude,
                  std::uint64_t seed);
  simcore::SimTime next() override;

 private:
  double mean_;
  double period_;
  double amplitude_;
  simcore::RandomStream rng_;
  simcore::SimTime t_ = 0.0;
};

/// Heavy-tailed Pareto inter-arrival gaps: gap = xm * U^(-1/alpha) with
/// alpha > 1 and xm chosen so the mean gap equals `meanInterarrival`.
class ParetoArrivals final : public ArrivalProcess {
 public:
  ParetoArrivals(double meanInterarrival, double alpha, std::uint64_t seed);
  simcore::SimTime next() override;

 private:
  double xm_;
  double alpha_;
  simcore::RandomStream rng_;
  simcore::SimTime t_ = 0.0;
};

/// The arrival-process families a scenario can ask for.
enum class ArrivalKind : std::uint8_t { kPoisson, kBursty, kDiurnal, kPareto };

ArrivalKind parseArrivalKind(const std::string& name);
std::string arrivalKindName(ArrivalKind kind);

/// Declarative description of an arrival process (the mean inter-arrival is
/// supplied separately, next to the metatask size, where rates live today).
struct ArrivalPattern {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double burstOn = 120.0;    ///< bursty: on-window span (s)
  double burstOff = 480.0;   ///< bursty: silent span (s)
  double period = 7200.0;    ///< diurnal: modulation period (s)
  double amplitude = 0.8;    ///< diurnal: relative swing in [0, 1)
  double alpha = 1.5;        ///< pareto: tail exponent (> 1)
};

/// Factory for the concrete process behind a pattern.
std::unique_ptr<ArrivalProcess> makeArrivalProcess(const ArrivalPattern& pattern,
                                                   double meanInterarrival,
                                                   std::uint64_t seed);

}  // namespace casched::workload
