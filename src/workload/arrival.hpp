#pragma once
/// \file arrival.hpp
/// Arrival processes for metatask generation. The paper draws the difference
/// between consecutive arrivals from a memoryless distribution with a fixed
/// mean (two rates are studied); we also provide a deterministic process for
/// tests and a replayed-trace process for saved metatasks.

#include <memory>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace casched::workload {

/// Produces a monotone sequence of arrival dates.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next arrival date (absolute seconds); strictly non-decreasing.
  virtual simcore::SimTime next() = 0;
};

/// Exponential inter-arrival gaps with the given mean (Poisson process).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double meanInterarrival, std::uint64_t seed);
  simcore::SimTime next() override;
  double meanInterarrival() const { return mean_; }

 private:
  double mean_;
  simcore::RandomStream rng_;
  simcore::SimTime t_ = 0.0;
};

/// Fixed inter-arrival gap (tests, worst-case bursts with gap 0).
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double gap, simcore::SimTime start = 0.0);
  simcore::SimTime next() override;

 private:
  double gap_;
  simcore::SimTime t_;
  bool first_ = true;
};

/// Replays an explicit list of dates (saved metatasks).
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<simcore::SimTime> dates);
  simcore::SimTime next() override;

 private:
  std::vector<simcore::SimTime> dates_;
  std::size_t i_ = 0;
};

}  // namespace casched::workload
