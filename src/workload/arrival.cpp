#include "workload/arrival.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace casched::workload {

PoissonArrivals::PoissonArrivals(double meanInterarrival, std::uint64_t seed)
    : mean_(meanInterarrival), rng_(seed) {
  CASCHED_CHECK(mean_ > 0.0, "mean inter-arrival must be positive");
}

simcore::SimTime PoissonArrivals::next() {
  t_ += rng_.exponentialMean(mean_);
  return t_;
}

UniformArrivals::UniformArrivals(double gap, simcore::SimTime start)
    : gap_(gap), t_(start) {
  CASCHED_CHECK(gap_ >= 0.0, "gap must be non-negative");
}

simcore::SimTime UniformArrivals::next() {
  if (first_) {
    first_ = false;
    return t_;
  }
  t_ += gap_;
  return t_;
}

TraceArrivals::TraceArrivals(std::vector<simcore::SimTime> dates)
    : dates_(std::move(dates)) {
  CASCHED_CHECK(std::is_sorted(dates_.begin(), dates_.end()),
                "trace arrivals must be sorted");
}

simcore::SimTime TraceArrivals::next() {
  CASCHED_CHECK(i_ < dates_.size(), "trace arrivals exhausted");
  return dates_[i_++];
}

}  // namespace casched::workload
