#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::workload {

PoissonArrivals::PoissonArrivals(double meanInterarrival, std::uint64_t seed)
    : mean_(meanInterarrival), rng_(seed) {
  CASCHED_CHECK(mean_ > 0.0, "mean inter-arrival must be positive");
}

simcore::SimTime PoissonArrivals::next() {
  t_ += rng_.exponentialMean(mean_);
  return t_;
}

UniformArrivals::UniformArrivals(double gap, simcore::SimTime start)
    : gap_(gap), t_(start) {
  CASCHED_CHECK(gap_ >= 0.0, "gap must be non-negative");
}

simcore::SimTime UniformArrivals::next() {
  if (first_) {
    first_ = false;
    return t_;
  }
  t_ += gap_;
  return t_;
}

TraceArrivals::TraceArrivals(std::vector<simcore::SimTime> dates)
    : dates_(std::move(dates)) {
  CASCHED_CHECK(std::is_sorted(dates_.begin(), dates_.end()),
                "trace arrivals must be sorted");
}

simcore::SimTime TraceArrivals::next() {
  CASCHED_CHECK(i_ < dates_.size(), "trace arrivals exhausted");
  return dates_[i_++];
}

BurstyArrivals::BurstyArrivals(double meanInterarrival, double onSpan, double offSpan,
                               std::uint64_t seed)
    : withinMean_(meanInterarrival * onSpan / (onSpan + offSpan)),
      onSpan_(onSpan),
      cycle_(onSpan + offSpan),
      rng_(seed) {
  CASCHED_CHECK(meanInterarrival > 0.0, "mean inter-arrival must be positive");
  CASCHED_CHECK(onSpan > 0.0, "burst on-span must be positive");
  CASCHED_CHECK(offSpan >= 0.0, "burst off-span must be non-negative");
}

simcore::SimTime BurstyArrivals::next() {
  // Advance a clock that only ticks during on-windows, then map it to wall
  // time. Residual gaps carry across off-spans, so the long-run rate is
  // exactly the requested one (truncating at window edges would inflate it).
  onTime_ += rng_.exponentialMean(withinMean_);
  const double cycles = std::floor(onTime_ / onSpan_);
  return cycles * cycle_ + (onTime_ - cycles * onSpan_);
}

DiurnalArrivals::DiurnalArrivals(double meanInterarrival, double period,
                                 double amplitude, std::uint64_t seed)
    : mean_(meanInterarrival), period_(period), amplitude_(amplitude), rng_(seed) {
  CASCHED_CHECK(mean_ > 0.0, "mean inter-arrival must be positive");
  CASCHED_CHECK(period_ > 0.0, "diurnal period must be positive");
  CASCHED_CHECK(amplitude_ >= 0.0 && amplitude_ < 1.0,
                "diurnal amplitude must be in [0, 1)");
}

simcore::SimTime DiurnalArrivals::next() {
  // Thinning: candidates arrive at the peak rate; each is accepted with
  // probability lambda(t)/lambdaMax. Keeps the draw count per accepted
  // arrival bounded and the process exactly rate-modulated.
  const double peakMean = mean_ / (1.0 + amplitude_);
  for (;;) {
    t_ += rng_.exponentialMean(peakMean);
    const double relRate =
        (1.0 + amplitude_ * std::sin(2.0 * M_PI * t_ / period_)) / (1.0 + amplitude_);
    if (rng_.bernoulli(relRate)) return t_;
  }
}

ParetoArrivals::ParetoArrivals(double meanInterarrival, double alpha, std::uint64_t seed)
    : xm_(meanInterarrival * (alpha - 1.0) / alpha), alpha_(alpha), rng_(seed) {
  CASCHED_CHECK(meanInterarrival > 0.0, "mean inter-arrival must be positive");
  CASCHED_CHECK(alpha > 1.0, "pareto alpha must exceed 1 for a finite mean");
}

simcore::SimTime ParetoArrivals::next() {
  const double u = std::max(1e-12, 1.0 - rng_.generator().nextDouble());
  t_ += xm_ * std::pow(u, -1.0 / alpha_);
  return t_;
}

ArrivalKind parseArrivalKind(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "poisson") return ArrivalKind::kPoisson;
  if (n == "bursty") return ArrivalKind::kBursty;
  if (n == "diurnal") return ArrivalKind::kDiurnal;
  if (n == "pareto") return ArrivalKind::kPareto;
  throw util::ConfigError("unknown arrival kind '" + name + "'");
}

std::string arrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kPareto: return "pareto";
  }
  return "?";
}

std::unique_ptr<ArrivalProcess> makeArrivalProcess(const ArrivalPattern& pattern,
                                                   double meanInterarrival,
                                                   std::uint64_t seed) {
  switch (pattern.kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(meanInterarrival, seed);
    case ArrivalKind::kBursty:
      return std::make_unique<BurstyArrivals>(meanInterarrival, pattern.burstOn,
                                              pattern.burstOff, seed);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(meanInterarrival, pattern.period,
                                               pattern.amplitude, seed);
    case ArrivalKind::kPareto:
      return std::make_unique<ParetoArrivals>(meanInterarrival, pattern.alpha, seed);
  }
  throw util::ConfigError("unhandled arrival kind");
}

}  // namespace casched::workload
