#pragma once
/// \file metatask.hpp
/// A metatask is the paper's unit of experiment: a set of independent tasks
/// submitted to the agent with random arrival dates and types. The same
/// metatask (same arrivals, same types) is replayed under every heuristic so
/// the "number of tasks that finish sooner" comparison is meaningful.

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"
#include "workload/arrival.hpp"
#include "workload/task_types.hpp"

namespace casched::workload {

/// One client request within a metatask.
struct TaskInstance {
  std::uint64_t index = 0;  ///< position within the metatask (stable task id)
  simcore::SimTime arrival = 0.0;
  TaskType type;
};

struct Metatask {
  std::string name;
  std::vector<TaskInstance> tasks;  ///< sorted by arrival

  std::size_t size() const { return tasks.size(); }
  simcore::SimTime lastArrival() const;
  /// Sum of reference compute seconds (workload volume indicator).
  double totalRefSeconds() const;
};

struct MetataskConfig {
  std::size_t count = 500;           ///< paper metatasks hold 500 tasks
  double meanInterarrival = 20.0;    ///< see EXPERIMENTS.md on rate recovery
  ArrivalPattern arrival;            ///< process family (default: Poisson)
  std::vector<TaskType> types;       ///< draw set (paper section 5)
  /// Optional draw weights, aligned with `types`; empty means uniform.
  std::vector<double> typeWeights;
  std::uint64_t seed = 1;            ///< master seed; arrivals and types use
                                     ///< derived, independent streams
  std::string name = "metatask";
};

/// Generates a metatask: arrivals from the configured process, types drawn
/// uniformly or by weight.
Metatask generateMetatask(const MetataskConfig& config);

/// CSV round-trip (index, arrival, type name, data sizes, cost reference) so
/// experiments can be archived and replayed exactly.
std::string metataskToCsv(const Metatask& metatask);
Metatask metataskFromCsv(const std::string& csvText, const std::string& name);
void saveMetatask(const Metatask& metatask, const std::string& path);
Metatask loadMetatask(const std::string& path);

}  // namespace casched::workload
