#pragma once
/// \file task_types.hpp
/// The paper's two task families: dense matrix multiplication (sizes 1200,
/// 1500, 1800 - Table 3) and the memoryless "waste-cpu" task (parameters 200,
/// 400, 600 - Table 4), plus a synthetic family for examples and tests.

#include <cstdint>
#include <string>
#include <vector>

namespace casched::workload {

enum class TaskFamily : std::uint8_t { kMatMul, kWasteCpu, kSynthetic };

/// Static description of a problem type: the agent's static information
/// (paper section 2.2): data sizes, memory need, and a reference compute
/// cost for machines without a calibrated per-machine entry.
struct TaskType {
  std::string name;    ///< e.g. "matmul-1500"
  TaskFamily family = TaskFamily::kSynthetic;
  int param = 0;       ///< matrix size or waste-cpu parameter
  double inMB = 0.0;   ///< input data volume (both operand matrices)
  double outMB = 0.0;  ///< output data volume (result matrix)
  double memMB = 0.0;  ///< resident footprint while running
  /// Unloaded compute seconds on a reference machine of speedIndex 1.0
  /// (calibrated to artimon); used when no per-machine cost entry exists.
  double refSeconds = 0.0;
};

/// Matrix multiplication of size n: two n*n input matrices of doubles, one
/// output matrix; resident footprint is all three (paper Table 3's
/// input+output memory need).
TaskType makeMatmulType(int size);

/// waste-cpu(param): negligible data, zero memory need (paper section 5.2).
TaskType makeWasteCpuType(int param);

/// Fully parameterized synthetic type for examples/tests.
TaskType makeSyntheticType(std::string name, double inMB, double refSeconds,
                           double outMB, double memMB);

/// The paper's families in publication order.
std::vector<TaskType> matmulFamily();    // sizes 1200, 1500, 1800
std::vector<TaskType> wasteCpuFamily();  // params 200, 400, 600

/// Index of a type by name within a family list; throws ConfigError if absent.
const TaskType& findType(const std::vector<TaskType>& family, const std::string& name);

}  // namespace casched::workload
