#include "workload/metatask.hpp"

#include <fstream>
#include <sstream>

#include "simcore/rng.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workload/arrival.hpp"

namespace casched::workload {

simcore::SimTime Metatask::lastArrival() const {
  return tasks.empty() ? 0.0 : tasks.back().arrival;
}

double Metatask::totalRefSeconds() const {
  double total = 0.0;
  for (const TaskInstance& t : tasks) total += t.type.refSeconds;
  return total;
}

Metatask generateMetatask(const MetataskConfig& config) {
  CASCHED_CHECK(config.count > 0, "metatask must contain at least one task");
  CASCHED_CHECK(!config.types.empty(), "metatask needs at least one task type");
  CASCHED_CHECK(config.typeWeights.empty() ||
                    config.typeWeights.size() == config.types.size(),
                "type weights must be empty or match the type list");
  // Independent streams: adding tasks never changes the arrival pattern and
  // vice versa.
  const auto arrivals =
      makeArrivalProcess(config.arrival, config.meanInterarrival,
                         simcore::deriveSeed(config.seed, /*streamId=*/1));
  simcore::RandomStream typePick(simcore::deriveSeed(config.seed, /*streamId=*/2));

  Metatask mt;
  mt.name = config.name;
  mt.tasks.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    TaskInstance inst;
    inst.index = i;
    inst.arrival = arrivals->next();
    const std::size_t pick =
        config.typeWeights.empty()
            ? static_cast<std::size_t>(typePick.uniformInt(
                  0, static_cast<std::int64_t>(config.types.size()) - 1))
            : typePick.discrete(config.typeWeights);
    inst.type = config.types[pick];
    mt.tasks.push_back(std::move(inst));
  }
  return mt;
}

namespace {
constexpr const char* kCsvHeader[] = {"index",  "arrival", "type",  "family",
                                      "param",  "inMB",    "outMB", "memMB",
                                      "refSeconds"};

std::string familyName(TaskFamily f) {
  switch (f) {
    case TaskFamily::kMatMul: return "matmul";
    case TaskFamily::kWasteCpu: return "waste-cpu";
    case TaskFamily::kSynthetic: return "synthetic";
  }
  return "?";
}

TaskFamily familyFromName(const std::string& name) {
  if (name == "matmul") return TaskFamily::kMatMul;
  if (name == "waste-cpu") return TaskFamily::kWasteCpu;
  if (name == "synthetic") return TaskFamily::kSynthetic;
  throw util::DecodeError("unknown task family '" + name + "'");
}
}  // namespace

std::string metataskToCsv(const Metatask& metatask) {
  util::CsvWriter csv(std::vector<std::string>(std::begin(kCsvHeader), std::end(kCsvHeader)));
  for (const TaskInstance& t : metatask.tasks) {
    csv.addRow({std::to_string(t.index), util::strformat("%.17g", t.arrival),
                t.type.name, familyName(t.type.family), std::to_string(t.type.param),
                util::strformat("%.17g", t.type.inMB), util::strformat("%.17g", t.type.outMB),
                util::strformat("%.17g", t.type.memMB),
                util::strformat("%.17g", t.type.refSeconds)});
  }
  return csv.render();
}

Metatask metataskFromCsv(const std::string& csvText, const std::string& name) {
  const auto rows = util::parseCsv(csvText);
  CASCHED_CHECK(!rows.empty(), "metatask csv is empty");
  Metatask mt;
  mt.name = name;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // row 0 is the header
    const auto& row = rows[r];
    if (row.size() < 9) throw util::DecodeError("metatask csv row too short");
    TaskInstance inst;
    inst.index = std::stoull(row[0]);
    inst.arrival = std::stod(row[1]);
    inst.type.name = row[2];
    inst.type.family = familyFromName(row[3]);
    inst.type.param = std::stoi(row[4]);
    inst.type.inMB = std::stod(row[5]);
    inst.type.outMB = std::stod(row[6]);
    inst.type.memMB = std::stod(row[7]);
    inst.type.refSeconds = std::stod(row[8]);
    mt.tasks.push_back(std::move(inst));
  }
  return mt;
}

void saveMetatask(const Metatask& metatask, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw util::IoError("cannot open '" + path + "' for writing");
  os << metataskToCsv(metatask);
}

Metatask loadMetatask(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << is.rdbuf();
  return metataskFromCsv(ss.str(), path);
}

}  // namespace casched::workload
