#include "workload/task_types.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::workload {

namespace {
constexpr double kMB = 1024.0 * 1024.0;

double matrixMB(int n) { return static_cast<double>(n) * n * 8.0 / kMB; }
}  // namespace

TaskType makeMatmulType(int size) {
  CASCHED_CHECK(size > 0, "matmul size must be positive");
  TaskType t;
  t.name = util::strformat("matmul-%d", size);
  t.family = TaskFamily::kMatMul;
  t.param = size;
  t.inMB = 2.0 * matrixMB(size);   // A and B
  t.outMB = matrixMB(size);        // C
  t.memMB = t.inMB + t.outMB;      // all three resident during the multiply
  // Reference: artimon computes 1200 in 18 s (Table 3); cost scales ~ n^3.
  const double n = static_cast<double>(size);
  t.refSeconds = 18.0 * (n / 1200.0) * (n / 1200.0) * (n / 1200.0);
  return t;
}

TaskType makeWasteCpuType(int param) {
  CASCHED_CHECK(param > 0, "waste-cpu parameter must be positive");
  TaskType t;
  t.name = util::strformat("waste-cpu-%d", param);
  t.family = TaskFamily::kWasteCpu;
  t.param = param;
  t.inMB = 0.2;    // request payload: parameters only
  t.outMB = 0.05;  // scalar result
  t.memMB = 0.0;   // the whole point of waste-cpu (paper section 5.2)
  // Reference: artimon computes param=200 in 17.1 s (Table 4); cost ~ param.
  t.refSeconds = 17.1 * static_cast<double>(param) / 200.0;
  return t;
}

TaskType makeSyntheticType(std::string name, double inMB, double refSeconds,
                           double outMB, double memMB) {
  CASCHED_CHECK(inMB >= 0 && refSeconds >= 0 && outMB >= 0 && memMB >= 0,
                "synthetic type fields must be non-negative");
  TaskType t;
  t.name = std::move(name);
  t.family = TaskFamily::kSynthetic;
  t.inMB = inMB;
  t.outMB = outMB;
  t.memMB = memMB;
  t.refSeconds = refSeconds;
  return t;
}

std::vector<TaskType> matmulFamily() {
  return {makeMatmulType(1200), makeMatmulType(1500), makeMatmulType(1800)};
}

std::vector<TaskType> wasteCpuFamily() {
  return {makeWasteCpuType(200), makeWasteCpuType(400), makeWasteCpuType(600)};
}

const TaskType& findType(const std::vector<TaskType>& family, const std::string& name) {
  for (const TaskType& t : family) {
    if (t.name == name) return t;
  }
  throw util::ConfigError("unknown task type '" + name + "'");
}

}  // namespace casched::workload
