#pragma once
/// \file http_export.hpp
/// Minimal HTTP/1.0 metrics endpoint (POSIX sockets, loopback only): each
/// request gets the current registry snapshot as Prometheus text, or JSON
/// when the path mentions "json". One non-blocking listener polled from the
/// owning daemon's pump loop - no threads, no HTTP library.

#include <cstdint>
#include <string>

namespace casched::obs {

/// Full HTTP response bytes for `body` (status 200, Connection: close).
std::string httpOkResponse(const std::string& body, const std::string& contentType);

class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks a free port); throws util::IoError on
  /// failure.
  explicit MetricsHttpServer(std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accepts and answers every connection ready right now; returns the
  /// number of requests served. Never blocks beyond a short per-request
  /// read timeout.
  std::size_t pollOnce();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace casched::obs
