#include "obs/decision.hpp"

#include "util/json.hpp"

namespace casched::obs {

DecisionLog& DecisionLog::global() {
  static DecisionLog* instance = new DecisionLog();
  return *instance;
}

std::string DecisionLog::json() const {
  const std::vector<DecisionRecord> records = snapshot();
  util::JsonWriter w;
  w.beginObject();
  w.key("decisions").beginArray();
  for (const DecisionRecord& d : records) {
    w.beginObject();
    w.key("task").value(d.taskId);
    w.key("time").value(d.time);
    w.key("attempt").value(d.attempt);
    w.key("heuristic").value(d.heuristic);
    w.key("chosen").value(d.chosen);
    if (!d.agent.empty()) w.key("agent").value(d.agent);
    if (!d.origin.empty()) w.key("origin").value(d.origin);
    w.key("candidates").beginArray();
    for (const DecisionCandidate& c : d.candidates) {
      w.beginObject();
      w.key("server").value(c.server);
      w.key("score").value(c.score);
      w.key("predicted_completion").value(c.predictedCompletion);
      w.key("reported_load").value(c.reportedLoad);
      w.key("load_staleness").value(c.loadStaleness);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("dropped").value(dropped());
  w.endObject();
  return w.str();
}

}  // namespace casched::obs
