#pragma once
/// \file trace.hpp
/// Task-lifecycle tracing: one span chain per task - submit, HTM predict,
/// heuristic decision, dispatch, start, complete/lost - captured in a
/// bounded ring buffer and exportable as Chrome trace-event JSON (loadable
/// in Perfetto / chrome://tracing). The records are emitted by the shared
/// cas::Agent scheduling core plus the machine-side submit hook, so the
/// simulator and the live net:: daemons produce identical record shapes by
/// construction.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/ring.hpp"

namespace casched::obs {

enum class TaskPhase : std::uint8_t {
  kSubmit = 0,   ///< client request reached the agent (first attempt)
  kPredict = 1,  ///< HTM committed its completion prediction
  kDecide = 2,   ///< heuristic chose a server
  kDispatch = 3, ///< submission forwarded (span covers the start delay)
  kStart = 4,    ///< machine accepted the task (data-arrival time)
  kComplete = 5, ///< terminal: completed
  kLost = 6,     ///< terminal: lost (retries exhausted / no server)
};

const char* taskPhaseName(TaskPhase phase);

struct SpanRecord {
  std::uint64_t taskId = 0;
  TaskPhase phase = TaskPhase::kSubmit;
  double time = 0.0;      ///< sim seconds (span start)
  double duration = 0.0;  ///< sim seconds; 0 renders as an instant-ish slice
  int attempt = 0;        ///< scheduling attempt this record belongs to
  std::string actor;      ///< emitting component ("agent", server name)
  std::string detail;     ///< phase-specific annotation
};

/// The process-wide span ring. Disabled by default: instrumentation sites
/// check `enabled()` (one relaxed load) before building a record.
class TraceBuffer : public BoundedLog<SpanRecord> {
 public:
  static TraceBuffer& global();

  /// Chrome trace-event JSON: one "X" event per span, ts/dur in
  /// microseconds of sim time, tid = task id (one Perfetto track per task).
  /// Dropped-record accounting rides along in "otherData".
  std::string chromeTraceJson() const;
};

/// Per-task phase chains in record order, e.g.
/// "submit>predict>decide>dispatch>start>complete". Timestamps and server
/// names are excluded on purpose: the chain is the sim-vs-live comparable.
std::map<std::uint64_t, std::string> taskPhaseChains(const std::vector<SpanRecord>& spans);

}  // namespace casched::obs
