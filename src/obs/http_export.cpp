#include "obs/http_export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace casched::obs {

namespace {
[[noreturn]] void throwErrno(const std::string& what) {
  throw util::IoError(what + ": " + std::strerror(errno));
}
}  // namespace

std::string httpOkResponse(const std::string& body, const std::string& contentType) {
  std::ostringstream out;
  out << "HTTP/1.0 200 OK\r\n"
      << "Content-Type: " << contentType << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

MetricsHttpServer::MetricsHttpServer(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throwErrno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throwErrno("bind metrics port");
  }
  if (::listen(fd_, 8) != 0) {
    ::close(fd_);
    throwErrno("listen metrics port");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throwErrno("getsockname metrics port");
  }
  port_ = ntohs(addr.sin_port);
}

MetricsHttpServer::~MetricsHttpServer() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t MetricsHttpServer::pollOnce() {
  std::size_t served = 0;
  while (true) {
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, 0);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) break;
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Read the request line (bounded wait: this is a debug endpoint polled
    // from the daemon pump; a slow scraper must not stall scheduling long).
    char buf[1024];
    std::string request;
    pollfd rp{client, POLLIN, 0};
    if (::poll(&rp, 1, 100) > 0) {
      const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
      if (n > 0) request.assign(buf, static_cast<std::size_t>(n));
    }

    const StatsFormat format = request.find("json") != std::string::npos
                                   ? StatsFormat::kJson
                                   : StatsFormat::kPrometheus;
    const std::string body = renderStats(Registry::global().snapshot(), format);
    const std::string response = httpOkResponse(
        body, format == StatsFormat::kJson ? "application/json"
                                           : "text/plain; version=0.0.4; charset=utf-8");
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(client, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
    ++served;
  }
  return served;
}

}  // namespace casched::obs
