#include "obs/trace.hpp"

#include "util/json.hpp"

namespace casched::obs {

const char* taskPhaseName(TaskPhase phase) {
  switch (phase) {
    case TaskPhase::kSubmit: return "submit";
    case TaskPhase::kPredict: return "predict";
    case TaskPhase::kDecide: return "decide";
    case TaskPhase::kDispatch: return "dispatch";
    case TaskPhase::kStart: return "start";
    case TaskPhase::kComplete: return "complete";
    case TaskPhase::kLost: return "lost";
  }
  return "?";
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

std::string TraceBuffer::chromeTraceJson() const {
  const std::vector<SpanRecord> spans = snapshot();
  util::JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (const SpanRecord& s : spans) {
    w.beginObject();
    w.key("name").value(taskPhaseName(s.phase));
    w.key("cat").value("task");
    w.key("ph").value("X");
    // Sim seconds -> trace microseconds; "X" with dur 0 renders as a slice.
    w.key("ts").value(s.time * 1e6);
    w.key("dur").value(s.duration * 1e6);
    w.key("pid").value(1);
    w.key("tid").value(s.taskId);
    w.key("args").beginObject();
    w.key("actor").value(s.actor);
    w.key("detail").value(s.detail);
    w.key("attempt").value(s.attempt);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").beginObject();
  w.key("dropped_spans").value(dropped());
  w.key("captured_spans").value(spans.size());
  w.endObject();
  w.endObject();
  return w.str();
}

std::map<std::uint64_t, std::string> taskPhaseChains(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::string> chains;
  for (const SpanRecord& s : spans) {
    std::string& chain = chains[s.taskId];
    if (!chain.empty()) chain += ">";
    chain += taskPhaseName(s.phase);
  }
  return chains;
}

}  // namespace casched::obs
