#pragma once
/// \file decision.hpp
/// Heuristic decision introspection: for each schedule request the agent
/// records the full candidate set - per-server primary score, HTM-predicted
/// completion, corrected load estimate and load-report staleness - plus the
/// chosen server, so ablation studies can explain *why* a heuristic won a
/// placement instead of inferring it from aggregates.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ring.hpp"

namespace casched::obs {

struct DecisionCandidate {
  std::string server;
  double score = 0.0;                ///< heuristic's primary score (lower wins)
  double predictedCompletion = 0.0;  ///< HTM preview sigma'_{n+1}; 0 for non-HTM
  double reportedLoad = 0.0;         ///< corrected load estimate (MCT's view)
  double loadStaleness = -1.0;       ///< now - last report sample; -1 = never reported
};

struct DecisionRecord {
  std::uint64_t taskId = 0;
  double time = 0.0;  ///< decision instant, sim seconds
  int attempt = 0;
  std::string heuristic;
  std::string chosen;
  /// Placing agent's deployment name; empty for the single-agent model.
  std::string agent;
  /// How the task reached this agent: empty/"local" for a direct client
  /// request, "forward:<agent>" when rescued from a saturated peer,
  /// "steal:<agent>" when pulled off a peer's parked queue.
  std::string origin;
  std::vector<DecisionCandidate> candidates;
};

/// The process-wide decision ring; disabled by default like the trace buffer.
class DecisionLog : public BoundedLog<DecisionRecord> {
 public:
  static DecisionLog& global();

  /// JSON document: {"decisions": [...], "dropped": n}.
  std::string json() const;
};

}  // namespace casched::obs
