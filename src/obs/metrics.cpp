#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace casched::obs {

namespace {

double bitsToDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t doubleToBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void atomicAddDouble(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t next = doubleToBits(bitsToDouble(old) + delta);
    if (bits.compare_exchange_weak(old, next, std::memory_order_relaxed)) return;
  }
}

std::string formatDouble(double v) {
  // %.17g round-trips; trim to %g for readability where exactness is kept.
  return util::strformat("%.17g", v);
}

std::string labelSuffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << k << "=\"" << v << "\"";
  }
  out << "}";
  return out.str();
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

void Gauge::set(double v) noexcept { bits_.store(doubleToBits(v), std::memory_order_relaxed); }
void Gauge::add(double delta) noexcept { atomicAddDouble(bits_, delta); }
double Gauge::value() const noexcept { return bitsToDouble(bits_.load(std::memory_order_relaxed)); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CASCHED_CHECK(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound contains v; past the last bound -> +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(sumBits_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const noexcept { return bitsToDouble(sumBits_.load(std::memory_order_relaxed)); }

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
  sumBits_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::string MetricSample::fullName() const { return name + labelSuffix(labels); }

struct Registry::Entry {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: instruments
                                               // may fire during static teardown
  return *instance;
}

Registry::Entry& Registry::findOrCreate(const std::string& name, const std::string& help,
                                        const Labels& labels, MetricKind kind) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      CASCHED_CHECK(entry->kind == kind,
                    "metric '" + name + "' re-registered as a different kind (" +
                        kindName(entry->kind) + " vs " + kindName(kind) + ")");
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = findOrCreate(name, help, labels, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = findOrCreate(name, help, labels, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = findOrCreate(name, help, labels, MetricKind::kHistogram);
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *entry.histogram;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample s;
    s.name = entry->name;
    s.help = entry->help;
    s.labels = entry->labels;
    s.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(entry->counter->value());
        break;
      case MetricKind::kGauge:
        s.value = entry->gauge->value();
        break;
      case MetricKind::kHistogram:
        s.histogram.bounds = entry->histogram->bounds();
        s.histogram.counts = entry->histogram->bucketCounts();
        s.histogram.sum = entry->histogram->sum();
        s.histogram.count = entry->histogram->count();
        break;
    }
    snap.metrics.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry->counter) entry->counter->reset();
    if (entry->gauge) entry->gauge->reset();
    if (entry->histogram) entry->histogram->reset();
  }
}

std::string RegistrySnapshot::prometheus() const {
  std::ostringstream out;
  std::set<std::string> headerDone;  // HELP/TYPE once per metric family
  for (const MetricSample& m : metrics) {
    if (headerDone.insert(m.name).second) {
      if (!m.help.empty()) out << "# HELP " << m.name << " " << m.help << "\n";
      out << "# TYPE " << m.name << " " << kindName(m.kind) << "\n";
    }
    if (m.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < m.histogram.bounds.size(); ++i) {
        cumulative += m.histogram.counts[i];
        Labels withLe = m.labels;
        withLe.emplace_back("le", util::strformat("%g", m.histogram.bounds[i]));
        out << m.name << "_bucket" << labelSuffix(withLe) << " " << cumulative << "\n";
      }
      Labels inf = m.labels;
      inf.emplace_back("le", "+Inf");
      out << m.name << "_bucket" << labelSuffix(inf) << " " << m.histogram.count << "\n";
      out << m.name << "_sum" << labelSuffix(m.labels) << " " << formatDouble(m.histogram.sum)
          << "\n";
      out << m.name << "_count" << labelSuffix(m.labels) << " " << m.histogram.count << "\n";
    } else if (m.kind == MetricKind::kCounter) {
      out << m.name << labelSuffix(m.labels) << " "
          << static_cast<std::uint64_t>(m.value) << "\n";
    } else {
      out << m.name << labelSuffix(m.labels) << " " << formatDouble(m.value) << "\n";
    }
  }
  return out.str();
}

std::string RegistrySnapshot::json() const {
  util::JsonWriter w;
  w.beginObject().key("metrics").beginArray();
  for (const MetricSample& m : metrics) {
    w.beginObject();
    w.key("name").value(m.name);
    w.key("type").value(kindName(m.kind));
    if (!m.labels.empty()) {
      w.key("labels").beginObject();
      for (const auto& [k, v] : m.labels) w.key(k).value(v);
      w.endObject();
    }
    if (m.kind == MetricKind::kHistogram) {
      w.key("buckets").beginArray();
      for (std::size_t i = 0; i < m.histogram.bounds.size(); ++i) {
        w.beginObject();
        w.key("le").value(m.histogram.bounds[i]);
        w.key("count").value(m.histogram.counts[i]);
        w.endObject();
      }
      w.endArray();
      w.key("inf_count")
          .value(m.histogram.counts.empty() ? 0ull : m.histogram.counts.back());
      w.key("sum").value(m.histogram.sum);
      w.key("count").value(m.histogram.count);
    } else {
      w.key("value").value(m.value);
    }
    w.endObject();
  }
  w.endArray().endObject();
  return w.str();
}

RegistrySnapshot RegistrySnapshot::since(const RegistrySnapshot& earlier) const {
  std::map<std::string, const MetricSample*> base;
  for (const MetricSample& m : earlier.metrics) base[m.fullName()] = &m;
  RegistrySnapshot delta = *this;
  for (MetricSample& m : delta.metrics) {
    const auto it = base.find(m.fullName());
    if (it == base.end()) continue;
    const MetricSample& b = *it->second;
    if (b.kind != m.kind) continue;
    switch (m.kind) {
      case MetricKind::kCounter:
        m.value -= b.value;
        break;
      case MetricKind::kGauge:
        break;  // gauges are level values, not accumulations
      case MetricKind::kHistogram:
        if (b.histogram.counts.size() == m.histogram.counts.size()) {
          for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
            m.histogram.counts[i] -= b.histogram.counts[i];
          }
          m.histogram.sum -= b.histogram.sum;
          m.histogram.count -= b.histogram.count;
        }
        break;
    }
  }
  return delta;
}

StatsFormat parseStatsFormat(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "prometheus" || n == "text") return StatsFormat::kPrometheus;
  if (n == "json") return StatsFormat::kJson;
  throw util::ConfigError("unknown stats format '" + name +
                          "' (valid: prometheus, json)");
}

const char* statsFormatName(StatsFormat format) {
  return format == StatsFormat::kPrometheus ? "prometheus" : "json";
}

std::string renderStats(const RegistrySnapshot& snapshot, StatsFormat format) {
  return format == StatsFormat::kPrometheus ? snapshot.prometheus() : snapshot.json();
}

}  // namespace casched::obs
