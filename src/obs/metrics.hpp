#pragma once
/// \file metrics.hpp
/// Process-wide metrics registry: counters, gauges and fixed-bucket
/// histograms with lock-free hot-path updates (relaxed atomics) and
/// snapshot-on-demand rendering as Prometheus exposition text or JSON.
/// Instrumentation sites resolve their metric object once and then only pay
/// an uncontended fetch_add per event, so the instruments can stay
/// compiled-in everywhere (the micro_scheduler overhead bench locks this).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace casched::obs {

/// Label pairs in registration order; part of a metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept;
  void add(double delta) noexcept;
  double value() const noexcept;
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< IEEE-754 bits of the value
};

/// Fixed-bucket histogram: cumulative-style buckets with strictly increasing
/// upper bounds plus an implicit +Inf bucket. Bounds are fixed at
/// registration so observation never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> sumBits_{0};
  std::atomic<std::uint64_t> count_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct HistogramValue {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< per-bucket, last = +Inf
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter / gauge
  HistogramValue histogram;

  /// `name{k="v",...}` - the identity string used in diffs and suite JSON.
  std::string fullName() const;
};

/// Point-in-time copy of the whole registry.
struct RegistrySnapshot {
  std::vector<MetricSample> metrics;

  /// Prometheus text exposition format.
  std::string prometheus() const;
  /// JSON document (util::JsonWriter shape: {"metrics": [...]}).
  std::string json() const;
  /// Counters and histograms as deltas against `earlier`; gauges keep their
  /// current value. Metrics absent from `earlier` keep their full value.
  RegistrySnapshot since(const RegistrySnapshot& earlier) const;
};

/// Thread-safe registry. Registration takes a mutex (do it once, keep the
/// reference - the returned objects live as long as the registry); updates
/// through the returned references are lock-free.
class Registry {
 public:
  /// The process-wide registry every built-in instrument registers with.
  static Registry& global();

  /// Returns the existing metric when (name, labels) was already registered;
  /// throws util::Error when it exists with a different kind.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  /// `bounds` must be strictly increasing; ignored (the original wins) when
  /// the histogram already exists.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "", const Labels& labels = {});

  RegistrySnapshot snapshot() const;
  /// Zeroes every registered metric (tests and per-run isolation).
  void reset();

 private:
  struct Entry;
  Entry& findOrCreate(const std::string& name, const std::string& help,
                      const Labels& labels, MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Render format of a metrics snapshot ("prometheus" | "json"); parse throws
/// util::ConfigError enumerating the valid names on anything else.
enum class StatsFormat { kPrometheus, kJson };
StatsFormat parseStatsFormat(const std::string& name);
const char* statsFormatName(StatsFormat format);
std::string renderStats(const RegistrySnapshot& snapshot, StatsFormat format);

}  // namespace casched::obs
