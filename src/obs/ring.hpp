#pragma once
/// \file ring.hpp
/// Bounded, thread-safe record ring shared by the trace buffer and the
/// decision log. Recording is gated by one relaxed atomic flag so the
/// disabled path costs a single load; when the ring is full the oldest
/// record is overwritten and counted as dropped (overflow accounting).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace casched::obs {

template <typename Record>
class BoundedLog {
 public:
  /// (Re)arms the log with a fresh ring of `capacity` records. Contents and
  /// the drop counter are reset; capacity 0 is clamped to 1.
  void enable(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    ring_.assign(capacity_, Record{});
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    enabled_.store(true, std::memory_order_relaxed);
  }

  /// Stops recording; the captured contents stay readable.
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  /// No-op while disabled, so instrumentation sites can call unconditionally.
  void push(Record record) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == capacity_) {
      // Overwrite the oldest record; the ring keeps the most recent window.
      ring_[head_] = std::move(record);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    } else {
      ring_[(head_ + size_) % capacity_] = std::move(record);
      ++size_;
    }
  }

  /// Records in arrival order, oldest first.
  std::vector<Record> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Record> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(head_ + i) % capacity_]);
    }
    return out;
  }

  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::vector<Record> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace casched::obs
