#pragma once
/// \file htm_snapshot.hpp
/// Serialized form of the Historical Trace Manager: per-server trace entries,
/// speed corrections, in-flight predictions and the accuracy statistics, as a
/// versioned little-endian binary blob (plus a JSON rendering for humans).
/// A restarted agent - or a second agent replica receiving kAgentSync frames -
/// restores a snapshot and starts with warm predictions instead of a cold
/// trace (ROADMAP: HTM snapshot/persistence, multi-agent replication).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/htm.hpp"
#include "core/server_trace.hpp"
#include "simcore/time.hpp"

namespace casched::core {

/// Bumped whenever the binary layout changes; decode rejects other versions
/// with a typed error instead of misreading the bytes.
constexpr std::uint32_t kHtmSnapshotVersion = 1;

/// One committed prediction still awaiting its completion notice.
struct HtmPredictionSnapshot {
  std::uint64_t taskId = 0;
  simcore::SimTime predictedCompletion = 0.0;
  simcore::SimTime admitted = 0.0;
};

/// One server's row: the registration-time model, the learned speed
/// correction, and the full trace state (active tasks mid-phase).
struct HtmServerSnapshot {
  ServerModel model;
  double speedRatio = 1.0;
  simcore::SimTime traceNow = 0.0;
  std::vector<TraceTask> tasks;
  std::vector<HtmPredictionSnapshot> predictions;
};

struct HtmSnapshot {
  SyncPolicy policy = SyncPolicy::kDropOnNotice;
  HtmStats stats;
  std::vector<HtmServerSnapshot> servers;
};

/// Versioned binary form ("CHTM" magic + version + payload); byte-exact
/// round-trip of every field.
std::vector<std::uint8_t> encodeHtmSnapshot(const HtmSnapshot& snapshot);

/// Throws util::DecodeError on truncation, bad magic or version mismatch.
HtmSnapshot decodeHtmSnapshot(const std::uint8_t* data, std::size_t size);
HtmSnapshot decodeHtmSnapshot(const std::vector<std::uint8_t>& bytes);

/// Human-readable record of the same state (util::JsonWriter; not parsed
/// back - the binary form is the persistence format).
std::string htmSnapshotJson(const HtmSnapshot& snapshot);

/// Atomic-enough file persistence (write to path + ".tmp", then rename).
void saveHtmSnapshotFile(const std::string& path, const HtmSnapshot& snapshot);

/// std::nullopt when the file does not exist; throws util::IoError on an
/// unreadable file and util::DecodeError on corrupt contents.
std::optional<HtmSnapshot> loadHtmSnapshotFile(const std::string& path);

}  // namespace casched::core
