#include "core/htm_snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace casched::core {

namespace {

// Local little-endian primitives: core must not depend on the wire layer
// (wire sits above core), so the snapshot carries its own byte codec with
// the same conventions (LE integers, IEEE-754 doubles, u32-length strings).

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void putStr(std::vector<std::uint8_t>& out, const std::string& s) {
  CASCHED_CHECK(s.size() <= 0xFFFFFFFFull, "string too long for snapshot");
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class SnapReader {
 public:
  SnapReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool atEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Clamp a wire-supplied element count before reserve(): corrupt input
  /// claiming 2^32 elements must fail as a DecodeError when the bytes run
  /// dry, not as bad_alloc. Each element consumes >= minElemBytes.
  std::size_t clampCount(std::uint32_t n, std::size_t minElemBytes) const {
    return std::min<std::size_t>(n, remaining() / minElemBytes);
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw util::DecodeError("HTM snapshot truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kMagic[4] = {'C', 'H', 'T', 'M'};

void encodeServer(std::vector<std::uint8_t>& out, const HtmServerSnapshot& s) {
  putStr(out, s.model.name);
  putF64(out, s.model.bwInMBps);
  putF64(out, s.model.bwOutMBps);
  putF64(out, s.model.latencyIn);
  putF64(out, s.model.latencyOut);
  putF64(out, s.speedRatio);
  putF64(out, s.traceNow);
  putU32(out, static_cast<std::uint32_t>(s.tasks.size()));
  for (const TraceTask& t : s.tasks) {
    putU64(out, t.taskId);
    putF64(out, t.dims.inMB);
    putF64(out, t.dims.cpuSeconds);
    putF64(out, t.dims.outMB);
    putU32(out, static_cast<std::uint32_t>(t.phase));
    putF64(out, t.remaining);
    putF64(out, t.admitted);
  }
  putU32(out, static_cast<std::uint32_t>(s.predictions.size()));
  for (const HtmPredictionSnapshot& p : s.predictions) {
    putU64(out, p.taskId);
    putF64(out, p.predictedCompletion);
    putF64(out, p.admitted);
  }
}

HtmServerSnapshot decodeServer(SnapReader& r) {
  HtmServerSnapshot s;
  s.model.name = r.str();
  s.model.bwInMBps = r.f64();
  s.model.bwOutMBps = r.f64();
  s.model.latencyIn = r.f64();
  s.model.latencyOut = r.f64();
  s.speedRatio = r.f64();
  s.traceNow = r.f64();
  const std::uint32_t taskCount = r.u32();
  s.tasks.reserve(r.clampCount(taskCount, 52));  // u64 + 5 f64 + u32 per task
  for (std::uint32_t i = 0; i < taskCount; ++i) {
    TraceTask t;
    t.taskId = r.u64();
    t.dims.inMB = r.f64();
    t.dims.cpuSeconds = r.f64();
    t.dims.outMB = r.f64();
    const std::uint32_t phase = r.u32();
    if (phase > static_cast<std::uint32_t>(TracePhase::kDone)) {
      throw util::DecodeError(
          util::strformat("HTM snapshot: bad trace phase %u", phase));
    }
    t.phase = static_cast<TracePhase>(phase);
    t.remaining = r.f64();
    t.admitted = r.f64();
    s.tasks.push_back(t);
  }
  const std::uint32_t predCount = r.u32();
  s.predictions.reserve(r.clampCount(predCount, 24));  // u64 + 2 f64 each
  for (std::uint32_t i = 0; i < predCount; ++i) {
    HtmPredictionSnapshot p;
    p.taskId = r.u64();
    p.predictedCompletion = r.f64();
    p.admitted = r.f64();
    s.predictions.push_back(p);
  }
  return s;
}

}  // namespace

HtmSnapshot HistoricalTraceManager::snapshot() const {
  HtmSnapshot snap;
  snap.policy = policy_;
  snap.stats = stats_;
  // Rows ordered by name, matching the historical (name-keyed) on-disk
  // order, so snapshots stay byte-comparable across agent incarnations
  // whose registration order differed.
  std::vector<ServerId> live;
  for (ServerId id = 0; id < rows_.size(); ++id) {
    if (rows_[id].has_value()) live.push_back(id);
  }
  std::sort(live.begin(), live.end(), [this](ServerId a, ServerId b) {
    return interner_.name(a) < interner_.name(b);
  });
  snap.servers.reserve(live.size());
  for (const ServerId id : live) {
    const Entry& entry = *rows_[id];
    HtmServerSnapshot s;
    s.model = entry.trace.model();
    s.speedRatio = entry.speedRatio;
    s.traceNow = entry.trace.now();
    s.tasks = entry.trace.tasks();
    s.predictions.reserve(entry.predicted.size());
    for (const PredictedRow& pred : entry.predicted) {
      s.predictions.push_back(
          HtmPredictionSnapshot{pred.taskId, pred.predicted, pred.admitted});
    }
    snap.servers.push_back(std::move(s));
  }
  return snap;
}

void HistoricalTraceManager::restore(const HtmSnapshot& snapshot) {
  policy_ = snapshot.policy;
  stats_ = snapshot.stats;
  // Drop every row but keep the id table: ids are append-only and never
  // reused, and the agent may already hold ids from this interner.
  for (std::optional<Entry>& entry : rows_) entry.reset();
  for (const HtmServerSnapshot& s : snapshot.servers) restoreServer(s);
}

void HistoricalTraceManager::restoreServer(const HtmServerSnapshot& snapshot) {
  Entry entry{ServerTrace(snapshot.model), snapshot.speedRatio, {}, {}};
  entry.trace.restore(snapshot.tasks, snapshot.traceNow);
  entry.predicted.reserve(snapshot.predictions.size());
  for (const HtmPredictionSnapshot& p : snapshot.predictions) {
    entry.predicted.push_back(PredictedRow{p.taskId, p.predictedCompletion, p.admitted});
  }
  std::sort(entry.predicted.begin(), entry.predicted.end(),
            [](const PredictedRow& a, const PredictedRow& b) {
              return a.taskId < b.taskId;
            });
  const ServerId id = interner_.intern(snapshot.model.name);
  if (id >= rows_.size()) rows_.resize(id + 1);
  rows_[id] = std::move(entry);
}

std::vector<std::uint8_t> encodeHtmSnapshot(const HtmSnapshot& snapshot) {
  std::vector<std::uint8_t> out;
  for (std::uint8_t b : kMagic) out.push_back(b);
  putU32(out, kHtmSnapshotVersion);
  putU32(out, static_cast<std::uint32_t>(snapshot.policy));
  putU64(out, snapshot.stats.previews);
  putU64(out, snapshot.stats.commits);
  putU64(out, snapshot.stats.completionNotices);
  putU64(out, snapshot.stats.failureNotices);
  putF64(out, snapshot.stats.absErrorSum);
  putF64(out, snapshot.stats.relErrorSum);
  putU64(out, snapshot.stats.errorSamples);
  putU32(out, static_cast<std::uint32_t>(snapshot.servers.size()));
  for (const HtmServerSnapshot& s : snapshot.servers) encodeServer(out, s);
  return out;
}

HtmSnapshot decodeHtmSnapshot(const std::uint8_t* data, std::size_t size) {
  if (size < 4 || std::memcmp(data, kMagic, 4) != 0) {
    throw util::DecodeError("HTM snapshot: bad magic");
  }
  SnapReader body(data + 4, size - 4);
  const std::uint32_t version = body.u32();
  if (version != kHtmSnapshotVersion) {
    throw util::DecodeError(util::strformat(
        "HTM snapshot version mismatch: got %u, want %u", version, kHtmSnapshotVersion));
  }
  HtmSnapshot snap;
  const std::uint32_t policy = body.u32();
  if (policy > static_cast<std::uint32_t>(SyncPolicy::kRescale)) {
    throw util::DecodeError(util::strformat("HTM snapshot: bad sync policy %u", policy));
  }
  snap.policy = static_cast<SyncPolicy>(policy);
  snap.stats.previews = body.u64();
  snap.stats.commits = body.u64();
  snap.stats.completionNotices = body.u64();
  snap.stats.failureNotices = body.u64();
  snap.stats.absErrorSum = body.f64();
  snap.stats.relErrorSum = body.f64();
  snap.stats.errorSamples = body.u64();
  const std::uint32_t serverCount = body.u32();
  // A server row is at least its name prefix + 6 f64 + 2 counts = 60 bytes.
  snap.servers.reserve(body.clampCount(serverCount, 60));
  for (std::uint32_t i = 0; i < serverCount; ++i) snap.servers.push_back(decodeServer(body));
  if (!body.atEnd()) throw util::DecodeError("HTM snapshot: trailing bytes");
  return snap;
}

HtmSnapshot decodeHtmSnapshot(const std::vector<std::uint8_t>& bytes) {
  return decodeHtmSnapshot(bytes.data(), bytes.size());
}

std::string htmSnapshotJson(const HtmSnapshot& snapshot) {
  util::JsonWriter json;
  json.beginObject();
  json.key("version").value(kHtmSnapshotVersion);
  json.key("policy").value(syncPolicyName(snapshot.policy));
  json.key("stats");
  json.beginObject();
  json.key("previews").value(snapshot.stats.previews);
  json.key("commits").value(snapshot.stats.commits);
  json.key("completion_notices").value(snapshot.stats.completionNotices);
  json.key("failure_notices").value(snapshot.stats.failureNotices);
  json.key("abs_error_sum").value(snapshot.stats.absErrorSum);
  json.key("rel_error_sum").value(snapshot.stats.relErrorSum);
  json.key("error_samples").value(snapshot.stats.errorSamples);
  json.endObject();
  json.key("servers");
  json.beginArray();
  for (const HtmServerSnapshot& s : snapshot.servers) {
    json.beginObject();
    json.key("name").value(s.model.name);
    json.key("speed_ratio").value(s.speedRatio);
    json.key("trace_now").value(s.traceNow);
    json.key("active_tasks").value(s.tasks.size());
    json.key("pending_predictions").value(s.predictions.size());
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.str();
}

void saveHtmSnapshotFile(const std::string& path, const HtmSnapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = encodeHtmSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw util::IoError("cannot write HTM snapshot '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw util::IoError("short write to HTM snapshot '" + tmp + "'");
  }
  // Rename-over keeps a reader (a restarting replica) from ever seeing a
  // half-written snapshot.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw util::IoError("cannot rename HTM snapshot into '" + path + "'");
  }
}

std::optional<HtmSnapshot> loadHtmSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) throw util::IoError("cannot read HTM snapshot '" + path + "'");
  return decodeHtmSnapshot(bytes);
}

}  // namespace casched::core
