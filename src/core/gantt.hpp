#pragma once
/// \file gantt.hpp
/// Gantt chart extraction and ASCII rendering (paper figure 1). The HTM can
/// dump, for any server, the simulated schedule of its remaining tasks:
/// which phase each task is in over time and the CPU/link share it receives.

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace casched::core {

/// One constant-share interval of one task.
struct GanttSegment {
  std::uint64_t taskId = 0;
  std::uint8_t phase = 0;  ///< TracePhase value (kept raw to avoid a cycle)
  simcore::SimTime start = 0.0;
  simcore::SimTime end = 0.0;
  double share = 1.0;  ///< fraction of the resource granted (1/k)
};

struct GanttChart {
  std::string serverName;
  simcore::SimTime origin = 0.0;   ///< time the simulation started from
  simcore::SimTime horizon = 0.0;  ///< completion of the last task
  std::vector<GanttSegment> segments;

  bool empty() const { return segments.empty(); }
};

/// Renders rows of `= compute / - transfer / . waiting` per task, one column
/// per `secondsPerColumn`, with a share legend per compute segment - an ASCII
/// analogue of the paper's figure 1.
std::string renderGanttAscii(const GanttChart& chart, double secondsPerColumn = 0.0);

/// CSV rows (taskId, phase, start, end, share) for plotting.
std::string ganttToCsv(const GanttChart& chart);

}  // namespace casched::core
