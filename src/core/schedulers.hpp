#pragma once
/// \file schedulers.hpp
/// The scheduling heuristics. Baseline: NetSolve-style MCT on reported load
/// averages (paper section 2.2). HTM-based: HMCT, MP, MSF (paper figures
/// 2-4). Related-work and extension heuristics: MNI (Weissman), MET, random,
/// round-robin, and a memory-aware admission decorator (paper section 7's
/// first future-work item).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/htm.hpp"
#include "core/server_id.hpp"
#include "simcore/rng.hpp"
#include "simcore/time.hpp"

namespace casched::core {

/// Everything a heuristic may know about one candidate server at decision
/// time. The agent fills this from registration data, the cost database, load
/// reports (+ the two NetSolve correction mechanisms) and its own memory
/// bookkeeping; HTM-based heuristics additionally query the HTM. Identity is
/// the interned ServerId - no strings on the decision path.
struct CandidateServer {
  ServerId id = kInvalidServerId;
  TaskDims dims;                   ///< this task's dimensions on this server
  double reportedLoad = 0.0;       ///< corrected load estimate (MCT's view)
  double unloadedDuration = 0.0;   ///< latencies + transfers + compute, unloaded
  double projectedResidentMB = 0;  ///< agent's memory bookkeeping
  double memSoftMB = 1e18;         ///< physical RAM (thrashing threshold)
  double memCapacityMB = 1e18;     ///< RAM + swap (collapse threshold)
  double taskMemMB = 0.0;          ///< this task's footprint
};

/// One scheduling decision's inputs.
struct ScheduleQuery {
  std::uint64_t taskId = 0;
  simcore::SimTime now = 0.0;  ///< decision instant (also the flow origin)
  double startDelay = 0.0;     ///< agent->client->server submission latency
  std::vector<CandidateServer> candidates;
  const HistoricalTraceManager* htm = nullptr;  ///< null for non-HTM heuristics
};

/// Diagnostic trail of a decision (benches and tests introspect this).
struct ScheduleDecision {
  std::optional<std::size_t> chosen;  ///< index into query.candidates
  std::vector<double> scores;         ///< per-candidate primary score
  std::vector<Preview> previews;      ///< filled by HTM heuristics
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual bool usesHtm() const { return false; }
  /// Picks a candidate into `out`, reusing out's buffers (a warm call on the
  /// decision path performs no heap allocation). out.chosen is nullopt when
  /// the candidate list is empty (the agent then queues/loses the task
  /// depending on fault-tolerance policy).
  virtual void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) = 0;
  /// Side-effect-free dry run of chooseInto (mesh overload previews call this
  /// repeatedly without placing anything). Stateless heuristics share the
  /// chooseInto implementation; stateful ones (random, round-robin) override
  /// so a preview never advances the state a real placement would consume.
  virtual void previewInto(const ScheduleQuery& query, ScheduleDecision& out) {
    chooseInto(query, out);
  }
  /// Convenience wrapper (tests, tools, benches).
  ScheduleDecision choose(const ScheduleQuery& query) {
    ScheduleDecision d;
    chooseInto(query, d);
    return d;
  }
};

/// NetSolve's Minimum Completion Time on (stale) load reports: estimated
/// duration = comm time + cpu * (load + 1); pick the minimum.
class MctScheduler final : public Scheduler {
 public:
  std::string name() const override { return "mct"; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
};

/// Historical MCT (paper fig. 2): minimum sigma'_{n+1} from the HTM.
class HmctScheduler final : public Scheduler {
 public:
  std::string name() const override { return "hmct"; }
  bool usesHtm() const override { return true; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
};

/// Minimum Perturbation (paper fig. 3): minimum sum of pi_j; equal sums are
/// broken by the new task's completion date.
class MpScheduler final : public Scheduler {
 public:
  std::string name() const override { return "mp"; }
  bool usesHtm() const override { return true; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;

 private:
  std::vector<double> completionScratch_;
};

/// Minimum Sum Flow (paper fig. 4, equivalent to Weissman's MTI): minimum
/// increase of the system sum-flow = sum of perturbations + flow of the new
/// task.
class MsfScheduler final : public Scheduler {
 public:
  std::string name() const override { return "msf"; }
  bool usesHtm() const override { return true; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
};

/// Weissman's MNI: minimize the number of tasks that experience interference;
/// ties broken by the new task's completion date.
class MniScheduler final : public Scheduler {
 public:
  std::string name() const override { return "mni"; }
  bool usesHtm() const override { return true; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;

 private:
  std::vector<double> completionScratch_;
};

/// Minimum Execution Time: fastest unloaded server, ignoring load entirely.
class MetScheduler final : public Scheduler {
 public:
  std::string name() const override { return "met"; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
};

/// Uniform random candidate (sanity baseline).
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
  void previewInto(const ScheduleQuery& query, ScheduleDecision& out) override;

 private:
  simcore::RandomStream rng_;
};

/// Cyclic assignment (sanity baseline).
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
  void previewInto(const ScheduleQuery& query, ScheduleDecision& out) override;

 private:
  std::size_t next_ = 0;
};

/// Memory-aware admission decorator (paper section 7, future work). Two-tier
/// filter: prefer servers that stay within physical RAM (no thrashing); if
/// none, accept servers that at least stay within RAM+swap (no collapse);
/// only when every server would overflow fall back to the roomiest one (the
/// task must go somewhere). Then delegates to the wrapped heuristic.
class MemoryAwareScheduler final : public Scheduler {
 public:
  explicit MemoryAwareScheduler(std::unique_ptr<Scheduler> inner);
  std::string name() const override { return "ma-" + inner_->name(); }
  bool usesHtm() const override { return inner_->usesHtm(); }
  void chooseInto(const ScheduleQuery& query, ScheduleDecision& out) override;
  void previewInto(const ScheduleQuery& query, ScheduleDecision& out) override;

 private:
  std::unique_ptr<Scheduler> inner_;
  void filterAndDelegate(const ScheduleQuery& query, ScheduleDecision& out, bool preview);
  // Reused across calls: the filtered sub-query and the surviving indices.
  ScheduleQuery filtered_;
  std::vector<std::size_t> keep_;
};

/// Factory: "mct", "hmct", "mp", "msf", "mni", "met", "random",
/// "round-robin", or any of them prefixed with "ma-" for the memory-aware
/// decorator. Throws ConfigError on unknown names.
std::unique_ptr<Scheduler> makeScheduler(const std::string& name, std::uint64_t seed = 1);

/// All heuristic names the factory accepts (for --help strings).
std::vector<std::string> schedulerNames();

}  // namespace casched::core
