#pragma once
/// \file server_trace.hpp
/// Agent-side trace simulation of one server - the core of the Historical
/// Trace Manager (paper section 2.3). Replays the shared-resource model
/// analytically: every admitted task moves through latency -> input transfer
/// -> compute -> latency -> output transfer, transfers sharing the link and
/// computes sharing the CPU in equal parts. With noise off, predictions match
/// the ground-truth simulator to floating point (property-tested).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/gantt.hpp"
#include "simcore/time.hpp"

namespace casched::core {

/// A task's dimensions on a given server: the agent's static information
/// (data volumes from the problem descriptor, unloaded compute seconds from
/// the cost database).
struct TaskDims {
  double inMB = 0.0;
  double cpuSeconds = 0.0;
  double outMB = 0.0;
};

/// What the agent knows about a server's hardware (peak performances sent at
/// registration, paper section 2.1).
struct ServerModel {
  std::string name;
  double bwInMBps = 10.0;
  double bwOutMBps = 10.0;
  double latencyIn = 0.0;
  double latencyOut = 0.0;
};

enum class TracePhase : std::uint8_t {
  kLatencyIn,
  kTransferIn,
  kCompute,
  kLatencyOut,
  kTransferOut,
  kDone,
};

/// Live state of one traced task.
struct TraceTask {
  std::uint64_t taskId = 0;
  TaskDims dims;
  TracePhase phase = TracePhase::kLatencyIn;
  double remaining = 0.0;  ///< remaining amount in the current phase
  simcore::SimTime admitted = 0.0;
};

/// One predicted completion, collected by the scratch-based prediction path.
struct PredictedEntry {
  std::uint64_t taskId = 0;
  simcore::SimTime completion = 0.0;
};

/// Copyable per-server trace; copies are how hypothetical mappings are
/// evaluated without disturbing the committed state.
class ServerTrace {
 public:
  explicit ServerTrace(ServerModel model);

  const ServerModel& model() const { return model_; }
  simcore::SimTime now() const { return now_; }
  std::size_t activeTasks() const { return tasks_.size(); }
  bool hasTask(std::uint64_t taskId) const;

  /// Bumped on every state mutation (advance that moves the clock, admit,
  /// remove, clear, restore). Lets callers memoize derived results - the
  /// HTM's preview cache keys on it.
  std::uint64_t version() const { return version_; }

  /// Integrates the equal-share execution up to `to`; tasks reaching kDone
  /// are dropped from the trace (their completion date is the simulated one).
  void advanceTo(simcore::SimTime to);

  /// Admits a task at time `at` (>= now; the trace advances first). The task
  /// begins its input latency after `startDelay` more seconds (models the
  /// agent->client->server submission path).
  void admit(std::uint64_t taskId, const TaskDims& dims, simcore::SimTime at,
             double startDelay = 0.0);

  /// Removes a task regardless of progress (completion notice under the
  /// drop-on-notice sync policy, failure notice, collapse). Returns false
  /// when the task is not in the trace (already simulated to completion).
  bool remove(std::uint64_t taskId);

  /// Drops every task (server collapse notice).
  void clear();

  /// Simulated completion date of every task currently in the trace, without
  /// mutating state.
  std::map<std::uint64_t, simcore::SimTime> predictCompletions() const;

  // --- scratch-based prediction (the zero-allocation hot path) ---
  // These operate on caller-owned vectors whose capacity is retained across
  // calls, so a warm caller predicts without touching the heap. They perform
  // exactly the arithmetic of the copy + advanceTo + predictCompletions path
  // above, in the same order, so results are bit-identical.

  /// Copies the live task list into `tasks` (capacity reused) and advances
  /// the copy to `to`; `*t` receives the copy's clock (max(now(), to)).
  void copyAdvanced(std::vector<TraceTask>& tasks, simcore::SimTime* t,
                    simcore::SimTime to) const;

  /// Steps `tasks` (consumed) from `t` to completion, appending one
  /// {taskId, completion} per task to `out` in completion order.
  void completeInto(std::vector<TraceTask>& tasks, simcore::SimTime t,
                    std::vector<PredictedEntry>& out) const;

  /// Steps `tasks` (consumed) from `t` only until `taskId` completes and
  /// returns its completion date (infinity when the task is absent). The
  /// simulation prefix is identical to completeInto's, so the returned date
  /// is bit-identical - this is the fast path for heuristics that need the
  /// new task's completion but no perturbations (HMCT).
  simcore::SimTime completeOne(std::vector<TraceTask>& tasks, simcore::SimTime t,
                               std::uint64_t taskId) const;

  /// Builds the TraceTask admit() would append for these parameters when the
  /// trace clock already sits at the admit instant. Returns false for the
  /// degenerate all-empty task that completes instantly (admit() drops it).
  bool buildAdmitted(std::uint64_t taskId, const TaskDims& dims, simcore::SimTime at,
                     double startDelay, TraceTask* out) const;

  /// Completion date the trace would assign to `taskId`; infinity when the
  /// task is not present.
  simcore::SimTime predictCompletion(std::uint64_t taskId) const;

  /// Full Gantt chart of the remaining execution (paper figure 1): one
  /// segment per (task, constant-share interval).
  GanttChart simulateGantt() const;

  /// Remaining work summary used by schedulers' diagnostics.
  double totalRemainingCpuSeconds() const;

  /// Live task list in admission order (snapshot/persistence read access).
  const std::vector<TraceTask>& tasks() const { return tasks_; }

  /// Replaces the whole trace state from a snapshot: the task list (admission
  /// order preserved) and the trace clock. Validates phases and amounts.
  void restore(std::vector<TraceTask> tasks, simcore::SimTime now);

 private:
  /// Advances `tasks` in place from `*t` until `bound` (or until drained),
  /// invoking `onDone(task, when)` at completions and `onSegment(task, t0,
  /// t1, share)` for every constant-rate interval. Callbacks are passed as
  /// concrete lambdas or nullptr so every call site inlines fully (the
  /// preview path runs this thousands of times per scheduling decision).
  /// When `stopTaskId` is non-null the loop returns right after that task
  /// completes, with its completion date in `*stopCompletion`.
  template <class DoneF, class SegF>
  void stepCore(std::vector<TraceTask>& tasks, simcore::SimTime* t,
                simcore::SimTime bound, DoneF&& onDone, SegF&& onSegment,
                const std::uint64_t* stopTaskId,
                simcore::SimTime* stopCompletion) const;

  double phaseAmount(const TraceTask& task, TracePhase phase) const;
  void enterNextPhase(TraceTask& task) const;
  double phaseRate(TracePhase phase, std::size_t inCount, std::size_t cpuCount,
                   std::size_t outCount) const;

  ServerModel model_;
  std::vector<TraceTask> tasks_;  // admission order (stable, deterministic)
  simcore::SimTime now_ = 0.0;
  std::uint64_t version_ = 0;
};

/// Phase name for rendering ("latency-in", "transfer-in", ...).
std::string tracePhaseName(TracePhase phase);

}  // namespace casched::core
