#include "core/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace casched::core {

namespace {
// Mirrors TracePhase without including server_trace.hpp (gantt is the lower
// layer of the two headers).
constexpr std::uint8_t kPhaseTransferIn = 1;
constexpr std::uint8_t kPhaseCompute = 2;
constexpr std::uint8_t kPhaseTransferOut = 4;

char phaseGlyph(std::uint8_t phase) {
  switch (phase) {
    case kPhaseTransferIn: return '<';
    case kPhaseCompute: return '=';
    case kPhaseTransferOut: return '>';
    default: return '.';  // latency phases
  }
}
}  // namespace

std::string renderGanttAscii(const GanttChart& chart, double secondsPerColumn) {
  if (chart.empty()) return "(empty gantt for " + chart.serverName + ")\n";

  const double span = std::max(1e-9, chart.horizon - chart.origin);
  constexpr int kTargetColumns = 72;
  double perCol = secondsPerColumn > 0.0 ? secondsPerColumn
                                         : span / static_cast<double>(kTargetColumns);
  const int columns = std::max(1, static_cast<int>(span / perCol + 0.999));

  // Stable row order: first appearance of each task.
  std::vector<std::uint64_t> order;
  std::map<std::uint64_t, std::string> rows;
  for (const GanttSegment& seg : chart.segments) {
    if (rows.find(seg.taskId) == rows.end()) {
      rows[seg.taskId] = std::string(static_cast<std::size_t>(columns), ' ');
      order.push_back(seg.taskId);
    }
  }
  for (const GanttSegment& seg : chart.segments) {
    std::string& row = rows[seg.taskId];
    const int c0 = std::clamp(
        static_cast<int>((seg.start - chart.origin) / perCol), 0, columns - 1);
    const int c1 = std::clamp(
        static_cast<int>((seg.end - chart.origin) / perCol + 0.5), c0 + 1, columns);
    for (int c = c0; c < c1; ++c) row[static_cast<std::size_t>(c)] = phaseGlyph(seg.phase);
  }

  std::ostringstream os;
  os << "Gantt chart: server " << chart.serverName
     << util::strformat("  [t=%.2f .. t=%.2f]  (one column = %.2fs)\n",
                        chart.origin, chart.horizon, perCol);
  os << "  legend: '<' input transfer, '=' compute, '>' output transfer, '.' latency\n";
  for (std::uint64_t id : order) {
    os << util::strformat("  task %-6llu |", static_cast<unsigned long long>(id))
       << rows[id] << "|\n";
  }
  // Per-task compute-share annotations, the paper's 100% / 50% / 33.3% labels.
  for (std::uint64_t id : order) {
    std::string shares;
    for (const GanttSegment& seg : chart.segments) {
      if (seg.taskId != id || seg.phase != kPhaseCompute) continue;
      shares += util::strformat(" [%.1f..%.1f]@%.3g%%", seg.start, seg.end,
                                100.0 * seg.share);
    }
    if (!shares.empty()) {
      os << util::strformat("  task %-6llu cpu shares:%s\n",
                            static_cast<unsigned long long>(id), shares.c_str());
    }
  }
  return os.str();
}

std::string ganttToCsv(const GanttChart& chart) {
  util::CsvWriter csv({"server", "taskId", "phase", "start", "end", "share"});
  for (const GanttSegment& seg : chart.segments) {
    csv.addRow({chart.serverName, std::to_string(seg.taskId),
                std::to_string(static_cast<int>(seg.phase)),
                util::strformat("%.9g", seg.start), util::strformat("%.9g", seg.end),
                util::strformat("%.9g", seg.share)});
  }
  return csv.render();
}

}  // namespace casched::core
