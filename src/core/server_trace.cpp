#include "core/server_trace.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace casched::core {

namespace {
/// Phase amounts/remainders below this are "finished" (work units are seconds
/// or MB, both O(1)-O(1e3)).
constexpr double kEps = 1e-9;
}  // namespace

ServerTrace::ServerTrace(ServerModel model) : model_(std::move(model)) {
  CASCHED_CHECK(model_.bwInMBps > 0 && model_.bwOutMBps > 0,
                "server model bandwidths must be positive");
}

bool ServerTrace::hasTask(std::uint64_t taskId) const {
  return std::any_of(tasks_.begin(), tasks_.end(),
                     [taskId](const TraceTask& t) { return t.taskId == taskId; });
}

double ServerTrace::phaseAmount(const TraceTask& task, TracePhase phase) const {
  switch (phase) {
    case TracePhase::kLatencyIn: return model_.latencyIn;
    case TracePhase::kTransferIn: return task.dims.inMB;
    case TracePhase::kCompute: return task.dims.cpuSeconds;
    case TracePhase::kLatencyOut: return model_.latencyOut;
    case TracePhase::kTransferOut: return task.dims.outMB;
    case TracePhase::kDone: return 0.0;
  }
  return 0.0;
}

void ServerTrace::enterNextPhase(TraceTask& task) const {
  while (task.phase != TracePhase::kDone && task.remaining <= kEps) {
    task.phase = static_cast<TracePhase>(static_cast<std::uint8_t>(task.phase) + 1);
    task.remaining = task.phase == TracePhase::kDone ? 0.0 : phaseAmount(task, task.phase);
  }
}

double ServerTrace::phaseRate(TracePhase phase, std::size_t inCount,
                              std::size_t cpuCount, std::size_t outCount) const {
  switch (phase) {
    case TracePhase::kLatencyIn:
    case TracePhase::kLatencyOut:
      return 1.0;  // latencies are fixed delays, not shared
    case TracePhase::kTransferIn:
      return model_.bwInMBps / static_cast<double>(inCount);
    case TracePhase::kCompute:
      return 1.0 / static_cast<double>(cpuCount);
    case TracePhase::kTransferOut:
      return model_.bwOutMBps / static_cast<double>(outCount);
    case TracePhase::kDone:
      return 0.0;
  }
  return 0.0;
}

void ServerTrace::step(std::vector<TraceTask>& tasks, simcore::SimTime* t,
                       simcore::SimTime bound, const DoneFn& onDone,
                       const SegmentFn& onSegment) const {
  while (!tasks.empty() && *t < bound) {
    // Count sharers per shared resource.
    std::size_t inCount = 0, cpuCount = 0, outCount = 0;
    for (const TraceTask& task : tasks) {
      if (task.phase == TracePhase::kTransferIn) ++inCount;
      else if (task.phase == TracePhase::kCompute) ++cpuCount;
      else if (task.phase == TracePhase::kTransferOut) ++outCount;
    }
    // Time to the next phase completion at current rates.
    double dt = std::numeric_limits<double>::infinity();
    for (const TraceTask& task : tasks) {
      const double rate = phaseRate(task.phase, inCount, cpuCount, outCount);
      CASCHED_CHECK(rate > 0.0, "trace task with zero progress rate");
      dt = std::min(dt, task.remaining / rate);
    }
    const bool clipped = *t + dt > bound;
    if (clipped) dt = bound - *t;
    const simcore::SimTime t0 = *t;
    const simcore::SimTime t1 = t0 + dt;
    // Integrate and emit segments.
    for (TraceTask& task : tasks) {
      const double rate = phaseRate(task.phase, inCount, cpuCount, outCount);
      if (onSegment && dt > kEps) {
        double share = 1.0;
        if (task.phase == TracePhase::kTransferIn) share = 1.0 / static_cast<double>(inCount);
        else if (task.phase == TracePhase::kCompute) share = 1.0 / static_cast<double>(cpuCount);
        else if (task.phase == TracePhase::kTransferOut) share = 1.0 / static_cast<double>(outCount);
        onSegment(task, t0, t1, share);
      }
      task.remaining = std::max(0.0, task.remaining - rate * dt);
    }
    *t = t1;
    // Phase transitions and completions.
    for (auto it = tasks.begin(); it != tasks.end();) {
      if (it->remaining <= kEps) {
        enterNextPhase(*it);
        if (it->phase == TracePhase::kDone) {
          if (onDone) onDone(*it, *t);
          it = tasks.erase(it);
          continue;
        }
      }
      ++it;
    }
    if (clipped) break;
  }
  if (*t < bound && bound != simcore::kTimeInfinity) *t = bound;
}

void ServerTrace::advanceTo(simcore::SimTime to) {
  if (to <= now_) return;
  step(tasks_, &now_, to, nullptr, nullptr);
}

void ServerTrace::admit(std::uint64_t taskId, const TaskDims& dims,
                        simcore::SimTime at, double startDelay) {
  CASCHED_CHECK(startDelay >= 0.0, "startDelay must be non-negative");
  CASCHED_CHECK(!hasTask(taskId), "task already in trace");
  advanceTo(at);
  TraceTask task;
  task.taskId = taskId;
  task.dims = dims;
  task.admitted = at;
  task.phase = TracePhase::kLatencyIn;
  task.remaining = startDelay + model_.latencyIn;
  if (task.remaining <= kEps) enterNextPhase(task);
  if (task.phase == TracePhase::kDone) return;  // degenerate empty task
  tasks_.push_back(task);
}

bool ServerTrace::remove(std::uint64_t taskId) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(),
                         [taskId](const TraceTask& t) { return t.taskId == taskId; });
  if (it == tasks_.end()) return false;
  tasks_.erase(it);
  return true;
}

void ServerTrace::clear() { tasks_.clear(); }

std::map<std::uint64_t, simcore::SimTime> ServerTrace::predictCompletions() const {
  std::map<std::uint64_t, simcore::SimTime> out;
  std::vector<TraceTask> copy = tasks_;
  simcore::SimTime t = now_;
  step(copy, &t, simcore::kTimeInfinity,
       [&out](const TraceTask& task, simcore::SimTime when) { out[task.taskId] = when; },
       nullptr);
  return out;
}

simcore::SimTime ServerTrace::predictCompletion(std::uint64_t taskId) const {
  const auto all = predictCompletions();
  auto it = all.find(taskId);
  return it == all.end() ? simcore::kTimeInfinity : it->second;
}

GanttChart ServerTrace::simulateGantt() const {
  GanttChart chart;
  chart.serverName = model_.name;
  chart.origin = now_;
  chart.horizon = now_;
  std::vector<TraceTask> copy = tasks_;
  simcore::SimTime t = now_;
  step(copy, &t, simcore::kTimeInfinity,
       [&chart](const TraceTask&, simcore::SimTime when) {
         chart.horizon = std::max(chart.horizon, when);
       },
       [&chart](const TraceTask& task, simcore::SimTime t0, simcore::SimTime t1,
                double share) {
         chart.segments.push_back(GanttSegment{
             task.taskId, static_cast<std::uint8_t>(task.phase), t0, t1, share});
       });
  chart.horizon = std::max(chart.horizon, t);
  return chart;
}

double ServerTrace::totalRemainingCpuSeconds() const {
  double total = 0.0;
  for (const TraceTask& task : tasks_) {
    if (task.phase < TracePhase::kCompute) {
      total += task.dims.cpuSeconds;
    } else if (task.phase == TracePhase::kCompute) {
      total += task.remaining;
    }
  }
  return total;
}

void ServerTrace::restore(std::vector<TraceTask> tasks, simcore::SimTime now) {
  for (const TraceTask& task : tasks) {
    CASCHED_CHECK(task.phase <= TracePhase::kDone, "restored task has a bad phase");
    CASCHED_CHECK(task.remaining >= 0.0, "restored task has negative remaining work");
  }
  tasks_ = std::move(tasks);
  // Drop tasks a snapshot caught exactly at completion.
  tasks_.erase(std::remove_if(tasks_.begin(), tasks_.end(),
                              [](const TraceTask& t) { return t.phase == TracePhase::kDone; }),
               tasks_.end());
  now_ = now;
}

std::string tracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kLatencyIn: return "latency-in";
    case TracePhase::kTransferIn: return "transfer-in";
    case TracePhase::kCompute: return "compute";
    case TracePhase::kLatencyOut: return "latency-out";
    case TracePhase::kTransferOut: return "transfer-out";
    case TracePhase::kDone: return "done";
  }
  return "?";
}

}  // namespace casched::core
