#include "core/server_trace.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <type_traits>

#include "util/error.hpp"

namespace casched::core {

namespace {
/// Phase amounts/remainders below this are "finished" (work units are seconds
/// or MB, both O(1)-O(1e3)).
constexpr double kEps = 1e-9;
}  // namespace

ServerTrace::ServerTrace(ServerModel model) : model_(std::move(model)) {
  CASCHED_CHECK(model_.bwInMBps > 0 && model_.bwOutMBps > 0,
                "server model bandwidths must be positive");
}

bool ServerTrace::hasTask(std::uint64_t taskId) const {
  return std::any_of(tasks_.begin(), tasks_.end(),
                     [taskId](const TraceTask& t) { return t.taskId == taskId; });
}

double ServerTrace::phaseAmount(const TraceTask& task, TracePhase phase) const {
  switch (phase) {
    case TracePhase::kLatencyIn: return model_.latencyIn;
    case TracePhase::kTransferIn: return task.dims.inMB;
    case TracePhase::kCompute: return task.dims.cpuSeconds;
    case TracePhase::kLatencyOut: return model_.latencyOut;
    case TracePhase::kTransferOut: return task.dims.outMB;
    case TracePhase::kDone: return 0.0;
  }
  return 0.0;
}

void ServerTrace::enterNextPhase(TraceTask& task) const {
  while (task.phase != TracePhase::kDone && task.remaining <= kEps) {
    task.phase = static_cast<TracePhase>(static_cast<std::uint8_t>(task.phase) + 1);
    task.remaining = task.phase == TracePhase::kDone ? 0.0 : phaseAmount(task, task.phase);
  }
}

double ServerTrace::phaseRate(TracePhase phase, std::size_t inCount,
                              std::size_t cpuCount, std::size_t outCount) const {
  switch (phase) {
    case TracePhase::kLatencyIn:
    case TracePhase::kLatencyOut:
      return 1.0;  // latencies are fixed delays, not shared
    case TracePhase::kTransferIn:
      return model_.bwInMBps / static_cast<double>(inCount);
    case TracePhase::kCompute:
      return 1.0 / static_cast<double>(cpuCount);
    case TracePhase::kTransferOut:
      return model_.bwOutMBps / static_cast<double>(outCount);
    case TracePhase::kDone:
      return 0.0;
  }
  return 0.0;
}

template <class DoneF, class SegF>
void ServerTrace::stepCore(std::vector<TraceTask>& tasks, simcore::SimTime* t,
                           simcore::SimTime bound, DoneF&& onDone, SegF&& onSegment,
                           const std::uint64_t* stopTaskId,
                           simcore::SimTime* stopCompletion) const {
  constexpr bool kHasDone = !std::is_null_pointer_v<std::decay_t<DoneF>>;
  constexpr bool kHasSegment = !std::is_null_pointer_v<std::decay_t<SegF>>;
  // Sharer counts per shared resource, maintained incrementally: they only
  // change at phase transitions, which the loop below already visits. The
  // counts are integers, so the arithmetic (and its results) is identical to
  // recounting from scratch every round.
  std::size_t inCount = 0, cpuCount = 0, outCount = 0;
  auto adjust = [&](TracePhase phase, std::ptrdiff_t delta) {
    if (phase == TracePhase::kTransferIn) inCount += static_cast<std::size_t>(delta);
    else if (phase == TracePhase::kCompute) cpuCount += static_cast<std::size_t>(delta);
    else if (phase == TracePhase::kTransferOut) outCount += static_cast<std::size_t>(delta);
  };
  for (const TraceTask& task : tasks) adjust(task.phase, +1);

  while (!tasks.empty() && *t < bound) {
    // Per-phase progress rates, computed once per round (same divisions
    // phaseRate performs, so the values are bit-identical - just hoisted out
    // of the per-task loops).
    const double rateIn =
        inCount == 0 ? 0.0 : model_.bwInMBps / static_cast<double>(inCount);
    const double rateCpu = cpuCount == 0 ? 0.0 : 1.0 / static_cast<double>(cpuCount);
    const double rateOut =
        outCount == 0 ? 0.0 : model_.bwOutMBps / static_cast<double>(outCount);
    auto rateOf = [&](TracePhase phase) {
      switch (phase) {
        case TracePhase::kLatencyIn:
        case TracePhase::kLatencyOut: return 1.0;
        case TracePhase::kTransferIn: return rateIn;
        case TracePhase::kCompute: return rateCpu;
        case TracePhase::kTransferOut: return rateOut;
        case TracePhase::kDone: return 0.0;
      }
      return 0.0;
    };
    // Time to the next phase completion at current rates.
    double dt = std::numeric_limits<double>::infinity();
    for (const TraceTask& task : tasks) {
      const double rate = rateOf(task.phase);
      CASCHED_CHECK(rate > 0.0, "trace task with zero progress rate");
      dt = std::min(dt, task.remaining / rate);
    }
    const bool clipped = *t + dt > bound;
    if (clipped) dt = bound - *t;
    const simcore::SimTime t0 = *t;
    const simcore::SimTime t1 = t0 + dt;
    // Integrate and emit segments.
    for (TraceTask& task : tasks) {
      const double rate = rateOf(task.phase);
      if constexpr (kHasSegment) {
        if (dt > kEps) {
          double share = 1.0;
          if (task.phase == TracePhase::kTransferIn) share = 1.0 / static_cast<double>(inCount);
          else if (task.phase == TracePhase::kCompute) share = 1.0 / static_cast<double>(cpuCount);
          else if (task.phase == TracePhase::kTransferOut) share = 1.0 / static_cast<double>(outCount);
          onSegment(task, t0, t1, share);
        }
      }
      task.remaining = std::max(0.0, task.remaining - rate * dt);
    }
    *t = t1;
    // Phase transitions and completions.
    for (auto it = tasks.begin(); it != tasks.end();) {
      if (it->remaining <= kEps) {
        const TracePhase from = it->phase;
        enterNextPhase(*it);
        adjust(from, -1);
        if (it->phase == TracePhase::kDone) {
          if constexpr (kHasDone) onDone(*it, *t);
          const bool stop = stopTaskId != nullptr && it->taskId == *stopTaskId;
          it = tasks.erase(it);
          if (stop) {
            if (stopCompletion != nullptr) *stopCompletion = *t;
            return;
          }
          continue;
        }
        adjust(it->phase, +1);
      }
      ++it;
    }
    if (clipped) break;
  }
  if (*t < bound && bound != simcore::kTimeInfinity) *t = bound;
}

void ServerTrace::advanceTo(simcore::SimTime to) {
  if (to <= now_) return;
  ++version_;
  stepCore(tasks_, &now_, to, nullptr, nullptr, nullptr, nullptr);
}

void ServerTrace::admit(std::uint64_t taskId, const TaskDims& dims,
                        simcore::SimTime at, double startDelay) {
  CASCHED_CHECK(startDelay >= 0.0, "startDelay must be non-negative");
  CASCHED_CHECK(!hasTask(taskId), "task already in trace");
  advanceTo(at);
  ++version_;
  TraceTask task;
  task.taskId = taskId;
  task.dims = dims;
  task.admitted = at;
  task.phase = TracePhase::kLatencyIn;
  task.remaining = startDelay + model_.latencyIn;
  if (task.remaining <= kEps) enterNextPhase(task);
  if (task.phase == TracePhase::kDone) return;  // degenerate empty task
  tasks_.push_back(task);
}

bool ServerTrace::remove(std::uint64_t taskId) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(),
                         [taskId](const TraceTask& t) { return t.taskId == taskId; });
  if (it == tasks_.end()) return false;
  tasks_.erase(it);
  ++version_;
  return true;
}

void ServerTrace::clear() {
  tasks_.clear();
  ++version_;
}

std::map<std::uint64_t, simcore::SimTime> ServerTrace::predictCompletions() const {
  std::map<std::uint64_t, simcore::SimTime> out;
  std::vector<TraceTask> copy = tasks_;
  simcore::SimTime t = now_;
  stepCore(copy, &t, simcore::kTimeInfinity,
           [&out](const TraceTask& task, simcore::SimTime when) { out[task.taskId] = when; },
           nullptr, nullptr, nullptr);
  return out;
}

void ServerTrace::copyAdvanced(std::vector<TraceTask>& tasks, simcore::SimTime* t,
                               simcore::SimTime to) const {
  tasks = tasks_;  // assignment reuses the destination's capacity
  *t = now_;
  if (to > *t) stepCore(tasks, t, to, nullptr, nullptr, nullptr, nullptr);
}

void ServerTrace::completeInto(std::vector<TraceTask>& tasks, simcore::SimTime t,
                               std::vector<PredictedEntry>& out) const {
  stepCore(tasks, &t, simcore::kTimeInfinity,
           [&out](const TraceTask& task, simcore::SimTime when) {
             out.push_back(PredictedEntry{task.taskId, when});
           },
           nullptr, nullptr, nullptr);
}

simcore::SimTime ServerTrace::completeOne(std::vector<TraceTask>& tasks,
                                          simcore::SimTime t,
                                          std::uint64_t taskId) const {
  simcore::SimTime completion = simcore::kTimeInfinity;
  stepCore(tasks, &t, simcore::kTimeInfinity, nullptr, nullptr, &taskId, &completion);
  return completion;
}

bool ServerTrace::buildAdmitted(std::uint64_t taskId, const TaskDims& dims,
                                simcore::SimTime at, double startDelay,
                                TraceTask* out) const {
  CASCHED_CHECK(startDelay >= 0.0, "startDelay must be non-negative");
  TraceTask task;
  task.taskId = taskId;
  task.dims = dims;
  task.admitted = at;
  task.phase = TracePhase::kLatencyIn;
  task.remaining = startDelay + model_.latencyIn;
  if (task.remaining <= kEps) enterNextPhase(task);
  if (task.phase == TracePhase::kDone) return false;  // degenerate empty task
  *out = task;
  return true;
}

simcore::SimTime ServerTrace::predictCompletion(std::uint64_t taskId) const {
  const auto all = predictCompletions();
  auto it = all.find(taskId);
  return it == all.end() ? simcore::kTimeInfinity : it->second;
}

GanttChart ServerTrace::simulateGantt() const {
  GanttChart chart;
  chart.serverName = model_.name;
  chart.origin = now_;
  chart.horizon = now_;
  std::vector<TraceTask> copy = tasks_;
  simcore::SimTime t = now_;
  stepCore(copy, &t, simcore::kTimeInfinity,
           [&chart](const TraceTask&, simcore::SimTime when) {
             chart.horizon = std::max(chart.horizon, when);
           },
           [&chart](const TraceTask& task, simcore::SimTime t0, simcore::SimTime t1,
                    double share) {
             chart.segments.push_back(GanttSegment{
                 task.taskId, static_cast<std::uint8_t>(task.phase), t0, t1, share});
           },
           nullptr, nullptr);
  chart.horizon = std::max(chart.horizon, t);
  return chart;
}

double ServerTrace::totalRemainingCpuSeconds() const {
  double total = 0.0;
  for (const TraceTask& task : tasks_) {
    if (task.phase < TracePhase::kCompute) {
      total += task.dims.cpuSeconds;
    } else if (task.phase == TracePhase::kCompute) {
      total += task.remaining;
    }
  }
  return total;
}

void ServerTrace::restore(std::vector<TraceTask> tasks, simcore::SimTime now) {
  for (const TraceTask& task : tasks) {
    CASCHED_CHECK(task.phase <= TracePhase::kDone, "restored task has a bad phase");
    CASCHED_CHECK(task.remaining >= 0.0, "restored task has negative remaining work");
  }
  tasks_ = std::move(tasks);
  // Drop tasks a snapshot caught exactly at completion.
  tasks_.erase(std::remove_if(tasks_.begin(), tasks_.end(),
                              [](const TraceTask& t) { return t.phase == TracePhase::kDone; }),
               tasks_.end());
  now_ = now;
  ++version_;
}

std::string tracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kLatencyIn: return "latency-in";
    case TracePhase::kTransferIn: return "transfer-in";
    case TracePhase::kCompute: return "compute";
    case TracePhase::kLatencyOut: return "latency-out";
    case TracePhase::kTransferOut: return "transfer-out";
    case TracePhase::kDone: return "done";
  }
  return "?";
}

}  // namespace casched::core
