#pragma once
/// \file server_id.hpp
/// Dense interned server identity.
///
/// Server names are strings at the edges of the system (wire messages, the
/// scenario registry, CLI flags, metrics labels) but the scheduling hot path
/// must never hash or compare them. Each name is interned exactly once - at
/// registration / first HTM contact - into a dense uint32 ServerId, and every
/// per-server table (agent server state, HTM rows, in-flight bookkeeping)
/// becomes a contiguous vector indexed by that id. Ids are append-only and
/// never reused: a server that departs and later re-registers gets its old id
/// (and with it any pre-warmed HTM row) back.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace casched::core {

using ServerId = std::uint32_t;
inline constexpr ServerId kInvalidServerId = 0xffffffffu;

/// The name <-> id table. One instance per agent/HTM pair (the HTM owns it;
/// the agent shares the id space through it).
class ServerInterner {
 public:
  /// Id for `name`, interning it when unseen.
  ServerId intern(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, static_cast<ServerId>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  /// Id for `name`, or kInvalidServerId when it was never interned.
  ServerId find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kInvalidServerId : it->second;
  }

  const std::string& name(ServerId id) const { return names_[id]; }

  /// Number of interned names == smallest id not yet assigned.
  std::size_t size() const { return names_.size(); }

  void clear() {
    names_.clear();
    ids_.clear();
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ServerId> ids_;
};

}  // namespace casched::core
