#include "core/htm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::core {

namespace {
constexpr double kPerturbEps = 1e-9;
/// EWMA gain for the kRescale speed correction.
constexpr double kRescaleAlpha = 0.2;
/// The preview's "what if" task; never collides with real (client-chosen) ids.
constexpr std::uint64_t kHypotheticalId = ~0ULL;

bool byTaskId(const PredictedEntry& a, const PredictedEntry& b) {
  return a.taskId < b.taskId;
}
}  // namespace

SyncPolicy parseSyncPolicy(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "predict-only" || n == "none") return SyncPolicy::kPredictOnly;
  if (n == "drop" || n == "drop-on-notice") return SyncPolicy::kDropOnNotice;
  if (n == "rescale") return SyncPolicy::kRescale;
  throw util::ConfigError("unknown HTM sync policy '" + name + "'");
}

std::string syncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kPredictOnly: return "predict-only";
    case SyncPolicy::kDropOnNotice: return "drop-on-notice";
    case SyncPolicy::kRescale: return "rescale";
  }
  return "?";
}

HistoricalTraceManager::HistoricalTraceManager(SyncPolicy policy) : policy_(policy) {}

void HistoricalTraceManager::addServer(const ServerModel& model) {
  const ServerId id = interner_.intern(model.name);
  if (id >= rows_.size()) rows_.resize(id + 1);
  CASCHED_CHECK(!rows_[id].has_value(),
                "server '" + model.name + "' already registered with the HTM");
  rows_[id].emplace(Entry{ServerTrace(model), 1.0, {}, {}});
}

ServerId HistoricalTraceManager::requireId(const std::string& server) const {
  const ServerId id = interner_.find(server);
  CASCHED_CHECK(hasServer(id), "unknown server '" + server + "'");
  return id;
}

void HistoricalTraceManager::removeServer(ServerId id) {
  CASCHED_CHECK(hasServer(id), "server id " + std::to_string(id) +
                                   " is not registered with the HTM");
  rows_[id].reset();
}

void HistoricalTraceManager::removeServer(const std::string& server) {
  const ServerId id = interner_.find(server);
  CASCHED_CHECK(hasServer(id),
                "server '" + server + "' is not registered with the HTM");
  rows_[id].reset();
}

std::vector<std::string> HistoricalTraceManager::serverNames() const {
  std::vector<std::string> names;
  for (ServerId id = 0; id < rows_.size(); ++id) {
    if (rows_[id].has_value()) names.push_back(interner_.name(id));
  }
  return names;
}

HistoricalTraceManager::Entry& HistoricalTraceManager::row(ServerId id) {
  CASCHED_CHECK(hasServer(id),
                "unknown server id " + std::to_string(id));
  return *rows_[id];
}

const HistoricalTraceManager::Entry& HistoricalTraceManager::row(ServerId id) const {
  CASCHED_CHECK(hasServer(id),
                "unknown server id " + std::to_string(id));
  return *rows_[id];
}

TaskDims HistoricalTraceManager::adjustedDims(const Entry& entry,
                                              const TaskDims& dims) const {
  if (policy_ != SyncPolicy::kRescale) return dims;
  TaskDims adjusted = dims;
  adjusted.cpuSeconds *= entry.speedRatio;
  return adjusted;
}

void HistoricalTraceManager::previewInto(ServerId id, const TaskDims& dims,
                                         simcore::SimTime now, double startDelay,
                                         Preview& out, bool perturbations) const {
  const Entry& entry = row(id);
  ++stats_.previews;

  if (!perturbations) {
    // completionNew only: one simulation pass, stopped at the hypothetical
    // task's completion (its prefix matches the full pass bit for bit).
    // A preview is a pure function of (trace state, now, dims, startDelay),
    // so an unchanged server answers straight from its memo - the common
    // case inside a placement batch, where each decision mutates one trace.
    out.server = id;
    out.sumPerturbation = 0.0;
    out.perturbedCount = 0;
    out.perTask.clear();
    const TaskDims adjusted = adjustedDims(entry, dims);
    PreviewMemo& memo = entry.memo;
    if (memo.valid && memo.traceVersion == entry.trace.version() &&
        memo.now == now && memo.startDelay == startDelay &&
        memo.dims.inMB == adjusted.inMB &&
        memo.dims.cpuSeconds == adjusted.cpuSeconds &&
        memo.dims.outMB == adjusted.outMB) {
      out.completionNew = memo.completionNew;
      return;
    }
    simcore::SimTime t;
    entry.trace.copyAdvanced(scratch_.base, &t, now);
    TraceTask hyp;
    const bool admitted =
        entry.trace.buildAdmitted(kHypotheticalId, adjusted, now, startDelay, &hyp);
    CASCHED_CHECK(admitted, "hypothetical task vanished from trace");
    scratch_.base.push_back(hyp);
    out.completionNew = entry.trace.completeOne(scratch_.base, t, kHypotheticalId);
    CASCHED_CHECK(out.completionNew != simcore::kTimeInfinity,
                  "hypothetical task vanished from trace");
    memo.valid = true;
    memo.traceVersion = entry.trace.version();
    memo.now = now;
    memo.startDelay = startDelay;
    memo.dims = adjusted;
    memo.completionNew = out.completionNew;
    return;
  }

  // Work on a copy advanced to `now`; the committed trace stays untouched
  // (it is advanced lazily on commits/notices). All buffers are reused - the
  // arithmetic is the same, in the same order, as the historical
  // copy-the-ServerTrace path, so results are bit-identical.
  simcore::SimTime t;
  entry.trace.copyAdvanced(scratch_.base, &t, now);

  scratch_.work = scratch_.base;
  scratch_.before.clear();
  entry.trace.completeInto(scratch_.work, t, scratch_.before);

  TraceTask hyp;
  if (entry.trace.buildAdmitted(kHypotheticalId, adjustedDims(entry, dims), now,
                                startDelay, &hyp)) {
    scratch_.base.push_back(hyp);
  }
  scratch_.work = scratch_.base;
  scratch_.after.clear();
  entry.trace.completeInto(scratch_.work, t, scratch_.after);

  // Merge in ascending task-id order (kHypotheticalId sorts last).
  std::sort(scratch_.before.begin(), scratch_.before.end(), byTaskId);
  std::sort(scratch_.after.begin(), scratch_.after.end(), byTaskId);

  out.server = id;
  out.sumPerturbation = 0.0;
  out.perturbedCount = 0;
  out.perTask.clear();
  CASCHED_CHECK(!scratch_.after.empty() &&
                    scratch_.after.back().taskId == kHypotheticalId,
                "hypothetical task vanished from trace");
  out.completionNew = scratch_.after.back().completion;
  std::size_t ai = 0;
  for (const PredictedEntry& b : scratch_.before) {
    while (ai < scratch_.after.size() && scratch_.after[ai].taskId < b.taskId) ++ai;
    CASCHED_CHECK(ai < scratch_.after.size() &&
                      scratch_.after[ai].taskId == b.taskId,
                  "existing task vanished from trace");
    const double delta = scratch_.after[ai].completion - b.completion;
    out.perTask.push_back(Perturbation{b.taskId, delta});
    out.sumPerturbation += delta;
    if (delta > kPerturbEps) ++out.perturbedCount;
  }
}

Preview HistoricalTraceManager::preview(ServerId id, const TaskDims& dims,
                                        simcore::SimTime now, double startDelay) const {
  Preview p;
  previewInto(id, dims, now, startDelay, p);
  return p;
}

Preview HistoricalTraceManager::preview(const std::string& server, const TaskDims& dims,
                                        simcore::SimTime now, double startDelay) const {
  return preview(requireId(server), dims, now, startDelay);
}

simcore::SimTime HistoricalTraceManager::commit(ServerId id, std::uint64_t taskId,
                                                const TaskDims& dims,
                                                simcore::SimTime now, double startDelay) {
  Entry& entry = row(id);
  entry.trace.admit(taskId, adjustedDims(entry, dims), now, startDelay);
  // Refresh the prediction of EVERY task on this server: the paper's Table 1
  // compares real completion dates against the HTM's final simulation, which
  // accounts for all tasks mapped before each completion (the new task
  // perturbs its neighbours' dates).
  scratch_.work = entry.trace.tasks();
  scratch_.after.clear();
  entry.trace.completeInto(scratch_.work, entry.trace.now(), scratch_.after);
  std::sort(scratch_.after.begin(), scratch_.after.end(), byTaskId);

  simcore::SimTime predictedNew = simcore::kTimeInfinity;
  std::vector<PredictedRow>& pred = entry.predicted;
  std::size_t pi = 0;
  for (const PredictedEntry& e : scratch_.after) {
    while (pi < pred.size() && pred[pi].taskId < e.taskId) ++pi;
    if (pi < pred.size() && pred[pi].taskId == e.taskId) {
      pred[pi].predicted = e.completion;
    } else {
      pred.insert(pred.begin() + static_cast<std::ptrdiff_t>(pi),
                  PredictedRow{e.taskId, e.completion, now + startDelay});
    }
    if (e.taskId == taskId) predictedNew = e.completion;
  }
  ++stats_.commits;
  return predictedNew;
}

simcore::SimTime HistoricalTraceManager::commit(const std::string& server,
                                                std::uint64_t taskId, const TaskDims& dims,
                                                simcore::SimTime now, double startDelay) {
  return commit(requireId(server), taskId, dims, now, startDelay);
}

void HistoricalTraceManager::advanceAll(simcore::SimTime now) {
  for (std::optional<Entry>& entry : rows_) {
    if (entry.has_value()) entry->trace.advanceTo(now);
  }
}

void HistoricalTraceManager::onTaskCompleted(ServerId id, std::uint64_t taskId,
                                             simcore::SimTime actualCompletion) {
  Entry& entry = row(id);
  ++stats_.completionNotices;

  std::vector<PredictedRow>& pred = entry.predicted;
  auto itPred = std::lower_bound(
      pred.begin(), pred.end(), taskId,
      [](const PredictedRow& r, std::uint64_t tid) { return r.taskId < tid; });
  if (itPred != pred.end() && itPred->taskId == taskId) {
    const double predicted = itPred->predicted;
    const double admitted = itPred->admitted;
    const double err = std::abs(actualCompletion - predicted);
    const double actualDuration = std::max(1e-9, actualCompletion - admitted);
    stats_.absErrorSum += err;
    stats_.relErrorSum += err / actualDuration;
    ++stats_.errorSamples;
    if (policy_ == SyncPolicy::kRescale) {
      const double predictedDuration = std::max(1e-9, predicted - admitted);
      const double ratio = actualDuration / predictedDuration;
      entry.speedRatio = (1.0 - kRescaleAlpha) * entry.speedRatio + kRescaleAlpha * ratio;
      entry.speedRatio = std::clamp(entry.speedRatio, 0.2, 5.0);
    }
    pred.erase(itPred);
  }

  if (policy_ == SyncPolicy::kPredictOnly) return;
  entry.trace.advanceTo(actualCompletion);
  entry.trace.remove(taskId);  // no-op when the simulation already retired it
}

void HistoricalTraceManager::onTaskCompleted(const std::string& server,
                                             std::uint64_t taskId,
                                             simcore::SimTime actualCompletion) {
  onTaskCompleted(requireId(server), taskId, actualCompletion);
}

void HistoricalTraceManager::onTaskFailed(ServerId id, std::uint64_t taskId,
                                          simcore::SimTime now) {
  Entry& entry = row(id);
  ++stats_.failureNotices;
  entry.trace.advanceTo(now);
  entry.trace.remove(taskId);
  std::vector<PredictedRow>& pred = entry.predicted;
  auto it = std::lower_bound(
      pred.begin(), pred.end(), taskId,
      [](const PredictedRow& r, std::uint64_t tid) { return r.taskId < tid; });
  if (it != pred.end() && it->taskId == taskId) pred.erase(it);
}

void HistoricalTraceManager::onTaskFailed(const std::string& server,
                                          std::uint64_t taskId, simcore::SimTime now) {
  onTaskFailed(requireId(server), taskId, now);
}

void HistoricalTraceManager::onServerCollapsed(ServerId id, simcore::SimTime now) {
  Entry& entry = row(id);
  entry.trace.advanceTo(now);
  entry.trace.clear();
  entry.predicted.clear();
}

void HistoricalTraceManager::onServerCollapsed(const std::string& server,
                                               simcore::SimTime now) {
  onServerCollapsed(requireId(server), now);
}

std::map<std::uint64_t, simcore::SimTime> HistoricalTraceManager::predictedCompletions(
    const std::string& server, simcore::SimTime now) {
  Entry& entry = row(requireId(server));
  entry.trace.advanceTo(now);
  return entry.trace.predictCompletions();
}

GanttChart HistoricalTraceManager::gantt(const std::string& server, simcore::SimTime now) {
  Entry& entry = row(requireId(server));
  entry.trace.advanceTo(now);
  return entry.trace.simulateGantt();
}

std::size_t HistoricalTraceManager::activeTasks(const std::string& server) const {
  return row(requireId(server)).trace.activeTasks();
}

double HistoricalTraceManager::speedCorrection(const std::string& server) const {
  return row(requireId(server)).speedRatio;
}

const ServerTrace& HistoricalTraceManager::trace(const std::string& server) const {
  return row(requireId(server)).trace;
}

}  // namespace casched::core
