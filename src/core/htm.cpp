#include "core/htm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::core {

namespace {
constexpr double kPerturbEps = 1e-9;
/// EWMA gain for the kRescale speed correction.
constexpr double kRescaleAlpha = 0.2;
}  // namespace

SyncPolicy parseSyncPolicy(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "predict-only" || n == "none") return SyncPolicy::kPredictOnly;
  if (n == "drop" || n == "drop-on-notice") return SyncPolicy::kDropOnNotice;
  if (n == "rescale") return SyncPolicy::kRescale;
  throw util::ConfigError("unknown HTM sync policy '" + name + "'");
}

std::string syncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kPredictOnly: return "predict-only";
    case SyncPolicy::kDropOnNotice: return "drop-on-notice";
    case SyncPolicy::kRescale: return "rescale";
  }
  return "?";
}

HistoricalTraceManager::HistoricalTraceManager(SyncPolicy policy) : policy_(policy) {}

void HistoricalTraceManager::addServer(const ServerModel& model) {
  CASCHED_CHECK(servers_.find(model.name) == servers_.end(),
                "server '" + model.name + "' already registered with the HTM");
  servers_.emplace(model.name, Entry{ServerTrace(model), 1.0, {}});
}

void HistoricalTraceManager::removeServer(const std::string& server) {
  auto it = servers_.find(server);
  CASCHED_CHECK(it != servers_.end(),
                "server '" + server + "' is not registered with the HTM");
  servers_.erase(it);
}

bool HistoricalTraceManager::hasServer(const std::string& server) const {
  return servers_.find(server) != servers_.end();
}

std::vector<std::string> HistoricalTraceManager::serverNames() const {
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, entry] : servers_) names.push_back(name);
  return names;
}

HistoricalTraceManager::Entry& HistoricalTraceManager::entryFor(const std::string& server) {
  auto it = servers_.find(server);
  CASCHED_CHECK(it != servers_.end(), "unknown server '" + server + "'");
  return it->second;
}

const HistoricalTraceManager::Entry& HistoricalTraceManager::entryFor(
    const std::string& server) const {
  auto it = servers_.find(server);
  CASCHED_CHECK(it != servers_.end(), "unknown server '" + server + "'");
  return it->second;
}

TaskDims HistoricalTraceManager::adjustedDims(const Entry& entry,
                                              const TaskDims& dims) const {
  if (policy_ != SyncPolicy::kRescale) return dims;
  TaskDims adjusted = dims;
  adjusted.cpuSeconds *= entry.speedRatio;
  return adjusted;
}

Preview HistoricalTraceManager::preview(const std::string& server, const TaskDims& dims,
                                        simcore::SimTime now, double startDelay) const {
  const Entry& entry = entryFor(server);
  ++stats_.previews;

  // Work on a copy advanced to `now`; the committed trace stays untouched
  // (it is advanced lazily on commits/notices).
  ServerTrace base = entry.trace;
  base.advanceTo(now);
  const std::map<std::uint64_t, simcore::SimTime> before = base.predictCompletions();

  ServerTrace with = base;
  constexpr std::uint64_t kHypotheticalId = ~0ULL;
  with.admit(kHypotheticalId, adjustedDims(entry, dims), now, startDelay);
  const std::map<std::uint64_t, simcore::SimTime> after = with.predictCompletions();

  Preview p;
  p.server = server;
  auto itNew = after.find(kHypotheticalId);
  CASCHED_CHECK(itNew != after.end(), "hypothetical task vanished from trace");
  p.completionNew = itNew->second;
  for (const auto& [taskId, sigma] : before) {
    auto itAfter = after.find(taskId);
    CASCHED_CHECK(itAfter != after.end(), "existing task vanished from trace");
    const double delta = itAfter->second - sigma;
    p.perTask.push_back(Perturbation{taskId, delta});
    p.sumPerturbation += delta;
    if (delta > kPerturbEps) ++p.perturbedCount;
  }
  return p;
}

simcore::SimTime HistoricalTraceManager::commit(const std::string& server,
                                                std::uint64_t taskId, const TaskDims& dims,
                                                simcore::SimTime now, double startDelay) {
  Entry& entry = entryFor(server);
  entry.trace.admit(taskId, adjustedDims(entry, dims), now, startDelay);
  // Refresh the prediction of EVERY task on this server: the paper's Table 1
  // compares real completion dates against the HTM's final simulation, which
  // accounts for all tasks mapped before each completion (the new task
  // perturbs its neighbours' dates).
  const auto all = entry.trace.predictCompletions();
  simcore::SimTime predictedNew = simcore::kTimeInfinity;
  for (const auto& [id, sigma] : all) {
    auto it = entry.predicted.find(id);
    if (it != entry.predicted.end()) {
      it->second.first = sigma;
    } else {
      entry.predicted[id] = {sigma, now + startDelay};
    }
    if (id == taskId) predictedNew = sigma;
  }
  ++stats_.commits;
  return predictedNew;
}

void HistoricalTraceManager::onTaskCompleted(const std::string& server,
                                             std::uint64_t taskId,
                                             simcore::SimTime actualCompletion) {
  Entry& entry = entryFor(server);
  ++stats_.completionNotices;

  auto itPred = entry.predicted.find(taskId);
  if (itPred != entry.predicted.end()) {
    const auto [predicted, admitted] = itPred->second;
    const double err = std::abs(actualCompletion - predicted);
    const double actualDuration = std::max(1e-9, actualCompletion - admitted);
    stats_.absErrorSum += err;
    stats_.relErrorSum += err / actualDuration;
    ++stats_.errorSamples;
    if (policy_ == SyncPolicy::kRescale) {
      const double predictedDuration = std::max(1e-9, predicted - admitted);
      const double ratio = actualDuration / predictedDuration;
      entry.speedRatio = (1.0 - kRescaleAlpha) * entry.speedRatio + kRescaleAlpha * ratio;
      entry.speedRatio = std::clamp(entry.speedRatio, 0.2, 5.0);
    }
    entry.predicted.erase(itPred);
  }

  if (policy_ == SyncPolicy::kPredictOnly) return;
  entry.trace.advanceTo(actualCompletion);
  entry.trace.remove(taskId);  // no-op when the simulation already retired it
}

void HistoricalTraceManager::onTaskFailed(const std::string& server, std::uint64_t taskId,
                                          simcore::SimTime now) {
  Entry& entry = entryFor(server);
  ++stats_.failureNotices;
  entry.trace.advanceTo(now);
  entry.trace.remove(taskId);
  entry.predicted.erase(taskId);
}

void HistoricalTraceManager::onServerCollapsed(const std::string& server,
                                               simcore::SimTime now) {
  Entry& entry = entryFor(server);
  entry.trace.advanceTo(now);
  entry.trace.clear();
  entry.predicted.clear();
}

std::map<std::uint64_t, simcore::SimTime> HistoricalTraceManager::predictedCompletions(
    const std::string& server, simcore::SimTime now) {
  Entry& entry = entryFor(server);
  entry.trace.advanceTo(now);
  return entry.trace.predictCompletions();
}

GanttChart HistoricalTraceManager::gantt(const std::string& server, simcore::SimTime now) {
  Entry& entry = entryFor(server);
  entry.trace.advanceTo(now);
  return entry.trace.simulateGantt();
}

std::size_t HistoricalTraceManager::activeTasks(const std::string& server) const {
  return entryFor(server).trace.activeTasks();
}

double HistoricalTraceManager::speedCorrection(const std::string& server) const {
  return entryFor(server).speedRatio;
}

const ServerTrace& HistoricalTraceManager::trace(const std::string& server) const {
  return entryFor(server).trace;
}

}  // namespace casched::core
