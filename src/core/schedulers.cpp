#include "core/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::core {

namespace {
/// Scores within this tolerance are considered equal (tie-breaking).
constexpr double kTieEps = 1e-9;

/// Generic argmin over primary scores with an optional secondary tie-break.
std::optional<std::size_t> argmin(const std::vector<double>& primary,
                                  const std::vector<double>* secondary = nullptr) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < primary.size(); ++i) {
    if (!best) {
      best = i;
      continue;
    }
    const double d = primary[i] - primary[*best];
    if (d < -kTieEps) {
      best = i;
    } else if (std::abs(d) <= kTieEps && secondary != nullptr &&
               (*secondary)[i] < (*secondary)[*best] - kTieEps) {
      best = i;
    }
  }
  return best;
}

/// Resets a decision's choice and score list for reuse (previews are managed
/// by the HTM heuristics, which resize them in place).
void resetDecision(ScheduleDecision& d) {
  d.chosen.reset();
  d.scores.clear();
}

/// Runs the HTM preview for every candidate into d.previews, reusing each
/// element's buffers. Heuristics whose score ignores pi_j pass
/// `perturbations = false` for the early-exit preview.
void previewAll(const ScheduleQuery& query, ScheduleDecision& d,
                bool perturbations = true) {
  CASCHED_CHECK(query.htm != nullptr, "HTM heuristic invoked without an HTM");
  d.previews.resize(query.candidates.size());
  for (std::size_t i = 0; i < query.candidates.size(); ++i) {
    const CandidateServer& c = query.candidates[i];
    query.htm->previewInto(c.id, c.dims, query.now, query.startDelay, d.previews[i],
                           perturbations);
  }
}
}  // namespace

void MctScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  d.previews.clear();
  for (const CandidateServer& c : query.candidates) {
    // NetSolve's estimate (paper section 2.2): communication time = size /
    // bandwidth + latency, computation time = cost / available CPU fraction,
    // where a load of L leaves a new task 1/(L+1) of the machine.
    const double comm = c.unloadedDuration - c.dims.cpuSeconds;
    const double load = std::max(0.0, c.reportedLoad);
    d.scores.push_back(comm + c.dims.cpuSeconds * (load + 1.0));
  }
  d.chosen = argmin(d.scores);
}

void HmctScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  previewAll(query, d, /*perturbations=*/false);
  for (const Preview& p : d.previews) d.scores.push_back(p.completionNew);
  d.chosen = argmin(d.scores);
}

void MpScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  previewAll(query, d);
  completionScratch_.clear();
  for (const Preview& p : d.previews) {
    d.scores.push_back(p.sumPerturbation);
    completionScratch_.push_back(p.completionNew);
  }
  // Paper fig. 3: minimum sum of perturbations; when sums tie (e.g. all zero
  // on an idle platform), minimize the new task's completion date.
  d.chosen = argmin(d.scores, &completionScratch_);
}

void MsfScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  previewAll(query, d);
  for (const Preview& p : d.previews) {
    // Increase of the system sum-flow = sum of perturbations + flow of the
    // new task (paper fig. 4). The arrival date is a per-task constant, so
    // (completion - now) keeps scores comparable across servers.
    d.scores.push_back(p.sumPerturbation + (p.completionNew - query.now));
  }
  d.chosen = argmin(d.scores);
}

void MniScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  previewAll(query, d);
  completionScratch_.clear();
  for (const Preview& p : d.previews) {
    d.scores.push_back(static_cast<double>(p.perturbedCount));
    completionScratch_.push_back(p.completionNew);
  }
  d.chosen = argmin(d.scores, &completionScratch_);
}

void MetScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  d.previews.clear();
  for (const CandidateServer& c : query.candidates) d.scores.push_back(c.unloadedDuration);
  d.chosen = argmin(d.scores);
}

void RandomScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  d.previews.clear();
  if (query.candidates.empty()) return;
  d.chosen = static_cast<std::size_t>(rng_.uniformInt(
      0, static_cast<std::int64_t>(query.candidates.size()) - 1));
}

void RandomScheduler::previewInto(const ScheduleQuery& query, ScheduleDecision& d) {
  // Draw from a copy so the preview reports what the next real placement
  // would pick without consuming that draw.
  resetDecision(d);
  d.previews.clear();
  if (query.candidates.empty()) return;
  simcore::RandomStream scratch = rng_;
  d.chosen = static_cast<std::size_t>(scratch.uniformInt(
      0, static_cast<std::int64_t>(query.candidates.size()) - 1));
}

void RoundRobinScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  d.previews.clear();
  if (query.candidates.empty()) return;
  d.chosen = next_ % query.candidates.size();
  next_ = (next_ + 1) % std::max<std::size_t>(1, query.candidates.size());
}

void RoundRobinScheduler::previewInto(const ScheduleQuery& query, ScheduleDecision& d) {
  resetDecision(d);
  d.previews.clear();
  if (query.candidates.empty()) return;
  d.chosen = next_ % query.candidates.size();
}

MemoryAwareScheduler::MemoryAwareScheduler(std::unique_ptr<Scheduler> inner)
    : inner_(std::move(inner)) {
  CASCHED_CHECK(inner_ != nullptr, "memory-aware decorator needs an inner scheduler");
}

void MemoryAwareScheduler::chooseInto(const ScheduleQuery& query, ScheduleDecision& d) {
  filterAndDelegate(query, d, /*preview=*/false);
}

void MemoryAwareScheduler::previewInto(const ScheduleQuery& query, ScheduleDecision& d) {
  filterAndDelegate(query, d, /*preview=*/true);
}

void MemoryAwareScheduler::filterAndDelegate(const ScheduleQuery& query,
                                             ScheduleDecision& d, bool preview) {
  resetDecision(d);
  d.previews.clear();
  if (query.candidates.empty()) return;

  // Tier 1: no thrashing (fits in physical RAM). Tier 2: no collapse (fits
  // in RAM+swap).
  keep_.clear();
  for (std::size_t i = 0; i < query.candidates.size(); ++i) {
    const CandidateServer& c = query.candidates[i];
    const double soft = std::min(c.memSoftMB, c.memCapacityMB);
    if (c.projectedResidentMB + c.taskMemMB <= soft) keep_.push_back(i);
  }
  if (keep_.empty()) {
    for (std::size_t i = 0; i < query.candidates.size(); ++i) {
      const CandidateServer& c = query.candidates[i];
      if (c.projectedResidentMB + c.taskMemMB <= c.memCapacityMB) keep_.push_back(i);
    }
  }
  if (keep_.empty()) {
    // Nowhere fits: degrade gracefully to the roomiest server.
    std::size_t best = 0;
    double bestFree = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < query.candidates.size(); ++i) {
      const CandidateServer& c = query.candidates[i];
      const double free = c.memCapacityMB - c.projectedResidentMB;
      if (free > bestFree) {
        bestFree = free;
        best = i;
      }
    }
    d.chosen = best;
    return;
  }

  filtered_.taskId = query.taskId;
  filtered_.now = query.now;
  filtered_.startDelay = query.startDelay;
  filtered_.htm = query.htm;
  filtered_.candidates.clear();
  for (std::size_t i : keep_) filtered_.candidates.push_back(query.candidates[i]);
  if (preview) inner_->previewInto(filtered_, d);
  else inner_->chooseInto(filtered_, d);
  if (d.chosen) d.chosen = keep_[*d.chosen];
}

std::unique_ptr<Scheduler> makeScheduler(const std::string& name, std::uint64_t seed) {
  const std::string n = util::toLower(name);
  if (util::startsWith(n, "ma-")) {
    return std::make_unique<MemoryAwareScheduler>(makeScheduler(n.substr(3), seed));
  }
  if (n == "mct") return std::make_unique<MctScheduler>();
  if (n == "hmct") return std::make_unique<HmctScheduler>();
  if (n == "mp") return std::make_unique<MpScheduler>();
  if (n == "msf" || n == "mti") return std::make_unique<MsfScheduler>();
  if (n == "mni") return std::make_unique<MniScheduler>();
  if (n == "met") return std::make_unique<MetScheduler>();
  if (n == "random") return std::make_unique<RandomScheduler>(seed);
  if (n == "round-robin" || n == "rr") return std::make_unique<RoundRobinScheduler>();
  throw util::ConfigError("unknown scheduler '" + name + "'");
}

std::vector<std::string> schedulerNames() {
  return {"mct", "hmct", "mp", "msf", "mni", "met", "random", "round-robin"};
}

}  // namespace casched::core
