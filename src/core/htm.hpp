#pragma once
/// \file htm.hpp
/// The Historical Trace Manager (paper section 2.3): keeps one ServerTrace
/// per registered server, answers "what happens if I map this task there?"
/// with the predicted completion of the new task (sigma'_new), the per-task
/// perturbations pi_j = sigma'_j - sigma_j, and their sum - the quantities
/// driving HMCT, MP, MSF and MNI (paper figures 2-4).
///
/// Server rows live in a contiguous vector indexed by interned ServerId (the
/// HTM owns the name<->id table; the agent shares its id space through it),
/// and the preview/commit hot path runs entirely on reusable scratch buffers -
/// steady-state decisions never allocate. String-keyed overloads remain for
/// the edges (registry, CLI, examples, wire decode).
///
/// Synchronization with reality (paper section 7's future work) is pluggable:
/// completion notices can be ignored, used to drop tasks from the trace, or
/// additionally used to learn a per-server speed correction.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/server_id.hpp"
#include "core/server_trace.hpp"
#include "simcore/time.hpp"

namespace casched::core {

/// How the HTM digests completion notices from servers.
enum class SyncPolicy : std::uint8_t {
  /// Pure simulation: notices are ignored (tasks leave the trace when the
  /// simulation says so). Under noise the trace drifts - the paper's
  /// motivation for better synchronization.
  kPredictOnly,
  /// A completion notice removes the task from the trace if still present
  /// (default; mirrors NetSolve's completion messages).
  kDropOnNotice,
  /// kDropOnNotice plus an EWMA speed correction: observed actual/predicted
  /// duration ratios scale the compute cost of future admissions.
  kRescale,
};

SyncPolicy parseSyncPolicy(const std::string& name);
std::string syncPolicyName(SyncPolicy policy);

/// Perturbation of one already-mapped task (paper's pi_j).
struct Perturbation {
  std::uint64_t taskId = 0;
  double delta = 0.0;
};

/// Result of previewing a hypothetical mapping.
struct Preview {
  ServerId server = kInvalidServerId;
  simcore::SimTime completionNew = 0.0;  ///< sigma'_{n+1}: new task's completion
  double sumPerturbation = 0.0;          ///< sum_j pi_j
  std::size_t perturbedCount = 0;        ///< |{j : pi_j > eps}| (for MNI)
  std::vector<Perturbation> perTask;     ///< individual pi_j, task-id order
};

/// Prediction bookkeeping for accuracy statistics and the rescale policy.
struct HtmStats {
  std::uint64_t previews = 0;
  std::uint64_t commits = 0;
  std::uint64_t completionNotices = 0;
  std::uint64_t failureNotices = 0;
  /// Accumulated |actual - predicted| completion error and count, from
  /// completion notices of tasks with a recorded prediction.
  double absErrorSum = 0.0;
  double relErrorSum = 0.0;  ///< |err| / actual duration (the paper's Table 1 %)
  std::uint64_t errorSamples = 0;

  double meanAbsError() const {
    return errorSamples == 0 ? 0.0 : absErrorSum / static_cast<double>(errorSamples);
  }
  double meanRelErrorPercent() const {
    return errorSamples == 0 ? 0.0
                             : 100.0 * relErrorSum / static_cast<double>(errorSamples);
  }
};

struct HtmSnapshot;
struct HtmServerSnapshot;

class HistoricalTraceManager {
 public:
  explicit HistoricalTraceManager(SyncPolicy policy = SyncPolicy::kDropOnNotice);

  // --- identity ---
  /// Id for `name`, interning it on first sight. Interning alone does NOT
  /// create a trace row (addServer does); ids are dense, append-only and
  /// never reused, so a departed server that re-registers gets its old id.
  ServerId intern(const std::string& name) { return interner_.intern(name); }
  /// Id for `name`, or kInvalidServerId when never interned.
  ServerId findId(const std::string& name) const { return interner_.find(name); }
  const std::string& serverName(ServerId id) const { return interner_.name(id); }

  void addServer(const ServerModel& model);
  /// Retires a server's trace row (dynamic membership: the server left the
  /// grid). Pending predictions for its tasks are discarded.
  void removeServer(ServerId id);
  void removeServer(const std::string& server);
  bool hasServer(ServerId id) const {
    return id < rows_.size() && rows_[id].has_value();
  }
  bool hasServer(const std::string& server) const { return hasServer(findId(server)); }
  /// Names of live rows, in id (registration) order.
  std::vector<std::string> serverNames() const;

  /// Simulates mapping a task of `dims` on the server: the task is admitted
  /// at `now + startDelay` (submission path latency). Does not mutate the
  /// trace. The Into form reuses `out`'s buffers and the HTM's own scratch,
  /// so a warm call performs no heap allocation. With `perturbations` false
  /// only completionNew is computed (sumPerturbation/perturbedCount/perTask
  /// come back zeroed) and the simulation stops as soon as the hypothetical
  /// task finishes - the fast path for HMCT, whose score ignores pi_j.
  /// completionNew is bit-identical either way.
  void previewInto(ServerId id, const TaskDims& dims, simcore::SimTime now,
                   double startDelay, Preview& out, bool perturbations = true) const;
  Preview preview(ServerId id, const TaskDims& dims, simcore::SimTime now,
                  double startDelay = 0.0) const;
  Preview preview(const std::string& server, const TaskDims& dims,
                  simcore::SimTime now, double startDelay = 0.0) const;

  /// Records that `taskId` was mapped on the server (paper's "tell the HTM").
  /// Returns the predicted completion date of the new task.
  simcore::SimTime commit(ServerId id, std::uint64_t taskId, const TaskDims& dims,
                          simcore::SimTime now, double startDelay = 0.0);
  simcore::SimTime commit(const std::string& server, std::uint64_t taskId,
                          const TaskDims& dims, simcore::SimTime now,
                          double startDelay = 0.0);

  /// Advances every live trace to `now`. Called once per scheduling batch so
  /// the per-candidate previews start from already-advanced traces (their
  /// copy-advance becomes a no-op).
  void advanceAll(simcore::SimTime now);

  /// Completion notice from the real system; behaviour depends on SyncPolicy.
  void onTaskCompleted(ServerId id, std::uint64_t taskId,
                       simcore::SimTime actualCompletion);
  void onTaskCompleted(const std::string& server, std::uint64_t taskId,
                       simcore::SimTime actualCompletion);

  /// Failure notice: the task is gone from the server (always honoured).
  void onTaskFailed(ServerId id, std::uint64_t taskId, simcore::SimTime now);
  void onTaskFailed(const std::string& server, std::uint64_t taskId,
                    simcore::SimTime now);

  /// Collapse notice: the server lost every running task.
  void onServerCollapsed(ServerId id, simcore::SimTime now);
  void onServerCollapsed(const std::string& server, simcore::SimTime now);

  /// Current predicted completion dates on a server (advances the trace).
  std::map<std::uint64_t, simcore::SimTime> predictedCompletions(
      const std::string& server, simcore::SimTime now);

  /// Gantt chart of the committed trace of a server at `now` (figure 1).
  GanttChart gantt(const std::string& server, simcore::SimTime now);

  std::size_t activeTasks(ServerId id) const { return row(id).trace.activeTasks(); }
  std::size_t activeTasks(const std::string& server) const;
  double speedCorrection(ServerId id) const { return row(id).speedRatio; }
  double speedCorrection(const std::string& server) const;
  SyncPolicy policy() const { return policy_; }
  const HtmStats& stats() const { return stats_; }

  /// Read access for diagnostics/tests.
  const ServerTrace& trace(ServerId id) const { return row(id).trace; }
  const ServerTrace& trace(const std::string& server) const;

  // --- snapshot/persistence (src/core/htm_snapshot.hpp) ---
  /// Full serializable state: policy, stats, and every server row (rows
  /// ordered by name, matching the historical on-disk order).
  HtmSnapshot snapshot() const;
  /// Replaces ALL state (policy, stats, rows) from a snapshot - the restarted
  /// agent's warm start. Existing rows are discarded; the id table persists
  /// (ids are never reused).
  void restore(const HtmSnapshot& snapshot);
  /// Replaces or creates one server row from a snapshot - how a replica
  /// adopts a peer's learned trace for a server it does not serve (yet).
  void restoreServer(const HtmServerSnapshot& snapshot);

 private:
  /// Last committed prediction of one task, kept sorted by taskId.
  struct PredictedRow {
    std::uint64_t taskId = 0;
    simcore::SimTime predicted = 0.0;
    simcore::SimTime admitted = 0.0;
  };

  /// Memo for the perturbation-free preview path. A preview is a pure
  /// function of (trace state, now, adjusted dims, startDelay); the trace
  /// version stands in for its state, so repeated previews of an unchanged
  /// server - the common case inside a placement batch, where each decision
  /// mutates exactly one trace - are answered without re-simulating.
  struct PreviewMemo {
    bool valid = false;
    std::uint64_t traceVersion = 0;
    simcore::SimTime now = 0.0;
    double startDelay = 0.0;
    TaskDims dims;  ///< adjusted dims (captures speedRatio changes)
    simcore::SimTime completionNew = 0.0;
  };

  struct Entry {
    ServerTrace trace;
    /// EWMA of actual/predicted duration ratio (kRescale).
    double speedRatio = 1.0;
    std::vector<PredictedRow> predicted;  ///< sorted by taskId
    mutable PreviewMemo memo;             ///< previewInto is logically const
  };

  /// Reusable buffers for the preview/commit scratch path; capacity is
  /// retained across calls. Single-threaded by design, like the engine.
  struct Scratch {
    std::vector<TraceTask> base;
    std::vector<TraceTask> work;
    std::vector<PredictedEntry> before;
    std::vector<PredictedEntry> after;
  };

  Entry& row(ServerId id);
  const Entry& row(ServerId id) const;
  ServerId requireId(const std::string& server) const;
  TaskDims adjustedDims(const Entry& entry, const TaskDims& dims) const;

  SyncPolicy policy_;
  ServerInterner interner_;
  std::vector<std::optional<Entry>> rows_;  ///< indexed by ServerId
  mutable Scratch scratch_;
  mutable HtmStats stats_;  // preview() is logically const but counted
};

}  // namespace casched::core
