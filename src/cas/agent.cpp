#include "cas/agent.hpp"

#include <algorithm>

#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "cas.agent"

namespace casched::cas {

namespace {

/// Scheduling-core instruments, resolved once per process; the hot path then
/// pays one relaxed fetch_add per event. Shared by the simulator and the
/// live daemons because both run this Agent.
struct AgentInstruments {
  obs::Counter& submitted;
  obs::Counter& decisions;
  obs::Counter& resubmissions;
  obs::Counter& noServerRetries;
  obs::Counter& completed;
  obs::Counter& lost;
  obs::Histogram& flow;

  static AgentInstruments& get() {
    auto& reg = obs::Registry::global();
    static AgentInstruments* instruments = new AgentInstruments{
        reg.counter("casched_tasks_submitted_total",
                    "Tasks whose first schedule request reached the agent"),
        reg.counter("casched_schedule_decisions_total",
                    "Heuristic choices made (re-submissions included)"),
        reg.counter("casched_tasks_resubmitted_total",
                    "Scheduling attempts past each task's first (fault tolerance)"),
        reg.counter("casched_no_server_retries_total",
                    "Requests deferred because no capable server was up"),
        reg.counter("casched_tasks_completed_total", "Tasks that completed"),
        reg.counter("casched_tasks_lost_total", "Tasks lost after exhausting retries"),
        reg.histogram("casched_task_flow_seconds",
                      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
                      "Per-task flow time (completion - arrival), sim seconds"),
    };
    return *instruments;
  }
};

/// inFlight vectors are sorted by taskId (the historical std::map order).
bool flightBefore(const std::pair<std::uint64_t, simcore::SimTime>& e,
                  std::uint64_t taskId) {
  return e.first < taskId;
}

}  // namespace

Agent::Agent(simcore::Simulator& sim, std::unique_ptr<core::Scheduler> scheduler,
             platform::CostModel costs, AgentConfig config)
    : sim_(sim),
      scheduler_(std::move(scheduler)),
      costs_(std::move(costs)),
      config_(config),
      htm_(config.htmSync) {
  CASCHED_CHECK(scheduler_ != nullptr, "agent needs a scheduler");
  CASCHED_CHECK(config_.controlLatency >= 0.0, "latency must be non-negative");
}

void Agent::registerServer(TaskDispatch* dispatch, const core::ServerModel& model,
                           std::vector<std::string> problems, double memSoftMB,
                           double memCapacityMB) {
  CASCHED_CHECK(dispatch != nullptr, "null dispatch registration");
  const core::ServerId id = htm_.intern(model.name);
  if (id >= servers_.size()) servers_.resize(id + 1);
  ServerState& slot = servers_[id];
  CASCHED_CHECK(!slot.registered || slot.removed,
                "server '" + model.name + "' registered twice");
  // Revival: the previous incarnation was deregistered (its HTM row is
  // gone); replace it wholesale, keeping the same id and candidate-order
  // position. Late notices for the old incarnation's in-flight tasks are
  // accepted like any other stale notice.
  const bool revival = slot.registered;
  ServerState state;
  state.dispatch = dispatch;
  state.model = model;
  state.problems = std::move(problems);
  state.solvesAll = std::any_of(state.problems.begin(), state.problems.end(),
                                [](const std::string& p) { return p == "*"; });
  state.registered = true;
  state.memSoftMB = memSoftMB;
  state.memCapacityMB = memCapacityMB;
  slot = std::move(state);
  if (!revival) serverOrder_.push_back(id);
  // A pre-warmed row (warmStartHtm adopted it from a snapshot before this
  // server dialed in) survives the registration: its learned speed correction
  // and in-flight trace are exactly what the warm start is for.
  if (!htm_.hasServer(id)) htm_.addServer(model);
}

void Agent::deregisterServer(const std::string& server) {
  ServerState& s = serverState(server);
  CASCHED_CHECK(!s.removed, "server '" + server + "' deregistered twice");
  s.removed = true;
  s.up = false;
  // Retire the HTM row; in-flight tasks keep running on the machine and their
  // completion notices are still accepted (without HTM bookkeeping).
  htm_.removeServer(server);
}

void Agent::setServerSpeedIndex(const std::string& server, double index) {
  costs_.setSpeedIndex(server, index);
  // The per-server cost cache memoizes computeCost results, which depend on
  // the speed index fallback.
  const core::ServerId id = htm_.findId(server);
  if (id != core::kInvalidServerId && id < servers_.size()) {
    servers_[id].costCache.clear();
  }
}

bool Agent::canSolve(const ServerState& s, const std::string& typeName) const {
  if (s.solvesAll) return true;
  for (const std::string& p : s.problems) {
    if (p == "*" || p == typeName) return true;
  }
  return false;
}

double Agent::computeCostCached(ServerState& s, const workload::TaskType& type) {
  for (const auto& [name, cost] : s.costCache) {
    if (name == type.name) return cost;
  }
  // First sight of this (server, type) pair: one string-keyed database lookup,
  // memoized so the decision path never touches it again.
  const double cost = costs_.computeCost(s.model.name, type.name, type.refSeconds);
  s.costCache.emplace_back(type.name, cost);
  return cost;
}

double Agent::loadEstimate(const ServerState& s) const {
  // NetSolve's two load-correction mechanisms (paper section 5.3): +1 for
  // each task assigned since the last report (the report cannot know about
  // them yet), -1 for each completion of a task the last report still counted.
  double estimate = s.reportedLoad;
  for (const auto& [taskId, assignedAt] : s.inFlight) {
    if (assignedAt > s.lastReportTime) estimate += 1.0;
  }
  estimate -= static_cast<double>(s.completedOldSinceReport);
  return std::max(0.0, estimate);
}

double Agent::loadEstimate(const std::string& server) const {
  return loadEstimate(serverState(server));
}

core::ServerId Agent::requireServerId(const std::string& name) const {
  const core::ServerId id = htm_.findId(name);
  CASCHED_CHECK(id != core::kInvalidServerId && id < servers_.size() &&
                    servers_[id].registered,
                "unknown server '" + name + "'");
  return id;
}

Agent::TaskState& Agent::taskStateFor(std::uint64_t taskId, bool* inserted) {
  if (std::uint32_t* slot = taskIndex_.find(taskId)) {
    *inserted = false;
    return taskSlots_[*slot];
  }
  taskIndex_.insert(taskId, static_cast<std::uint32_t>(taskSlots_.size()));
  taskSlots_.emplace_back();
  *inserted = true;
  return taskSlots_.back();
}

Agent::TaskState* Agent::findTask(std::uint64_t taskId) {
  std::uint32_t* slot = taskIndex_.find(taskId);
  return slot == nullptr ? nullptr : &taskSlots_[*slot];
}

void Agent::setExpectedTasks(std::size_t n) {
  expected_ = n;
  // Pre-size the task tables: steady-state scheduling then never grows them.
  if (n > taskSlots_.capacity()) taskSlots_.reserve(n);
  taskIndex_.reserve(n);
}

void Agent::requestSchedule(const workload::TaskInstance& task) {
  scheduleBatch({&task, 1});
}

void Agent::scheduleBatch(std::span<const workload::TaskInstance> tasks) {
  if (tasks.empty()) return;
  // One trace refresh amortized over the whole batch: every preview's
  // copy-advance then starts from an already-advanced trace and becomes a
  // plain copy. advanceTo is idempotent at a fixed timestamp, so placing the
  // batch is bit-identical to sequential requestSchedule calls at the same
  // instant (each placement still sees the commits of the previous ones).
  if (scheduler_->usesHtm()) htm_.advanceAll(sim_.now());
  for (const workload::TaskInstance& task : tasks) scheduleOne(task);
}

void Agent::buildCandidates(const workload::TaskInstance& task) {
  // Build the candidate list in registration order (deterministic ties) into
  // the reusable scratch query: a warm decision allocates nothing.
  query_.taskId = task.index;
  query_.now = sim_.now();
  // Reply to the client + client's submission to the server.
  query_.startDelay = 2.0 * config_.controlLatency;
  query_.htm = scheduler_->usesHtm() ? &htm_ : nullptr;
  query_.candidates.clear();
  for (const core::ServerId id : serverOrder_) {
    ServerState& s = servers_[id];
    if (!s.up || !canSolve(s, task.type.name)) continue;
    core::CandidateServer c;
    c.id = id;
    c.dims.inMB = task.type.inMB;
    c.dims.outMB = task.type.outMB;
    c.dims.cpuSeconds = computeCostCached(s, task.type);
    c.reportedLoad = loadEstimate(s);
    double unloaded = c.dims.cpuSeconds;
    if (c.dims.inMB > 0) unloaded += s.model.latencyIn + c.dims.inMB / s.model.bwInMBps;
    else unloaded += s.model.latencyIn;
    if (c.dims.outMB > 0) unloaded += s.model.latencyOut + c.dims.outMB / s.model.bwOutMBps;
    else unloaded += s.model.latencyOut;
    c.unloadedDuration = unloaded;
    c.projectedResidentMB = s.projectedResidentMB;
    c.memSoftMB = s.memSoftMB;
    c.memCapacityMB = s.memCapacityMB;
    c.taskMemMB = task.type.memMB;
    query_.candidates.push_back(c);
  }
}

double Agent::meanLoadEstimate() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const core::ServerId id : serverOrder_) {
    const ServerState& s = servers_[id];
    if (!s.up || s.removed) continue;
    sum += loadEstimate(s);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t Agent::liveServerCount() const {
  std::size_t n = 0;
  for (const core::ServerId id : serverOrder_) {
    const ServerState& s = servers_[id];
    if (s.up && !s.removed) ++n;
  }
  return n;
}

bool Agent::hasFeasibleServer(const std::string& typeName) {
  for (const core::ServerId id : serverOrder_) {
    ServerState& s = servers_[id];
    if (s.up && !s.removed && canSolve(s, typeName)) return true;
  }
  return false;
}

std::optional<double> Agent::previewBestCompletion(const workload::TaskInstance& task) {
  // Dry-run of the scheduler on the current state: no HTM commit, no dispatch,
  // no counters. Mesh routers use the answer as "predicted local completion".
  if (scheduler_->usesHtm()) htm_.advanceAll(sim_.now());
  buildCandidates(task);
  if (query_.candidates.empty()) return std::nullopt;
  scheduler_->previewInto(query_, previewDecision_);
  if (!previewDecision_.chosen.has_value()) return std::nullopt;
  const std::size_t chosen = *previewDecision_.chosen;
  if (chosen < previewDecision_.previews.size() &&
      previewDecision_.previews[chosen].completionNew > 0.0) {
    return previewDecision_.previews[chosen].completionNew;
  }
  // Load-based heuristics fill scores, not previews; the MCT-style score is
  // itself an estimated duration, so now + dispatch delay + score is the best
  // completion estimate available without an HTM.
  if (chosen < previewDecision_.scores.size()) {
    return query_.now + query_.startDelay + previewDecision_.scores[chosen];
  }
  return std::nullopt;
}

void Agent::scheduleOne(const workload::TaskInstance& task) {
  bool inserted = false;
  TaskState& state = taskStateFor(task.index, &inserted);
  if (inserted) state.instance = task;
  ++state.attempts;

  AgentInstruments& ins = AgentInstruments::get();
  obs::TraceBuffer& trace = obs::TraceBuffer::global();
  if (state.attempts == 1) {
    ins.submitted.inc();
    if (trace.enabled()) {
      trace.push({task.index, obs::TaskPhase::kSubmit, sim_.now(), 0.0, state.attempts,
                  "agent", task.type.name});
    }
  } else {
    ins.resubmissions.inc();
  }

  buildCandidates(task);

  if (query_.candidates.empty()) {
    // Nothing can run this task right now (every capable server is down).
    // Same retry budget as the failure path: at most 1 + maxRetries attempts.
    if (config_.faultTolerance && state.attempts <= config_.maxRetries) {
      LOG_DEBUG("no server for task " << task.index << ", retrying later");
      ins.noServerRetries.inc();
      workload::TaskInstance retry = task;
      sim_.scheduleAfter(config_.noServerRetryDelay,
                         [this, retry] { requestSchedule(retry); });
      return;
    }
    finishTask(state, metrics::TaskStatus::kLost);
    return;
  }

  scheduler_->chooseInto(query_, decision_);
  ++decisions_;
  ins.decisions.inc();
  CASCHED_CHECK(decision_.chosen.has_value(), "scheduler returned no choice");
  const std::size_t chosen = *decision_.chosen;
  const core::CandidateServer& target = query_.candidates[chosen];
  ServerState& server = servers_[target.id];

  state.server = target.id;
  state.scheduledAt = sim_.now();
  state.unloadedDuration = target.unloadedDuration;

  // Paper's step 6 ("tell the HTM the task is allocated"). The trace is kept
  // for every heuristic so prediction-accuracy statistics are always
  // available; non-HTM schedulers simply never read it when deciding.
  state.htmPredicted =
      htm_.commit(target.id, task.index, target.dims, sim_.now(), query_.startDelay);

  if (trace.enabled()) {
    trace.push({task.index, obs::TaskPhase::kPredict, sim_.now(), 0.0, state.attempts,
                "agent", util::strformat("sigma'=%.6g", state.htmPredicted)});
    trace.push({task.index, obs::TaskPhase::kDecide, sim_.now(), 0.0, state.attempts,
                "agent", htm_.serverName(target.id)});
  }

  obs::DecisionLog& decisionLog = obs::DecisionLog::global();
  if (decisionLog.enabled()) {
    obs::DecisionRecord record;
    record.taskId = task.index;
    record.time = query_.now;
    record.attempt = state.attempts;
    record.agent = decisionLabel_;
    record.heuristic = scheduler_->name();
    record.chosen = htm_.serverName(target.id);
    record.candidates.reserve(query_.candidates.size());
    for (std::size_t i = 0; i < query_.candidates.size(); ++i) {
      obs::DecisionCandidate c;
      c.server = htm_.serverName(query_.candidates[i].id);
      if (i < decision_.scores.size()) c.score = decision_.scores[i];
      if (i < decision_.previews.size()) {
        c.predictedCompletion = decision_.previews[i].completionNew;
      }
      c.reportedLoad = query_.candidates[i].reportedLoad;
      const ServerState& cs = servers_[query_.candidates[i].id];
      c.loadStaleness = cs.lastReportTime < 0.0 ? -1.0 : query_.now - cs.lastReportTime;
      record.candidates.push_back(std::move(c));
    }
    if (decisionAnnotator_) decisionAnnotator_(task.index, record);
    decisionLog.push(std::move(record));
  }

  auto flight = std::lower_bound(server.inFlight.begin(), server.inFlight.end(),
                                 task.index, flightBefore);
  server.inFlight.insert(flight, {task.index, sim_.now()});
  server.projectedResidentMB += task.type.memMB;

  psched::ExecRequest request;
  request.taskId = task.index;
  request.inMB = target.dims.inMB;
  request.cpuSeconds = target.dims.cpuSeconds;
  request.outMB = target.dims.outMB;
  request.memMB = task.type.memMB;
  if (trace.enabled()) {
    // The dispatch span covers the reply + submit latency to the server.
    trace.push({task.index, obs::TaskPhase::kDispatch, sim_.now(), query_.startDelay,
                state.attempts, "agent", htm_.serverName(target.id)});
  }

  TaskDispatch* dispatch = server.dispatch;
  sim_.scheduleAfter(query_.startDelay,
                     [dispatch, request] { dispatch->submitTask(request.taskId, request); });
}

void Agent::onLoadReport(const std::string& server, double load,
                         simcore::SimTime sampleTime) {
  ServerState& s = serverState(server);
  s.reportedLoad = load;
  s.lastReportTime = sampleTime;
  s.completedOldSinceReport = 0;
  s.peakReportedLoad = std::max(s.peakReportedLoad, load);
}

void Agent::onTaskCompleted(const std::string& server, std::uint64_t taskId,
                            simcore::SimTime completionTime, double unloadedDuration) {
  const core::ServerId sid = requireServerId(server);
  ServerState& s = servers_[sid];
  auto itFlight = std::lower_bound(s.inFlight.begin(), s.inFlight.end(), taskId,
                                   flightBefore);
  if (itFlight != s.inFlight.end() && itFlight->first == taskId) {
    if (itFlight->second <= s.lastReportTime) ++s.completedOldSinceReport;
    s.inFlight.erase(itFlight);
  }
  if (!s.removed) htm_.onTaskCompleted(sid, taskId, completionTime);

  TaskState* found = findTask(taskId);
  CASCHED_CHECK(found != nullptr, "completion notice for unknown task");
  TaskState& task = *found;
  if (task.terminal) return;  // late duplicate (possible after retries)
  s.projectedResidentMB = std::max(0.0, s.projectedResidentMB - task.instance.type.memMB);
  task.completion = completionTime;
  task.unloadedDuration = unloadedDuration;
  finishTask(task, metrics::TaskStatus::kCompleted);
}

void Agent::onTaskFailed(const std::string& server, std::uint64_t taskId) {
  const core::ServerId sid = requireServerId(server);
  ServerState& s = servers_[sid];
  auto itFlight = std::lower_bound(s.inFlight.begin(), s.inFlight.end(), taskId,
                                   flightBefore);
  if (itFlight != s.inFlight.end() && itFlight->first == taskId) {
    if (itFlight->second <= s.lastReportTime) ++s.completedOldSinceReport;
    s.inFlight.erase(itFlight);
  }
  if (!s.removed) htm_.onTaskFailed(sid, taskId, sim_.now());

  TaskState* found = findTask(taskId);
  CASCHED_CHECK(found != nullptr, "failure notice for unknown task");
  TaskState& task = *found;
  if (task.terminal) return;
  s.projectedResidentMB = std::max(0.0, s.projectedResidentMB - task.instance.type.memMB);

  if (config_.faultTolerance && task.attempts <= config_.maxRetries) {
    LOG_DEBUG("task " << taskId << " failed on " << server << ", re-submitting (attempt "
                      << task.attempts + 1 << ")");
    requestSchedule(task.instance);
    return;
  }
  finishTask(task, metrics::TaskStatus::kLost);
}

void Agent::onServerDown(const std::string& server) {
  const core::ServerId sid = requireServerId(server);
  ServerState& s = servers_[sid];
  s.up = false;
  s.projectedResidentMB = 0.0;
  s.inFlight.clear();
  s.reportedLoad = 0.0;
  if (!s.removed) htm_.onServerCollapsed(sid, sim_.now());
}

void Agent::onServerUp(const std::string& server) {
  ServerState& s = serverState(server);
  if (s.removed) return;  // departed servers never rejoin under the same name
  s.up = true;
  s.lastReportTime = -1.0;
  s.completedOldSinceReport = 0;
}

std::string Agent::serverNameOf(const TaskState& task) const {
  return task.server == core::kInvalidServerId ? std::string()
                                               : htm_.serverName(task.server);
}

void Agent::finishTask(TaskState& task, metrics::TaskStatus status) {
  CASCHED_CHECK(!task.terminal, "task finished twice");
  task.terminal = true;
  task.status = status;
  AgentInstruments& ins = AgentInstruments::get();
  obs::TraceBuffer& trace = obs::TraceBuffer::global();
  if (status == metrics::TaskStatus::kCompleted) {
    ins.completed.inc();
    ins.flow.observe(task.completion - task.instance.arrival);
    if (trace.enabled()) {
      trace.push({task.instance.index, obs::TaskPhase::kComplete, task.completion, 0.0,
                  task.attempts, serverNameOf(task), ""});
    }
  } else {
    ins.lost.inc();
    if (trace.enabled()) {
      trace.push({task.instance.index, obs::TaskPhase::kLost, sim_.now(), 0.0,
                  task.attempts, serverNameOf(task), ""});
    }
  }
  ++terminal_;
  if (onTerminal_) onTerminal_(makeOutcome(task.instance.index, task));
  if (expected_ != 0 && terminal_ == expected_ && allDone_) allDone_();
}

metrics::TaskOutcome Agent::makeOutcome(std::uint64_t taskId, const TaskState& state) const {
  metrics::TaskOutcome o;
  o.index = taskId;
  o.typeName = state.instance.type.name;
  o.server = serverNameOf(state);
  o.arrival = state.instance.arrival;
  o.scheduledAt = state.scheduledAt;
  o.completion = state.completion;
  o.unloadedDuration = state.unloadedDuration;
  o.htmPredictedCompletion = state.htmPredicted;
  o.attempts = state.attempts;
  o.status = state.status;
  return o;
}

std::vector<metrics::TaskOutcome> Agent::collectOutcomes() const {
  std::vector<metrics::TaskOutcome> out;
  out.reserve(taskSlots_.size());
  for (const TaskState& state : taskSlots_) {
    out.push_back(makeOutcome(state.instance.index, state));
  }
  // Slots are in first-request order; callers expect ascending task index.
  std::sort(out.begin(), out.end(),
            [](const metrics::TaskOutcome& a, const metrics::TaskOutcome& b) {
              return a.index < b.index;
            });
  return out;
}

std::size_t Agent::warmStartHtm(const core::HtmSnapshot& snapshot) {
  if (serverOrder_.empty()) {
    // Cold boot: adopt everything, stats and sync policy included (the
    // restarted agent resumes where the snapshotted one stopped).
    htm_.restore(snapshot);
    return snapshot.servers.size();
  }
  return adoptHtmRows(snapshot).size();
}

std::vector<std::string> Agent::adoptHtmRows(const core::HtmSnapshot& snapshot) {
  std::vector<std::string> adopted;
  for (const core::HtmServerSnapshot& row : snapshot.servers) {
    const core::ServerId id = htm_.findId(row.model.name);
    const bool live = id != core::kInvalidServerId && id < servers_.size() &&
                      servers_[id].registered && !servers_[id].removed;
    if (live) continue;  // live row: local truth
    htm_.restoreServer(row);
    adopted.push_back(row.model.name);
  }
  return adopted;
}

double Agent::peakReportedLoad(const std::string& server) const {
  return serverState(server).peakReportedLoad;
}

std::vector<std::uint64_t> Agent::inFlightTasks(const std::string& server) const {
  const core::ServerId id = htm_.findId(server);
  if (id == core::kInvalidServerId || id >= servers_.size() || !servers_[id].registered) {
    return {};
  }
  const ServerState& s = servers_[id];
  std::vector<std::uint64_t> ids;
  ids.reserve(s.inFlight.size());
  for (const auto& [taskId, assignedAt] : s.inFlight) ids.push_back(taskId);
  return ids;
}

}  // namespace casched::cas
