#pragma once
/// \file system.hpp
/// End-to-end wiring: builds the simulator, machines, daemons, agent and
/// client for one experiment, runs it to completion, and returns the
/// metrics-ready RunResult. This is the single entry point the experiment
/// harness and the benches use.

#include <memory>
#include <string>

#include "cas/agent.hpp"
#include "cas/client.hpp"
#include "cas/server_daemon.hpp"
#include "metrics/record.hpp"
#include "platform/testbed.hpp"
#include "psched/noise.hpp"
#include "workload/metatask.hpp"

namespace casched::cas {

struct SystemConfig {
  /// Load-report period (NetSolve workload manager).
  double reportPeriod = 30.0;
  /// One-way control-message latency; <0 means "use the testbed's value".
  double controlLatency = -1.0;
  /// NetSolve-MCT-style fault tolerance (re-submission of failed tasks).
  bool faultTolerance = false;
  int maxRetries = 5;
  core::SyncPolicy htmSync = core::SyncPolicy::kDropOnNotice;
  /// Ground-truth variability (paper's shared laboratory testbed).
  psched::NoiseConfig cpuNoise;
  psched::NoiseConfig linkNoise;
  std::uint64_t noiseSeed = 99;
  /// Scheduler RNG seed (random baseline only).
  std::uint64_t schedulerSeed = 7;
  /// Hard stop: no experiment should ever reach this.
  double horizon = 5.0e6;
};

/// Owns every simulation object of one experiment run.
class GridSystem {
 public:
  GridSystem(const platform::Testbed& testbed, const workload::Metatask& metatask,
             const std::string& schedulerName, const SystemConfig& config);

  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Runs to completion (all tasks terminal) and builds the result.
  metrics::RunResult run();

  Agent& agent() { return *agent_; }
  simcore::Simulator& simulator() { return sim_; }
  ServerDaemon& daemon(const std::string& name);

 private:
  simcore::Simulator sim_;
  const workload::Metatask metatask_;
  std::string schedulerName_;
  SystemConfig config_;
  std::vector<std::unique_ptr<ServerDaemon>> daemons_;
  std::unique_ptr<Agent> agent_;
  std::unique_ptr<Client> client_;
};

/// Convenience one-shot: build + run.
metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config);

}  // namespace casched::cas
