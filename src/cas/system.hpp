#pragma once
/// \file system.hpp
/// End-to-end wiring: builds the simulator, machines, daemons, agent and
/// client for one experiment, runs it to completion, and returns the
/// metrics-ready RunResult. This is the single entry point the experiment
/// harness and the benches use.

#include <memory>
#include <string>

#include "cas/agent.hpp"
#include "cas/churn.hpp"
#include "cas/client.hpp"
#include "cas/server_daemon.hpp"
#include "metrics/record.hpp"
#include "platform/testbed.hpp"
#include "psched/noise.hpp"
#include "workload/metatask.hpp"

namespace casched::cas {

struct SystemConfig {
  /// Load-report period (NetSolve workload manager).
  double reportPeriod = 30.0;
  /// One-way control-message latency; <0 means "use the testbed's value".
  double controlLatency = -1.0;
  /// NetSolve-MCT-style fault tolerance (re-submission of failed tasks).
  bool faultTolerance = false;
  int maxRetries = 5;
  core::SyncPolicy htmSync = core::SyncPolicy::kDropOnNotice;
  /// Ground-truth variability (paper's shared laboratory testbed).
  psched::NoiseConfig cpuNoise;
  psched::NoiseConfig linkNoise;
  std::uint64_t noiseSeed = 99;
  /// Scheduler RNG seed (random baseline only).
  std::uint64_t schedulerSeed = 7;
  /// Hard stop: no experiment should ever reach this.
  double horizon = 5.0e6;
};

/// Owns every simulation object of one experiment run.
class GridSystem {
 public:
  GridSystem(const platform::Testbed& testbed, const workload::Metatask& metatask,
             const std::string& schedulerName, const SystemConfig& config);

  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Registers membership events to fire during run(). Call before run();
  /// events beyond the end of the run simply never fire.
  void setChurnTimeline(std::vector<ChurnEvent> events);

  /// Runs to completion (all tasks terminal) and builds the result.
  metrics::RunResult run();

  Agent& agent() { return *agent_; }
  simcore::Simulator& simulator() { return sim_; }
  ServerDaemon& daemon(const std::string& name);
  /// Counts of membership events actually applied so far.
  const metrics::ChurnSummary& churnApplied() const { return churnStats_; }

 private:
  void addServer(const psched::MachineSpec& spec);
  void applyChurn(const ChurnEvent& event);

  simcore::Simulator sim_;
  const workload::Metatask metatask_;
  std::string schedulerName_;
  SystemConfig config_;
  std::vector<std::unique_ptr<ServerDaemon>> daemons_;
  std::unique_ptr<Agent> agent_;
  std::unique_ptr<Client> client_;
  std::vector<ChurnEvent> timeline_;
  metrics::ChurnSummary churnStats_;
  std::uint64_t nextNoiseStream_ = 0;  ///< per-server noise-seed derivation
};

/// Convenience one-shot: build + run.
metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config);

/// One-shot with a churn timeline (dynamic server membership).
metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config,
                                       std::vector<ChurnEvent> churn);

}  // namespace casched::cas
