#pragma once
/// \file client.hpp
/// The client: submits a metatask to the agent at each task's arrival date
/// (paper section 5: "an experiment is the submission of a metatask composed
/// of independent tasks to the agent"). Tasks sharing an arrival date are
/// handed over as one Agent::scheduleBatch call.

#include "cas/agent.hpp"
#include "simcore/engine.hpp"
#include "workload/metatask.hpp"

namespace casched::cas {

class Client {
 public:
  Client(simcore::Simulator& sim, Agent& agent, double controlLatency);

  /// Schedules all submission events. The agent receives each request one
  /// control latency after the task's arrival date.
  void submitMetatask(const workload::Metatask& metatask);

  std::size_t submitted() const { return submitted_; }

 private:
  simcore::Simulator& sim_;
  Agent& agent_;
  double latency_;
  std::size_t submitted_ = 0;
};

}  // namespace casched::cas
