#include "cas/client.hpp"

#include "util/error.hpp"

namespace casched::cas {

Client::Client(simcore::Simulator& sim, Agent& agent, double controlLatency)
    : sim_(sim), agent_(agent), latency_(controlLatency) {
  CASCHED_CHECK(latency_ >= 0.0, "latency must be non-negative");
}

void Client::submitMetatask(const workload::Metatask& metatask) {
  for (const workload::TaskInstance& task : metatask.tasks) {
    ++submitted_;
    const workload::TaskInstance copy = task;
    sim_.scheduleAt(task.arrival + latency_,
                    [this, copy] { agent_.requestSchedule(copy); });
  }
}

}  // namespace casched::cas
