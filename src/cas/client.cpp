#include "cas/client.hpp"

#include "util/error.hpp"

namespace casched::cas {

Client::Client(simcore::Simulator& sim, Agent& agent, double controlLatency)
    : sim_(sim), agent_(agent), latency_(controlLatency) {
  CASCHED_CHECK(latency_ >= 0.0, "latency must be non-negative");
}

void Client::submitMetatask(const workload::Metatask& metatask) {
  // Consecutive tasks sharing an arrival date form one placement batch: a
  // single submission event hands them to Agent::scheduleBatch, amortizing
  // one HTM refresh over the run. Placements are identical to per-task
  // events at the same instant (a batch of one IS requestSchedule, and each
  // task in a batch sees its predecessors' commits exactly as sequential
  // requests at that time would).
  const std::vector<workload::TaskInstance>& tasks = metatask.tasks;
  for (std::size_t i = 0; i < tasks.size();) {
    std::size_t j = i + 1;
    while (j < tasks.size() && tasks[j].arrival == tasks[i].arrival) ++j;
    submitted_ += j - i;
    std::vector<workload::TaskInstance> group(
        tasks.begin() + static_cast<std::ptrdiff_t>(i),
        tasks.begin() + static_cast<std::ptrdiff_t>(j));
    sim_.scheduleAt(tasks[i].arrival + latency_,
                    [this, group = std::move(group)] { agent_.scheduleBatch(group); });
    i = j;
  }
}

}  // namespace casched::cas
