#pragma once
/// \file dispatch.hpp
/// Where the agent sends accepted work. The simulation wires the agent
/// directly to in-process ServerDaemon objects; the distributed runtime
/// (src/net) substitutes links that encode the submission as a kTaskSubmit
/// wire message. The agent itself never knows the difference.

#include <cstdint>

#include "psched/task_exec.hpp"

namespace casched::cas {

/// The agent-facing side of one registered server: a sink for task
/// submissions. Implementations must outlive their registration with the
/// agent (the agent keeps a non-owning pointer).
class TaskDispatch {
 public:
  virtual ~TaskDispatch() = default;

  /// Delivers one task submission (already delayed by the submission-path
  /// latency in the simulation; immediate over the wire, where the network
  /// itself is the latency).
  virtual void submitTask(std::uint64_t taskId, const psched::ExecRequest& request) = 0;
};

}  // namespace casched::cas
