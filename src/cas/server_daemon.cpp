#include "cas/server_daemon.hpp"

#include "cas/agent.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "cas.server"

namespace casched::cas {

ServerDaemon::ServerDaemon(simcore::Simulator& sim, const psched::MachineSpec& spec,
                           std::vector<std::string> problems, ServerDaemonConfig config)
    : sim_(sim),
      config_(config),
      problems_(std::move(problems)),
      machine_(sim, spec),
      noiseRng_(config.noiseSeed) {
  CASCHED_CHECK(config_.reportPeriod > 0.0, "report period must be positive");
  machine_.setCollapseObserver([this](const std::vector<psched::ExecRecord>& victims) {
    if (agent_ == nullptr) return;
    // The agent learns of the crash and of every lost task one latency later.
    Agent* agent = agent_;
    const std::string server = name();
    sim_.scheduleAfter(config_.controlLatency, [agent, server] {
      agent->onServerDown(server);
    });
    for (const psched::ExecRecord& rec : victims) {
      notifyFailure(rec.request.taskId);
    }
  });
  machine_.setRecoverObserver([this] {
    if (agent_ == nullptr) return;
    Agent* agent = agent_;
    const std::string server = name();
    sim_.scheduleAfter(config_.controlLatency, [agent, server] {
      agent->onServerUp(server);
    });
  });
}

void ServerDaemon::connectAgent(Agent* agent) {
  CASCHED_CHECK(agent != nullptr, "daemon needs an agent");
  agent_ = agent;
  if (config_.cpuNoise.amplitude > 0.0) {
    cpuNoise_ = std::make_unique<psched::NoiseProcess>(
        sim_, noiseRng_, config_.cpuNoise,
        [this](double f) { machine_.setCpuNoiseFactor(f); });
    cpuNoise_->start();
  }
  if (config_.linkNoise.amplitude > 0.0) {
    linkNoise_ = std::make_unique<psched::NoiseProcess>(
        sim_, noiseRng_, config_.linkNoise,
        [this](double f) { machine_.setLinkNoiseFactor(f); });
    linkNoise_->start();
  }
  scheduleNextReport();
}

void ServerDaemon::quiesce() {
  quiesced_ = true;
  if (reportTimer_.valid()) {
    sim_.cancel(reportTimer_);
    reportTimer_ = {};
  }
  if (cpuNoise_) cpuNoise_->stop();
  if (linkNoise_) linkNoise_->stop();
}

void ServerDaemon::scheduleNextReport() {
  if (quiesced_) return;
  reportTimer_ = sim_.scheduleAfter(config_.reportPeriod, [this] { sendLoadReport(); });
}

void ServerDaemon::sendLoadReport() {
  reportTimer_ = {};
  if (agent_ != nullptr && machine_.up()) {
    const double load = machine_.loadAverage();
    const simcore::SimTime sampleTime = sim_.now();
    Agent* agent = agent_;
    const std::string server = name();
    sim_.scheduleAfter(config_.controlLatency, [agent, server, load, sampleTime] {
      agent->onLoadReport(server, load, sampleTime);
    });
  }
  scheduleNextReport();
}

void ServerDaemon::submitTask(std::uint64_t taskId, const psched::ExecRequest& request) {
  if (!machine_.up()) {
    LOG_DEBUG("server " << name() << " rejects task " << taskId << " (down)");
    notifyFailure(taskId);
    return;
  }
  const bool accepted = machine_.submit(
      request, [this](const psched::ExecRecord& record) { notifyCompletion(record); });
  if (accepted) {
    obs::TraceBuffer& trace = obs::TraceBuffer::global();
    if (trace.enabled()) {
      // Machine-side "start" span, at data-arrival time - the same hook the
      // live NetServerDaemon records, so sim and live chains stay comparable.
      trace.push({taskId, obs::TaskPhase::kStart, sim_.now(), 0.0, 0, name(), ""});
    }
  }
  if (!accepted) {
    // Either the machine was down or this admission collapsed it; in both
    // cases the submitting task is lost (collapse victims are reported by the
    // collapse observer separately).
    notifyFailure(taskId);
  }
}

void ServerDaemon::notifyCompletion(const psched::ExecRecord& record) {
  if (agent_ == nullptr) return;
  Agent* agent = agent_;
  const std::string server = name();
  const std::uint64_t taskId = record.request.taskId;
  const simcore::SimTime completion = record.endTime;
  const double unloaded = machine_.unloadedDuration(record.request);
  sim_.scheduleAfter(config_.controlLatency,
                     [agent, server, taskId, completion, unloaded] {
                       agent->onTaskCompleted(server, taskId, completion, unloaded);
                     });
}

void ServerDaemon::notifyFailure(std::uint64_t taskId) {
  if (agent_ == nullptr) return;
  Agent* agent = agent_;
  const std::string server = name();
  sim_.scheduleAfter(config_.controlLatency, [agent, server, taskId] {
    agent->onTaskFailed(server, taskId);
  });
}

}  // namespace casched::cas
