#pragma once
/// \file churn.hpp
/// Dynamic server membership: scheduled join/leave/crash/slowdown events that
/// a GridSystem applies mid-run. Scenarios compile their churn timelines down
/// to these; tests hand-craft them.

#include <cstdint>
#include <string>
#include <vector>

#include "psched/machine.hpp"
#include "simcore/time.hpp"

namespace casched::cas {

enum class ChurnAction : std::uint8_t {
  kJoin,      ///< a new server registers with the agent mid-run
  kLeave,     ///< graceful departure: no new work, in-flight tasks drain
  kCrash,     ///< injected collapse: running tasks fail, recovery later
  kSlowdown,  ///< CPU capacity change (factor), optionally self-recovering
  kLink,      ///< link bandwidth change (factor), optionally self-recovering
};

ChurnAction parseChurnAction(const std::string& name);
std::string churnActionName(ChurnAction action);

struct ChurnEvent {
  simcore::SimTime time = 0.0;
  ChurnAction action = ChurnAction::kLeave;
  /// Target server; for kJoin this is the new server's name (must be unique).
  std::string server;
  /// kJoin only: the machine to instantiate.
  psched::MachineSpec joinSpec;
  /// kJoin only: relative speed for the agent's cost model (1.0 = reference).
  double speedIndex = 1.0;
  /// kSlowdown/kLink only: capacity multiplier (0.5 = half speed, 1.0 = restore).
  double factor = 1.0;
  /// kCrash: downtime before the machine recovers (0 = the machine's own
  /// recoverySeconds). kSlowdown/kLink: seconds until the factor restores to
  /// 1.0 on its own (0 = persistent until another event changes it). The
  /// generated fault processes (flapping, crash-repair cycles, bandwidth
  /// churn) drive both - one event carries the whole down/degraded episode,
  /// so the simulator and the live deployment replay it identically.
  double duration = 0.0;
};

}  // namespace casched::cas
