#pragma once
/// \file churn.hpp
/// Dynamic server membership: scheduled join/leave/crash/slowdown events that
/// a GridSystem applies mid-run. Scenarios compile their churn timelines down
/// to these; tests hand-craft them.

#include <cstdint>
#include <string>
#include <vector>

#include "psched/machine.hpp"
#include "simcore/time.hpp"

namespace casched::cas {

enum class ChurnAction : std::uint8_t {
  kJoin,      ///< a new server registers with the agent mid-run
  kLeave,     ///< graceful departure: no new work, in-flight tasks drain
  kCrash,     ///< injected collapse: running tasks fail, recovery later
  kSlowdown,  ///< persistent CPU capacity change (factor)
};

ChurnAction parseChurnAction(const std::string& name);
std::string churnActionName(ChurnAction action);

struct ChurnEvent {
  simcore::SimTime time = 0.0;
  ChurnAction action = ChurnAction::kLeave;
  /// Target server; for kJoin this is the new server's name (must be unique).
  std::string server;
  /// kJoin only: the machine to instantiate.
  psched::MachineSpec joinSpec;
  /// kJoin only: relative speed for the agent's cost model (1.0 = reference).
  double speedIndex = 1.0;
  /// kSlowdown only: CPU capacity multiplier (0.5 = half speed, 1.0 = restore).
  double factor = 1.0;
};

}  // namespace casched::cas
