#pragma once
/// \file agent.hpp
/// The agent: central scheduler of the client-agent-server model (paper
/// section 2.1). Keeps the server registry, the (stale) load-report view with
/// NetSolve's two correction mechanisms (paper section 5.3), the Historical
/// Trace Manager, per-server memory bookkeeping, and the fault-tolerant
/// re-submission path that NetSolve's MCT has (paper section 5.1).
///
/// The scheduling core is built for throughput: server identity is an
/// interned dense ServerId (the HTM owns the intern table; strings exist only
/// at the edges), per-server and per-task state live in contiguous tables,
/// and every decision runs on reusable scratch buffers - steady-state
/// scheduling performs zero heap allocations. Requests can be placed one at a
/// time or as a batch; both run the same scheduleBatch path, so batched and
/// sequential placement are identical by construction.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cas/dispatch.hpp"
#include "core/htm.hpp"
#include "core/htm_snapshot.hpp"
#include "core/schedulers.hpp"
#include "core/server_id.hpp"
#include "metrics/record.hpp"
#include "platform/calibration.hpp"
#include "simcore/engine.hpp"
#include "util/flat_hash.hpp"
#include "workload/metatask.hpp"

namespace casched::obs {
struct DecisionRecord;
}  // namespace casched::obs

namespace casched::cas {

struct AgentConfig {
  /// One-way control-message latency (schedule RPCs, notifications).
  double controlLatency = 0.005;
  /// NetSolve MCT's re-submission of failed tasks; the authors' HMCT/MP/MSF
  /// implementations lacked it (paper section 5.1).
  bool faultTolerance = false;
  int maxRetries = 5;
  /// Delay before retrying when no server is currently available.
  double noServerRetryDelay = 10.0;
  core::SyncPolicy htmSync = core::SyncPolicy::kDropOnNotice;
};

class Agent {
 public:
  Agent(simcore::Simulator& sim, std::unique_ptr<core::Scheduler> scheduler,
        platform::CostModel costs, AgentConfig config);

  /// Server registration (paper: servers contact the agent with their problem
  /// list and peak performances). `problems` lists solvable task-type names;
  /// the single entry "*" means "solves everything". `memSoftMB` is physical
  /// RAM, `memCapacityMB` is RAM+swap (used by memory-aware admission).
  /// Re-registering a name whose previous incarnation was deregistered
  /// revives it (same ServerId) with a fresh HTM row (the distributed
  /// runtime's reconnect-after-retirement path); re-registering a live name
  /// is an error.
  void registerServer(TaskDispatch* dispatch, const core::ServerModel& model,
                      std::vector<std::string> problems, double memSoftMB,
                      double memCapacityMB);

  /// Graceful departure (dynamic membership): the server stops receiving new
  /// work and its HTM row is retired, but in-flight tasks drain normally.
  /// A later recovery notice for the same name is ignored.
  void deregisterServer(const std::string& server);

  /// Cost-model entry for a server joining mid-run (no calibrated per-type
  /// costs exist for it; computeCost falls back to refSeconds / speedIndex).
  void setServerSpeedIndex(const std::string& server, double index);

  /// Client request for one task, already delayed by the client->agent
  /// latency. Picks a server, updates the HTM and bookkeeping, and forwards
  /// the submission (after the reply + submit latencies). Equivalent to a
  /// scheduleBatch of one.
  void requestSchedule(const workload::TaskInstance& task);

  /// Places a batch of requests that arrived in the same poll cycle /
  /// simulation instant. One HTM refresh is amortized across the whole
  /// batch; tasks are then placed in order, each decision seeing the
  /// commits of the previous ones - exactly what sequential requestSchedule
  /// calls at the same timestamp produce (locked by test).
  void scheduleBatch(std::span<const workload::TaskInstance> tasks);

  // --- notifications from server daemons (already latency-delayed) ---
  void onLoadReport(const std::string& server, double load,
                    simcore::SimTime sampleTime);
  void onTaskCompleted(const std::string& server, std::uint64_t taskId,
                       simcore::SimTime completionTime, double unloadedDuration);
  void onTaskFailed(const std::string& server, std::uint64_t taskId);
  void onServerDown(const std::string& server);
  void onServerUp(const std::string& server);

  // --- experiment wiring ---
  /// Also pre-sizes the task tables so steady-state scheduling never grows
  /// them mid-run.
  void setExpectedTasks(std::size_t n);
  void setAllDoneCallback(std::function<void()> fn) { allDone_ = std::move(fn); }
  /// Fires once per task when it reaches a terminal state (completed or
  /// lost), with the finished outcome. The distributed runtime relays these
  /// to the client over the wire.
  void setTaskTerminalObserver(std::function<void(const metrics::TaskOutcome&)> fn) {
    onTerminal_ = std::move(fn);
  }

  /// Outcomes ordered by metatask index (call after the run finishes).
  std::vector<metrics::TaskOutcome> collectOutcomes() const;

  /// True when a task with this id was ever requested (terminal or not).
  /// The distributed runtime uses it to reject client-chosen id reuse.
  bool knowsTask(std::uint64_t taskId) const { return taskIndex_.contains(taskId); }

  /// Ids currently assigned to `server` and not yet completed/failed, in
  /// ascending id order. The distributed runtime captures these before
  /// declaring a server dead (a vanished process reports no victims itself,
  /// unlike a simulated collapse) so fault tolerance can re-submit them.
  std::vector<std::uint64_t> inFlightTasks(const std::string& server) const;

  /// Serialized HTM state (snapshot/persistence; see core/htm_snapshot.hpp).
  core::HtmSnapshot htmSnapshot() const { return htm_.snapshot(); }

  /// Boot-time warm start from the agent's own snapshot file. With nothing
  /// registered yet the whole snapshot is adopted - rows, accuracy
  /// statistics and sync policy - so a restarted agent resumes where its
  /// previous incarnation stopped; otherwise it falls back to row adoption.
  /// Returns the number of rows adopted.
  std::size_t warmStartHtm(const core::HtmSnapshot& snapshot);

  /// Adopts individual rows from a PEER's snapshot: rows for servers
  /// currently registered and live are skipped (local truth wins); rows for
  /// unknown or departed servers are adopted, ready for the next
  /// registration of that name (registerServer keeps a pre-warmed row). The
  /// local sync policy and statistics are never touched - a replica must
  /// not have its configured --htm-sync overridden by whatever the primary
  /// runs. Returns the adopted server names.
  std::vector<std::string> adoptHtmRows(const core::HtmSnapshot& snapshot);

  const core::HistoricalTraceManager& htm() const { return htm_; }
  const core::Scheduler& scheduler() const { return *scheduler_; }
  std::size_t terminalCount() const { return terminal_; }
  double peakReportedLoad(const std::string& server) const;
  std::uint64_t scheduleDecisions() const { return decisions_; }

  /// Current corrected load estimate for a server (MCT's view; exposed for
  /// tests of the two NetSolve correction mechanisms).
  double loadEstimate(const std::string& server) const;

  /// Mean corrected load estimate across live registered servers (the mesh's
  /// advertised-load signal), and how many servers that mean covers.
  double meanLoadEstimate() const;
  std::size_t liveServerCount() const;

  // --- mesh probes (pure: no HTM commit, no dispatch, no task state) ---
  /// True when at least one live registered server can solve `typeName`.
  bool hasFeasibleServer(const std::string& typeName);
  /// Absolute predicted completion time of `task` on the best candidate the
  /// scheduler would pick right now - the mesh router's overload signal.
  /// Empty when no live server can run the task. HTM heuristics answer with
  /// the preview's completion date; load-based heuristics with
  /// now + startDelay + their duration score.
  std::optional<double> previewBestCompletion(const workload::TaskInstance& task);

  // --- decision attribution (mesh observability) ---
  /// Label stamped into every DecisionRecord this agent emits (the agent's
  /// deployment name; empty for the paper's anonymous single agent).
  void setDecisionLabel(std::string label) { decisionLabel_ = std::move(label); }
  /// Invoked (only while the DecisionLog is enabled) on every record before
  /// it is pushed; the mesh layers use it to tag forwarded/stolen tasks with
  /// their origin agent.
  void setDecisionAnnotator(
      std::function<void(std::uint64_t, obs::DecisionRecord&)> fn) {
    decisionAnnotator_ = std::move(fn);
  }

 private:
  struct ServerState {
    TaskDispatch* dispatch = nullptr;
    core::ServerModel model;
    std::vector<std::string> problems;
    bool solvesAll = false;    ///< cached `problems == {"*"}` membership
    bool registered = false;   ///< slot holds a real registration (the table
                               ///< may have holes for HTM-only adopted ids)
    bool up = true;
    bool removed = false;  ///< left the grid; never a candidate again
    double reportedLoad = 0.0;
    simcore::SimTime lastReportTime = -1.0;  ///< -1: never reported
    double peakReportedLoad = 0.0;
    /// taskId -> assign time, sorted by taskId (matches the historical
    /// std::map iteration order, which failure drains depend on).
    std::vector<std::pair<std::uint64_t, simcore::SimTime>> inFlight;
    std::uint64_t completedOldSinceReport = 0;
    double projectedResidentMB = 0.0;
    double memSoftMB = 1e18;
    double memCapacityMB = 1e18;
    /// Per-type unloaded compute seconds, resolved once per (server, type):
    /// the cost database is string-keyed and must stay off the decision path.
    std::vector<std::pair<std::string, double>> costCache;
  };

  struct TaskState {
    workload::TaskInstance instance;
    int attempts = 0;
    core::ServerId server = core::kInvalidServerId;
    simcore::SimTime scheduledAt = -1.0;
    simcore::SimTime completion = -1.0;
    double unloadedDuration = 0.0;
    simcore::SimTime htmPredicted = -1.0;
    bool terminal = false;
    metrics::TaskStatus status = metrics::TaskStatus::kLost;
  };

  /// The single-task placement step of scheduleBatch (decision + commit +
  /// dispatch). Assumes the HTM was already advanced to now() when the
  /// scheduler uses it.
  void scheduleOne(const workload::TaskInstance& task);

  /// Fills query_'s candidate list for `task` (registration order, live and
  /// capable servers only). Shared by scheduleOne and the mesh probes.
  void buildCandidates(const workload::TaskInstance& task);

  bool canSolve(const ServerState& s, const std::string& typeName) const;
  double computeCostCached(ServerState& s, const workload::TaskType& type);
  double loadEstimate(const ServerState& s) const;
  void finishTask(TaskState& task, metrics::TaskStatus status);
  metrics::TaskOutcome makeOutcome(std::uint64_t taskId, const TaskState& state) const;
  std::string serverNameOf(const TaskState& task) const;

  /// Id of a registered server; throws on unknown/never-registered names.
  core::ServerId requireServerId(const std::string& name) const;
  ServerState& serverState(const std::string& name) {
    return servers_[requireServerId(name)];
  }
  const ServerState& serverState(const std::string& name) const {
    return servers_[requireServerId(name)];
  }

  /// Existing task state, or a fresh slot (insert == true).
  TaskState& taskStateFor(std::uint64_t taskId, bool* inserted);
  TaskState* findTask(std::uint64_t taskId);

  simcore::Simulator& sim_;
  std::unique_ptr<core::Scheduler> scheduler_;
  platform::CostModel costs_;
  AgentConfig config_;
  core::HistoricalTraceManager htm_;
  std::vector<ServerState> servers_;        ///< indexed by ServerId
  std::vector<core::ServerId> serverOrder_; ///< registration order (determinism)
  std::vector<TaskState> taskSlots_;        ///< slot per task, never freed
  util::FlatMap64<std::uint32_t> taskIndex_;  ///< taskId -> slot
  std::size_t expected_ = 0;
  std::size_t terminal_ = 0;
  std::uint64_t decisions_ = 0;
  std::function<void()> allDone_;
  std::function<void(const metrics::TaskOutcome&)> onTerminal_;
  std::string decisionLabel_;
  std::function<void(std::uint64_t, obs::DecisionRecord&)> decisionAnnotator_;
  // Decision scratch, reused across every placement (zero-alloc steady state).
  core::ScheduleQuery query_;
  core::ScheduleDecision decision_;
  core::ScheduleDecision previewDecision_;  ///< previewBestCompletion scratch
};

}  // namespace casched::cas
