#include "cas/system.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "cas.system"

namespace casched::cas {

GridSystem::GridSystem(const platform::Testbed& testbed,
                       const workload::Metatask& metatask,
                       const std::string& schedulerName, const SystemConfig& config)
    : metatask_(metatask), schedulerName_(schedulerName), config_(config) {
  CASCHED_CHECK(!testbed.servers.empty(), "testbed has no servers");
  CASCHED_CHECK(!metatask_.tasks.empty(), "metatask is empty");

  // Resolve the latency once; joiners added mid-run reuse it.
  if (config_.controlLatency < 0.0) config_.controlLatency = testbed.controlLatency;

  AgentConfig agentConfig;
  agentConfig.controlLatency = config_.controlLatency;
  agentConfig.faultTolerance = config_.faultTolerance;
  agentConfig.maxRetries = config_.maxRetries;
  agentConfig.htmSync = config_.htmSync;
  agent_ = std::make_unique<Agent>(
      sim_, core::makeScheduler(schedulerName, config_.schedulerSeed), testbed.costs,
      agentConfig);

  for (const psched::MachineSpec& spec : testbed.servers) {
    addServer(spec);
  }

  client_ = std::make_unique<Client>(sim_, *agent_, config_.controlLatency);
}

void GridSystem::addServer(const psched::MachineSpec& spec) {
  ServerDaemonConfig daemonConfig;
  daemonConfig.reportPeriod = config_.reportPeriod;
  daemonConfig.controlLatency = config_.controlLatency;
  daemonConfig.cpuNoise = config_.cpuNoise;
  daemonConfig.linkNoise = config_.linkNoise;
  daemonConfig.noiseSeed = simcore::deriveSeed(config_.noiseSeed, nextNoiseStream_++);
  auto daemon = std::make_unique<ServerDaemon>(sim_, spec,
                                               std::vector<std::string>{"*"},
                                               daemonConfig);

  core::ServerModel model;
  model.name = spec.name;
  model.bwInMBps = spec.bwInMBps;
  model.bwOutMBps = spec.bwOutMBps;
  model.latencyIn = spec.latencyIn;
  model.latencyOut = spec.latencyOut;
  agent_->registerServer(daemon.get(), model, {"*"}, spec.ramMB,
                         spec.ramMB + spec.swapMB);
  daemon->connectAgent(agent_.get());
  daemons_.push_back(std::move(daemon));
}

ServerDaemon& GridSystem::daemon(const std::string& name) {
  for (auto& d : daemons_) {
    if (d->name() == name) return *d;
  }
  throw util::Error("unknown daemon '" + name + "'");
}

void GridSystem::setChurnTimeline(std::vector<ChurnEvent> events) {
  for (const ChurnEvent& e : events) {
    CASCHED_CHECK(e.time >= 0.0, "churn event time must be non-negative");
    CASCHED_CHECK(!e.server.empty(), "churn event needs a server name");
  }
  timeline_ = std::move(events);
}

void GridSystem::applyChurn(const ChurnEvent& event) {
  LOG_DEBUG("churn: " << churnActionName(event.action) << " " << event.server
                      << " at t=" << sim_.now());
  switch (event.action) {
    case ChurnAction::kJoin: {
      psched::MachineSpec spec = event.joinSpec;
      spec.name = event.server;
      agent_->setServerSpeedIndex(event.server, event.speedIndex);
      addServer(spec);
      ++churnStats_.joins;
      return;
    }
    case ChurnAction::kLeave: {
      ServerDaemon& d = daemon(event.server);
      agent_->deregisterServer(event.server);
      d.quiesce();  // stop load reports; in-flight tasks drain on the machine
      ++churnStats_.leaves;
      return;
    }
    case ChurnAction::kCrash: {
      // Same path as a memory collapse: victims fail, the agent is notified
      // (fault tolerance re-submits elsewhere) and the machine recovers after
      // the event's downtime (0 = the machine's own recovery time). A crash
      // on an already-down machine is a no-op and is not counted.
      if (daemon(event.server).machine().forceCollapse(event.duration)) {
        ++churnStats_.crashes;
      }
      return;
    }
    case ChurnAction::kSlowdown: {
      daemon(event.server).machine().setChurnSpeedFactor(event.factor, event.duration);
      ++churnStats_.slowdowns;
      return;
    }
    case ChurnAction::kLink: {
      daemon(event.server).machine().setChurnLinkFactor(event.factor, event.duration);
      ++churnStats_.links;
      return;
    }
  }
}

metrics::RunResult GridSystem::run() {
  agent_->setExpectedTasks(metatask_.size());
  agent_->setAllDoneCallback([this] { sim_.requestStop(); });
  for (const ChurnEvent& event : timeline_) {
    sim_.scheduleAt(event.time, [this, event] { applyChurn(event); });
  }
  client_->submitMetatask(metatask_);
  sim_.run(config_.horizon);

  if (agent_->terminalCount() < metatask_.size()) {
    LOG_WARN("run hit the horizon with " << metatask_.size() - agent_->terminalCount()
                                         << " unfinished tasks");
  }
  for (auto& d : daemons_) d->quiesce();

  metrics::RunResult result;
  result.heuristic = schedulerName_;
  result.metataskName = metatask_.name;
  result.tasks = agent_->collectOutcomes();
  result.endTime = sim_.now();
  result.simulatedEvents = sim_.executedEvents();

  // Bulk-account simulator work once per run: a per-event atomic in the
  // engine's dispatch loop would contend across the parallel replication
  // runner's threads for no observability gain.
  auto& reg = obs::Registry::global();
  static obs::Counter* simRuns = &reg.counter(
      "casched_sim_runs_total", "Completed GridSystem simulation runs");
  static obs::Counter* simEvents = &reg.counter(
      "casched_sim_events_total", "Simulator events executed across runs");
  simRuns->inc();
  simEvents->inc(result.simulatedEvents);
  result.htmMeanRelErrorPercent = agent_->htm().stats().meanRelErrorPercent();
  result.churn = churnStats_;
  for (auto& d : daemons_) {
    const psched::MachineStats& ms = d->machine().stats();
    metrics::ServerSummary s;
    s.tasksCompleted = ms.completed;
    s.tasksFailed = ms.failed;
    s.collapses = ms.collapses;
    s.peakResidentMB = ms.peakResidentMB;
    s.busySeconds = ms.busyCpuSeconds;
    s.peakLoadReported = agent_->peakReportedLoad(d->name());
    result.servers.emplace(d->name(), s);
  }
  return result;
}

metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config) {
  GridSystem system(testbed, metatask, schedulerName, config);
  return system.run();
}

metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config,
                                       std::vector<ChurnEvent> churn) {
  GridSystem system(testbed, metatask, schedulerName, config);
  system.setChurnTimeline(std::move(churn));
  return system.run();
}

}  // namespace casched::cas
