#include "cas/system.hpp"

#include <algorithm>

#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace casched::cas {

GridSystem::GridSystem(const platform::Testbed& testbed,
                       const workload::Metatask& metatask,
                       const std::string& schedulerName, const SystemConfig& config)
    : metatask_(metatask), schedulerName_(schedulerName), config_(config) {
  CASCHED_CHECK(!testbed.servers.empty(), "testbed has no servers");
  CASCHED_CHECK(!metatask_.tasks.empty(), "metatask is empty");

  const double latency =
      config_.controlLatency >= 0.0 ? config_.controlLatency : testbed.controlLatency;

  AgentConfig agentConfig;
  agentConfig.controlLatency = latency;
  agentConfig.faultTolerance = config_.faultTolerance;
  agentConfig.maxRetries = config_.maxRetries;
  agentConfig.htmSync = config_.htmSync;
  agent_ = std::make_unique<Agent>(
      sim_, core::makeScheduler(schedulerName, config_.schedulerSeed), testbed.costs,
      agentConfig);

  std::uint64_t machineIndex = 0;
  for (const psched::MachineSpec& spec : testbed.servers) {
    ServerDaemonConfig daemonConfig;
    daemonConfig.reportPeriod = config_.reportPeriod;
    daemonConfig.controlLatency = latency;
    daemonConfig.cpuNoise = config_.cpuNoise;
    daemonConfig.linkNoise = config_.linkNoise;
    daemonConfig.noiseSeed = simcore::deriveSeed(config_.noiseSeed, machineIndex++);
    auto daemon =
        std::make_unique<ServerDaemon>(sim_, spec, std::vector<std::string>{"*"},
                                       daemonConfig);

    core::ServerModel model;
    model.name = spec.name;
    model.bwInMBps = spec.bwInMBps;
    model.bwOutMBps = spec.bwOutMBps;
    model.latencyIn = spec.latencyIn;
    model.latencyOut = spec.latencyOut;
    agent_->registerServer(daemon.get(), model, {"*"}, spec.ramMB,
                           spec.ramMB + spec.swapMB);
    daemon->connectAgent(agent_.get());
    daemons_.push_back(std::move(daemon));
  }

  client_ = std::make_unique<Client>(sim_, *agent_, latency);
}

ServerDaemon& GridSystem::daemon(const std::string& name) {
  for (auto& d : daemons_) {
    if (d->name() == name) return *d;
  }
  throw util::Error("unknown daemon '" + name + "'");
}

metrics::RunResult GridSystem::run() {
  agent_->setExpectedTasks(metatask_.size());
  agent_->setAllDoneCallback([this] { sim_.requestStop(); });
  client_->submitMetatask(metatask_);
  sim_.run(config_.horizon);

  if (agent_->terminalCount() < metatask_.size()) {
    LOG_WARN("run hit the horizon with " << metatask_.size() - agent_->terminalCount()
                                         << " unfinished tasks");
  }
  for (auto& d : daemons_) d->quiesce();

  metrics::RunResult result;
  result.heuristic = schedulerName_;
  result.metataskName = metatask_.name;
  result.tasks = agent_->collectOutcomes();
  result.endTime = sim_.now();
  result.simulatedEvents = sim_.executedEvents();
  result.htmMeanRelErrorPercent = agent_->htm().stats().meanRelErrorPercent();
  for (auto& d : daemons_) {
    const psched::MachineStats& ms = d->machine().stats();
    metrics::ServerSummary s;
    s.tasksCompleted = ms.completed;
    s.tasksFailed = ms.failed;
    s.collapses = ms.collapses;
    s.peakResidentMB = ms.peakResidentMB;
    s.busySeconds = ms.busyCpuSeconds;
    s.peakLoadReported = agent_->peakReportedLoad(d->name());
    result.servers.emplace(d->name(), s);
  }
  return result;
}

metrics::RunResult runExperimentSystem(const platform::Testbed& testbed,
                                       const workload::Metatask& metatask,
                                       const std::string& schedulerName,
                                       const SystemConfig& config) {
  GridSystem system(testbed, metatask, schedulerName, config);
  return system.run();
}

}  // namespace casched::cas
