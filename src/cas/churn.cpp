#include "cas/churn.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace casched::cas {

ChurnAction parseChurnAction(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "join") return ChurnAction::kJoin;
  if (n == "leave") return ChurnAction::kLeave;
  if (n == "crash") return ChurnAction::kCrash;
  if (n == "slowdown") return ChurnAction::kSlowdown;
  if (n == "link") return ChurnAction::kLink;
  throw util::ConfigError("unknown churn action '" + name + "'");
}

std::string churnActionName(ChurnAction action) {
  switch (action) {
    case ChurnAction::kJoin: return "join";
    case ChurnAction::kLeave: return "leave";
    case ChurnAction::kCrash: return "crash";
    case ChurnAction::kSlowdown: return "slowdown";
    case ChurnAction::kLink: return "link";
  }
  return "?";
}

}  // namespace casched::cas
