#pragma once
/// \file server_daemon.hpp
/// The server-side daemon: accepts task submissions, runs them on its
/// psched::Machine, reports its load average periodically, and notifies the
/// agent of completions, failures, collapses and recoveries - the NetSolve
/// computational server's visible behaviour.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cas/dispatch.hpp"
#include "psched/machine.hpp"
#include "psched/noise.hpp"
#include "simcore/engine.hpp"
#include "simcore/rng.hpp"

namespace casched::cas {

class Agent;

struct ServerDaemonConfig {
  /// Period of load reports to the agent (NetSolve workload manager).
  double reportPeriod = 30.0;
  /// One-way control-message latency to the agent.
  double controlLatency = 0.005;
  /// Background variability of this server's CPU and links (paper's shared
  /// laboratory environment); amplitude 0 disables.
  psched::NoiseConfig cpuNoise;
  psched::NoiseConfig linkNoise;
  std::uint64_t noiseSeed = 0;
};

class ServerDaemon : public TaskDispatch {
 public:
  ServerDaemon(simcore::Simulator& sim, const psched::MachineSpec& spec,
               std::vector<std::string> problems, ServerDaemonConfig config);

  ServerDaemon(const ServerDaemon&) = delete;
  ServerDaemon& operator=(const ServerDaemon&) = delete;

  /// Wires the agent and starts load reports + noise processes.
  void connectAgent(Agent* agent);

  /// Stops periodic activity so the simulation can drain (end of run).
  void quiesce();

  /// Incoming task submission (called at data-arrival time). Failure paths
  /// (machine down, collapse on admission) notify the agent asynchronously.
  void submitTask(std::uint64_t taskId, const psched::ExecRequest& request) override;

  const std::string& name() const { return machine_.name(); }
  psched::Machine& machine() { return machine_; }
  const psched::Machine& machine() const { return machine_; }
  const std::vector<std::string>& problems() const { return problems_; }

 private:
  void sendLoadReport();
  void scheduleNextReport();
  void notifyCompletion(const psched::ExecRecord& record);
  void notifyFailure(std::uint64_t taskId);

  simcore::Simulator& sim_;
  ServerDaemonConfig config_;
  std::vector<std::string> problems_;
  psched::Machine machine_;
  Agent* agent_ = nullptr;
  simcore::EventHandle reportTimer_{};
  simcore::RandomStream noiseRng_;
  std::unique_ptr<psched::NoiseProcess> cpuNoise_;
  std::unique_ptr<psched::NoiseProcess> linkNoise_;
  bool quiesced_ = false;
};

}  // namespace casched::cas
