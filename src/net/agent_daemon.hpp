#pragma once
/// \file agent_daemon.hpp
/// The live agent process: a TCP event loop multiplexing wire-protocol
/// connections onto the existing cas::Agent scheduling core. Servers connect
/// and register (kRegister), stream load reports and heartbeats, and notify
/// completions/failures; clients connect and submit kScheduleRequest per
/// task. The agent forwards each accepted task to the chosen server as a
/// kTaskSubmit over the agent->server connection (agent-mediated submission,
/// exactly the simulated submission path) and relays terminal outcomes back
/// to the requesting client.
///
/// Liveness: any frame from a server refreshes its deadline; a server silent
/// for `heartbeatTimeout` simulated seconds is retired through the agent's
/// deregisterServer path (its HTM row is dropped, it never receives work
/// again). A transport disconnect is an immediate kServerDown; a reconnect
/// re-registers, reviving a retired row when the deadline already passed.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cas/agent.hpp"
#include "core/htm.hpp"
#include "net/clock.hpp"
#include "platform/calibration.hpp"
#include "simcore/engine.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"

namespace casched::net {

struct AgentDaemonConfig {
  /// Listening port on 127.0.0.1; 0 picks a free port (see port()).
  std::uint16_t port = 0;
  std::string heuristic = "msf";
  /// One-way control latency the scheduling core assumes for the submission
  /// path (the real network supplies the actual delay).
  double controlLatency = 0.005;
  bool faultTolerance = false;
  int maxRetries = 5;
  double noServerRetryDelay = 10.0;
  core::SyncPolicy htmSync = core::SyncPolicy::kDropOnNotice;
  /// Simulated seconds without any message from a registered server before
  /// its HTM row is retired via Agent::deregisterServer.
  double heartbeatTimeout = 90.0;
  std::uint64_t schedulerSeed = 7;
  /// Static cost database handed to the agent (the paper's calibrated
  /// Tables 3-4 when available); servers without entries fall back to
  /// refSeconds / speedIndex from their registration.
  platform::CostModel costs;
};

class AgentDaemon {
 public:
  AgentDaemon(AgentDaemonConfig config, PacedClock clock);
  ~AgentDaemon();

  AgentDaemon(const AgentDaemon&) = delete;
  AgentDaemon& operator=(const AgentDaemon&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// One event-loop turn: accept new connections, advance the paced clock,
  /// drain every transport, apply heartbeat deadlines. Non-blocking.
  void runOnce();

  /// Blocking loop for the CLI process; returns when `stop` becomes true or
  /// a client sends kShutdown.
  void run(const std::atomic<bool>& stop);

  cas::Agent& agent() { return agent_; }
  const cas::Agent& agent() const { return agent_; }
  simcore::Simulator& simulator() { return sim_; }

  /// Servers currently registered and not retired.
  std::size_t liveServerCount() const;
  std::size_t retiredServerCount() const;
  bool serverRetired(const std::string& name) const;
  bool serverKnown(const std::string& name) const;

  /// True once a kShutdown frame arrived.
  bool shutdownRequested() const { return shutdownRequested_; }

 private:
  struct WireLink;
  struct ServerEntry {
    std::unique_ptr<WireLink> link;
    std::shared_ptr<wire::TcpTransport> transport;
    double lastSeen = 0.0;  ///< agent sim time of the last frame
    bool up = false;
    bool retired = false;
    /// Tasks that were in flight when the server announced kServerDown
    /// (leave or collapse). The down-notice clears the scheduling core's own
    /// bookkeeping, so this is the only record left; each id leaves the set
    /// with its completion/failure frame, and whatever remains when the link
    /// dies is failed on the server's behalf (fault tolerance re-submits).
    std::set<std::uint64_t> draining;
  };

  void acceptPending();
  void pollTransports();
  void applyDeadlines();
  void handleFrame(const std::shared_ptr<wire::TcpTransport>& transport,
                   const wire::Frame& frame);
  void onRegister(const std::shared_ptr<wire::TcpTransport>& transport,
                  const wire::RegisterMsg& msg);
  void onScheduleRequest(const std::shared_ptr<wire::TcpTransport>& transport,
                         const wire::ScheduleRequestMsg& msg);
  void markServerDown(const std::string& name);
  void failAbandonedTasks(const std::string& name);
  void sendSubmit(const std::string& server, std::uint64_t taskId,
                  const psched::ExecRequest& request);
  void relayTerminal(const metrics::TaskOutcome& outcome);

  AgentDaemonConfig config_;
  PacedClock clock_;
  wire::TcpListener listener_;
  simcore::Simulator sim_;
  cas::Agent agent_;
  /// Connections that have not yet identified themselves (first frame tells
  /// servers from clients apart), with the sim time they were accepted;
  /// one that stays mute past the heartbeat timeout is dropped so idle
  /// sockets cannot pile up in a long-lived daemon.
  std::vector<std::pair<std::shared_ptr<wire::TcpTransport>, double>> pending_;
  std::map<std::string, ServerEntry> servers_;
  std::vector<std::shared_ptr<wire::TcpTransport>> clients_;
  /// Which client asked for which task (terminal outcomes go back there).
  std::map<std::uint64_t, std::weak_ptr<wire::TcpTransport>> taskClients_;
  bool shutdownRequested_ = false;
};

}  // namespace casched::net
