#pragma once
/// \file agent_daemon.hpp
/// The live agent process: a TCP event loop multiplexing wire-protocol
/// connections onto the existing cas::Agent scheduling core. Servers connect
/// and register (kRegister), stream load reports and heartbeats, and notify
/// completions/failures; clients connect and submit kScheduleRequest per
/// task. All requests that arrive within one poll cycle are drained into a
/// single Agent::scheduleBatch call - one HTM refresh amortized over the
/// whole burst, with placements identical to scheduling them one at a time
/// (locked by the batch equivalence test). The agent forwards each accepted
/// task to the chosen server as a kTaskSubmit over the agent->server
/// connection (agent-mediated submission, exactly the simulated submission
/// path) and relays terminal outcomes back to the requesting client.
///
/// Liveness: any frame from a server refreshes its deadline; a server silent
/// for `heartbeatTimeout` simulated seconds is retired through the agent's
/// deregisterServer path (its HTM row is dropped, it never receives work
/// again). A transport disconnect is an immediate kServerDown; a reconnect
/// re-registers, reviving a retired row when the deadline already passed.
///
/// Replication (protocol v3): the daemon can peer with other agents. It dials
/// the configured `peers` (re-dialing dropped links), accepts inbound peers
/// identifying with kAgentHello, and every `syncPeriod` simulated seconds
/// sends each of them a kAgentSync - load digests of its own servers plus its
/// serialized HTM snapshot in chunks - and writes the same snapshot to
/// `snapshotPath`. Received digests build a registry view of peer-owned
/// servers; received snapshots warm rows for servers not registered here, so
/// a replica (or a restarted agent booting from its snapshot file) starts
/// with warm predictions the moment those servers fail over to it.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cas/agent.hpp"
#include "core/htm.hpp"
#include "mesh/router.hpp"
#include "net/clock.hpp"
#include "platform/calibration.hpp"
#include "simcore/engine.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"

namespace casched::obs {
class MetricsHttpServer;
}  // namespace casched::obs

namespace casched::net {

/// How a multi-agent deployment divides the server registry.
enum class AgentMode : std::uint8_t {
  /// Every agent can serve the full registry; snapshot sync keeps replicas
  /// warm so servers and clients can fail over to any of them.
  kReplicated,
  /// Each agent owns the servers that registered with it; clients spread
  /// their tasks across the agents. Load digests give each agent a read-only
  /// view of the partitions it does not own.
  kPartitioned,
};

AgentMode parseAgentMode(const std::string& name);
std::string agentModeName(AgentMode mode);

struct AgentDaemonConfig {
  /// Listening port on 127.0.0.1; 0 picks a free port (see port()).
  std::uint16_t port = 0;
  std::string heuristic = "msf";
  /// One-way control latency the scheduling core assumes for the submission
  /// path (the real network supplies the actual delay).
  double controlLatency = 0.005;
  bool faultTolerance = false;
  int maxRetries = 5;
  double noServerRetryDelay = 10.0;
  core::SyncPolicy htmSync = core::SyncPolicy::kDropOnNotice;
  /// Simulated seconds without any message from a registered server before
  /// its HTM row is retired via Agent::deregisterServer.
  double heartbeatTimeout = 90.0;
  std::uint64_t schedulerSeed = 7;
  /// Static cost database handed to the agent (the paper's calibrated
  /// Tables 3-4 when available); servers without entries fall back to
  /// refSeconds / speedIndex from their registration.
  platform::CostModel costs;

  // --- replication (multi-agent deployments) ---
  /// Name announced in kAgentHello; must be unique across the deployment.
  std::string agentName = "agent-0";
  AgentMode mode = AgentMode::kReplicated;
  /// Peer agents to dial, as "host:port". Dropped links are re-dialed every
  /// `peerRedialPeriod`; peers may also dial in (kAgentHello identifies them).
  std::vector<std::string> peers;
  double peerRedialPeriod = 5.0;
  /// Simulated seconds between kAgentSync broadcasts (and snapshot file
  /// saves); <= 0 disables both.
  double syncPeriod = 5.0;
  /// HTM snapshot file: loaded (if present) at construction for a warm
  /// start, rewritten every sync period. Empty disables persistence.
  std::string snapshotPath;

  // --- mesh (protocol v4: request forwarding / work stealing) ---
  /// Enables the mesh layer: schedule requests are routed (local / forward /
  /// park / deny) before the scheduling core sees them, kForwardRequest and
  /// kSteal* frames are honoured, and syncs advertise the parked-queue depth.
  bool meshEnabled = false;
  mesh::RouterConfig meshRouter;
  /// Simulated seconds between steal attempts when idle; <= 0 disables.
  double meshStealPeriod = 0.0;
  /// Max parked tasks handed over per steal grant.
  std::size_t meshStealBatch = 4;

  // --- observability ---
  /// Loopback HTTP port serving the metrics registry (GET / for Prometheus
  /// text, any path containing "json" for JSON). Negative disables the
  /// endpoint; 0 picks a free port (see metricsHttpPort()).
  int metricsPort = -1;
};

class AgentDaemon {
 public:
  AgentDaemon(AgentDaemonConfig config, PacedClock clock);
  ~AgentDaemon();

  AgentDaemon(const AgentDaemon&) = delete;
  AgentDaemon& operator=(const AgentDaemon&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// One event-loop turn: accept new connections, advance the paced clock,
  /// drain every transport, apply heartbeat deadlines. Non-blocking.
  void runOnce();

  /// Blocking loop for the CLI process; returns when `stop` becomes true or
  /// a client sends kShutdown.
  void run(const std::atomic<bool>& stop);

  cas::Agent& agent() { return agent_; }
  const cas::Agent& agent() const { return agent_; }
  simcore::Simulator& simulator() { return sim_; }

  /// Servers currently registered and not retired.
  std::size_t liveServerCount() const;
  std::size_t retiredServerCount() const;
  bool serverRetired(const std::string& name) const;
  bool serverKnown(const std::string& name) const;

  /// True once a kShutdown frame arrived.
  bool shutdownRequested() const { return shutdownRequested_; }

  /// Port of the metrics HTTP endpoint, or 0 when disabled.
  std::uint16_t metricsHttpPort() const;

  // --- replication surface ---
  const std::string& agentName() const { return config_.agentName; }
  AgentMode mode() const { return config_.mode; }
  /// Adds a peer address ("host:port") after construction; the loopback
  /// harness uses this once every agent's ephemeral port is known.
  void addPeer(const std::string& hostPort);
  /// Peer links currently connected (inbound or outbound).
  std::size_t connectedPeerCount() const;
  /// Rows adopted from the snapshot file at construction (warm start).
  std::size_t warmStartedRows() const { return warmStartedRows_; }
  /// kAgentSync frames digested so far.
  std::uint64_t syncsReceived() const { return syncsReceived_; }
  /// Distinct HTM rows ever adopted from peer snapshots (servers not
  /// registered here) - replication coverage, independent of run length.
  std::uint64_t peerRowsAdopted() const { return peerAdoptedRows_.size(); }
  /// Servers known only through peer load digests (the rest of the registry
  /// in partitioned mode).
  std::size_t knownPeerServerCount() const { return peerLoads_.size(); }

  // --- mesh surface ---
  /// Requests this agent handed to a peer (kForwardRequest sent).
  std::uint64_t meshForwards() const { return meshForwards_; }
  /// Requests this agent denied (kScheduleDeny / kForwardDeny sent).
  std::uint64_t meshDenies() const { return meshDenies_; }
  /// Tasks this agent pulled off a peer's parked queue (kStealGrant received).
  std::uint64_t meshSteals() const { return meshSteals_; }
  /// Requests ever parked awaiting a steal (cumulative, not current depth).
  std::uint64_t meshParked() const { return meshParkedTotal_; }

 private:
  struct WireLink;
  struct ServerEntry {
    std::unique_ptr<WireLink> link;
    std::shared_ptr<wire::TcpTransport> transport;
    double lastSeen = 0.0;  ///< agent sim time of the last frame
    bool up = false;
    bool retired = false;
    /// Tasks that were in flight when the server announced kServerDown
    /// (leave or collapse). The down-notice clears the scheduling core's own
    /// bookkeeping, so this is the only record left; each id leaves the set
    /// with its completion/failure frame, and whatever remains when the link
    /// dies is failed on the server's behalf (fault tolerance re-submits).
    std::set<std::uint64_t> draining;
  };

  /// One agent-to-agent link: outbound entries carry the address to re-dial;
  /// inbound entries (address empty) are pruned once their transport dies.
  struct PeerEntry {
    std::string address;  ///< "host:port" for outbound dials; "" when inbound
    std::string name;     ///< peer's agentName once its hello arrived
    std::string mode;
    std::shared_ptr<wire::TcpTransport> transport;
    bool helloSent = false;
    double nextDialAt = 0.0;
    /// "host:port" the peer listens on (from its hello) - what the resolver
    /// gossips to clients; empty until the hello arrives or when unknown.
    std::string listenAddress;
    /// Last kAgentSync digest, summarized for the mesh router.
    bool digestSeen = false;
    double meanLoad = 0.0;
    std::uint32_t liveServers = 0;
    std::uint32_t queuedTasks = 0;
    /// Snapshot chunk reassembly state.
    std::uint64_t snapshotSeq = 0;
    std::uint32_t chunkCount = 0;
    std::uint32_t chunksReceived = 0;
    std::vector<wire::Bytes> chunks;
  };

  void acceptPending();
  void pollTransports();
  void applyDeadlines();
  bool otherLiveLinkTo(const PeerEntry& peer) const;
  void pollPeers();
  void maybeSync();
  /// Flushes every link's queued outbound traffic (end of each poll cycle);
  /// consecutive same-type messages leave in coalesced frames.
  void flushAllQueued();
  void sendHello(PeerEntry& peer);
  void onAgentHello(const std::shared_ptr<wire::TcpTransport>& transport,
                    const wire::AgentHelloMsg& msg);
  void onAgentSync(const std::shared_ptr<wire::TcpTransport>& transport,
                   const wire::AgentSyncMsg& msg);
  void handleFrame(const std::shared_ptr<wire::TcpTransport>& transport,
                   const wire::Frame& frame);
  void onRegister(const std::shared_ptr<wire::TcpTransport>& transport,
                  const wire::RegisterMsg& msg);
  void onScheduleRequest(const std::shared_ptr<wire::TcpTransport>& transport,
                         const wire::ScheduleRequestMsg& msg);
  /// Mesh routing for a validated request: place locally, forward to the
  /// least-loaded capable peer, park for a steal, defer (no digests yet), or
  /// deny. `fromAgent` is empty for client submissions and names the peer for
  /// kForwardRequest arrivals (it is excluded from forwarding candidates and
  /// receives kForwardDeny instead of kScheduleDeny).
  void routeRequest(const std::shared_ptr<wire::TcpTransport>& requester,
                    const wire::ScheduleRequestMsg& msg,
                    const workload::TaskInstance& task, std::uint32_t hops,
                    const std::string& fromAgent, double firstSeen);
  void denyRequest(const std::shared_ptr<wire::TcpTransport>& requester,
                   std::uint64_t taskId, const std::string& fromAgent,
                   const std::string& reason);
  /// True when `taskId` is already held somewhere in this daemon outside the
  /// scheduling core: this cycle's batch, parked awaiting a steal, deferred
  /// routing, or handed to a peer. Accepting a second copy would overwrite
  /// the first task's client entry and race the terminal relays.
  bool taskIdInFlight(std::uint64_t taskId) const;
  void retryDeferredRoutes();
  /// A peer link died with no replacement: every task handed to that peer
  /// (forwarded or steal-granted) has lost its terminal path, so re-route the
  /// retained requests - locally, to another peer, or as a deny to the
  /// original requester - instead of leaving clients to hang until timeout.
  void reclaimForwarded(const std::string& peerName);
  void maybeSteal();
  /// Terminal frame for a task this agent routed to a peer (the server is not
  /// registered here): relay it verbatim to the original client and return
  /// true. False means normal server-terminal handling applies.
  bool relayForwardedTerminal(std::uint64_t taskId, const std::string& serverName,
                              const wire::Frame& frame);
  void flushScheduleBatch();
  void markServerDown(const std::string& name);
  void failAbandonedTasks(const std::string& name);
  void sendSubmit(const std::string& server, std::uint64_t taskId,
                  const psched::ExecRequest& request);
  void relayTerminal(const metrics::TaskOutcome& outcome);

  AgentDaemonConfig config_;
  PacedClock clock_;
  wire::TcpListener listener_;
  simcore::Simulator sim_;
  cas::Agent agent_;
  /// Connections that have not yet identified themselves (first frame tells
  /// servers from clients apart), with the sim time they were accepted;
  /// one that stays mute past the heartbeat timeout is dropped so idle
  /// sockets cannot pile up in a long-lived daemon.
  std::vector<std::pair<std::shared_ptr<wire::TcpTransport>, double>> pending_;
  std::map<std::string, ServerEntry> servers_;
  std::vector<std::shared_ptr<wire::TcpTransport>> clients_;
  /// Which client asked for which task (terminal outcomes go back there).
  std::map<std::uint64_t, std::weak_ptr<wire::TcpTransport>> taskClients_;
  /// Requests validated this poll cycle, awaiting the cycle's single
  /// scheduleBatch call (capacity reused across cycles).
  std::vector<workload::TaskInstance> scheduleBatch_;
  bool shutdownRequested_ = false;

  // --- replication state ---
  std::vector<PeerEntry> peers_;
  double nextSyncAt_ = 0.0;
  std::uint64_t snapshotSeq_ = 0;
  /// Last load digest per peer-owned server (not registered here).
  std::map<std::string, wire::LoadDigest> peerLoads_;
  /// Distinct server names whose rows were adopted from peer snapshots.
  std::set<std::string> peerAdoptedRows_;
  std::size_t warmStartedRows_ = 0;
  std::uint64_t syncsReceived_ = 0;

  // --- mesh state ---
  /// Requests routed off this agent, by task id: the peer now responsible
  /// (forward target, or the thief that took a parked task) plus the original
  /// request, kept so a kForwardDeny can fall back to local scheduling.
  /// Terminal frames arriving over a peer link consult this map first - the
  /// server is not in servers_ here - and relay to the original client.
  struct ForwardedTask {
    std::string peer;
    wire::ScheduleRequestMsg request;
    /// Agent the request arrived from (multi-hop forwards answer with
    /// kForwardDeny there); empty when the requester is a client.
    std::string fromAgent;
  };
  std::map<std::uint64_t, ForwardedTask> forwardedTo_;
  /// Requests parked awaiting a kStealRequest (stealing topologies).
  std::deque<wire::ScheduleRequestMsg> parked_;
  /// Requests that could not be routed yet (no peer digest seen, typically
  /// the startup race before the first sync round); retried every poll cycle
  /// until the heartbeat timeout, then denied.
  struct DeferredRoute {
    std::weak_ptr<wire::TcpTransport> requester;
    wire::ScheduleRequestMsg msg;
    std::uint32_t hops = 0;
    std::string fromAgent;
    double firstSeen = 0.0;
  };
  std::vector<DeferredRoute> deferred_;
  /// DecisionLog origin tag per task ("forward:<agent>" / "steal:<agent>"),
  /// consumed by the decision annotator and erased at the terminal relay.
  std::map<std::uint64_t, std::string> taskOrigins_;
  double nextStealAt_ = 0.0;
  std::uint64_t meshForwards_ = 0;
  std::uint64_t meshDenies_ = 0;
  std::uint64_t meshSteals_ = 0;
  std::uint64_t meshParkedTotal_ = 0;

  /// Non-null when config_.metricsPort >= 0; polled once per runOnce() turn.
  std::unique_ptr<obs::MetricsHttpServer> metricsServer_;
};

}  // namespace casched::net
