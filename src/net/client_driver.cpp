#include "net/client_driver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/log.hpp"

namespace casched::net {

ClientDriver::ClientDriver(ClientConfig config, PacedClock clock)
    : config_(std::move(config)), clock_(clock) {
  if (config_.agentPorts.empty()) config_.agentPorts.push_back(config_.agentPort);
  for (std::uint16_t port : config_.agentPorts) {
    AgentLink link;
    link.port = port;
    links_.push_back(std::move(link));
  }
}

bool ClientDriver::dialLink(AgentLink& link) {
  try {
    link.transport = wire::TcpTransport::connect(config_.agentHost, link.port);
  } catch (const util::IoError&) {
    link.transport.reset();
    return false;
  }
  // Hello: an empty-name heartbeat tells the agent this connection is a
  // client, so it is not reaped as never-identified while waiting for the
  // first arrival date.
  link.transport->send(wire::MessageType::kHeartbeat, wire::encode(wire::HeartbeatMsg{}));
  return true;
}

void ClientDriver::connect() {
  std::size_t live = 0;
  for (AgentLink& link : links_) {
    if (dialLink(link)) ++live;
  }
  if (live == 0) {
    throw util::IoError("client: no agent reachable on any configured port");
  }
}

std::size_t ClientDriver::liveAgentCount() const {
  std::size_t n = 0;
  for (const AgentLink& link : links_) {
    if (link.transport && !link.transport->closed()) ++n;
  }
  return n;
}

void ClientDriver::start(const workload::Metatask& metatask) {
  CASCHED_CHECK(liveAgentCount() > 0, "client must connect before start");
  CASCHED_CHECK(!metatask.tasks.empty(), "metatask is empty");
  metatask_ = metatask;
  total_ = metatask.tasks.size();
  started_ = true;
  nextToSend_ = 0;
  completed_ = 0;
  failovers_ = 0;
  wireToPos_.clear();
  inFlightLink_.clear();
  resend_.clear();
  terminal_.clear();
  denies_ = 0;
  denyFirstAt_.clear();
  deniedRetry_.clear();
  resolverStats_ = {};
  nextProbeAt_ = 0.0;
  probeLinks_.clear();
  lastBest_ = kNoBest;
}

std::size_t ClientDriver::bestRankedLink() const {
  // Two tiers: an agent advertising zero live servers cannot run anything, so
  // it only wins when no live link has servers at all.
  std::size_t best = links_.size();
  double bestScore = 0.0;
  bool bestHasServers = false;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const AgentLink& link = links_[i];
    if (!link.transport || link.transport->closed()) continue;
    if (link.infosReceived == 0) continue;
    const bool hasServers = link.liveServers > 0;
    const double score = link.rttSeconds + config_.loadWeight * link.meanLoad;
    const bool better = best == links_.size() ||
                        (hasServers && !bestHasServers) ||
                        (hasServers == bestHasServers && score < bestScore);
    if (better) {
      best = i;
      bestScore = score;
      bestHasServers = hasServers;
    }
  }
  return best;
}

bool ClientDriver::sendTask(std::size_t pos, std::uint64_t wireId) {
  // Pick the carrying link: the resolver's current best-ranked agent, else
  // round-robin over live links (partitioned mode) or the first live one
  // (replicated mode - everything to the primary).
  std::size_t chosen = links_.size();
  if (config_.resolver) {
    chosen = bestRankedLink();
    if (chosen == links_.size()) {
      // No probe reply yet: fall back to the first live link.
      for (std::size_t i = 0; i < links_.size(); ++i) {
        if (links_[i].transport && !links_[i].transport->closed()) {
          chosen = i;
          break;
        }
      }
    }
  } else if (config_.roundRobin) {
    for (std::size_t step = 0; step < links_.size(); ++step) {
      const std::size_t i = (rrNext_ + step) % links_.size();
      if (links_[i].transport && !links_[i].transport->closed()) {
        chosen = i;
        rrNext_ = (i + 1) % links_.size();
        break;
      }
    }
  } else {
    // Sticky primary: keep using the agent that is currently serving us and
    // only advance when it dies. Scanning from 0 instead would hand new
    // tasks back to a restarted (warm but server-less) agent whose registry
    // migrated to the survivor during the outage.
    for (std::size_t step = 0; step < links_.size(); ++step) {
      const std::size_t i = (primary_ + step) % links_.size();
      if (links_[i].transport && !links_[i].transport->closed()) {
        chosen = i;
        primary_ = i;
        break;
      }
    }
  }
  if (chosen == links_.size()) return false;

  const workload::TaskInstance& task = metatask_.tasks[pos];
  wire::ScheduleRequestMsg request;
  request.taskId = wireId;
  request.problem = task.type.name;
  request.inMB = task.type.inMB;
  request.outMB = task.type.outMB;
  request.memMB = task.type.memMB;
  request.refSeconds = task.type.refSeconds;
  // Queued, not sent: a burst of due arrivals (and failover re-submissions)
  // leaves as one coalesced frame when runOnce flushes below.
  links_[chosen].transport->queue(wire::MessageType::kScheduleRequest,
                                  wire::encode(request));
  wireToPos_[wireId] = pos;
  inFlightLink_[wireId] = chosen;
  return true;
}

void ClientDriver::runOnce() {
  if (!started_) return;
  const double now = clock_.simNow();

  // Reap dead links first: everything in flight there moves to the resend
  // queue (the agent - or its replacement - will see a fresh wire id), then
  // the link re-dials on its own period.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    AgentLink& link = links_[i];
    if (link.transport && link.transport->closed()) link.transport.reset();
    if (link.transport == nullptr) {
      for (auto it = inFlightLink_.begin(); it != inFlightLink_.end();) {
        if (it->second != i) {
          ++it;
          continue;
        }
        const std::uint64_t wireId = it->first;
        const std::size_t pos = wireToPos_.at(wireId);
        it = inFlightLink_.erase(it);
        const std::uint64_t index = metatask_.tasks[pos].index;
        if (terminal_.count(index) == 0) {
          LOG_WARN("client: agent link died with task " << index
                                                        << " open, failing over");
          resend_.push_back(pos);
        }
      }
      if (now >= link.nextRedialAt) {
        link.nextRedialAt = now + config_.redialPeriod;
        dialLink(link);
      }
    }
  }

  maybeProbe(now);

  // Send every arrival now due; stop (and retry next turn) when no agent is
  // currently reachable.
  while (nextToSend_ < metatask_.tasks.size() &&
         metatask_.tasks[nextToSend_].arrival <= now) {
    if (!sendTask(nextToSend_, metatask_.tasks[nextToSend_].index)) break;
    ++nextToSend_;
  }

  // Denied tasks whose backoff elapsed rejoin the resend queue.
  for (auto it = deniedRetry_.begin(); it != deniedRetry_.end();) {
    if (now >= it->second) {
      resend_.push_back(it->first);
      it = deniedRetry_.erase(it);
    } else {
      ++it;
    }
  }

  // Failover re-submissions, under fresh wire ids.
  while (!resend_.empty()) {
    const std::size_t pos = resend_.back();
    if (terminal_.count(metatask_.tasks[pos].index) != 0) {
      resend_.pop_back();  // a late notice settled it meanwhile
      continue;
    }
    if (!sendTask(pos, nextFailoverId_)) break;
    ++nextFailoverId_;
    ++failovers_;
    resend_.pop_back();
  }

  for (AgentLink& link : links_) {
    if (link.transport == nullptr) continue;
    try {
      link.transport->flushQueued();
      link.transport->poll([&](wire::Frame frame) { handleFrame(frame); });
    } catch (const util::Error& e) {
      LOG_WARN("client: closing link on bad frame: " << e.what());
      link.transport->close();
    }
  }
}

void ClientDriver::maybeProbe(double now) {
  if (!config_.resolver || now < nextProbeAt_) return;
  nextProbeAt_ = now + config_.probePeriod;
  probeLinks_.clear();  // replies to a previous round are stale by now
  for (std::size_t i = 0; i < links_.size(); ++i) {
    AgentLink& link = links_[i];
    if (!link.transport || link.transport->closed()) continue;
    wire::ResolverProbeMsg probe;
    probe.probeId = nextProbeId_++;
    probe.sendTime = now;
    probeLinks_[probe.probeId] = i;
    link.transport->send(wire::MessageType::kResolverProbe, wire::encode(probe));
    ++resolverStats_.probes;
  }
}

void ClientDriver::onResolverInfo(const wire::ResolverInfoMsg& msg) {
  const auto probe = probeLinks_.find(msg.probeId);
  if (probe == probeLinks_.end()) return;  // stale round
  AgentLink& link = links_[probe->second];
  probeLinks_.erase(probe);
  link.rttSeconds = std::max(0.0, clock_.simNow() - msg.echoSendTime);
  link.meanLoad = msg.meanLoad;
  link.liveServers = msg.liveServers;
  ++link.infosReceived;
  ++resolverStats_.infos;

  // Gossip: dial agents this client was never configured with.
  for (const std::string& address : msg.peerAddresses) {
    const auto colon = address.rfind(':');
    if (colon == std::string::npos) continue;
    int port = 0;
    try {
      port = std::stoi(address.substr(colon + 1));
    } catch (const std::exception&) {
      continue;
    }
    if (port <= 0 || port > 0xFFFF) continue;
    const auto asPort = static_cast<std::uint16_t>(port);
    const bool known = std::any_of(links_.begin(), links_.end(),
                                   [&](const AgentLink& l) { return l.port == asPort; });
    if (known) continue;
    AgentLink learned;
    learned.port = asPort;
    links_.push_back(std::move(learned));
    dialLink(links_.back());
    ++resolverStats_.learnedPeers;
    LOG_INFO("client: learned agent at " << address << " from resolver gossip");
  }

  // Re-rank against the last best we ever picked, not a value recomputed a
  // moment ago: a link that died between two probe rounds changes the answer
  // without any info arriving, and that switch must count too.
  const std::size_t best = bestRankedLink();
  if (best != links_.size() && best != lastBest_) {
    if (lastBest_ != kNoBest) ++resolverStats_.reranks;
    lastBest_ = best;
  }
}

void ClientDriver::handleFrame(const wire::Frame& frame) {
  using wire::MessageType;
  const auto settle = [&](std::uint64_t wireId) -> std::uint64_t {
    inFlightLink_.erase(wireId);
    auto it = wireToPos_.find(wireId);
    // Unknown wire id: a notice for a task this driver never sent.
    if (it == wireToPos_.end()) return wireId;
    return metatask_.tasks[it->second].index;
  };
  if (frame.type == MessageType::kTaskComplete) {
    const wire::TaskCompleteMsg m = wire::decodeTaskComplete(frame.payload);
    auto [it, inserted] = terminal_.try_emplace(settle(m.taskId));
    if (!inserted) return;  // duplicate terminal notice (orphan + failover copy)
    it->second.completed = true;
    it->second.server = m.serverName;
    it->second.completionTime = m.completionTime;
    ++completed_;
    return;
  }
  if (frame.type == MessageType::kTaskFailed) {
    const wire::TaskFailedMsg m = wire::decodeTaskFailed(frame.payload);
    auto [it, inserted] = terminal_.try_emplace(settle(m.taskId));
    if (!inserted) return;
    it->second.completed = false;
    it->second.server = m.serverName;
    return;
  }
  if (frame.type == MessageType::kScheduleDeny) {
    const wire::ScheduleDenyMsg m = wire::decodeScheduleDeny(frame.payload);
    auto it = wireToPos_.find(m.taskId);
    if (it == wireToPos_.end()) return;
    const std::size_t pos = it->second;
    const std::uint64_t index = metatask_.tasks[pos].index;
    inFlightLink_.erase(m.taskId);
    if (terminal_.count(index) != 0) return;
    ++denies_;
    const double now = clock_.simNow();
    const double firstDeny = denyFirstAt_.try_emplace(index, now).first->second;
    if (links_.size() > 1 && now - firstDeny < config_.denyGraceSeconds) {
      // Another agent may have the servers (or the denier's registry is
      // still migrating): steer the sticky primary past the denier and
      // retry after the backoff.
      LOG_WARN("client: task " << index << " denied by " << m.agentName << " ("
                               << m.reason << "), failing over");
      if (!config_.roundRobin && !config_.resolver) {
        primary_ = (primary_ + 1) % links_.size();
      }
      deniedRetry_.emplace_back(pos, now + config_.denyRetryDelay);
    } else {
      // One agent total, or every retry within the grace window came back
      // denied: the deny is this task's terminal answer. This replaces the
      // old silent client-side timeout when no agent has servers at all.
      LOG_WARN("client: task " << index << " denied by " << m.agentName << " ("
                               << m.reason << "), giving up");
      terminal_[index].completed = false;
      denyFirstAt_.erase(index);
    }
    return;
  }
  if (frame.type == MessageType::kResolverInfo) {
    onResolverInfo(wire::decodeResolverInfo(frame.payload));
    return;
  }
  LOG_WARN("client: ignoring unexpected " << wire::messageTypeName(frame.type)
                                          << " frame");
}

bool ClientDriver::run(const workload::Metatask& metatask, double wallTimeoutSeconds,
                       const std::atomic<bool>& stop) {
  start(metatask);
  const WallDeadline deadline(wallTimeoutSeconds);
  while (!done() && !stop.load(std::memory_order_relaxed)) {
    if (deadline.passed()) break;
    runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return done();
}

}  // namespace casched::net
