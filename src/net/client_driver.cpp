#include "net/client_driver.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/log.hpp"

namespace casched::net {

ClientDriver::ClientDriver(ClientConfig config, PacedClock clock)
    : config_(std::move(config)), clock_(clock) {}

void ClientDriver::connect() {
  transport_ = wire::TcpTransport::connect(config_.agentHost, config_.agentPort);
  // Hello: an empty-name heartbeat tells the agent this connection is a
  // client, so it is not reaped as never-identified while waiting for the
  // first arrival date.
  transport_->send(wire::MessageType::kHeartbeat, wire::encode(wire::HeartbeatMsg{}));
}

void ClientDriver::start(const workload::Metatask& metatask) {
  CASCHED_CHECK(transport_ != nullptr, "client must connect before start");
  CASCHED_CHECK(!metatask.tasks.empty(), "metatask is empty");
  metatask_ = metatask;
  total_ = metatask.tasks.size();
  started_ = true;
  nextToSend_ = 0;
  completed_ = 0;
  terminal_.clear();
}

void ClientDriver::runOnce() {
  if (!started_ || transport_ == nullptr || transport_->closed()) return;
  const double now = clock_.simNow();
  while (nextToSend_ < metatask_.tasks.size() &&
         metatask_.tasks[nextToSend_].arrival <= now) {
    const workload::TaskInstance& task = metatask_.tasks[nextToSend_];
    wire::ScheduleRequestMsg request;
    request.taskId = task.index;
    request.problem = task.type.name;
    request.inMB = task.type.inMB;
    request.outMB = task.type.outMB;
    request.memMB = task.type.memMB;
    request.refSeconds = task.type.refSeconds;
    transport_->send(wire::MessageType::kScheduleRequest, wire::encode(request));
    ++nextToSend_;
  }
  try {
    transport_->poll([&](wire::Frame frame) { handleFrame(frame); });
  } catch (const util::Error& e) {
    LOG_WARN("client: closing link on bad frame: " << e.what());
    transport_->close();
  }
}

void ClientDriver::handleFrame(const wire::Frame& frame) {
  using wire::MessageType;
  if (frame.type == MessageType::kTaskComplete) {
    const wire::TaskCompleteMsg m = wire::decodeTaskComplete(frame.payload);
    auto [it, inserted] = terminal_.try_emplace(m.taskId);
    if (!inserted) return;  // duplicate terminal notice
    it->second.completed = true;
    it->second.server = m.serverName;
    it->second.completionTime = m.completionTime;
    ++completed_;
    return;
  }
  if (frame.type == MessageType::kTaskFailed) {
    const wire::TaskFailedMsg m = wire::decodeTaskFailed(frame.payload);
    auto [it, inserted] = terminal_.try_emplace(m.taskId);
    if (!inserted) return;
    it->second.completed = false;
    it->second.server = m.serverName;
    return;
  }
  LOG_WARN("client: ignoring unexpected " << wire::messageTypeName(frame.type)
                                          << " frame");
}

bool ClientDriver::run(const workload::Metatask& metatask, double wallTimeoutSeconds,
                       const std::atomic<bool>& stop) {
  start(metatask);
  const WallDeadline deadline(wallTimeoutSeconds);
  while (!done() && !stop.load(std::memory_order_relaxed)) {
    if (deadline.passed()) break;
    if (transport_ == nullptr || transport_->closed()) break;
    runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return done();
}

}  // namespace casched::net
