#pragma once
/// \file loopback.hpp
/// In-process distributed deployment over real TCP loopback sockets: one
/// AgentDaemon, one NetServerDaemon per testbed server, one ClientDriver
/// replaying the compiled scenario metatask - all pumped cooperatively from
/// the calling thread, every byte travelling through the kernel's loopback
/// stack. The scenario's churn timeline is applied as *live* membership
/// events (leave = down-notice + drain + missed heartbeats, crash = machine
/// collapse over the wire, join = a new daemon dialing in mid-run), so the
/// same registry entry runs in the simulator and against real sockets, and
/// their completed/lost/resubmitted counts can be compared directly.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/record.hpp"
#include "scenario/spec.hpp"

namespace casched::net {

struct LiveRunOptions {
  std::string heuristic = "msf";
  /// Simulated seconds per wall second (the pacing compression).
  double timeScale = 200.0;
  std::uint64_t seed = 1;
  /// Hard wall-clock stop; the report is marked timedOut when hit.
  double wallTimeoutSeconds = 60.0;
  /// Agent's missed-report deadline, simulated seconds; <= 0 derives
  /// max(3 * reportPeriod, 10 wall seconds * timeScale) - the wall floor
  /// keeps a pump stall on a loaded machine from retiring healthy servers.
  double heartbeatTimeout = 0.0;
  /// Server heartbeat period, simulated seconds.
  double heartbeatPeriod = 5.0;
  /// Optional external stop signal (e.g. a SIGINT flag); the run winds down
  /// at the next pump turn when it becomes true.
  const std::atomic<bool>* stopFlag = nullptr;
};

/// Outcome of one live loopback run; mirrors the simulator's RunResult
/// closely enough for count-level comparison.
struct LiveRunReport {
  std::string scenario;
  std::string heuristic;
  double timeScale = 1.0;
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t lost = 0;
  /// Extra scheduling attempts past each task's first (fault tolerance).
  std::uint64_t resubmissions = 0;
  metrics::ChurnSummary churnApplied;
  std::size_t serversStarted = 0;
  std::size_t serversRetired = 0;
  double wallSeconds = 0.0;
  double simEndTime = 0.0;
  bool timedOut = false;
  std::vector<metrics::TaskOutcome> outcomes;  ///< agent-side, by task index
};

/// Extra attempts past the first across a run's outcomes - the common
/// resubmission count for live reports and simulator RunResults.
std::uint64_t countResubmissions(const std::vector<metrics::TaskOutcome>& outcomes);

/// Runs one scenario end to end over TCP loopback: agent + one server daemon
/// per testbed entry + client, churn applied live. Blocks until every task
/// is terminal or the wall timeout expires.
LiveRunReport runLoopbackScenario(const scenario::ScenarioSpec& spec,
                                  const LiveRunOptions& options);

/// Same, for a registry entry by name.
LiveRunReport runLoopbackScenario(const std::string& registryName,
                                  const LiveRunOptions& options);

/// Machine-readable record of a live run (counts, churn, wall/sim time).
std::string liveRunJson(const LiveRunReport& report);

}  // namespace casched::net
