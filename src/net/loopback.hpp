#pragma once
/// \file loopback.hpp
/// In-process distributed deployment over real TCP loopback sockets: one or
/// more AgentDaemons, one NetServerDaemon per testbed server, one
/// ClientDriver replaying the compiled scenario metatask - all pumped
/// cooperatively from the calling thread, every byte travelling through the
/// kernel's loopback stack. The scenario's churn timeline is applied as
/// *live* membership events (leave = down-notice + drain + missed
/// heartbeats, crash = machine collapse over the wire, join = a new daemon
/// dialing in mid-run), so the same registry entry runs in the simulator and
/// against real sockets, and their completed/lost/resubmitted counts can be
/// compared directly.
///
/// A scenario with an [agents] section deploys `count` peered agents
/// (protocol v3 hello + sync). In replicated mode every server and the
/// client home on the first agent and fail over down the list; in
/// partitioned mode server i homes on agent i % count and the client spreads
/// tasks round-robin. Agent crash events destroy a daemon mid-run; servers
/// and client fail over to the survivors (which adopted the crashed agent's
/// HTM rows from kAgentSync snapshots), or to the restarted daemon, which
/// warm-starts from its last snapshot file.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/record.hpp"
#include "scenario/faults.hpp"
#include "scenario/spec.hpp"

namespace casched::net {

struct LiveRunOptions {
  std::string heuristic = "msf";
  /// Simulated seconds per wall second (the pacing compression).
  double timeScale = 200.0;
  std::uint64_t seed = 1;
  /// Hard wall-clock stop; the report is marked timedOut when hit.
  double wallTimeoutSeconds = 60.0;
  /// Agent's missed-report deadline, simulated seconds; <= 0 derives
  /// max(3 * reportPeriod, 10 wall seconds * timeScale) - the wall floor
  /// keeps a pump stall on a loaded machine from retiring healthy servers.
  double heartbeatTimeout = 0.0;
  /// Server heartbeat period, simulated seconds.
  double heartbeatPeriod = 5.0;
  /// Optional external stop signal (e.g. a SIGINT flag); the run winds down
  /// at the next pump turn when it becomes true.
  const std::atomic<bool>* stopFlag = nullptr;
  /// Where multi-agent runs keep their HTM snapshot files (one per agent);
  /// empty uses a unique directory under the system temp dir, removed when
  /// the run ends.
  std::string snapshotDir;
};

/// One agent daemon's share of a multi-agent run (scheduler-side counts over
/// every incarnation of that agent, crashed ones included).
struct AgentShare {
  std::string name;
  std::size_t tasks = 0;  ///< schedule requests this agent accepted
  std::size_t completed = 0;
  std::size_t lost = 0;
  std::uint64_t resubmissions = 0;
};

/// Outcome of one live loopback run; mirrors the simulator's RunResult
/// closely enough for count-level comparison.
struct LiveRunReport {
  std::string scenario;
  std::string heuristic;
  double timeScale = 1.0;
  std::size_t tasks = 0;
  std::size_t completed = 0;
  std::size_t lost = 0;
  /// Extra scheduling attempts past each task's first (fault tolerance).
  std::uint64_t resubmissions = 0;
  metrics::ChurnSummary churnApplied;
  /// Events in the compiled timeline that the [faults] processes generated.
  std::size_t generatedChurn = 0;
  /// Dispatched events whose target daemon could not be found (a live-side
  /// divergence from the compiled timeline; compile-time validation makes
  /// this impossible short of a harness bug). The nightly gate and the
  /// net_test agreement test require 0.
  std::uint64_t churnSkipped = 0;
  /// FNV digest folded over the churn sequence this harness iterated, in
  /// dispatch order (the undispatched tail folded in at the end). Equality
  /// with churnTimelineDigest of a simulator-side compilation proves both
  /// sides replay one identical generated stream in one canonical order;
  /// events dropped at apply time are flagged by `churnSkipped`, not here.
  std::uint64_t churnDigest = 0;
  /// Per-seed summary of the compiled timeline (crash count, mean downtime,
  /// peak concurrently-dead servers/domains).
  scenario::ChurnTimelineSummary churnPlanned;
  std::size_t serversStarted = 0;
  std::size_t serversRetired = 0;
  double wallSeconds = 0.0;
  double simEndTime = 0.0;
  bool timedOut = false;
  std::vector<metrics::TaskOutcome> outcomes;  ///< agent-side, by task index

  // --- multi-agent deployments ([agents] section) ---
  std::size_t agentsDeployed = 1;
  std::string agentMode = "replicated";
  std::uint64_t agentCrashes = 0;
  std::uint64_t agentRestarts = 0;
  /// HTM rows restarted agents adopted from their snapshot files.
  std::size_t warmStartRows = 0;
  /// kAgentSync frames digested across the surviving agent incarnations.
  std::uint64_t peerSyncs = 0;
  /// HTM rows adopted from peer snapshots (replica warm-starts).
  std::uint64_t peerRowsAdopted = 0;
  /// Tasks the client re-submitted to another agent after a link died.
  std::uint64_t clientFailovers = 0;
  std::vector<AgentShare> perAgent;

  // --- mesh deployments ([mesh] section) ---
  /// Requests handed to a peer agent (kForwardRequest), summed over agents.
  std::uint64_t meshForwards = 0;
  /// Client- or peer-facing denies (kScheduleDeny / kForwardDeny) sent.
  std::uint64_t meshDenies = 0;
  /// Tasks pulled off a peer's parked queue (kStealGrant), summed.
  std::uint64_t meshSteals = 0;
  /// Requests ever parked awaiting a steal, summed.
  std::uint64_t meshParked = 0;
  /// kScheduleDeny notices the client received.
  std::uint64_t clientDenies = 0;
};

/// Extra attempts past the first across a run's outcomes - the common
/// resubmission count for live reports and simulator RunResults.
std::uint64_t countResubmissions(const std::vector<metrics::TaskOutcome>& outcomes);

/// Runs one scenario end to end over TCP loopback: agent + one server daemon
/// per testbed entry + client, churn applied live. Blocks until every task
/// is terminal or the wall timeout expires.
LiveRunReport runLoopbackScenario(const scenario::ScenarioSpec& spec,
                                  const LiveRunOptions& options);

/// Same, for a registry entry by name.
LiveRunReport runLoopbackScenario(const std::string& registryName,
                                  const LiveRunOptions& options);

/// Machine-readable record of a live run (counts, churn, wall/sim time).
std::string liveRunJson(const LiveRunReport& report);

}  // namespace casched::net
