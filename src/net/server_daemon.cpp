#include "net/server_daemon.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "net.server"

namespace casched::net {

namespace {
obs::Counter& reconnectsCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_net_server_reconnects_total",
      "Successful server re-dials after a dropped agent link");
  return *c;
}

obs::Histogram& heartbeatRttHistogram() {
  static obs::Histogram* h = &obs::Registry::global().histogram(
      "casched_net_heartbeat_rtt_seconds",
      {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0},
      "Heartbeat round-trip (send to agent echo), simulated seconds");
  return *h;
}
}  // namespace

NetServerDaemon::NetServerDaemon(NetServerConfig config, PacedClock clock)
    : config_(std::move(config)), clock_(clock), machine_(sim_, config_.machine) {
  CASCHED_CHECK(config_.reportPeriod > 0.0, "report period must be positive");
  CASCHED_CHECK(config_.heartbeatPeriod > 0.0, "heartbeat period must be positive");
  machine_.setCollapseObserver([this](const std::vector<psched::ExecRecord>& victims) {
    wire::ServerDownMsg down;
    down.serverName = name();
    send(wire::MessageType::kServerDown, wire::encode(down));
    for (const psched::ExecRecord& rec : victims) {
      sendTaskFailed(rec.request.taskId, "server collapsed");
    }
  });
  machine_.setRecoverObserver([this] {
    wire::ServerUpMsg up;
    up.serverName = name();
    send(wire::MessageType::kServerUp, wire::encode(up));
  });
}

NetServerDaemon::~NetServerDaemon() = default;

void NetServerDaemon::connect() {
  dial();
  if (!timersStarted_) {
    timersStarted_ = true;
    scheduleReportTimer();
    scheduleHeartbeatTimer();
  }
}

void NetServerDaemon::dial() {
  const std::uint16_t port =
      config_.agentPorts.empty()
          ? config_.agentPort
          : config_.agentPorts[dialIndex_ % config_.agentPorts.size()];
  transport_ = wire::TcpTransport::connect(config_.agentHost, port);
  registered_ = false;
  sendRegistration();
}

void NetServerDaemon::maybeReconnect() {
  if (leaving_ || left_ || shutdownRequested_) return;
  if (transport_ != nullptr && !transport_->closed()) return;
  if (sim_.now() < nextReconnectAt_) return;
  nextReconnectAt_ = sim_.now() + config_.reconnectPeriod;
  try {
    dial();
    reconnectsCounter().inc();
    LOG_INFO("server " << name() << ": re-dialed the agent");
  } catch (const util::IoError&) {
    transport_.reset();  // this agent unreachable; try the next in the cycle
    ++dialIndex_;
  }
}

void NetServerDaemon::sendRegistration() {
  const psched::MachineSpec& spec = config_.machine;
  wire::RegisterMsg reg;
  reg.serverName = spec.name;
  reg.bwInMBps = spec.bwInMBps;
  reg.bwOutMBps = spec.bwOutMBps;
  reg.latencyIn = spec.latencyIn;
  reg.latencyOut = spec.latencyOut;
  reg.ramMB = spec.ramMB;
  reg.swapMB = spec.swapMB;
  reg.speedIndex = config_.speedIndex;
  reg.problems = config_.problems;
  send(wire::MessageType::kRegister, wire::encode(reg));
}

void NetServerDaemon::runOnce() {
  if (left_) return;
  sim_.advanceTo(clock_.simNow());
  maybeReconnect();
  if (transport_ && !transport_->closed()) {
    try {
      transport_->poll([&](wire::Frame frame) { handleFrame(frame); });
    } catch (const util::Error& e) {
      LOG_WARN("server " << name() << ": closing link on bad frame: " << e.what());
      transport_->close();
    }
  }
  if (leaving_) {
    if (machine_.activeTasks() != 0) {
      leaveIdleSince_ = -1.0;
    } else if (leaveIdleSince_ < 0.0) {
      leaveIdleSince_ = sim_.now();
    } else if (sim_.now() - leaveIdleSince_ >= config_.leaveLingerSeconds) {
      if (transport_) {
        transport_->flushQueued();
        transport_->close();
      }
      left_ = true;
    }
  }
  // Everything queued this cycle (timer-driven reports/heartbeats, terminal
  // notices from advanceTo, replies from handleFrame) leaves as one batch, so
  // consecutive same-type messages share a coalesced frame.
  if (transport_ != nullptr && !transport_->closed()) transport_->flushQueued();
}

void NetServerDaemon::run(const std::atomic<bool>& stop) {
  // A closed link does not end the loop: maybeReconnect() re-dials until the
  // agent is back (or until the operator stops the daemon).
  while (!stop.load(std::memory_order_relaxed) && !shutdownRequested_ && !left_) {
    runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void NetServerDaemon::handleFrame(const wire::Frame& frame) {
  using wire::MessageType;
  switch (frame.type) {
    case MessageType::kRegisterAck: {
      const wire::RegisterAckMsg ack = wire::decodeRegisterAck(frame.payload);
      registered_ = ack.accepted;
      if (!ack.accepted) {
        // Likely a half-open predecessor still holds the name; drop the link
        // and keep re-dialing - once the agent's deadline retires the old
        // row, the re-registration revives it.
        LOG_WARN("server " << name() << ": registration rejected by the agent");
        transport_->close();
        return;
      }
      // Align this process's paced clock with the agent's, so completion
      // dates and sample times are comparable even when the daemons were
      // started at different wall times. Only ever jump forward: the event
      // engine cannot rewind, and a backward shift (agent restarted with a
      // fresh clock) would freeze every timer until wall time caught up.
      if (ack.agentTime > sim_.now()) clock_.resyncTo(ack.agentTime);
      return;
    }
    case MessageType::kTaskSubmit:
      onTaskSubmit(wire::decodeTaskSubmit(frame.payload));
      return;
    case MessageType::kShutdown:
      shutdownRequested_ = true;
      return;
    case MessageType::kHeartbeat: {
      // The agent echoes our heartbeats back; the delta from the embedded
      // sampleTime is a genuine round trip on this link (both stamps come
      // from our own clock, so agent/server skew cancels out).
      const wire::HeartbeatMsg m = wire::decodeHeartbeat(frame.payload);
      if (m.serverName == name()) {
        heartbeatRttHistogram().observe(std::max(0.0, sim_.now() - m.sampleTime));
      }
      return;
    }
    default:
      LOG_WARN("server " << name() << ": ignoring unexpected "
                         << wire::messageTypeName(frame.type) << " frame");
      return;
  }
}

void NetServerDaemon::onTaskSubmit(const wire::TaskSubmitMsg& msg) {
  if (!machine_.up()) {
    sendTaskFailed(msg.taskId, "server down");
    return;
  }
  psched::ExecRequest request;
  request.taskId = msg.taskId;
  request.inMB = msg.inMB;
  request.cpuSeconds = msg.cpuSeconds;
  request.outMB = msg.outMB;
  request.memMB = msg.memMB;
  obs::TraceBuffer& trace = obs::TraceBuffer::global();
  const bool accepted = machine_.submit(request, [this](const psched::ExecRecord& rec) {
    if (rec.status != psched::ExecStatus::kCompleted) return;  // collapse observer reports
    wire::TaskCompleteMsg done;
    done.taskId = rec.request.taskId;
    done.serverName = name();
    done.completionTime = rec.endTime;
    done.unloadedDuration = machine_.unloadedDuration(rec.request);
    send(wire::MessageType::kTaskComplete, wire::encode(done));
  });
  if (!accepted) {
    // Machine went down or this admission collapsed it; the submitting task
    // is lost (collapse victims are reported by the collapse observer).
    sendTaskFailed(msg.taskId, "submission rejected");
    return;
  }
  if (trace.enabled()) {
    // Mirrors the sim-side hook in cas::ServerDaemon::submitTask, so live and
    // simulated runs produce the same per-task span chain.
    trace.push({msg.taskId, obs::TaskPhase::kStart, sim_.now(), 0.0, 0, name(), ""});
  }
}

void NetServerDaemon::sendLoadReport() {
  reportTimer_ = {};
  if (machine_.up()) {
    wire::LoadReportMsg report;
    report.serverName = name();
    report.loadAverage = machine_.loadAverage();
    report.sampleTime = sim_.now();
    report.residentMB = machine_.residentMB();
    send(wire::MessageType::kLoadReport, wire::encode(report));
  }
  scheduleReportTimer();
}

void NetServerDaemon::sendHeartbeat() {
  heartbeatTimer_ = {};
  wire::HeartbeatMsg beat;
  beat.serverName = name();
  beat.sampleTime = sim_.now();
  send(wire::MessageType::kHeartbeat, wire::encode(beat));
  scheduleHeartbeatTimer();
}

void NetServerDaemon::scheduleReportTimer() {
  if (leaving_) return;
  reportTimer_ = sim_.scheduleAfter(config_.reportPeriod, [this] { sendLoadReport(); });
}

void NetServerDaemon::scheduleHeartbeatTimer() {
  if (left_) return;
  heartbeatTimer_ =
      sim_.scheduleAfter(config_.heartbeatPeriod, [this] { sendHeartbeat(); });
}

void NetServerDaemon::sendTaskFailed(std::uint64_t taskId, const std::string& reason) {
  wire::TaskFailedMsg failed;
  failed.taskId = taskId;
  failed.serverName = name();
  failed.reason = reason;
  send(wire::MessageType::kTaskFailed, wire::encode(failed));
}

void NetServerDaemon::send(wire::MessageType type, const wire::Bytes& payload) {
  if (transport_ == nullptr || transport_->closed()) return;
  // Deferred to the end of the current runOnce cycle; flushQueued() there
  // coalesces consecutive same-type runs into one frame.
  transport_->queue(type, payload);
}

void NetServerDaemon::leave() {
  if (leaving_ || left_) return;
  leaving_ = true;
  wire::ServerDownMsg down;
  down.serverName = name();
  send(wire::MessageType::kServerDown, wire::encode(down));
  // Load reports stop (the server takes no new work), but heartbeats keep
  // flowing until the drain finishes and the link closes - a long drain must
  // not trip the agent's missed-report deadline while completions are still
  // coming. Once closed, the silence retires the row, the live equivalent of
  // the simulator's deregisterServer.
  if (reportTimer_.valid()) {
    sim_.cancel(reportTimer_);
    reportTimer_ = {};
  }
}

bool NetServerDaemon::crash(double downtime) {
  return machine_.forceCollapse(downtime);
}

}  // namespace casched::net
