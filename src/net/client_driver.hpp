#pragma once
/// \file client_driver.hpp
/// The live client: replays a metatask against one or more running agent
/// daemons, one kScheduleRequest per task at its (wall-paced) arrival date,
/// and collects the terminal notices the agents relay back. This is the
/// paper's "submission of a metatask composed of independent tasks to the
/// agent", driven over real sockets - scenario specs compile to metatasks, so
/// any registry scenario can be replayed against a live deployment.
///
/// Multi-agent deployments: with several `agentPorts` the driver keeps one
/// connection per agent. In replicated mode every task goes to the first
/// live agent; with `roundRobin` (partitioned mode) tasks spread across the
/// live agents. When a connection dies the driver re-dials it and re-submits
/// every non-terminal task it had sent there to another live agent - under a
/// fresh wire id, so the re-submission can never collide with an orphaned
/// copy still running somewhere (the agent side rejects id reuse, and the
/// HTM trace must not see two tasks with one id).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metrics/record.hpp"
#include "net/clock.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"
#include "workload/metatask.hpp"

namespace casched::net {

struct ClientConfig {
  std::string agentHost = "127.0.0.1";
  std::uint16_t agentPort = 0;
  /// Multi-agent deployment: one connection per entry; overrides agentPort
  /// when non-empty. Order matters - the first live entry is "primary".
  std::vector<std::uint16_t> agentPorts;
  /// Distribute tasks round-robin over live agents (partitioned mode)
  /// instead of sending everything to the first live one (replicated mode).
  bool roundRobin = false;
  /// Simulated seconds between re-dial attempts of a dead connection.
  double redialPeriod = 5.0;
  /// Simulated seconds before a denied task is retried on another agent
  /// (backoff - an immediate resend would spin deny/resend at wire speed).
  double denyRetryDelay = 1.0;
  /// Simulated seconds after a task's first deny before the client stops
  /// retrying and fails the task. Sized to outlast a registry migration
  /// (agents deny while a crashed peer's servers re-register with them);
  /// when no agent ever has servers, this bounds the run instead of the
  /// wall timeout.
  double denyGraceSeconds = 120.0;

  // --- dynamic resolver (protocol v4, opt-in) ---
  /// Probe every live agent each `probePeriod`, learn agents it was never
  /// configured with from gossip (kResolverInfo peerAddresses), and send each
  /// task to the best-ranked live agent - rank = RTT + loadWeight * advertised
  /// mean load - instead of the static round-robin / sticky-primary policy.
  bool resolver = false;
  /// Simulated seconds between probe rounds.
  double probePeriod = 5.0;
  /// Weight of the advertised mean load against the probe RTT (in simulated
  /// seconds) when ranking endpoints.
  double loadWeight = 1.0;
};

/// What the client learned about one task from the agents' relays.
struct ClientOutcome {
  bool completed = false;
  std::string server;
  double completionTime = -1.0;
};

class ClientDriver {
 public:
  ClientDriver(ClientConfig config, PacedClock clock);

  ClientDriver(const ClientDriver&) = delete;
  ClientDriver& operator=(const ClientDriver&) = delete;

  /// Dials every configured agent; throws util::IoError when none is
  /// reachable (unreachable ones are retried during the run).
  void connect();

  /// Begins replaying `metatask` (tasks must be sorted by arrival).
  void start(const workload::Metatask& metatask);

  /// One event-loop turn: re-dial dead links, send every arrival now due,
  /// re-submit failed-over tasks, drain terminal notices. Non-blocking.
  void runOnce();

  /// Blocking replay for the CLI process: pumps until every task is
  /// terminal, `stop` becomes true, or `wallTimeoutSeconds` elapses.
  /// Returns true when all tasks finished.
  bool run(const workload::Metatask& metatask, double wallTimeoutSeconds,
           const std::atomic<bool>& stop);

  bool done() const { return started_ && terminal_.size() == total_; }
  std::size_t submitted() const { return nextToSend_; }
  std::size_t completedCount() const { return completed_; }
  std::size_t failedCount() const { return terminal_.size() - completed_; }
  /// Keyed by the task's metatask index (failover re-submissions fold back).
  const std::map<std::uint64_t, ClientOutcome>& outcomes() const { return terminal_; }
  /// Tasks re-submitted to another agent after their connection died.
  std::uint64_t failoverResubmissions() const { return failovers_; }
  /// kScheduleDeny notices received (agent had no servers / no mesh rescue).
  std::uint64_t scheduleDenies() const { return denies_; }
  std::size_t liveAgentCount() const;

  /// What the dynamic resolver has done so far (all zero when disabled).
  struct ResolverStats {
    std::uint64_t probes = 0;   ///< kResolverProbe frames sent
    std::uint64_t infos = 0;    ///< kResolverInfo replies digested
    std::uint64_t reranks = 0;  ///< times the best-ranked agent changed
    std::uint64_t learnedPeers = 0;  ///< links added from gossip addresses
  };
  const ResolverStats& resolverStats() const { return resolverStats_; }
  /// Index into the configured+learned link list of the currently best-ranked
  /// live agent, or the link count when no probe reply has arrived yet.
  std::size_t bestRankedLink() const;

 private:
  struct AgentLink {
    std::uint16_t port = 0;
    std::shared_ptr<wire::TcpTransport> transport;
    double nextRedialAt = 0.0;
    // --- resolver state (latest probe reply) ---
    double rttSeconds = 0.0;
    double meanLoad = 0.0;
    std::uint32_t liveServers = 0;
    std::uint64_t infosReceived = 0;
  };

  void handleFrame(const wire::Frame& frame);
  void maybeProbe(double now);
  void onResolverInfo(const wire::ResolverInfoMsg& msg);
  bool dialLink(AgentLink& link);
  /// Sends metatask position `pos` under `wireId` on some live link; false
  /// when no link is live.
  bool sendTask(std::size_t pos, std::uint64_t wireId);

  ClientConfig config_;
  PacedClock clock_;
  std::vector<AgentLink> links_;
  workload::Metatask metatask_;
  bool started_ = false;
  std::size_t total_ = 0;
  std::size_t nextToSend_ = 0;  ///< doubles as the submitted count
  std::size_t completed_ = 0;
  std::size_t rrNext_ = 0;      ///< round-robin cursor over live links
  std::size_t primary_ = 0;     ///< sticky primary cursor (replicated mode)
  std::uint64_t failovers_ = 0;
  /// Fresh ids for failover re-submissions, far above any metatask index.
  std::uint64_t nextFailoverId_ = 1ull << 32;
  /// wire id -> metatask position, for every submission ever sent.
  std::map<std::uint64_t, std::size_t> wireToPos_;
  /// wire id -> index into links_, for submissions not yet terminal.
  std::map<std::uint64_t, std::size_t> inFlightLink_;
  /// Metatask positions whose submission died with its link; re-sent (under
  /// a fresh wire id) as soon as a live link exists.
  std::vector<std::size_t> resend_;
  std::map<std::uint64_t, ClientOutcome> terminal_;  ///< by metatask index
  std::uint64_t denies_ = 0;
  /// Metatask index -> sim time of the task's first deny: the retry budget
  /// anchor for denyGraceSeconds.
  std::map<std::uint64_t, double> denyFirstAt_;
  /// Denied tasks waiting out the retry backoff: {position, earliest resend}.
  std::vector<std::pair<std::size_t, double>> deniedRetry_;

  // --- resolver state ---
  ResolverStats resolverStats_;
  double nextProbeAt_ = 0.0;
  std::uint64_t nextProbeId_ = 1;
  /// probe id -> link index for the round in flight (cleared each round).
  std::map<std::uint64_t, std::size_t> probeLinks_;
  static constexpr std::size_t kNoBest = static_cast<std::size_t>(-1);
  std::size_t lastBest_ = kNoBest;  ///< rerank detection cursor
};

}  // namespace casched::net
