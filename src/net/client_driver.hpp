#pragma once
/// \file client_driver.hpp
/// The live client: replays a metatask against a running agent daemon, one
/// kScheduleRequest per task at its (wall-paced) arrival date, and collects
/// the terminal notices the agent relays back. This is the paper's
/// "submission of a metatask composed of independent tasks to the agent",
/// driven over real sockets - scenario specs compile to metatasks, so any
/// registry scenario can be replayed against a live deployment.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "metrics/record.hpp"
#include "net/clock.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"
#include "workload/metatask.hpp"

namespace casched::net {

struct ClientConfig {
  std::string agentHost = "127.0.0.1";
  std::uint16_t agentPort = 0;
};

/// What the client learned about one task from the agent's relay.
struct ClientOutcome {
  bool completed = false;
  std::string server;
  double completionTime = -1.0;
};

class ClientDriver {
 public:
  ClientDriver(ClientConfig config, PacedClock clock);

  ClientDriver(const ClientDriver&) = delete;
  ClientDriver& operator=(const ClientDriver&) = delete;

  /// Dials the agent; throws util::IoError when unreachable.
  void connect();

  /// Begins replaying `metatask` (tasks must be sorted by arrival).
  void start(const workload::Metatask& metatask);

  /// One event-loop turn: send every arrival now due, drain terminal
  /// notices. Non-blocking.
  void runOnce();

  /// Blocking replay for the CLI process: pumps until every task is
  /// terminal, `stop` becomes true, or `wallTimeoutSeconds` elapses.
  /// Returns true when all tasks finished.
  bool run(const workload::Metatask& metatask, double wallTimeoutSeconds,
           const std::atomic<bool>& stop);

  bool done() const { return started_ && terminal_.size() == total_; }
  std::size_t submitted() const { return nextToSend_; }
  std::size_t completedCount() const { return completed_; }
  std::size_t failedCount() const { return terminal_.size() - completed_; }
  const std::map<std::uint64_t, ClientOutcome>& outcomes() const { return terminal_; }

 private:
  void handleFrame(const wire::Frame& frame);

  ClientConfig config_;
  PacedClock clock_;
  std::shared_ptr<wire::TcpTransport> transport_;
  workload::Metatask metatask_;
  bool started_ = false;
  std::size_t total_ = 0;
  std::size_t nextToSend_ = 0;  ///< doubles as the submitted count
  std::size_t completed_ = 0;
  std::map<std::uint64_t, ClientOutcome> terminal_;
};

}  // namespace casched::net
