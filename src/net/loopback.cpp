#include "net/loopback.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "net/agent_daemon.hpp"
#include "net/client_driver.hpp"
#include "net/server_daemon.hpp"
#include "scenario/generate.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace casched::net {

namespace {

NetServerConfig serverConfig(const psched::MachineSpec& spec, double speedIndex,
                             std::uint16_t agentPort, const cas::SystemConfig& system,
                             double heartbeatPeriod) {
  NetServerConfig config;
  config.agentPort = agentPort;
  config.machine = spec;
  config.speedIndex = speedIndex;
  config.reportPeriod = system.reportPeriod;
  config.heartbeatPeriod = heartbeatPeriod;
  return config;
}

}  // namespace

std::uint64_t countResubmissions(const std::vector<metrics::TaskOutcome>& outcomes) {
  std::uint64_t n = 0;
  for (const metrics::TaskOutcome& o : outcomes) {
    if (o.attempts > 1) n += static_cast<std::uint64_t>(o.attempts - 1);
  }
  return n;
}

LiveRunReport runLoopbackScenario(const scenario::ScenarioSpec& spec,
                                  const LiveRunOptions& options) {
  const scenario::CompiledScenario compiled =
      scenario::compileScenario(spec, options.seed);

  // Derived deadline: generous against the report period AND against pump
  // stalls. The daemons here share one cooperative thread, so the deadline
  // must exceed any plausible OS scheduling hiccup in *wall* terms (10 s) or
  // a loaded CI runner would spuriously retire healthy servers mid-run and
  // the resulting resubmissions would break exact-count agreement with the
  // simulator. Pass an explicit heartbeatTimeout to test retirement itself.
  const double heartbeatTimeout =
      options.heartbeatTimeout > 0.0
          ? options.heartbeatTimeout
          : std::max(3.0 * compiled.system.reportPeriod, 10.0 * options.timeScale);

  // One shared epoch keeps every daemon's simulation clock aligned.
  const PacedClock clock(options.timeScale);

  AgentDaemonConfig agentConfig;
  agentConfig.port = 0;
  agentConfig.heuristic = options.heuristic;
  agentConfig.controlLatency = compiled.testbed.controlLatency;
  agentConfig.faultTolerance = compiled.system.faultTolerance;
  agentConfig.maxRetries = compiled.system.maxRetries;
  agentConfig.htmSync = compiled.system.htmSync;
  agentConfig.heartbeatTimeout = heartbeatTimeout;
  agentConfig.schedulerSeed = compiled.system.schedulerSeed;
  agentConfig.costs = compiled.testbed.costs;
  AgentDaemon agent(agentConfig, clock);

  std::vector<std::unique_ptr<NetServerDaemon>> servers;
  const auto startServer = [&](const psched::MachineSpec& machineSpec,
                               double speedIndex) {
    auto daemon = std::make_unique<NetServerDaemon>(
        serverConfig(machineSpec, speedIndex, agent.port(), compiled.system,
                     options.heartbeatPeriod),
        clock);
    daemon->connect();
    servers.push_back(std::move(daemon));
  };
  for (const psched::MachineSpec& machineSpec : compiled.testbed.servers) {
    startServer(machineSpec, compiled.testbed.costs.speedIndex(machineSpec.name));
  }

  LiveRunReport report;
  report.scenario = compiled.name;
  report.heuristic = options.heuristic;
  report.timeScale = options.timeScale;
  report.tasks = compiled.metatask.size();

  const auto stopRequested = [&] {
    return options.stopFlag != nullptr &&
           options.stopFlag->load(std::memory_order_relaxed);
  };

  // Wait for every initial registration before the first arrival fires.
  const WallDeadline registrationDeadline(5.0);
  while (agent.liveServerCount() < servers.size() && !stopRequested()) {
    if (registrationDeadline.passed()) {
      throw util::IoError("loopback run: initial server registration timed out");
    }
    agent.runOnce();
    for (auto& s : servers) s->runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  ClientConfig clientConfig;
  clientConfig.agentPort = agent.port();
  ClientDriver client(clientConfig, clock);
  client.connect();
  client.start(compiled.metatask);

  // Churn timeline, applied live at its (wall-paced) scenario times.
  std::vector<cas::ChurnEvent> churn = compiled.churn;
  std::stable_sort(churn.begin(), churn.end(),
                   [](const cas::ChurnEvent& a, const cas::ChurnEvent& b) {
                     return a.time < b.time;
                   });
  std::size_t nextChurn = 0;
  const auto daemonByName = [&](const std::string& name) -> NetServerDaemon* {
    for (auto& s : servers) {
      if (s->name() == name) return s.get();
    }
    return nullptr;
  };
  const auto applyChurn = [&](const cas::ChurnEvent& event) {
    LOG_INFO("live churn: " << cas::churnActionName(event.action) << " "
                            << event.server << " at sim t=" << clock.simNow());
    switch (event.action) {
      case cas::ChurnAction::kJoin:
        startServer(event.joinSpec, event.speedIndex);
        ++report.churnApplied.joins;
        return;
      case cas::ChurnAction::kLeave:
        if (NetServerDaemon* d = daemonByName(event.server)) {
          d->leave();
          ++report.churnApplied.leaves;
        }
        return;
      case cas::ChurnAction::kCrash:
        if (NetServerDaemon* d = daemonByName(event.server)) {
          if (d->crash()) ++report.churnApplied.crashes;
        }
        return;
      case cas::ChurnAction::kSlowdown:
        if (NetServerDaemon* d = daemonByName(event.server)) {
          d->setSpeedFactor(event.factor);
          ++report.churnApplied.slowdowns;
        }
        return;
    }
  };

  const WallDeadline deadline(options.wallTimeoutSeconds);
  while (!client.done() && !stopRequested()) {
    if (deadline.passed()) {
      report.timedOut = true;
      break;
    }
    while (nextChurn < churn.size() && churn[nextChurn].time <= clock.simNow()) {
      applyChurn(churn[nextChurn]);
      ++nextChurn;
    }
    agent.runOnce();
    for (auto& s : servers) s->runOnce();
    client.runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  report.outcomes = agent.agent().collectOutcomes();
  for (const metrics::TaskOutcome& o : report.outcomes) {
    if (o.status == metrics::TaskStatus::kCompleted) ++report.completed;
    else ++report.lost;
  }
  report.resubmissions = countResubmissions(report.outcomes);
  report.serversStarted = servers.size();
  report.serversRetired = agent.retiredServerCount();
  report.wallSeconds = clock.wallElapsed();
  report.simEndTime = agent.simulator().now();
  return report;
}

LiveRunReport runLoopbackScenario(const std::string& registryName,
                                  const LiveRunOptions& options) {
  return runLoopbackScenario(scenario::findScenario(registryName), options);
}

std::string liveRunJson(const LiveRunReport& report) {
  util::JsonWriter json;
  json.beginObject();
  json.key("scenario").value(report.scenario);
  json.key("heuristic").value(report.heuristic);
  json.key("time_scale").value(report.timeScale);
  json.key("tasks").value(report.tasks);
  json.key("completed").value(report.completed);
  json.key("lost").value(report.lost);
  json.key("resubmissions").value(report.resubmissions);
  json.key("churn_applied");
  json.beginObject();
  json.key("joins").value(report.churnApplied.joins);
  json.key("leaves").value(report.churnApplied.leaves);
  json.key("crashes").value(report.churnApplied.crashes);
  json.key("slowdowns").value(report.churnApplied.slowdowns);
  json.endObject();
  json.key("servers_started").value(report.serversStarted);
  json.key("servers_retired").value(report.serversRetired);
  json.key("wall_seconds").value(report.wallSeconds);
  json.key("sim_end_time").value(report.simEndTime);
  json.key("timed_out").value(report.timedOut);
  json.endObject();
  return json.str();
}

}  // namespace casched::net
