#include "net/loopback.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "mesh/router.hpp"
#include "net/agent_daemon.hpp"
#include "net/client_driver.hpp"
#include "net/server_daemon.hpp"
#include "scenario/generate.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace casched::net {

namespace {

NetServerConfig serverConfig(const psched::MachineSpec& spec, double speedIndex,
                             std::vector<std::uint16_t> agentPorts,
                             const cas::SystemConfig& system, double heartbeatPeriod) {
  NetServerConfig config;
  config.agentPorts = std::move(agentPorts);
  config.agentPort = config.agentPorts.front();
  config.machine = spec;
  config.speedIndex = speedIndex;
  config.reportPeriod = system.reportPeriod;
  config.heartbeatPeriod = heartbeatPeriod;
  return config;
}

/// Derived missed-report deadline: generous against the report period AND
/// against pump stalls. The daemons here share one cooperative thread, so the
/// deadline must exceed any plausible OS scheduling hiccup in *wall* terms
/// (10 s) or a loaded CI runner would spuriously retire healthy servers
/// mid-run and the resulting resubmissions would break exact-count agreement
/// with the simulator. Pass an explicit heartbeatTimeout to test retirement.
double deriveHeartbeatTimeout(const scenario::CompiledScenario& compiled,
                              const LiveRunOptions& options) {
  return options.heartbeatTimeout > 0.0
             ? options.heartbeatTimeout
             : std::max(3.0 * compiled.system.reportPeriod, 10.0 * options.timeScale);
}

AgentDaemonConfig baseAgentConfig(const scenario::CompiledScenario& compiled,
                                  const LiveRunOptions& options) {
  AgentDaemonConfig config;
  config.port = 0;
  config.heuristic = options.heuristic;
  config.controlLatency = compiled.testbed.controlLatency;
  config.faultTolerance = compiled.system.faultTolerance;
  config.maxRetries = compiled.system.maxRetries;
  config.htmSync = compiled.system.htmSync;
  config.heartbeatTimeout = deriveHeartbeatTimeout(compiled, options);
  config.schedulerSeed = compiled.system.schedulerSeed;
  config.costs = compiled.testbed.costs;
  return config;
}

/// One agent slot of a multi-agent deployment; survives its daemon's crash
/// and carries what a restart needs (same port, same snapshot file).
struct AgentSlot {
  AgentDaemonConfig config;
  std::unique_ptr<AgentDaemon> daemon;
  std::uint16_t port = 0;
  double restartAt = -1.0;  ///< sim time of a pending restart; < 0 none
  std::vector<metrics::TaskOutcome> pastOutcomes;  ///< from crashed incarnations
  std::uint64_t pastSyncs = 0;
  std::uint64_t pastAdopted = 0;
};

void accumulateShare(AgentShare& share, const std::vector<metrics::TaskOutcome>& outcomes) {
  share.tasks += outcomes.size();
  for (const metrics::TaskOutcome& o : outcomes) {
    if (o.status == metrics::TaskStatus::kCompleted) ++share.completed;
    else ++share.lost;
  }
  share.resubmissions += countResubmissions(outcomes);
}

/// Shared live churn dispatch for both harness shapes (single- and
/// multi-agent): the daemon lookup and the joiner factory differ per shape,
/// the event semantics must not. Folds every event into an FNV digest as it
/// is dispatched (the undispatched tail folded at finish), witnessing that
/// this harness iterated the compiled canonical sequence; an event whose
/// target daemon cannot be found is counted as skipped - the deterministic
/// dropped-event signal the digest alone cannot give (see loopback.hpp).
class LiveChurnDriver {
 public:
  using DaemonByNameFn = std::function<NetServerDaemon*(const std::string&)>;
  using StartServerFn = std::function<void(const psched::MachineSpec&, double)>;

  LiveChurnDriver(std::vector<cas::ChurnEvent> timeline, DaemonByNameFn daemonByName,
                  StartServerFn startServer, LiveRunReport& report)
      : timeline_(std::move(timeline)),
        daemonByName_(std::move(daemonByName)),
        startServer_(std::move(startServer)),
        report_(report) {
    std::stable_sort(timeline_.begin(), timeline_.end(),
                     [](const cas::ChurnEvent& a, const cas::ChurnEvent& b) {
                       return a.time < b.time;
                     });
  }

  /// Dispatches every event due by `simNow` (wall-paced scenario time).
  void pump(double simNow) {
    while (next_ < timeline_.size() && timeline_[next_].time <= simNow) {
      digest_.fold(timeline_[next_]);
      apply(timeline_[next_], simNow);
      ++next_;
    }
  }

  /// Folds in the tail the run never reached (every task already terminal)
  /// and records the digest: it then covers the full canonical sequence,
  /// dispatched events first - equal to the simulator's timeline digest only
  /// when both sides consumed one identical generated stream.
  void finish() {
    for (std::size_t i = next_; i < timeline_.size(); ++i) digest_.fold(timeline_[i]);
    report_.churnDigest = digest_.value();
  }

 private:
  void apply(const cas::ChurnEvent& event, double simNow) {
    LOG_INFO("live churn: " << cas::churnActionName(event.action) << " "
                            << event.server << " at sim t=" << simNow);
    switch (event.action) {
      case cas::ChurnAction::kJoin:
        startServer_(event.joinSpec, event.speedIndex);
        ++report_.churnApplied.joins;
        return;
      case cas::ChurnAction::kLeave:
        if (NetServerDaemon* d = daemonByName_(event.server)) {
          d->leave();
          ++report_.churnApplied.leaves;
        } else {
          ++report_.churnSkipped;
        }
        return;
      case cas::ChurnAction::kCrash:
        if (NetServerDaemon* d = daemonByName_(event.server)) {
          if (d->crash(event.duration)) ++report_.churnApplied.crashes;
        } else {
          ++report_.churnSkipped;
        }
        return;
      case cas::ChurnAction::kSlowdown:
        if (NetServerDaemon* d = daemonByName_(event.server)) {
          d->setSpeedFactor(event.factor, event.duration);
          ++report_.churnApplied.slowdowns;
        } else {
          ++report_.churnSkipped;
        }
        return;
      case cas::ChurnAction::kLink:
        if (NetServerDaemon* d = daemonByName_(event.server)) {
          d->setLinkFactor(event.factor, event.duration);
          ++report_.churnApplied.links;
        } else {
          ++report_.churnSkipped;
        }
        return;
    }
  }

  std::vector<cas::ChurnEvent> timeline_;
  std::size_t next_ = 0;
  DaemonByNameFn daemonByName_;
  StartServerFn startServer_;
  LiveRunReport& report_;
  scenario::ChurnDigest digest_;
};

LiveRunReport runMultiAgent(const scenario::CompiledScenario& compiled,
                            const LiveRunOptions& options) {
  const scenario::AgentsSpec& spec = compiled.agents;
  const PacedClock clock(options.timeScale);

  // Snapshot files live in a per-run directory; a caller-provided one is
  // kept (operators may want the snapshots), the default temp one is removed.
  namespace fs = std::filesystem;
  const bool ownSnapshotDir = options.snapshotDir.empty();
  fs::path snapshotDir = options.snapshotDir.empty()
                             ? fs::temp_directory_path() /
                                   util::strformat("casched-run-%d-%p", ::getpid(),
                                                   static_cast<const void*>(&clock))
                             : fs::path(options.snapshotDir);
  fs::create_directories(snapshotDir);

  std::vector<AgentSlot> slots(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    AgentSlot& slot = slots[i];
    slot.config = baseAgentConfig(compiled, options);
    slot.config.agentName = util::strformat("agent-%zu", i);
    slot.config.mode = parseAgentMode(spec.mode);
    slot.config.syncPeriod = spec.syncPeriod;
    slot.config.snapshotPath =
        (snapshotDir / (slot.config.agentName + ".htmsnap")).string();
    if (compiled.mesh.enabled) {
      slot.config.meshEnabled = true;
      slot.config.meshRouter = mesh::routerConfigFrom(compiled.mesh);
      slot.config.meshStealPeriod = compiled.mesh.stealPeriod;
      slot.config.meshStealBatch = compiled.mesh.stealBatch;
    }
    slot.daemon = std::make_unique<AgentDaemon>(slot.config, clock);
    slot.port = slot.daemon->port();
    slot.config.port = slot.port;  // a restart rebinds the same port
  }
  // Peer mesh: the lower-index agent dials (and re-dials) the higher one, so
  // exactly one link exists per pair whoever crashed last. Recorded in the
  // config too so restarted incarnations resume dialing.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 1; j < slots.size(); ++j) {
      const std::string address = util::strformat("127.0.0.1:%u", slots[j].port);
      slots[i].config.peers.push_back(address);
      slots[i].daemon->addPeer(address);
    }
  }

  const bool partitioned = parseAgentMode(spec.mode) == AgentMode::kPartitioned;
  // Mesh deployments home each server on its rack's owner (the simulator uses
  // the same assignment); otherwise partitioned mode round-robins by index.
  std::vector<std::size_t> rackOwner;
  if (compiled.mesh.enabled) {
    rackOwner.assign(compiled.testbed.servers.size(), 0);
    for (const scenario::RackSpec& rack : compiled.mesh.racks) {
      for (const std::size_t s : rack.servers) rackOwner[s] = rack.agentIndex;
    }
  }
  const auto portsFor = [&](std::size_t serverIdx) {
    std::vector<std::uint16_t> ports;
    const std::size_t home = serverIdx < rackOwner.size()
                                 ? rackOwner[serverIdx]
                                 : (partitioned ? serverIdx % slots.size() : 0);
    for (std::size_t k = 0; k < slots.size(); ++k) {
      ports.push_back(slots[(home + k) % slots.size()].port);
    }
    return ports;
  };

  std::vector<std::unique_ptr<NetServerDaemon>> servers;
  std::size_t serverCounter = 0;
  const auto startServer = [&](const psched::MachineSpec& machineSpec,
                               double speedIndex) {
    auto daemon = std::make_unique<NetServerDaemon>(
        serverConfig(machineSpec, speedIndex, portsFor(serverCounter++),
                     compiled.system, options.heartbeatPeriod),
        clock);
    daemon->connect();
    servers.push_back(std::move(daemon));
  };
  for (const psched::MachineSpec& machineSpec : compiled.testbed.servers) {
    startServer(machineSpec, compiled.testbed.costs.speedIndex(machineSpec.name));
  }

  LiveRunReport report;
  report.scenario = compiled.name;
  report.heuristic = options.heuristic;
  report.timeScale = options.timeScale;
  report.tasks = compiled.metatask.size();
  report.agentsDeployed = spec.count;
  report.agentMode = spec.mode;

  const auto stopRequested = [&] {
    return options.stopFlag != nullptr &&
           options.stopFlag->load(std::memory_order_relaxed);
  };
  const auto liveServers = [&] {
    std::size_t n = 0;
    for (const AgentSlot& slot : slots) {
      if (slot.daemon) n += slot.daemon->liveServerCount();
    }
    return n;
  };
  const auto pumpAll = [&](ClientDriver* client) {
    for (AgentSlot& slot : slots) {
      if (slot.daemon) slot.daemon->runOnce();
    }
    for (auto& s : servers) s->runOnce();
    if (client != nullptr) client->runOnce();
  };

  // Wait for every initial registration before the first arrival fires.
  const WallDeadline registrationDeadline(5.0);
  while (liveServers() < servers.size() && !stopRequested()) {
    if (registrationDeadline.passed()) {
      throw util::IoError("loopback run: initial server registration timed out");
    }
    pumpAll(nullptr);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  ClientConfig clientConfig;
  if (compiled.mesh.enabled && compiled.mesh.topology == "tree") {
    // Hierarchical topology: the client talks to the root only; the root
    // owns no rack and routes (forward or steal) into the leaves.
    clientConfig.agentPorts.push_back(slots[compiled.mesh.root].port);
  } else {
    for (const AgentSlot& slot : slots) clientConfig.agentPorts.push_back(slot.port);
  }
  clientConfig.roundRobin = partitioned;
  ClientDriver client(clientConfig, clock);
  client.connect();
  client.start(compiled.metatask);

  // Server churn timeline, applied live at its (wall-paced) scenario times.
  LiveChurnDriver churnDriver(
      compiled.churn,
      [&](const std::string& name) -> NetServerDaemon* {
        for (auto& s : servers) {
          if (s->name() == name) return s.get();
        }
        return nullptr;
      },
      startServer, report);

  // Agent churn timeline (crash + optional restart), time-sorted.
  std::vector<scenario::AgentEventSpec> agentEvents = spec.events;
  std::stable_sort(agentEvents.begin(), agentEvents.end(),
                   [](const scenario::AgentEventSpec& a, const scenario::AgentEventSpec& b) {
                     return a.time < b.time;
                   });
  std::size_t nextAgentEvent = 0;
  const auto crashAgent = [&](const scenario::AgentEventSpec& event) {
    AgentSlot& slot = slots[event.agentIndex];
    if (!slot.daemon) return;  // already down
    LOG_INFO("live churn: crash " << slot.config.agentName << " at sim t="
                                  << clock.simNow());
    const std::vector<metrics::TaskOutcome> outcomes =
        slot.daemon->agent().collectOutcomes();
    slot.pastOutcomes.insert(slot.pastOutcomes.end(), outcomes.begin(), outcomes.end());
    slot.pastSyncs += slot.daemon->syncsReceived();
    slot.pastAdopted += slot.daemon->peerRowsAdopted();
    slot.daemon.reset();  // listener + every transport die with the process
    ++report.agentCrashes;
    if (event.restartAfter >= 0.0) slot.restartAt = event.time + event.restartAfter;
  };
  const auto maybeRestartAgents = [&] {
    for (AgentSlot& slot : slots) {
      if (!slot.daemon && slot.restartAt >= 0.0 && clock.simNow() >= slot.restartAt) {
        slot.restartAt = -1.0;
        slot.daemon = std::make_unique<AgentDaemon>(slot.config, clock);
        ++report.agentRestarts;
        report.warmStartRows += slot.daemon->warmStartedRows();
        LOG_INFO("live churn: restarted " << slot.config.agentName << " (warm rows: "
                                          << slot.daemon->warmStartedRows() << ")");
      }
    }
  };

  const WallDeadline deadline(options.wallTimeoutSeconds);
  while (!client.done() && !stopRequested()) {
    if (deadline.passed()) {
      report.timedOut = true;
      break;
    }
    churnDriver.pump(clock.simNow());
    while (nextAgentEvent < agentEvents.size() &&
           agentEvents[nextAgentEvent].time <= clock.simNow()) {
      crashAgent(agentEvents[nextAgentEvent]);
      ++nextAgentEvent;
    }
    maybeRestartAgents();
    pumpAll(&client);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  churnDriver.finish();

  // The client is the authority on terminal counts here: after a fail-over
  // no single agent saw every task.
  report.completed = client.completedCount();
  report.lost = report.tasks - std::min(report.tasks, report.completed);
  report.clientFailovers = client.failoverResubmissions();
  report.clientDenies = client.scheduleDenies();

  for (AgentSlot& slot : slots) {
    AgentShare share;
    share.name = slot.config.agentName;
    accumulateShare(share, slot.pastOutcomes);
    report.outcomes.insert(report.outcomes.end(), slot.pastOutcomes.begin(),
                           slot.pastOutcomes.end());
    report.peerSyncs += slot.pastSyncs;
    report.peerRowsAdopted += slot.pastAdopted;
    if (slot.daemon) {
      const std::vector<metrics::TaskOutcome> outcomes =
          slot.daemon->agent().collectOutcomes();
      accumulateShare(share, outcomes);
      report.outcomes.insert(report.outcomes.end(), outcomes.begin(), outcomes.end());
      report.peerSyncs += slot.daemon->syncsReceived();
      report.peerRowsAdopted += slot.daemon->peerRowsAdopted();
      report.serversRetired += slot.daemon->retiredServerCount();
      report.meshForwards += slot.daemon->meshForwards();
      report.meshDenies += slot.daemon->meshDenies();
      report.meshSteals += slot.daemon->meshSteals();
      report.meshParked += slot.daemon->meshParked();
    }
    report.resubmissions += share.resubmissions;
    report.perAgent.push_back(std::move(share));
  }
  report.serversStarted = servers.size();
  report.wallSeconds = clock.wallElapsed();
  for (const AgentSlot& slot : slots) {
    if (slot.daemon) {
      report.simEndTime = slot.daemon->simulator().now();
      break;
    }
  }

  if (ownSnapshotDir) {
    std::error_code ec;
    fs::remove_all(snapshotDir, ec);  // best effort; temp dir anyway
  }
  return report;
}

LiveRunReport runSingleAgent(const scenario::CompiledScenario& compiled,
                             const LiveRunOptions& options) {
  // One shared epoch keeps every daemon's simulation clock aligned.
  const PacedClock clock(options.timeScale);

  AgentDaemonConfig agentConfig = baseAgentConfig(compiled, options);
  AgentDaemon agent(agentConfig, clock);

  std::vector<std::unique_ptr<NetServerDaemon>> servers;
  const auto startServer = [&](const psched::MachineSpec& machineSpec,
                               double speedIndex) {
    auto daemon = std::make_unique<NetServerDaemon>(
        serverConfig(machineSpec, speedIndex, {agent.port()}, compiled.system,
                     options.heartbeatPeriod),
        clock);
    daemon->connect();
    servers.push_back(std::move(daemon));
  };
  for (const psched::MachineSpec& machineSpec : compiled.testbed.servers) {
    startServer(machineSpec, compiled.testbed.costs.speedIndex(machineSpec.name));
  }

  LiveRunReport report;
  report.scenario = compiled.name;
  report.heuristic = options.heuristic;
  report.timeScale = options.timeScale;
  report.tasks = compiled.metatask.size();

  const auto stopRequested = [&] {
    return options.stopFlag != nullptr &&
           options.stopFlag->load(std::memory_order_relaxed);
  };

  // Wait for every initial registration before the first arrival fires.
  const WallDeadline registrationDeadline(5.0);
  while (agent.liveServerCount() < servers.size() && !stopRequested()) {
    if (registrationDeadline.passed()) {
      throw util::IoError("loopback run: initial server registration timed out");
    }
    agent.runOnce();
    for (auto& s : servers) s->runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  ClientConfig clientConfig;
  clientConfig.agentPort = agent.port();
  ClientDriver client(clientConfig, clock);
  client.connect();
  client.start(compiled.metatask);

  // Churn timeline, applied live at its (wall-paced) scenario times.
  LiveChurnDriver churnDriver(
      compiled.churn,
      [&](const std::string& name) -> NetServerDaemon* {
        for (auto& s : servers) {
          if (s->name() == name) return s.get();
        }
        return nullptr;
      },
      startServer, report);

  const WallDeadline deadline(options.wallTimeoutSeconds);
  while (!client.done() && !stopRequested()) {
    if (deadline.passed()) {
      report.timedOut = true;
      break;
    }
    churnDriver.pump(clock.simNow());
    agent.runOnce();
    for (auto& s : servers) s->runOnce();
    client.runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  churnDriver.finish();

  report.outcomes = agent.agent().collectOutcomes();
  for (const metrics::TaskOutcome& o : report.outcomes) {
    if (o.status == metrics::TaskStatus::kCompleted) ++report.completed;
    else ++report.lost;
  }
  report.resubmissions = countResubmissions(report.outcomes);
  report.serversStarted = servers.size();
  report.serversRetired = agent.retiredServerCount();
  report.wallSeconds = clock.wallElapsed();
  report.simEndTime = agent.simulator().now();
  AgentShare share;
  share.name = agent.agentName();
  accumulateShare(share, report.outcomes);
  report.perAgent.push_back(std::move(share));
  return report;
}

}  // namespace

std::uint64_t countResubmissions(const std::vector<metrics::TaskOutcome>& outcomes) {
  std::uint64_t n = 0;
  for (const metrics::TaskOutcome& o : outcomes) {
    if (o.attempts > 1) n += static_cast<std::uint64_t>(o.attempts - 1);
  }
  return n;
}

LiveRunReport runLoopbackScenario(const scenario::ScenarioSpec& spec,
                                  const LiveRunOptions& options) {
  const scenario::CompiledScenario compiled =
      scenario::compileScenario(spec, options.seed);
  LiveRunReport report = compiled.agents.count > 1 ? runMultiAgent(compiled, options)
                                                   : runSingleAgent(compiled, options);
  report.generatedChurn = compiled.generatedChurn;
  report.churnPlanned =
      scenario::summarizeChurnTimeline(compiled.churn, compiled.faultDomains);
  return report;
}

LiveRunReport runLoopbackScenario(const std::string& registryName,
                                  const LiveRunOptions& options) {
  return runLoopbackScenario(scenario::findScenario(registryName), options);
}

std::string liveRunJson(const LiveRunReport& report) {
  util::JsonWriter json;
  json.beginObject();
  json.key("scenario").value(report.scenario);
  json.key("heuristic").value(report.heuristic);
  json.key("time_scale").value(report.timeScale);
  json.key("tasks").value(report.tasks);
  json.key("completed").value(report.completed);
  json.key("lost").value(report.lost);
  json.key("resubmissions").value(report.resubmissions);
  json.key("churn_applied");
  json.beginObject();
  json.key("joins").value(report.churnApplied.joins);
  json.key("leaves").value(report.churnApplied.leaves);
  json.key("crashes").value(report.churnApplied.crashes);
  json.key("slowdowns").value(report.churnApplied.slowdowns);
  json.key("links").value(report.churnApplied.links);
  json.endObject();
  json.key("generated_churn").value(report.generatedChurn);
  json.key("churn_skipped").value(report.churnSkipped);
  json.key("churn_digest").value(report.churnDigest);
  json.key("churn_planned");
  json.beginObject();
  json.key("crashes").value(report.churnPlanned.crashes);
  json.key("slowdowns").value(report.churnPlanned.slowdowns);
  json.key("links").value(report.churnPlanned.linkEvents);
  json.key("mean_downtime").value(report.churnPlanned.meanDowntime);
  json.key("max_concurrent_down").value(report.churnPlanned.maxConcurrentDown);
  json.key("max_dead_domains").value(report.churnPlanned.maxConcurrentDeadDomains);
  json.endObject();
  json.key("servers_started").value(report.serversStarted);
  json.key("servers_retired").value(report.serversRetired);
  json.key("agents");
  json.beginObject();
  json.key("deployed").value(report.agentsDeployed);
  json.key("mode").value(report.agentMode);
  json.key("crashes").value(report.agentCrashes);
  json.key("restarts").value(report.agentRestarts);
  json.key("warm_start_rows").value(report.warmStartRows);
  json.key("peer_syncs").value(report.peerSyncs);
  json.key("peer_rows_adopted").value(report.peerRowsAdopted);
  json.key("client_failovers").value(report.clientFailovers);
  json.key("per_agent");
  json.beginArray();
  for (const AgentShare& share : report.perAgent) {
    json.beginObject();
    json.key("name").value(share.name);
    json.key("tasks").value(share.tasks);
    json.key("completed").value(share.completed);
    json.key("lost").value(share.lost);
    json.key("resubmissions").value(share.resubmissions);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  json.key("mesh");
  json.beginObject();
  json.key("forwards").value(report.meshForwards);
  json.key("denies").value(report.meshDenies);
  json.key("steals").value(report.meshSteals);
  json.key("parked").value(report.meshParked);
  json.key("client_denies").value(report.clientDenies);
  json.endObject();
  json.key("wall_seconds").value(report.wallSeconds);
  json.key("sim_end_time").value(report.simEndTime);
  json.key("timed_out").value(report.timedOut);
  json.endObject();
  return json.str();
}

}  // namespace casched::net
