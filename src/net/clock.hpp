#pragma once
/// \file clock.hpp
/// Wall-clock pacing for the distributed runtime. Every live daemon owns a
/// discrete-event Simulator (the same engine the reproduction benches use)
/// and, once per event-loop turn, advances it to `scale * wallElapsed`.
/// Sharing one PacedClock (same epoch, same scale) across the daemons of a
/// deployment keeps their simulation clocks aligned, so completion dates and
/// load-report sample times stay comparable across the wire.

#include <chrono>

namespace casched::net {

class PacedClock {
 public:
  using WallClock = std::chrono::steady_clock;

  /// `timeScale` is simulated seconds per wall second (200 runs a 10-minute
  /// scenario in three wall seconds); the epoch defaults to "now".
  explicit PacedClock(double timeScale = 1.0,
                      WallClock::time_point epoch = WallClock::now())
      : scale_(timeScale), epoch_(epoch) {}

  double timeScale() const { return scale_; }
  WallClock::time_point epoch() const { return epoch_; }

  /// Simulated time corresponding to the current wall clock.
  double simNow() const {
    return scale_ * std::chrono::duration<double>(WallClock::now() - epoch_).count();
  }

  /// Wall seconds elapsed since the epoch.
  double wallElapsed() const {
    return std::chrono::duration<double>(WallClock::now() - epoch_).count();
  }

  /// Shifts the epoch so simNow() equals `simTime` right now. Server daemons
  /// call this with the agent's clock from the registration ack, aligning
  /// independently started processes.
  void resyncTo(double simTime) {
    epoch_ = WallClock::now() - std::chrono::duration_cast<WallClock::duration>(
                                    std::chrono::duration<double>(simTime / scale_));
  }

 private:
  double scale_;
  WallClock::time_point epoch_;
};

/// A fixed wall-clock deadline, for registration waits, client timeouts and
/// test pumps.
class WallDeadline {
 public:
  explicit WallDeadline(double seconds)
      : at_(PacedClock::WallClock::now() +
            std::chrono::duration_cast<PacedClock::WallClock::duration>(
                std::chrono::duration<double>(seconds))) {}

  bool passed() const { return PacedClock::WallClock::now() > at_; }

 private:
  PacedClock::WallClock::time_point at_;
};

}  // namespace casched::net
