#pragma once
/// \file server_daemon.hpp
/// The live computational-server process: dials the agent, registers its
/// problems and machine parameters, then serves kTaskSubmit by running the
/// task on its own psched::Machine (the ground-truth execution model, paced
/// by the wall clock) and streams load reports and heartbeats back. Machine
/// collapses and recoveries travel as kServerDown / kServerUp, lost tasks as
/// kTaskFailed - the NetSolve computational server's visible behaviour, now
/// over real sockets.
///
/// Membership churn maps onto protocol actions: leave() announces
/// kServerDown, keeps draining in-flight work (completions still count, as
/// in the simulator's graceful departure), stops heartbeating so the agent's
/// deadline retires the row, and closes once idle; crash() forces a machine
/// collapse whose victims and recovery notice travel over the wire.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/clock.hpp"
#include "psched/machine.hpp"
#include "simcore/engine.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"

namespace casched::net {

struct NetServerConfig {
  std::string agentHost = "127.0.0.1";
  std::uint16_t agentPort = 0;
  /// Multi-agent failover list: when non-empty it overrides agentPort and
  /// re-dial attempts cycle through it, so a server whose agent died (and
  /// stayed dead) registers with the next agent - ownership migrates. The
  /// first entry is the server's home agent.
  std::vector<std::uint16_t> agentPorts;
  psched::MachineSpec machine;
  std::vector<std::string> problems{"*"};
  /// Relative compute speed advertised at registration (agent cost fallback).
  double speedIndex = 1.0;
  /// Load-report period, simulated seconds (NetSolve workload manager).
  double reportPeriod = 30.0;
  /// Heartbeat period, simulated seconds; must undercut the agent's timeout.
  double heartbeatPeriod = 5.0;
  /// After leave(), the link stays open this many idle simulated seconds
  /// before closing, so a submission racing the departure notice is still
  /// executed rather than lost (the simulator's graceful leave loses none).
  double leaveLingerSeconds = 5.0;
  /// When the agent link drops (agent restart, retirement closing the
  /// connection, or a rejected registration while the name is still held),
  /// the daemon re-dials and re-registers every this many simulated seconds
  /// until it succeeds or is told to stop.
  double reconnectPeriod = 10.0;
};

class NetServerDaemon {
 public:
  NetServerDaemon(NetServerConfig config, PacedClock clock);
  ~NetServerDaemon();

  NetServerDaemon(const NetServerDaemon&) = delete;
  NetServerDaemon& operator=(const NetServerDaemon&) = delete;

  /// Dials the agent and sends the registration; throws util::IoError when
  /// the agent is unreachable.
  void connect();

  /// One event-loop turn: advance the paced machine simulation, drain the
  /// agent link, finish a pending graceful departure. Non-blocking.
  void runOnce();

  /// Blocking loop for the CLI process; returns when `stop` becomes true,
  /// the agent sends kShutdown, or the link closes.
  void run(const std::atomic<bool>& stop);

  const std::string& name() const { return machine_.name(); }
  psched::Machine& machine() { return machine_; }
  bool connected() const { return transport_ && !transport_->closed(); }
  bool registered() const { return registered_; }
  std::size_t activeTasks() const { return machine_.activeTasks(); }

  // --- live membership hooks (harness / operator) ---
  /// Graceful departure: kServerDown now, drain in-flight work, close when
  /// idle. Submissions racing the departure notice are still executed (the
  /// simulator's graceful leave drains them too), so no work is lost.
  void leave();
  bool leaving() const { return leaving_; }
  /// True once a leave() finished draining and the link is closed.
  bool left() const { return left_; }
  /// Injected collapse (victims fail over the wire, recovery announces
  /// kServerUp after `downtime` sim seconds; 0 = the machine's own recovery
  /// time). Returns false when the machine is already down.
  bool crash(double downtime = 0.0);
  /// CPU-capacity change (live slowdown churn); a positive `restoreAfter`
  /// self-recovers to full speed that many sim seconds later.
  void setSpeedFactor(double factor, double restoreAfter = 0.0) {
    machine_.setChurnSpeedFactor(factor, restoreAfter);
  }
  /// Link-bandwidth change (live bandwidth churn), same recovery contract.
  void setLinkFactor(double factor, double restoreAfter = 0.0) {
    machine_.setChurnLinkFactor(factor, restoreAfter);
  }

 private:
  void handleFrame(const wire::Frame& frame);
  void onTaskSubmit(const wire::TaskSubmitMsg& msg);
  void dial();
  void maybeReconnect();
  void sendRegistration();
  void sendLoadReport();
  void sendHeartbeat();
  void scheduleReportTimer();
  void scheduleHeartbeatTimer();
  void sendTaskFailed(std::uint64_t taskId, const std::string& reason);
  void send(wire::MessageType type, const wire::Bytes& payload);

  NetServerConfig config_;
  PacedClock clock_;
  simcore::Simulator sim_;
  psched::Machine machine_;
  std::shared_ptr<wire::TcpTransport> transport_;
  simcore::EventHandle reportTimer_{};
  simcore::EventHandle heartbeatTimer_{};
  bool registered_ = false;
  bool leaving_ = false;
  bool left_ = false;
  bool shutdownRequested_ = false;
  bool timersStarted_ = false;
  double leaveIdleSince_ = -1.0;   ///< sim time the post-leave drain emptied
  double nextReconnectAt_ = 0.0;   ///< sim time of the next re-dial attempt
  std::size_t dialIndex_ = 0;      ///< position in the agentPorts failover cycle
};

}  // namespace casched::net
