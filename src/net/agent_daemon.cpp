#include "net/agent_daemon.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/htm_snapshot.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "net.agent"

namespace casched::net {

AgentMode parseAgentMode(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "replicated") return AgentMode::kReplicated;
  if (n == "partitioned") return AgentMode::kPartitioned;
  throw util::ConfigError("unknown agent mode '" + name +
                          "' (want replicated | partitioned)");
}

std::string agentModeName(AgentMode mode) {
  switch (mode) {
    case AgentMode::kReplicated: return "replicated";
    case AgentMode::kPartitioned: return "partitioned";
  }
  return "?";
}

/// TaskDispatch implementation handed to the scheduling core: encodes the
/// submission as a kTaskSubmit frame on the server's current transport.
/// The object lives as long as its ServerEntry, surviving reconnects (the
/// frame always goes out on the entry's *current* transport).
struct AgentDaemon::WireLink final : cas::TaskDispatch {
  WireLink(AgentDaemon* owner, std::string server)
      : owner_(owner), server_(std::move(server)) {}

  void submitTask(std::uint64_t taskId, const psched::ExecRequest& request) override {
    owner_->sendSubmit(server_, taskId, request);
  }

  AgentDaemon* owner_;
  std::string server_;
};

namespace {

cas::AgentConfig toAgentConfig(const AgentDaemonConfig& config) {
  cas::AgentConfig out;
  out.controlLatency = config.controlLatency;
  out.faultTolerance = config.faultTolerance;
  out.maxRetries = config.maxRetries;
  out.noServerRetryDelay = config.noServerRetryDelay;
  out.htmSync = config.htmSync;
  return out;
}

obs::Counter& peerDialsCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_agent_peer_dials_total", "Outbound peer-agent dial attempts");
  return *c;
}

obs::Counter& serversRetiredCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_agent_servers_retired_total",
      "Servers retired after missing the report deadline");
  return *c;
}

}  // namespace

AgentDaemon::AgentDaemon(AgentDaemonConfig config, PacedClock clock)
    : config_(std::move(config)),
      clock_(clock),
      listener_(config_.port),
      agent_(sim_, core::makeScheduler(config_.heuristic, config_.schedulerSeed),
             config_.costs, toAgentConfig(config_)) {
  CASCHED_CHECK(config_.heartbeatTimeout > 0.0, "heartbeat timeout must be positive");
  agent_.setTaskTerminalObserver(
      [this](const metrics::TaskOutcome& outcome) { relayTerminal(outcome); });
  for (const std::string& address : config_.peers) addPeer(address);
  if (config_.metricsPort >= 0) {
    metricsServer_ = std::make_unique<obs::MetricsHttpServer>(
        static_cast<std::uint16_t>(config_.metricsPort));
    LOG_INFO("agent " << config_.agentName << ": metrics endpoint on 127.0.0.1:"
                      << metricsServer_->port());
  }
  if (!config_.snapshotPath.empty()) {
    try {
      if (const auto snap = core::loadHtmSnapshotFile(config_.snapshotPath)) {
        warmStartedRows_ = agent_.warmStartHtm(*snap);
        LOG_INFO("agent " << config_.agentName << ": warm-started " << warmStartedRows_
                          << " HTM rows from " << config_.snapshotPath);
      }
    } catch (const util::Error& e) {
      // A corrupt or unreadable snapshot must not keep the agent down; it
      // simply starts cold.
      LOG_WARN("agent " << config_.agentName
                        << ": ignoring unusable snapshot: " << e.what());
    }
  }
}

AgentDaemon::~AgentDaemon() = default;

void AgentDaemon::runOnce() {
  sim_.advanceTo(clock_.simNow());
  acceptPending();
  pollTransports();
  flushScheduleBatch();
  pollPeers();
  applyDeadlines();
  maybeSync();
  if (metricsServer_) metricsServer_->pollOnce();
}

std::uint16_t AgentDaemon::metricsHttpPort() const {
  return metricsServer_ ? metricsServer_->port() : 0;
}

void AgentDaemon::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed) && !shutdownRequested_) {
    runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void AgentDaemon::acceptPending() {
  while (auto conn = listener_.accept(0)) {
    pending_.emplace_back(std::move(conn), sim_.now());
  }
}

void AgentDaemon::pollTransports() {
  // Pending connections identify themselves with their first frame; polling
  // may move them into servers_ or clients_, so iterate over a copy. One
  // that stays mute past the heartbeat timeout is dropped.
  std::vector<std::shared_ptr<wire::TcpTransport>> snapshot;
  snapshot.reserve(pending_.size());
  for (auto& [transport, since] : pending_) {
    if (sim_.now() - since > config_.heartbeatTimeout) {
      LOG_WARN("agent: dropping connection that never identified itself");
      transport->close();
      continue;
    }
    snapshot.push_back(transport);
  }
  for (auto& transport : snapshot) {
    try {
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: dropping connection on bad frame: " << e.what());
      transport->close();
    }
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const auto& p) { return p.first->closed(); }),
                 pending_.end());

  for (auto& [name, entry] : servers_) {
    if (!entry.transport) continue;
    try {
      auto transport = entry.transport;
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: closing link to " << name << " on bad frame: " << e.what());
      entry.transport->close();
    }
    if (entry.transport->closed()) {
      entry.transport.reset();
      // The process is gone, not just the machine: unlike a simulated
      // collapse there is nobody left to report the victims, so fail the
      // abandoned in-flight tasks here (fault tolerance re-submits them).
      // A graceful leave drained before closing, so its set is empty.
      failAbandonedTasks(name);
    }
  }

  for (auto& client : clients_) {
    try {
      auto transport = client;
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: closing client connection on bad frame: " << e.what());
      client->close();
    }
  }
  clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                [](const auto& t) { return t->closed(); }),
                 clients_.end());
}

void AgentDaemon::applyDeadlines() {
  const double now = sim_.now();
  for (auto& [name, entry] : servers_) {
    if (entry.retired) continue;
    if (now - entry.lastSeen <= config_.heartbeatTimeout) continue;
    LOG_INFO("agent: server " << name << " missed its report deadline ("
                              << config_.heartbeatTimeout << "s), retiring");
    failAbandonedTasks(name);
    agent_.deregisterServer(name);
    serversRetiredCounter().inc();
    entry.retired = true;
    // Close a still-open link so a merely-stalled daemon notices, re-dials
    // and re-registers (the revival path) instead of heartbeating forever
    // into a registration that no longer exists.
    if (entry.transport) {
      entry.transport->close();
      entry.transport.reset();
    }
  }
}

void AgentDaemon::addPeer(const std::string& hostPort) {
  PeerEntry peer;
  peer.address = hostPort;
  peers_.push_back(std::move(peer));
}

bool AgentDaemon::otherLiveLinkTo(const PeerEntry& peer) const {
  if (peer.name.empty()) return false;
  for (const PeerEntry& other : peers_) {
    if (&other != &peer && other.name == peer.name && other.transport &&
        !other.transport->closed()) {
      return true;
    }
  }
  return false;
}

std::size_t AgentDaemon::connectedPeerCount() const {
  std::size_t n = 0;
  for (const PeerEntry& p : peers_) {
    if (p.transport && !p.transport->closed()) ++n;
  }
  return n;
}

void AgentDaemon::sendHello(PeerEntry& peer) {
  if (!peer.transport || peer.transport->closed()) return;
  wire::AgentHelloMsg hello;
  hello.agentName = config_.agentName;
  hello.mode = agentModeName(config_.mode);
  hello.sampleTime = sim_.now();
  for (const auto& [name, entry] : servers_) {
    if (!entry.retired) hello.ownedServers.push_back(name);
  }
  peer.transport->send(wire::MessageType::kAgentHello, wire::encode(hello));
  peer.helloSent = true;
}

void AgentDaemon::pollPeers() {
  for (PeerEntry& peer : peers_) {
    if ((!peer.transport || peer.transport->closed()) && !peer.address.empty() &&
        sim_.now() >= peer.nextDialAt && !otherLiveLinkTo(peer)) {
      peer.nextDialAt = sim_.now() + config_.peerRedialPeriod;
      // Parse before dialing, so a malformed address is dropped for good
      // instead of masquerading as a transiently unreachable peer.
      std::string host;
      int port = 0;
      const auto colon = peer.address.rfind(':');
      if (colon != std::string::npos) {
        host = peer.address.substr(0, colon);
        try {
          port = std::stoi(peer.address.substr(colon + 1));
        } catch (const std::exception&) {
          port = 0;
        }
      }
      if (host.empty() || port <= 0 || port > 0xFFFF) {
        LOG_WARN("agent " << config_.agentName << ": bad peer address '"
                          << peer.address << "'");
        peer.address.clear();  // never dial garbage again
        continue;
      }
      peerDialsCounter().inc();
      try {
        peer.transport = wire::TcpTransport::connect(host, static_cast<std::uint16_t>(port));
        peer.helloSent = false;
        sendHello(peer);
        LOG_INFO("agent " << config_.agentName << ": dialed peer " << peer.address);
      } catch (const util::Error& e) {
        peer.transport.reset();
        LOG_DEBUG("agent " << config_.agentName << ": peer " << peer.address
                           << " unreachable: " << e.what());
      }
    }
    if (peer.transport && !peer.transport->closed()) {
      try {
        auto transport = peer.transport;
        transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
      } catch (const util::Error& e) {
        LOG_WARN("agent " << config_.agentName
                          << ": closing peer link on bad frame: " << e.what());
        peer.transport->close();
      }
    }
  }
  // Inbound entries have no address to re-dial; drop them once dead. The
  // dialing side owns reconnection.
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [](const PeerEntry& p) {
                                return p.address.empty() &&
                                       (!p.transport || p.transport->closed());
                              }),
               peers_.end());
}

void AgentDaemon::maybeSync() {
  if (config_.syncPeriod <= 0.0) return;
  if (config_.snapshotPath.empty() && peers_.empty()) return;
  if (sim_.now() < nextSyncAt_) return;
  nextSyncAt_ = sim_.now() + config_.syncPeriod;

  const core::HtmSnapshot snapshot = agent_.htmSnapshot();
  if (!config_.snapshotPath.empty()) {
    try {
      core::saveHtmSnapshotFile(config_.snapshotPath, snapshot);
    } catch (const util::Error& e) {
      LOG_WARN("agent " << config_.agentName << ": snapshot save failed: " << e.what());
    }
  }
  if (connectedPeerCount() == 0) return;

  wire::AgentSyncMsg base;
  base.agentName = config_.agentName;
  base.sampleTime = sim_.now();
  for (const auto& [name, entry] : servers_) {
    if (entry.retired || !entry.up) continue;
    wire::LoadDigest digest;
    digest.serverName = name;
    digest.loadAverage = agent_.loadEstimate(name);
    digest.sampleTime = sim_.now();
    base.loads.push_back(std::move(digest));
  }

  // Snapshot travels in chunks so one sync frame never approaches the frame
  // limit, whatever the trace sizes; loopback deployments fit in one chunk.
  constexpr std::size_t kChunkBytes = 256 * 1024;
  const wire::Bytes blob = core::encodeHtmSnapshot(snapshot);
  const auto chunkCount =
      static_cast<std::uint32_t>((blob.size() + kChunkBytes - 1) / kChunkBytes);
  base.snapshotSeq = ++snapshotSeq_;
  base.chunkCount = chunkCount;

  for (PeerEntry& peer : peers_) {
    if (!peer.transport || peer.transport->closed()) continue;
    if (!peer.helloSent) sendHello(peer);
    for (std::uint32_t i = 0; i < std::max<std::uint32_t>(chunkCount, 1); ++i) {
      wire::AgentSyncMsg msg = base;
      msg.chunkIndex = i;
      if (i > 0) msg.loads.clear();  // digests ride the first chunk only
      if (chunkCount > 0) {
        const std::size_t begin = static_cast<std::size_t>(i) * kChunkBytes;
        const std::size_t end = std::min(blob.size(), begin + kChunkBytes);
        msg.snapshotChunk.assign(blob.begin() + static_cast<std::ptrdiff_t>(begin),
                                 blob.begin() + static_cast<std::ptrdiff_t>(end));
      }
      peer.transport->send(wire::MessageType::kAgentSync, wire::encode(msg));
    }
  }
}

void AgentDaemon::onAgentHello(const std::shared_ptr<wire::TcpTransport>& transport,
                               const wire::AgentHelloMsg& msg) {
  // An inbound connection identified itself as a peer agent: move it out of
  // pending_ into a peer entry (no address - the dialer re-dials).
  auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; });
  PeerEntry* entry = nullptr;
  if (inPending != pending_.end()) {
    pending_.erase(inPending);
    PeerEntry peer;
    peer.transport = transport;
    peers_.push_back(std::move(peer));
    entry = &peers_.back();
  } else {
    for (PeerEntry& p : peers_) {
      if (p.transport == transport) {
        entry = &p;
        break;
      }
    }
  }
  if (entry == nullptr) return;  // hello on a server/client link: ignore
  entry->name = msg.agentName;
  entry->mode = msg.mode;

  // Mutually-configured peers (each dialing the other) would otherwise hold
  // two links per pair, doubling every sync. Keep exactly one - the link
  // dialed by the lexicographically smaller agent name; both sides compute
  // the same answer. The loser's transport closes (an inbound duplicate is
  // pruned, an outbound one stops dialing while the canonical link lives).
  for (PeerEntry& other : peers_) {
    if (&other == entry || other.name != msg.agentName) continue;
    if (!other.transport || other.transport->closed()) continue;
    const std::string& entryDialer =
        entry->address.empty() ? msg.agentName : config_.agentName;
    const std::string& canonical = std::min(config_.agentName, msg.agentName);
    PeerEntry& drop = entryDialer == canonical ? other : *entry;
    LOG_INFO("agent " << config_.agentName << ": dropping duplicate link to "
                      << msg.agentName);
    // Answer the hello before closing a losing inbound link: the reply is
    // how the remote dialer learns our name, and only a named entry lets its
    // otherLiveLinkTo() guard suppress further re-dials while the canonical
    // link lives - dropping silently would mean perpetual dial/close churn.
    if (!drop.helloSent) sendHello(drop);
    drop.transport->close();
    if (&drop == entry) return;  // this connection lost the tie-break
    break;
  }

  LOG_INFO("agent " << config_.agentName << ": peer " << msg.agentName << " ("
                    << msg.mode << ", " << msg.ownedServers.size()
                    << " servers) connected");
  // Answer an inbound hello with our own so the dialer learns our name.
  if (!entry->helloSent) sendHello(*entry);
}

void AgentDaemon::onAgentSync(const std::shared_ptr<wire::TcpTransport>& transport,
                              const wire::AgentSyncMsg& msg) {
  PeerEntry* peer = nullptr;
  for (PeerEntry& p : peers_) {
    if (p.transport == transport) {
      peer = &p;
      break;
    }
  }
  if (peer == nullptr) {
    LOG_WARN("agent " << config_.agentName << ": sync from unidentified connection");
    return;
  }
  ++syncsReceived_;
  if (peer->name.empty()) peer->name = msg.agentName;

  // Load digests: the peer's view of the servers it owns. Servers registered
  // here are our own partition - the local estimate is fresher - so digests
  // only fill in the rest of the registry.
  for (const wire::LoadDigest& digest : msg.loads) {
    if (servers_.count(digest.serverName) != 0) continue;
    peerLoads_[digest.serverName] = digest;
  }

  if (msg.chunkCount == 0) return;
  // Bound the reassembly buffer before allocating from a wire-supplied
  // count: a corrupt or hostile frame must be dropped like any other bad
  // snapshot, not allowed to throw bad_alloc past the util::Error handlers
  // and kill the daemon. 4096 chunks x 256 KiB = a 1 GiB snapshot, far
  // beyond any real deployment.
  constexpr std::uint32_t kMaxSnapshotChunks = 4096;
  if (msg.chunkCount > kMaxSnapshotChunks || msg.chunkIndex >= msg.chunkCount) {
    LOG_WARN("agent " << config_.agentName << ": dropping sync with bad chunking ("
                      << msg.chunkIndex << "/" << msg.chunkCount << ") from "
                      << peer->name);
    return;
  }
  if (msg.snapshotSeq != peer->snapshotSeq || msg.chunkCount != peer->chunkCount) {
    peer->snapshotSeq = msg.snapshotSeq;
    peer->chunkCount = msg.chunkCount;
    peer->chunksReceived = 0;
    peer->chunks.assign(msg.chunkCount, {});
  }
  if (peer->chunks[msg.chunkIndex].empty()) {
    peer->chunks[msg.chunkIndex] = msg.snapshotChunk;
    ++peer->chunksReceived;
  }
  if (peer->chunksReceived != peer->chunkCount) return;

  wire::Bytes blob;
  for (const wire::Bytes& chunk : peer->chunks) {
    blob.insert(blob.end(), chunk.begin(), chunk.end());
  }
  peer->chunks.clear();
  peer->chunkCount = 0;
  peer->chunksReceived = 0;
  try {
    const core::HtmSnapshot snapshot = core::decodeHtmSnapshot(blob);
    // Row-wise adoption only: a live sync must not overwrite this agent's
    // configured sync policy or its own accuracy statistics. Count DISTINCT
    // rows, so the metric reflects replication coverage, not run length.
    for (const std::string& name : agent_.adoptHtmRows(snapshot)) {
      peerAdoptedRows_.insert(name);
    }
  } catch (const util::Error& e) {
    LOG_WARN("agent " << config_.agentName << ": dropping corrupt snapshot from "
                      << peer->name << ": " << e.what());
  }
}

void AgentDaemon::handleFrame(const std::shared_ptr<wire::TcpTransport>& transport,
                              const wire::Frame& frame) {
  using wire::MessageType;
  // Any frame from a registered server refreshes its liveness deadline.
  const auto refresh = [&](const std::string& name) {
    auto it = servers_.find(name);
    if (it != servers_.end()) it->second.lastSeen = sim_.now();
  };

  switch (frame.type) {
    case MessageType::kRegister:
      onRegister(transport, wire::decodeRegister(frame.payload));
      return;
    case MessageType::kScheduleRequest:
      onScheduleRequest(transport, wire::decodeScheduleRequest(frame.payload));
      return;
    case MessageType::kHeartbeat: {
      const wire::HeartbeatMsg m = wire::decodeHeartbeat(frame.payload);
      if (m.serverName.empty()) {
        // Client hello: an empty-name heartbeat identifies a connection as a
        // client before its first request, exempting it from the
        // never-identified pending timeout.
        auto inPending =
            std::find_if(pending_.begin(), pending_.end(),
                         [&](const auto& p) { return p.first == transport; });
        if (inPending != pending_.end()) {
          pending_.erase(inPending);
          clients_.push_back(transport);
        }
        return;
      }
      refresh(m.serverName);
      // Echo the beacon back unchanged: the server measures a genuine round
      // trip from its own two clock readings (no cross-process skew).
      transport->send(MessageType::kHeartbeat, frame.payload);
      return;
    }
    case MessageType::kLoadReport: {
      const wire::LoadReportMsg m = wire::decodeLoadReport(frame.payload);
      refresh(m.serverName);
      if (servers_.count(m.serverName) != 0) {
        agent_.onLoadReport(m.serverName, m.loadAverage, m.sampleTime);
      }
      return;
    }
    case MessageType::kTaskComplete: {
      const wire::TaskCompleteMsg m = wire::decodeTaskComplete(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && agent_.knowsTask(m.taskId)) {
        it->second.draining.erase(m.taskId);
        agent_.onTaskCompleted(m.serverName, m.taskId, m.completionTime,
                               m.unloadedDuration);
      }
      return;
    }
    case MessageType::kTaskFailed: {
      const wire::TaskFailedMsg m = wire::decodeTaskFailed(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && agent_.knowsTask(m.taskId)) {
        it->second.draining.erase(m.taskId);
        agent_.onTaskFailed(m.serverName, m.taskId);
      }
      return;
    }
    case MessageType::kServerDown: {
      const wire::ServerDownMsg m = wire::decodeServerDown(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && it->second.up) {
        // Remember what the server still owes before the down-notice wipes
        // the scheduling core's in-flight view: a leaving server drains
        // these, a collapsing one reports them as failures - and if its
        // process dies first, failAbandonedTasks recovers the remainder.
        for (std::uint64_t id : agent_.inFlightTasks(m.serverName)) {
          it->second.draining.insert(id);
        }
      }
      markServerDown(m.serverName);
      return;
    }
    case MessageType::kServerUp: {
      const wire::ServerUpMsg m = wire::decodeServerUp(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && !it->second.retired) {
        it->second.up = true;
        agent_.onServerUp(m.serverName);
      }
      return;
    }
    case MessageType::kAgentHello:
      onAgentHello(transport, wire::decodeAgentHello(frame.payload));
      return;
    case MessageType::kAgentSync:
      onAgentSync(transport, wire::decodeAgentSync(frame.payload));
      return;
    case MessageType::kStatsRequest: {
      // Operator connection asking for the metrics registry; treat it like a
      // client from now on so the pending timeout leaves it alone.
      auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                    [&](const auto& p) { return p.first == transport; });
      if (inPending != pending_.end()) {
        pending_.erase(inPending);
        clients_.push_back(transport);
      }
      const wire::StatsRequestMsg m = wire::decodeStatsRequest(frame.payload);
      wire::StatsReplyMsg reply;
      reply.agentName = config_.agentName;
      reply.sampleTime = sim_.now();
      try {
        const obs::StatsFormat format = obs::parseStatsFormat(m.format);
        reply.format = obs::statsFormatName(format);
        reply.body = obs::renderStats(obs::Registry::global().snapshot(), format);
      } catch (const util::ConfigError& e) {
        // A bad format name fails this request, not the connection.
        reply.format = "error";
        reply.body = e.what();
      }
      transport->send(MessageType::kStatsReply, wire::encode(reply));
      return;
    }
    case MessageType::kStatsReply:
      return;  // agents only produce these; ignore a stray one
    case MessageType::kShutdown:
      shutdownRequested_ = true;
      return;
    default:
      LOG_WARN("agent: ignoring unexpected " << wire::messageTypeName(frame.type)
                                             << " frame");
      return;
  }
}

void AgentDaemon::onRegister(const std::shared_ptr<wire::TcpTransport>& transport,
                             const wire::RegisterMsg& msg) {
  // The connection is now known to be a server: remove it from pending_.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; }),
                 pending_.end());

  core::ServerModel model;
  model.name = msg.serverName;
  model.bwInMBps = msg.bwInMBps;
  model.bwOutMBps = msg.bwOutMBps;
  model.latencyIn = msg.latencyIn;
  model.latencyOut = msg.latencyOut;

  auto it = servers_.find(msg.serverName);
  if (it != servers_.end() && !it->second.retired && it->second.transport &&
      !it->second.transport->closed() && it->second.transport != transport) {
    // The name is taken by a live connection: reject the impostor instead of
    // silently stealing the entry.
    LOG_WARN("agent: rejecting registration of '" << msg.serverName
                                                  << "' (name in use)");
    wire::RegisterAckMsg reject;
    reject.serverName = msg.serverName;
    reject.accepted = false;
    reject.agentTime = sim_.now();
    transport->send(wire::MessageType::kRegisterAck, wire::encode(reject));
    return;
  }

  if (it == servers_.end()) {
    ServerEntry entry;
    entry.link = std::make_unique<WireLink>(this, msg.serverName);
    entry.transport = transport;
    agent_.registerServer(entry.link.get(), model, msg.problems, msg.ramMB,
                          msg.ramMB + msg.swapMB);
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    it = servers_.emplace(msg.serverName, std::move(entry)).first;
    LOG_INFO("agent: registered server " << msg.serverName);
  } else if (it->second.retired) {
    // Reconnect after the deadline already retired the row: revive it.
    it->second.transport = transport;
    it->second.retired = false;
    agent_.registerServer(it->second.link.get(), model, msg.problems, msg.ramMB,
                          msg.ramMB + msg.swapMB);
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    LOG_INFO("agent: revived retired server " << msg.serverName);
  } else {
    // Reconnect of a live registration (brief disconnect). If the previous
    // link is gone, whatever was in flight on the old incarnation died with
    // it - reconcile before rebinding, or those ids would linger unfailed
    // and unresubmitted forever. The HTM row and the original link/memory
    // model survive; the speed index is refreshed since a restarted server
    // may advertise a new one.
    if (it->second.transport == nullptr || it->second.transport->closed()) {
      failAbandonedTasks(msg.serverName);
    }
    it->second.transport = transport;
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    agent_.onServerUp(msg.serverName);
    LOG_INFO("agent: server " << msg.serverName << " reconnected");
  }
  it->second.up = true;
  it->second.lastSeen = sim_.now();

  wire::RegisterAckMsg ack;
  ack.serverName = msg.serverName;
  ack.accepted = true;
  ack.agentTime = sim_.now();
  it->second.transport->send(wire::MessageType::kRegisterAck, wire::encode(ack));
}

void AgentDaemon::onScheduleRequest(const std::shared_ptr<wire::TcpTransport>& transport,
                                    const wire::ScheduleRequestMsg& msg) {
  // The connection is now known to be a client.
  auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; });
  if (inPending != pending_.end()) {
    pending_.erase(inPending);
    clients_.push_back(transport);
  }

  // Task ids are client-chosen; reusing one (another client, or a replayed
  // metatask against a long-lived agent) would corrupt or shadow the first
  // task's state, so reject instead. The guard must also cover ids queued in
  // this cycle's batch, which the scheduling core has not seen yet.
  const bool queued =
      std::any_of(scheduleBatch_.begin(), scheduleBatch_.end(),
                  [&](const workload::TaskInstance& t) { return t.index == msg.taskId; });
  if (agent_.knowsTask(msg.taskId) || queued) {
    auto known = taskClients_.find(msg.taskId);
    if (known != taskClients_.end() && known->second.lock() == transport) {
      return;  // duplicate send from the same client, ignore
    }
    LOG_WARN("agent: rejecting task " << msg.taskId << " (id already used)");
    wire::TaskFailedMsg failed;
    failed.taskId = msg.taskId;
    failed.reason = "task id already used";
    transport->send(wire::MessageType::kTaskFailed, wire::encode(failed));
    return;
  }

  try {
    workload::TaskInstance task;
    task.index = msg.taskId;
    task.arrival = sim_.now();
    task.type = workload::makeSyntheticType(msg.problem, msg.inMB, msg.refSeconds,
                                            msg.outMB, msg.memMB);
    taskClients_[msg.taskId] = transport;
    scheduleBatch_.push_back(std::move(task));
  } catch (const util::Error& e) {
    // One malformed request fails that task; the connection (and every
    // other task of this client) stays up.
    LOG_WARN("agent: schedule request " << msg.taskId << " rejected: " << e.what());
    taskClients_.erase(msg.taskId);
    wire::TaskFailedMsg failed;
    failed.taskId = msg.taskId;
    failed.reason = e.what();
    transport->send(wire::MessageType::kTaskFailed, wire::encode(failed));
  }
}

void AgentDaemon::flushScheduleBatch() {
  if (scheduleBatch_.empty()) return;
  agent_.scheduleBatch(scheduleBatch_);
  scheduleBatch_.clear();
}

void AgentDaemon::markServerDown(const std::string& name) {
  auto it = servers_.find(name);
  if (it == servers_.end() || !it->second.up) return;
  it->second.up = false;
  agent_.onServerDown(name);
}

void AgentDaemon::failAbandonedTasks(const std::string& name) {
  // Everything the dead server still owed: tasks in flight per the
  // scheduling core (no down-notice ever arrived) plus the unfinished
  // remainder of an announced drain (the notice already cleared the core's
  // view). A healthy leave drains both to empty before closing.
  std::set<std::uint64_t> abandoned;
  for (std::uint64_t taskId : agent_.inFlightTasks(name)) abandoned.insert(taskId);
  auto it = servers_.find(name);
  if (it != servers_.end()) {
    abandoned.insert(it->second.draining.begin(), it->second.draining.end());
    it->second.draining.clear();
  }
  markServerDown(name);
  for (std::uint64_t taskId : abandoned) {
    LOG_WARN("agent: task " << taskId << " abandoned by dead server " << name);
    agent_.onTaskFailed(name, taskId);
  }
}

void AgentDaemon::sendSubmit(const std::string& server, std::uint64_t taskId,
                             const psched::ExecRequest& request) {
  auto it = servers_.find(server);
  if (it == servers_.end() || !it->second.transport || it->second.transport->closed()) {
    // The link died between the decision and the submission; surface it as a
    // task failure so fault tolerance can re-submit elsewhere.
    LOG_WARN("agent: no link to " << server << " for task " << taskId);
    agent_.onTaskFailed(server, taskId);
    return;
  }
  wire::TaskSubmitMsg submit;
  submit.taskId = taskId;
  submit.inMB = request.inMB;
  submit.cpuSeconds = request.cpuSeconds;
  submit.outMB = request.outMB;
  submit.memMB = request.memMB;
  it->second.transport->send(wire::MessageType::kTaskSubmit, wire::encode(submit));
}

void AgentDaemon::relayTerminal(const metrics::TaskOutcome& outcome) {
  auto it = taskClients_.find(outcome.index);
  if (it == taskClients_.end()) return;
  auto transport = it->second.lock();
  // Terminal fires exactly once per task; drop the mapping so a long-lived
  // agent does not accumulate one entry per task ever submitted.
  taskClients_.erase(it);
  if (!transport || transport->closed()) return;
  if (outcome.status == metrics::TaskStatus::kCompleted) {
    wire::TaskCompleteMsg done;
    done.taskId = outcome.index;
    done.serverName = outcome.server;
    done.completionTime = outcome.completion;
    done.unloadedDuration = outcome.unloadedDuration;
    transport->send(wire::MessageType::kTaskComplete, wire::encode(done));
  } else {
    wire::TaskFailedMsg failed;
    failed.taskId = outcome.index;
    failed.serverName = outcome.server;
    failed.reason = "lost";
    transport->send(wire::MessageType::kTaskFailed, wire::encode(failed));
  }
}

std::size_t AgentDaemon::liveServerCount() const {
  std::size_t n = 0;
  for (const auto& [name, entry] : servers_) {
    if (!entry.retired) ++n;
  }
  return n;
}

std::size_t AgentDaemon::retiredServerCount() const {
  return servers_.size() - liveServerCount();
}

bool AgentDaemon::serverRetired(const std::string& name) const {
  auto it = servers_.find(name);
  return it != servers_.end() && it->second.retired;
}

bool AgentDaemon::serverKnown(const std::string& name) const {
  return servers_.count(name) != 0;
}

}  // namespace casched::net
