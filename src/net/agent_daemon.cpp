#include "net/agent_daemon.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/htm_snapshot.hpp"
#include "obs/decision.hpp"
#include "obs/http_export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#undef CASCHED_LOG_COMPONENT
#define CASCHED_LOG_COMPONENT "net.agent"

namespace casched::net {

AgentMode parseAgentMode(const std::string& name) {
  const std::string n = util::toLower(name);
  if (n == "replicated") return AgentMode::kReplicated;
  if (n == "partitioned") return AgentMode::kPartitioned;
  throw util::ConfigError("unknown agent mode '" + name +
                          "' (want replicated | partitioned)");
}

std::string agentModeName(AgentMode mode) {
  switch (mode) {
    case AgentMode::kReplicated: return "replicated";
    case AgentMode::kPartitioned: return "partitioned";
  }
  return "?";
}

/// TaskDispatch implementation handed to the scheduling core: encodes the
/// submission as a kTaskSubmit frame on the server's current transport.
/// The object lives as long as its ServerEntry, surviving reconnects (the
/// frame always goes out on the entry's *current* transport).
struct AgentDaemon::WireLink final : cas::TaskDispatch {
  WireLink(AgentDaemon* owner, std::string server)
      : owner_(owner), server_(std::move(server)) {}

  void submitTask(std::uint64_t taskId, const psched::ExecRequest& request) override {
    owner_->sendSubmit(server_, taskId, request);
  }

  AgentDaemon* owner_;
  std::string server_;
};

namespace {

cas::AgentConfig toAgentConfig(const AgentDaemonConfig& config) {
  cas::AgentConfig out;
  out.controlLatency = config.controlLatency;
  out.faultTolerance = config.faultTolerance;
  out.maxRetries = config.maxRetries;
  out.noServerRetryDelay = config.noServerRetryDelay;
  out.htmSync = config.htmSync;
  return out;
}

obs::Counter& peerDialsCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_agent_peer_dials_total", "Outbound peer-agent dial attempts");
  return *c;
}

obs::Counter& serversRetiredCounter() {
  static obs::Counter* c = &obs::Registry::global().counter(
      "casched_agent_servers_retired_total",
      "Servers retired after missing the report deadline");
  return *c;
}

}  // namespace

AgentDaemon::AgentDaemon(AgentDaemonConfig config, PacedClock clock)
    : config_(std::move(config)),
      clock_(clock),
      listener_(config_.port),
      agent_(sim_, core::makeScheduler(config_.heuristic, config_.schedulerSeed),
             config_.costs, toAgentConfig(config_)) {
  CASCHED_CHECK(config_.heartbeatTimeout > 0.0, "heartbeat timeout must be positive");
  agent_.setTaskTerminalObserver(
      [this](const metrics::TaskOutcome& outcome) { relayTerminal(outcome); });
  agent_.setDecisionLabel(config_.agentName);
  agent_.setDecisionAnnotator([this](std::uint64_t taskId, obs::DecisionRecord& record) {
    const auto it = taskOrigins_.find(taskId);
    record.origin = it == taskOrigins_.end() ? "local" : it->second;
  });
  for (const std::string& address : config_.peers) addPeer(address);
  if (config_.metricsPort >= 0) {
    metricsServer_ = std::make_unique<obs::MetricsHttpServer>(
        static_cast<std::uint16_t>(config_.metricsPort));
    LOG_INFO("agent " << config_.agentName << ": metrics endpoint on 127.0.0.1:"
                      << metricsServer_->port());
  }
  if (!config_.snapshotPath.empty()) {
    try {
      if (const auto snap = core::loadHtmSnapshotFile(config_.snapshotPath)) {
        warmStartedRows_ = agent_.warmStartHtm(*snap);
        LOG_INFO("agent " << config_.agentName << ": warm-started " << warmStartedRows_
                          << " HTM rows from " << config_.snapshotPath);
      }
    } catch (const util::Error& e) {
      // A corrupt or unreadable snapshot must not keep the agent down; it
      // simply starts cold.
      LOG_WARN("agent " << config_.agentName
                        << ": ignoring unusable snapshot: " << e.what());
    }
  }
}

AgentDaemon::~AgentDaemon() = default;

void AgentDaemon::runOnce() {
  sim_.advanceTo(clock_.simNow());
  acceptPending();
  pollTransports();
  retryDeferredRoutes();
  flushScheduleBatch();
  pollPeers();
  applyDeadlines();
  maybeSync();
  maybeSteal();
  flushAllQueued();
  if (metricsServer_) metricsServer_->pollOnce();
}

void AgentDaemon::flushAllQueued() {
  // One flush per poll cycle per link: everything queued above (terminal
  // relays, submits, heartbeat echoes, sync chunks) leaves as coalesced
  // frames wherever consecutive messages share a type.
  for (auto& [conn, since] : pending_) {
    if (conn && !conn->closed()) conn->flushQueued();
  }
  for (auto& [name, entry] : servers_) {
    if (entry.transport && !entry.transport->closed()) entry.transport->flushQueued();
  }
  for (auto& client : clients_) {
    if (client && !client->closed()) client->flushQueued();
  }
  for (auto& peer : peers_) {
    if (peer.transport && !peer.transport->closed()) peer.transport->flushQueued();
  }
}

std::uint16_t AgentDaemon::metricsHttpPort() const {
  return metricsServer_ ? metricsServer_->port() : 0;
}

void AgentDaemon::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed) && !shutdownRequested_) {
    runOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void AgentDaemon::acceptPending() {
  while (auto conn = listener_.accept(0)) {
    pending_.emplace_back(std::move(conn), sim_.now());
  }
}

void AgentDaemon::pollTransports() {
  // Pending connections identify themselves with their first frame; polling
  // may move them into servers_ or clients_, so iterate over a copy. One
  // that stays mute past the heartbeat timeout is dropped.
  std::vector<std::shared_ptr<wire::TcpTransport>> snapshot;
  snapshot.reserve(pending_.size());
  for (auto& [transport, since] : pending_) {
    if (sim_.now() - since > config_.heartbeatTimeout) {
      LOG_WARN("agent: dropping connection that never identified itself");
      transport->close();
      continue;
    }
    snapshot.push_back(transport);
  }
  for (auto& transport : snapshot) {
    try {
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: dropping connection on bad frame: " << e.what());
      transport->close();
    }
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const auto& p) { return p.first->closed(); }),
                 pending_.end());

  for (auto& [name, entry] : servers_) {
    if (!entry.transport) continue;
    try {
      auto transport = entry.transport;
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: closing link to " << name << " on bad frame: " << e.what());
      entry.transport->close();
    }
    if (entry.transport->closed()) {
      entry.transport.reset();
      // The process is gone, not just the machine: unlike a simulated
      // collapse there is nobody left to report the victims, so fail the
      // abandoned in-flight tasks here (fault tolerance re-submits them).
      // A graceful leave drained before closing, so its set is empty.
      failAbandonedTasks(name);
    }
  }

  for (auto& client : clients_) {
    try {
      auto transport = client;
      transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
    } catch (const util::Error& e) {
      LOG_WARN("agent: closing client connection on bad frame: " << e.what());
      client->close();
    }
  }
  clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                [](const auto& t) { return t->closed(); }),
                 clients_.end());
}

void AgentDaemon::applyDeadlines() {
  const double now = sim_.now();
  for (auto& [name, entry] : servers_) {
    if (entry.retired) continue;
    if (now - entry.lastSeen <= config_.heartbeatTimeout) continue;
    LOG_INFO("agent: server " << name << " missed its report deadline ("
                              << config_.heartbeatTimeout << "s), retiring");
    failAbandonedTasks(name);
    agent_.deregisterServer(name);
    serversRetiredCounter().inc();
    entry.retired = true;
    // Close a still-open link so a merely-stalled daemon notices, re-dials
    // and re-registers (the revival path) instead of heartbeating forever
    // into a registration that no longer exists.
    if (entry.transport) {
      entry.transport->close();
      entry.transport.reset();
    }
  }
}

void AgentDaemon::addPeer(const std::string& hostPort) {
  PeerEntry peer;
  peer.address = hostPort;
  peers_.push_back(std::move(peer));
}

bool AgentDaemon::otherLiveLinkTo(const PeerEntry& peer) const {
  if (peer.name.empty()) return false;
  for (const PeerEntry& other : peers_) {
    if (&other != &peer && other.name == peer.name && other.transport &&
        !other.transport->closed()) {
      return true;
    }
  }
  return false;
}

std::size_t AgentDaemon::connectedPeerCount() const {
  std::size_t n = 0;
  for (const PeerEntry& p : peers_) {
    if (p.transport && !p.transport->closed()) ++n;
  }
  return n;
}

void AgentDaemon::sendHello(PeerEntry& peer) {
  if (!peer.transport || peer.transport->closed()) return;
  wire::AgentHelloMsg hello;
  hello.agentName = config_.agentName;
  hello.mode = agentModeName(config_.mode);
  hello.sampleTime = sim_.now();
  for (const auto& [name, entry] : servers_) {
    if (!entry.retired) hello.ownedServers.push_back(name);
  }
  hello.listenPort = listener_.port();
  peer.transport->send(wire::MessageType::kAgentHello, wire::encode(hello));
  peer.helloSent = true;
}

void AgentDaemon::pollPeers() {
  for (PeerEntry& peer : peers_) {
    if (peer.transport && peer.transport->closed()) {
      // The link died. Unless another live link to the same peer remains,
      // tasks handed over it have lost their terminal path - reclaim them
      // before the redial/prune logic forgets the closure ever happened.
      if (!otherLiveLinkTo(peer)) reclaimForwarded(peer.name);
      peer.transport.reset();
      peer.digestSeen = false;
    }
    if ((!peer.transport || peer.transport->closed()) && !peer.address.empty() &&
        sim_.now() >= peer.nextDialAt && !otherLiveLinkTo(peer)) {
      peer.nextDialAt = sim_.now() + config_.peerRedialPeriod;
      // Parse before dialing, so a malformed address is dropped for good
      // instead of masquerading as a transiently unreachable peer.
      std::string host;
      int port = 0;
      const auto colon = peer.address.rfind(':');
      if (colon != std::string::npos) {
        host = peer.address.substr(0, colon);
        try {
          port = std::stoi(peer.address.substr(colon + 1));
        } catch (const std::exception&) {
          port = 0;
        }
      }
      if (host.empty() || port <= 0 || port > 0xFFFF) {
        LOG_WARN("agent " << config_.agentName << ": bad peer address '"
                          << peer.address << "'");
        peer.address.clear();  // never dial garbage again
        continue;
      }
      peerDialsCounter().inc();
      try {
        peer.transport = wire::TcpTransport::connect(host, static_cast<std::uint16_t>(port));
        peer.helloSent = false;
        sendHello(peer);
        LOG_INFO("agent " << config_.agentName << ": dialed peer " << peer.address);
      } catch (const util::Error& e) {
        peer.transport.reset();
        LOG_DEBUG("agent " << config_.agentName << ": peer " << peer.address
                           << " unreachable: " << e.what());
      }
    }
    if (peer.transport && !peer.transport->closed()) {
      try {
        auto transport = peer.transport;
        transport->poll([&](wire::Frame frame) { handleFrame(transport, frame); });
      } catch (const util::Error& e) {
        LOG_WARN("agent " << config_.agentName
                          << ": closing peer link on bad frame: " << e.what());
        peer.transport->close();
      }
    }
  }
  // Inbound entries have no address to re-dial; drop them once dead. The
  // dialing side owns reconnection.
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [](const PeerEntry& p) {
                                return p.address.empty() &&
                                       (!p.transport || p.transport->closed());
                              }),
               peers_.end());
}

void AgentDaemon::maybeSync() {
  if (config_.syncPeriod <= 0.0) return;
  if (config_.snapshotPath.empty() && peers_.empty()) return;
  if (sim_.now() < nextSyncAt_) return;
  nextSyncAt_ = sim_.now() + config_.syncPeriod;

  const core::HtmSnapshot snapshot = agent_.htmSnapshot();
  if (!config_.snapshotPath.empty()) {
    try {
      core::saveHtmSnapshotFile(config_.snapshotPath, snapshot);
    } catch (const util::Error& e) {
      LOG_WARN("agent " << config_.agentName << ": snapshot save failed: " << e.what());
    }
  }
  if (connectedPeerCount() == 0) return;

  wire::AgentSyncMsg base;
  base.agentName = config_.agentName;
  base.sampleTime = sim_.now();
  for (const auto& [name, entry] : servers_) {
    if (entry.retired || !entry.up) continue;
    wire::LoadDigest digest;
    digest.serverName = name;
    digest.loadAverage = agent_.loadEstimate(name);
    digest.sampleTime = sim_.now();
    base.loads.push_back(std::move(digest));
  }
  // v4: advertise the parked-queue depth so idle mesh peers know whom to
  // steal from (harmlessly zero outside mesh deployments).
  base.queuedTasks = static_cast<std::uint32_t>(parked_.size());

  // Snapshot travels in chunks so one sync frame never approaches the frame
  // limit, whatever the trace sizes; loopback deployments fit in one chunk.
  constexpr std::size_t kChunkBytes = 256 * 1024;
  const wire::Bytes blob = core::encodeHtmSnapshot(snapshot);
  const auto chunkCount =
      static_cast<std::uint32_t>((blob.size() + kChunkBytes - 1) / kChunkBytes);
  base.snapshotSeq = ++snapshotSeq_;
  base.chunkCount = chunkCount;

  for (PeerEntry& peer : peers_) {
    if (!peer.transport || peer.transport->closed()) continue;
    if (!peer.helloSent) sendHello(peer);
    for (std::uint32_t i = 0; i < std::max<std::uint32_t>(chunkCount, 1); ++i) {
      wire::AgentSyncMsg msg = base;
      msg.chunkIndex = i;
      if (i > 0) msg.loads.clear();  // digests ride the first chunk only
      if (chunkCount > 0) {
        const std::size_t begin = static_cast<std::size_t>(i) * kChunkBytes;
        const std::size_t end = std::min(blob.size(), begin + kChunkBytes);
        msg.snapshotChunk.assign(blob.begin() + static_cast<std::ptrdiff_t>(begin),
                                 blob.begin() + static_cast<std::ptrdiff_t>(end));
      }
      peer.transport->queue(wire::MessageType::kAgentSync, wire::encode(msg));
    }
  }
}

void AgentDaemon::onAgentHello(const std::shared_ptr<wire::TcpTransport>& transport,
                               const wire::AgentHelloMsg& msg) {
  // An inbound connection identified itself as a peer agent: move it out of
  // pending_ into a peer entry (no address - the dialer re-dials).
  auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; });
  PeerEntry* entry = nullptr;
  if (inPending != pending_.end()) {
    pending_.erase(inPending);
    PeerEntry peer;
    peer.transport = transport;
    peers_.push_back(std::move(peer));
    entry = &peers_.back();
  } else {
    for (PeerEntry& p : peers_) {
      if (p.transport == transport) {
        entry = &p;
        break;
      }
    }
  }
  if (entry == nullptr) return;  // hello on a server/client link: ignore
  entry->name = msg.agentName;
  entry->mode = msg.mode;
  // Dialable address for resolver gossip: the advertised listen port wins
  // (inbound links carry no address of their own), else the dialed address.
  if (msg.listenPort != 0) {
    entry->listenAddress = "127.0.0.1:" + std::to_string(msg.listenPort);
  } else if (!entry->address.empty()) {
    entry->listenAddress = entry->address;
  }

  // Mutually-configured peers (each dialing the other) would otherwise hold
  // two links per pair, doubling every sync. Keep exactly one - the link
  // dialed by the lexicographically smaller agent name; both sides compute
  // the same answer. The loser's transport closes (an inbound duplicate is
  // pruned, an outbound one stops dialing while the canonical link lives).
  for (PeerEntry& other : peers_) {
    if (&other == entry || other.name != msg.agentName) continue;
    if (!other.transport || other.transport->closed()) continue;
    const std::string& entryDialer =
        entry->address.empty() ? msg.agentName : config_.agentName;
    const std::string& canonical = std::min(config_.agentName, msg.agentName);
    PeerEntry& drop = entryDialer == canonical ? other : *entry;
    LOG_INFO("agent " << config_.agentName << ": dropping duplicate link to "
                      << msg.agentName);
    // Answer the hello before closing a losing inbound link: the reply is
    // how the remote dialer learns our name, and only a named entry lets its
    // otherLiveLinkTo() guard suppress further re-dials while the canonical
    // link lives - dropping silently would mean perpetual dial/close churn.
    if (!drop.helloSent) sendHello(drop);
    drop.transport->close();
    if (&drop == entry) return;  // this connection lost the tie-break
    break;
  }

  LOG_INFO("agent " << config_.agentName << ": peer " << msg.agentName << " ("
                    << msg.mode << ", " << msg.ownedServers.size()
                    << " servers) connected");
  // Answer an inbound hello with our own so the dialer learns our name.
  if (!entry->helloSent) sendHello(*entry);
}

void AgentDaemon::onAgentSync(const std::shared_ptr<wire::TcpTransport>& transport,
                              const wire::AgentSyncMsg& msg) {
  PeerEntry* peer = nullptr;
  for (PeerEntry& p : peers_) {
    if (p.transport == transport) {
      peer = &p;
      break;
    }
  }
  if (peer == nullptr) {
    LOG_WARN("agent " << config_.agentName << ": sync from unidentified connection");
    return;
  }
  ++syncsReceived_;
  if (peer->name.empty()) peer->name = msg.agentName;

  // Digest summary for the mesh router (digests ride the first chunk only).
  if (msg.chunkIndex == 0) {
    peer->digestSeen = true;
    peer->liveServers = static_cast<std::uint32_t>(msg.loads.size());
    double loadSum = 0.0;
    for (const wire::LoadDigest& digest : msg.loads) loadSum += digest.loadAverage;
    peer->meanLoad = msg.loads.empty() ? 0.0 : loadSum / static_cast<double>(msg.loads.size());
    peer->queuedTasks = msg.queuedTasks;
  }

  // Load digests: the peer's view of the servers it owns. Servers registered
  // here are our own partition - the local estimate is fresher - so digests
  // only fill in the rest of the registry.
  for (const wire::LoadDigest& digest : msg.loads) {
    if (servers_.count(digest.serverName) != 0) continue;
    peerLoads_[digest.serverName] = digest;
  }

  if (msg.chunkCount == 0) return;
  // Bound the reassembly buffer before allocating from a wire-supplied
  // count: a corrupt or hostile frame must be dropped like any other bad
  // snapshot, not allowed to throw bad_alloc past the util::Error handlers
  // and kill the daemon. 4096 chunks x 256 KiB = a 1 GiB snapshot, far
  // beyond any real deployment.
  constexpr std::uint32_t kMaxSnapshotChunks = 4096;
  if (msg.chunkCount > kMaxSnapshotChunks || msg.chunkIndex >= msg.chunkCount) {
    LOG_WARN("agent " << config_.agentName << ": dropping sync with bad chunking ("
                      << msg.chunkIndex << "/" << msg.chunkCount << ") from "
                      << peer->name);
    return;
  }
  if (msg.snapshotSeq != peer->snapshotSeq || msg.chunkCount != peer->chunkCount) {
    peer->snapshotSeq = msg.snapshotSeq;
    peer->chunkCount = msg.chunkCount;
    peer->chunksReceived = 0;
    peer->chunks.assign(msg.chunkCount, {});
  }
  if (peer->chunks[msg.chunkIndex].empty()) {
    peer->chunks[msg.chunkIndex] = msg.snapshotChunk;
    ++peer->chunksReceived;
  }
  if (peer->chunksReceived != peer->chunkCount) return;

  wire::Bytes blob;
  for (const wire::Bytes& chunk : peer->chunks) {
    blob.insert(blob.end(), chunk.begin(), chunk.end());
  }
  peer->chunks.clear();
  peer->chunkCount = 0;
  peer->chunksReceived = 0;
  try {
    const core::HtmSnapshot snapshot = core::decodeHtmSnapshot(blob);
    // Row-wise adoption only: a live sync must not overwrite this agent's
    // configured sync policy or its own accuracy statistics. Count DISTINCT
    // rows, so the metric reflects replication coverage, not run length.
    for (const std::string& name : agent_.adoptHtmRows(snapshot)) {
      peerAdoptedRows_.insert(name);
    }
  } catch (const util::Error& e) {
    LOG_WARN("agent " << config_.agentName << ": dropping corrupt snapshot from "
                      << peer->name << ": " << e.what());
  }
}

void AgentDaemon::handleFrame(const std::shared_ptr<wire::TcpTransport>& transport,
                              const wire::Frame& frame) {
  using wire::MessageType;
  // Any frame from a registered server refreshes its liveness deadline.
  const auto refresh = [&](const std::string& name) {
    auto it = servers_.find(name);
    if (it != servers_.end()) it->second.lastSeen = sim_.now();
  };

  switch (frame.type) {
    case MessageType::kRegister:
      onRegister(transport, wire::decodeRegister(frame.payload));
      return;
    case MessageType::kScheduleRequest:
      onScheduleRequest(transport, wire::decodeScheduleRequest(frame.payload));
      return;
    case MessageType::kHeartbeat: {
      const wire::HeartbeatMsg m = wire::decodeHeartbeat(frame.payload);
      if (m.serverName.empty()) {
        // Client hello: an empty-name heartbeat identifies a connection as a
        // client before its first request, exempting it from the
        // never-identified pending timeout.
        auto inPending =
            std::find_if(pending_.begin(), pending_.end(),
                         [&](const auto& p) { return p.first == transport; });
        if (inPending != pending_.end()) {
          pending_.erase(inPending);
          clients_.push_back(transport);
        }
        return;
      }
      refresh(m.serverName);
      // Echo the beacon back unchanged: the server measures a genuine round
      // trip from its own two clock readings (no cross-process skew).
      transport->queue(MessageType::kHeartbeat, frame.payload);
      return;
    }
    case MessageType::kLoadReport: {
      const wire::LoadReportMsg m = wire::decodeLoadReport(frame.payload);
      refresh(m.serverName);
      if (servers_.count(m.serverName) != 0) {
        agent_.onLoadReport(m.serverName, m.loadAverage, m.sampleTime);
      }
      return;
    }
    case MessageType::kTaskComplete: {
      const wire::TaskCompleteMsg m = wire::decodeTaskComplete(frame.payload);
      refresh(m.serverName);
      if (relayForwardedTerminal(m.taskId, m.serverName, frame)) return;
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && agent_.knowsTask(m.taskId)) {
        it->second.draining.erase(m.taskId);
        agent_.onTaskCompleted(m.serverName, m.taskId, m.completionTime,
                               m.unloadedDuration);
      }
      return;
    }
    case MessageType::kTaskFailed: {
      const wire::TaskFailedMsg m = wire::decodeTaskFailed(frame.payload);
      refresh(m.serverName);
      if (relayForwardedTerminal(m.taskId, m.serverName, frame)) return;
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && agent_.knowsTask(m.taskId)) {
        it->second.draining.erase(m.taskId);
        agent_.onTaskFailed(m.serverName, m.taskId);
      }
      return;
    }
    case MessageType::kServerDown: {
      const wire::ServerDownMsg m = wire::decodeServerDown(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && it->second.up) {
        // Remember what the server still owes before the down-notice wipes
        // the scheduling core's in-flight view: a leaving server drains
        // these, a collapsing one reports them as failures - and if its
        // process dies first, failAbandonedTasks recovers the remainder.
        for (std::uint64_t id : agent_.inFlightTasks(m.serverName)) {
          it->second.draining.insert(id);
        }
      }
      markServerDown(m.serverName);
      return;
    }
    case MessageType::kServerUp: {
      const wire::ServerUpMsg m = wire::decodeServerUp(frame.payload);
      refresh(m.serverName);
      auto it = servers_.find(m.serverName);
      if (it != servers_.end() && !it->second.retired) {
        it->second.up = true;
        agent_.onServerUp(m.serverName);
      }
      return;
    }
    case MessageType::kAgentHello:
      onAgentHello(transport, wire::decodeAgentHello(frame.payload));
      return;
    case MessageType::kAgentSync:
      onAgentSync(transport, wire::decodeAgentSync(frame.payload));
      return;
    case MessageType::kStatsRequest: {
      // Operator connection asking for the metrics registry; treat it like a
      // client from now on so the pending timeout leaves it alone.
      auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                    [&](const auto& p) { return p.first == transport; });
      if (inPending != pending_.end()) {
        pending_.erase(inPending);
        clients_.push_back(transport);
      }
      const wire::StatsRequestMsg m = wire::decodeStatsRequest(frame.payload);
      wire::StatsReplyMsg reply;
      reply.agentName = config_.agentName;
      reply.sampleTime = sim_.now();
      try {
        const obs::StatsFormat format = obs::parseStatsFormat(m.format);
        reply.format = obs::statsFormatName(format);
        reply.body = obs::renderStats(obs::Registry::global().snapshot(), format);
      } catch (const util::ConfigError& e) {
        // A bad format name fails this request, not the connection.
        reply.format = "error";
        reply.body = e.what();
      }
      transport->send(MessageType::kStatsReply, wire::encode(reply));
      return;
    }
    case MessageType::kForwardRequest: {
      const wire::ForwardRequestMsg m = wire::decodeForwardRequest(frame.payload);
      if (!config_.meshEnabled) {
        denyRequest(transport, m.task.taskId, m.originAgent, "mesh disabled");
        return;
      }
      if (agent_.knowsTask(m.task.taskId) || taskIdInFlight(m.task.taskId)) {
        denyRequest(transport, m.task.taskId, m.originAgent, "task id already used");
        return;
      }
      try {
        workload::TaskInstance task;
        task.index = m.task.taskId;
        task.arrival = sim_.now();
        task.type = workload::makeSyntheticType(m.task.problem, m.task.inMB,
                                                m.task.refSeconds, m.task.outMB,
                                                m.task.memMB);
        routeRequest(transport, m.task, task, m.hops, m.originAgent, sim_.now());
      } catch (const util::Error& e) {
        denyRequest(transport, m.task.taskId, m.originAgent, e.what());
      }
      return;
    }
    case MessageType::kForwardDeny: {
      const wire::ForwardDenyMsg m = wire::decodeForwardDeny(frame.payload);
      auto it = forwardedTo_.find(m.taskId);
      if (it == forwardedTo_.end()) return;
      const wire::ScheduleRequestMsg original = it->second.request;
      const std::string originalFrom = it->second.fromAgent;
      forwardedTo_.erase(it);
      LOG_WARN("agent " << config_.agentName << ": task " << m.taskId
                        << " bounced by " << m.agentName << " (" << m.reason
                        << ")");
      // Fall back to local scheduling when anything here can run it (fault
      // tolerance takes over); otherwise pass the refusal on to the client.
      try {
        workload::TaskInstance task;
        task.index = original.taskId;
        task.arrival = sim_.now();
        task.type = workload::makeSyntheticType(original.problem, original.inMB,
                                                original.refSeconds, original.outMB,
                                                original.memMB);
        if (agent_.hasFeasibleServer(task.type.name)) {
          scheduleBatch_.push_back(std::move(task));  // taskClients_ still set
          return;
        }
      } catch (const util::Error&) {
        // fall through to the client-facing deny
      }
      auto client = taskClients_.find(m.taskId);
      if (client != taskClients_.end()) {
        denyRequest(client->second.lock(), m.taskId, originalFrom, m.reason);
      }
      return;
    }
    case MessageType::kStealRequest: {
      const wire::StealRequestMsg m = wire::decodeStealRequest(frame.payload);
      if (!config_.meshEnabled || parked_.empty() || m.capacity == 0) return;
      wire::StealGrantMsg grant;
      grant.agentName = config_.agentName;
      const std::size_t count = std::min<std::size_t>(m.capacity, parked_.size());
      for (std::size_t i = 0; i < count; ++i) {
        wire::ScheduleRequestMsg task = std::move(parked_.front());
        parked_.pop_front();
        // The thief's terminal comes back over this peer link; the map entry
        // relays it to the original client, exactly like a forward.
        forwardedTo_[task.taskId] = {m.agentName, task, std::string()};
        grant.tasks.push_back(std::move(task));
      }
      transport->send(MessageType::kStealGrant, wire::encode(grant));
      return;
    }
    case MessageType::kStealGrant: {
      const wire::StealGrantMsg m = wire::decodeStealGrant(frame.payload);
      if (!config_.meshEnabled) return;
      for (const wire::ScheduleRequestMsg& req : m.tasks) {
        if (agent_.knowsTask(req.taskId) || taskIdInFlight(req.taskId)) {
          LOG_WARN("agent " << config_.agentName << ": dropping stolen task "
                            << req.taskId << " (id already used)");
          continue;
        }
        try {
          workload::TaskInstance task;
          task.index = req.taskId;
          task.arrival = sim_.now();
          task.type = workload::makeSyntheticType(req.problem, req.inMB,
                                                  req.refSeconds, req.outMB,
                                                  req.memMB);
          ++meshSteals_;
          taskClients_[req.taskId] = transport;
          taskOrigins_[req.taskId] = "steal:" + m.agentName;
          scheduleBatch_.push_back(std::move(task));
        } catch (const util::Error& e) {
          // Answer over the peer link; the victim's forwardedTo_ entry relays
          // the failure to the original client.
          wire::TaskFailedMsg failed;
          failed.taskId = req.taskId;
          failed.reason = e.what();
          transport->send(MessageType::kTaskFailed, wire::encode(failed));
        }
      }
      return;
    }
    case MessageType::kResolverProbe: {
      // A probing connection is a client from now on.
      auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                    [&](const auto& p) { return p.first == transport; });
      if (inPending != pending_.end()) {
        pending_.erase(inPending);
        clients_.push_back(transport);
      }
      const wire::ResolverProbeMsg m = wire::decodeResolverProbe(frame.payload);
      wire::ResolverInfoMsg info;
      info.agentName = config_.agentName;
      info.probeId = m.probeId;
      info.echoSendTime = m.sendTime;
      info.sampleTime = sim_.now();
      info.meanLoad = agent_.meanLoadEstimate();
      info.liveServers = static_cast<std::uint32_t>(agent_.liveServerCount());
      info.queuedTasks = static_cast<std::uint32_t>(parked_.size());
      for (const PeerEntry& peer : peers_) {
        if (!peer.transport || peer.transport->closed()) continue;
        if (!peer.listenAddress.empty()) info.peerAddresses.push_back(peer.listenAddress);
      }
      transport->send(MessageType::kResolverInfo, wire::encode(info));
      return;
    }
    case MessageType::kStatsReply:
      return;  // agents only produce these; ignore a stray one
    case MessageType::kShutdown:
      shutdownRequested_ = true;
      return;
    default:
      LOG_WARN("agent: ignoring unexpected " << wire::messageTypeName(frame.type)
                                             << " frame");
      return;
  }
}

void AgentDaemon::onRegister(const std::shared_ptr<wire::TcpTransport>& transport,
                             const wire::RegisterMsg& msg) {
  // The connection is now known to be a server: remove it from pending_.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; }),
                 pending_.end());

  core::ServerModel model;
  model.name = msg.serverName;
  model.bwInMBps = msg.bwInMBps;
  model.bwOutMBps = msg.bwOutMBps;
  model.latencyIn = msg.latencyIn;
  model.latencyOut = msg.latencyOut;

  auto it = servers_.find(msg.serverName);
  if (it != servers_.end() && !it->second.retired && it->second.transport &&
      !it->second.transport->closed() && it->second.transport != transport) {
    // The name is taken by a live connection: reject the impostor instead of
    // silently stealing the entry.
    LOG_WARN("agent: rejecting registration of '" << msg.serverName
                                                  << "' (name in use)");
    wire::RegisterAckMsg reject;
    reject.serverName = msg.serverName;
    reject.accepted = false;
    reject.agentTime = sim_.now();
    transport->send(wire::MessageType::kRegisterAck, wire::encode(reject));
    return;
  }

  if (it == servers_.end()) {
    ServerEntry entry;
    entry.link = std::make_unique<WireLink>(this, msg.serverName);
    entry.transport = transport;
    agent_.registerServer(entry.link.get(), model, msg.problems, msg.ramMB,
                          msg.ramMB + msg.swapMB);
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    it = servers_.emplace(msg.serverName, std::move(entry)).first;
    LOG_INFO("agent: registered server " << msg.serverName);
  } else if (it->second.retired) {
    // Reconnect after the deadline already retired the row: revive it.
    it->second.transport = transport;
    it->second.retired = false;
    agent_.registerServer(it->second.link.get(), model, msg.problems, msg.ramMB,
                          msg.ramMB + msg.swapMB);
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    LOG_INFO("agent: revived retired server " << msg.serverName);
  } else {
    // Reconnect of a live registration (brief disconnect). If the previous
    // link is gone, whatever was in flight on the old incarnation died with
    // it - reconcile before rebinding, or those ids would linger unfailed
    // and unresubmitted forever. The HTM row and the original link/memory
    // model survive; the speed index is refreshed since a restarted server
    // may advertise a new one.
    if (it->second.transport == nullptr || it->second.transport->closed()) {
      failAbandonedTasks(msg.serverName);
    }
    it->second.transport = transport;
    agent_.setServerSpeedIndex(msg.serverName, msg.speedIndex);
    agent_.onServerUp(msg.serverName);
    LOG_INFO("agent: server " << msg.serverName << " reconnected");
  }
  it->second.up = true;
  it->second.lastSeen = sim_.now();

  wire::RegisterAckMsg ack;
  ack.serverName = msg.serverName;
  ack.accepted = true;
  ack.agentTime = sim_.now();
  it->second.transport->send(wire::MessageType::kRegisterAck, wire::encode(ack));
}

void AgentDaemon::onScheduleRequest(const std::shared_ptr<wire::TcpTransport>& transport,
                                    const wire::ScheduleRequestMsg& msg) {
  // The connection is now known to be a client.
  auto inPending = std::find_if(pending_.begin(), pending_.end(),
                                [&](const auto& p) { return p.first == transport; });
  if (inPending != pending_.end()) {
    pending_.erase(inPending);
    clients_.push_back(transport);
  }

  // Task ids are client-chosen; reusing one (another client, or a replayed
  // metatask against a long-lived agent) would corrupt or shadow the first
  // task's state, so reject instead. The guard must also cover ids queued in
  // this cycle's batch, which the scheduling core has not seen yet.
  if (agent_.knowsTask(msg.taskId) || taskIdInFlight(msg.taskId)) {
    auto known = taskClients_.find(msg.taskId);
    if (known != taskClients_.end() && known->second.lock() == transport) {
      return;  // duplicate send from the same client, ignore
    }
    LOG_WARN("agent: rejecting task " << msg.taskId << " (id already used)");
    wire::TaskFailedMsg failed;
    failed.taskId = msg.taskId;
    failed.reason = "task id already used";
    transport->send(wire::MessageType::kTaskFailed, wire::encode(failed));
    return;
  }

  if (!config_.meshEnabled && liveServerCount() == 0) {
    // No server has ever registered (or all retired) and there is no mesh to
    // forward into: answer with an explicit deny so the client can fail over
    // or fail fast, instead of parking the request in the fault-tolerance
    // retry loop until the client times out (protocol v4).
    LOG_WARN("agent " << config_.agentName << ": denying task " << msg.taskId
                      << " (no servers registered)");
    denyRequest(transport, msg.taskId, "", "no servers registered");
    return;
  }

  try {
    workload::TaskInstance task;
    task.index = msg.taskId;
    task.arrival = sim_.now();
    task.type = workload::makeSyntheticType(msg.problem, msg.inMB, msg.refSeconds,
                                            msg.outMB, msg.memMB);
    if (config_.meshEnabled) {
      routeRequest(transport, msg, task, 0, "", sim_.now());
      return;
    }
    taskClients_[msg.taskId] = transport;
    scheduleBatch_.push_back(std::move(task));
  } catch (const util::Error& e) {
    // One malformed request fails that task; the connection (and every
    // other task of this client) stays up.
    LOG_WARN("agent: schedule request " << msg.taskId << " rejected: " << e.what());
    taskClients_.erase(msg.taskId);
    wire::TaskFailedMsg failed;
    failed.taskId = msg.taskId;
    failed.reason = e.what();
    transport->send(wire::MessageType::kTaskFailed, wire::encode(failed));
  }
}

void AgentDaemon::routeRequest(const std::shared_ptr<wire::TcpTransport>& requester,
                               const wire::ScheduleRequestMsg& msg,
                               const workload::TaskInstance& task, std::uint32_t hops,
                               const std::string& fromAgent, double firstSeen) {
  mesh::LocalView view;
  view.feasible = agent_.hasFeasibleServer(task.type.name);
  view.now = sim_.now();
  view.meanLoad = agent_.meanLoadEstimate();
  view.hops = hops;
  if (view.feasible && config_.meshRouter.overloadThreshold > 0.0) {
    view.predictedCompletion = agent_.previewBestCompletion(task);
  }

  // Candidate peers: connected, identified, digest received, and never the
  // agent that just handed us this request (no ping-pong).
  std::vector<mesh::PeerDigest> digests;
  std::vector<const PeerEntry*> digestPeers;
  for (const PeerEntry& peer : peers_) {
    if (!peer.transport || peer.transport->closed() || peer.name.empty()) continue;
    if (peer.name == fromAgent || !peer.digestSeen) continue;
    digests.push_back({digestPeers.size(), peer.meanLoad, peer.liveServers,
                       peer.queuedTasks});
    digestPeers.push_back(&peer);
  }

  const mesh::RouteDecision decision =
      mesh::decideRoute(config_.meshRouter, view, digests);
  switch (decision.kind) {
    case mesh::RouteKind::kLocal:
      taskClients_[msg.taskId] = requester;
      if (!fromAgent.empty()) taskOrigins_[msg.taskId] = "forward:" + fromAgent;
      scheduleBatch_.push_back(task);
      return;
    case mesh::RouteKind::kForward: {
      const PeerEntry* peer = digestPeers[decision.peer];
      ++meshForwards_;
      forwardedTo_[msg.taskId] = {peer->name, msg, fromAgent};
      taskClients_[msg.taskId] = requester;
      wire::ForwardRequestMsg forward;
      forward.task = msg;
      forward.originAgent = config_.agentName;
      forward.hops = hops + 1;
      peer->transport->send(wire::MessageType::kForwardRequest, wire::encode(forward));
      return;
    }
    case mesh::RouteKind::kPark:
      ++meshParkedTotal_;
      taskClients_[msg.taskId] = requester;
      parked_.push_back(msg);
      return;
    case mesh::RouteKind::kDeny:
      // Startup race: the router may see no usable peer only because the
      // first sync round has not landed yet. Retry every poll cycle within
      // the grace window before giving up for real.
      if (hops < config_.meshRouter.hopLimit &&
          sim_.now() - firstSeen < config_.heartbeatTimeout) {
        // Registering the requester here makes a duplicate resend of a
        // deferred id recognizable as same-client (ignored, not failed).
        taskClients_[msg.taskId] = requester;
        deferred_.push_back({requester, msg, hops, fromAgent, firstSeen});
        return;
      }
      denyRequest(requester, msg.taskId, fromAgent, decision.reason);
      return;
  }
}

void AgentDaemon::denyRequest(const std::shared_ptr<wire::TcpTransport>& requester,
                              std::uint64_t taskId, const std::string& fromAgent,
                              const std::string& reason) {
  ++meshDenies_;
  taskClients_.erase(taskId);
  if (!requester || requester->closed()) return;
  if (fromAgent.empty()) {
    wire::ScheduleDenyMsg deny;
    deny.taskId = taskId;
    deny.agentName = config_.agentName;
    deny.reason = reason;
    requester->send(wire::MessageType::kScheduleDeny, wire::encode(deny));
  } else {
    wire::ForwardDenyMsg deny;
    deny.taskId = taskId;
    deny.agentName = config_.agentName;
    deny.reason = reason;
    requester->send(wire::MessageType::kForwardDeny, wire::encode(deny));
  }
}

bool AgentDaemon::taskIdInFlight(std::uint64_t taskId) const {
  if (forwardedTo_.find(taskId) != forwardedTo_.end()) return true;
  if (std::any_of(scheduleBatch_.begin(), scheduleBatch_.end(),
                  [&](const workload::TaskInstance& t) { return t.index == taskId; })) {
    return true;
  }
  if (std::any_of(parked_.begin(), parked_.end(),
                  [&](const wire::ScheduleRequestMsg& p) { return p.taskId == taskId; })) {
    return true;
  }
  return std::any_of(deferred_.begin(), deferred_.end(), [&](const DeferredRoute& d) {
    return d.msg.taskId == taskId;
  });
}

void AgentDaemon::retryDeferredRoutes() {
  if (deferred_.empty()) return;
  std::vector<DeferredRoute> retry;
  retry.swap(deferred_);  // routeRequest may re-defer into deferred_
  for (DeferredRoute& route : retry) {
    auto requester = route.requester.lock();
    if (!requester || requester->closed()) {
      taskClients_.erase(route.msg.taskId);  // nobody left to answer
      continue;
    }
    try {
      workload::TaskInstance task;
      task.index = route.msg.taskId;
      task.arrival = sim_.now();
      task.type = workload::makeSyntheticType(route.msg.problem, route.msg.inMB,
                                              route.msg.refSeconds, route.msg.outMB,
                                              route.msg.memMB);
      routeRequest(requester, route.msg, task, route.hops, route.fromAgent,
                   route.firstSeen);
    } catch (const util::Error& e) {
      denyRequest(requester, route.msg.taskId, route.fromAgent, e.what());
    }
  }
}

void AgentDaemon::reclaimForwarded(const std::string& peerName) {
  if (peerName.empty() || forwardedTo_.empty()) return;
  // Collect first: routeRequest may insert fresh forwardedTo_ entries.
  std::vector<ForwardedTask> orphans;
  for (auto it = forwardedTo_.begin(); it != forwardedTo_.end();) {
    if (it->second.peer == peerName) {
      orphans.push_back(std::move(it->second));
      it = forwardedTo_.erase(it);
    } else {
      ++it;
    }
  }
  for (ForwardedTask& orphan : orphans) {
    const wire::ScheduleRequestMsg& msg = orphan.request;
    LOG_WARN("agent " << config_.agentName << ": peer " << peerName
                      << " died holding task " << msg.taskId << ", re-routing");
    std::shared_ptr<wire::TcpTransport> requester;
    auto client = taskClients_.find(msg.taskId);
    if (client != taskClients_.end()) requester = client->second.lock();
    try {
      workload::TaskInstance task;
      task.index = msg.taskId;
      task.arrival = sim_.now();
      task.type = workload::makeSyntheticType(msg.problem, msg.inMB, msg.refSeconds,
                                              msg.outMB, msg.memMB);
      routeRequest(requester, msg, task, 0, orphan.fromAgent, sim_.now());
    } catch (const util::Error& e) {
      denyRequest(requester, msg.taskId, orphan.fromAgent, e.what());
    }
  }
}

void AgentDaemon::maybeSteal() {
  if (!config_.meshEnabled || config_.meshStealPeriod <= 0.0) return;
  if (sim_.now() < nextStealAt_) return;
  nextStealAt_ = sim_.now() + config_.meshStealPeriod;
  // Only a genuinely idle agent steals: live servers to run the work, and
  // nothing parked of its own.
  if (!parked_.empty() || agent_.liveServerCount() == 0) return;
  PeerEntry* victim = nullptr;
  for (PeerEntry& peer : peers_) {
    if (!peer.transport || peer.transport->closed() || !peer.digestSeen) continue;
    if (peer.queuedTasks == 0) continue;
    if (victim == nullptr || peer.queuedTasks > victim->queuedTasks) victim = &peer;
  }
  if (victim == nullptr) return;
  wire::StealRequestMsg request;
  request.agentName = config_.agentName;
  request.capacity = static_cast<std::uint32_t>(config_.meshStealBatch);
  victim->transport->send(wire::MessageType::kStealRequest, wire::encode(request));
}

bool AgentDaemon::relayForwardedTerminal(std::uint64_t taskId,
                                         const std::string& serverName,
                                         const wire::Frame& frame) {
  if (!config_.meshEnabled) return false;
  if (servers_.find(serverName) != servers_.end()) return false;
  const auto fwd = forwardedTo_.find(taskId);
  if (fwd == forwardedTo_.end()) return false;
  forwardedTo_.erase(fwd);
  auto it = taskClients_.find(taskId);
  if (it == taskClients_.end()) return true;
  auto client = it->second.lock();
  taskClients_.erase(it);
  // Relay the peer's terminal verbatim: the payload already carries the
  // executing server's name and timings.
  if (client && !client->closed()) client->queue(frame.type, frame.payload);
  return true;
}

void AgentDaemon::flushScheduleBatch() {
  if (scheduleBatch_.empty()) return;
  agent_.scheduleBatch(scheduleBatch_);
  scheduleBatch_.clear();
}

void AgentDaemon::markServerDown(const std::string& name) {
  auto it = servers_.find(name);
  if (it == servers_.end() || !it->second.up) return;
  it->second.up = false;
  agent_.onServerDown(name);
}

void AgentDaemon::failAbandonedTasks(const std::string& name) {
  // Everything the dead server still owed: tasks in flight per the
  // scheduling core (no down-notice ever arrived) plus the unfinished
  // remainder of an announced drain (the notice already cleared the core's
  // view). A healthy leave drains both to empty before closing.
  std::set<std::uint64_t> abandoned;
  for (std::uint64_t taskId : agent_.inFlightTasks(name)) abandoned.insert(taskId);
  auto it = servers_.find(name);
  if (it != servers_.end()) {
    abandoned.insert(it->second.draining.begin(), it->second.draining.end());
    it->second.draining.clear();
  }
  markServerDown(name);
  for (std::uint64_t taskId : abandoned) {
    LOG_WARN("agent: task " << taskId << " abandoned by dead server " << name);
    agent_.onTaskFailed(name, taskId);
  }
}

void AgentDaemon::sendSubmit(const std::string& server, std::uint64_t taskId,
                             const psched::ExecRequest& request) {
  auto it = servers_.find(server);
  if (it == servers_.end() || !it->second.transport || it->second.transport->closed()) {
    // The link died between the decision and the submission; surface it as a
    // task failure so fault tolerance can re-submit elsewhere.
    LOG_WARN("agent: no link to " << server << " for task " << taskId);
    agent_.onTaskFailed(server, taskId);
    return;
  }
  wire::TaskSubmitMsg submit;
  submit.taskId = taskId;
  submit.inMB = request.inMB;
  submit.cpuSeconds = request.cpuSeconds;
  submit.outMB = request.outMB;
  submit.memMB = request.memMB;
  it->second.transport->queue(wire::MessageType::kTaskSubmit, wire::encode(submit));
}

void AgentDaemon::relayTerminal(const metrics::TaskOutcome& outcome) {
  taskOrigins_.erase(outcome.index);
  auto it = taskClients_.find(outcome.index);
  if (it == taskClients_.end()) return;
  auto transport = it->second.lock();
  // Terminal fires exactly once per task; drop the mapping so a long-lived
  // agent does not accumulate one entry per task ever submitted.
  taskClients_.erase(it);
  if (!transport || transport->closed()) return;
  if (outcome.status == metrics::TaskStatus::kCompleted) {
    wire::TaskCompleteMsg done;
    done.taskId = outcome.index;
    done.serverName = outcome.server;
    done.completionTime = outcome.completion;
    done.unloadedDuration = outcome.unloadedDuration;
    transport->queue(wire::MessageType::kTaskComplete, wire::encode(done));
  } else {
    wire::TaskFailedMsg failed;
    failed.taskId = outcome.index;
    failed.serverName = outcome.server;
    failed.reason = "lost";
    transport->queue(wire::MessageType::kTaskFailed, wire::encode(failed));
  }
}

std::size_t AgentDaemon::liveServerCount() const {
  std::size_t n = 0;
  for (const auto& [name, entry] : servers_) {
    if (!entry.retired) ++n;
  }
  return n;
}

std::size_t AgentDaemon::retiredServerCount() const {
  return servers_.size() - liveServerCount();
}

bool AgentDaemon::serverRetired(const std::string& name) const {
  auto it = servers_.find(name);
  return it != servers_.end() && it->second.retired;
}

bool AgentDaemon::serverKnown(const std::string& name) const {
  return servers_.count(name) != 0;
}

}  // namespace casched::net
