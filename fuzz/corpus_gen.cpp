// Regenerates the checked-in libFuzzer seed corpus (fuzz/corpus) from valid
// encoded frames: one file per message type, plus a coalesced envelope, a
// schema hello, and a multi-frame stream. Valid seeds matter - the fuzzer
// mutates from them, so every seed that decodes cleanly puts mutations one
// bit-flip away from the deep decode paths instead of dying at the length
// prefix. Usage: wire_corpus_gen <output-dir>
//
// Builds with any compiler (the libFuzzer target itself is clang-only).

#include <cstdio>
#include <string>
#include <vector>

#include "wire/framing.hpp"
#include "wire/messages.hpp"

namespace {

using namespace casched::wire;

bool writeSeed(const std::string& dir, const std::string& name, const Bytes& bytes) {
  const std::string path = dir + "/" + name + ".bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  std::printf("%s.bin: %zu bytes\n", name.c_str(), bytes.size());
  return true;
}

ScheduleRequestMsg sampleRequest(std::uint64_t id) {
  ScheduleRequestMsg t;
  t.taskId = id;
  t.problem = "matmul-1200";
  t.inMB = 23.0;
  t.outMB = 11.5;
  t.memMB = 96.0;
  t.refSeconds = 183.0;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  std::vector<std::pair<std::string, Bytes>> seeds;
  auto frame = [&](const std::string& name, MessageType type, const Bytes& payload) {
    seeds.emplace_back(name, buildFrame(type, payload));
  };

  RegisterMsg reg;
  reg.serverName = "artimon";
  reg.bwInMBps = 7.4;
  reg.bwOutMBps = 12.1;
  reg.latencyIn = 0.05;
  reg.latencyOut = 0.04;
  reg.ramMB = 512;
  reg.swapMB = 1024;
  reg.speedIndex = 1.37;
  reg.problems = {"matmul-1200", "waste-cpu-400", "*"};
  frame("register", MessageType::kRegister, encode(reg));
  frame("register_ack", MessageType::kRegisterAck,
        encode(RegisterAckMsg{"artimon", true, 12.5}));
  frame("schedule_request", MessageType::kScheduleRequest, encode(sampleRequest(42)));
  frame("schedule_reply", MessageType::kScheduleReply,
        encode(ScheduleReplyMsg{42, {"artimon", "spinnaker", "sloop"}}));

  TaskSubmitMsg submit;
  submit.taskId = 42;
  submit.problem = "matmul-1200";
  submit.inMB = 23.0;
  submit.cpuSeconds = 183.0;
  submit.outMB = 11.5;
  submit.memMB = 96.0;
  frame("task_submit", MessageType::kTaskSubmit, encode(submit));
  frame("task_complete", MessageType::kTaskComplete,
        encode(TaskCompleteMsg{42, "artimon", 211.0, 190.0}));
  frame("task_failed", MessageType::kTaskFailed,
        encode(TaskFailedMsg{42, "artimon", "collapse"}));
  frame("load_report", MessageType::kLoadReport,
        encode(LoadReportMsg{"artimon", 1.5, 60.0, 384.0}));
  frame("server_down", MessageType::kServerDown, encode(ServerDownMsg{"artimon"}));
  frame("server_up", MessageType::kServerUp, encode(ServerUpMsg{"artimon"}));
  frame("shutdown", MessageType::kShutdown, encode(ShutdownMsg{"operator request"}));
  frame("heartbeat", MessageType::kHeartbeat, encode(HeartbeatMsg{"artimon", 33.0}));

  AgentHelloMsg hello;
  hello.agentName = "agent-1";
  hello.mode = "partitioned";
  hello.sampleTime = 5.0;
  hello.ownedServers = {"artimon", "spinnaker"};
  hello.listenPort = 45123;
  frame("agent_hello", MessageType::kAgentHello, encode(hello));

  AgentSyncMsg sync;
  sync.agentName = "agent-1";
  sync.sampleTime = 10.0;
  sync.loads = {{"artimon", 0.5, 9.0}, {"spinnaker", 2.0, 8.0}};
  sync.snapshotSeq = 3;
  sync.chunkIndex = 0;
  sync.chunkCount = 1;
  sync.snapshotChunk = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
  sync.queuedTasks = 4;
  frame("agent_sync", MessageType::kAgentSync, encode(sync));

  frame("stats_request", MessageType::kStatsRequest, encode(StatsRequestMsg{"json"}));

  StatsReplyMsg stats;
  stats.agentName = "agent-1";
  stats.sampleTime = 10.0;
  stats.format = "json";
  stats.body = "{\"counters\":{}}";
  frame("stats_reply", MessageType::kStatsReply, encode(stats));

  ForwardRequestMsg forward;
  forward.task = sampleRequest(77);
  forward.originAgent = "agent-0";
  forward.hops = 1;
  frame("forward_request", MessageType::kForwardRequest, encode(forward));
  frame("forward_deny", MessageType::kForwardDeny,
        encode(ForwardDenyMsg{77, "agent-1", "no feasible server"}));
  frame("schedule_deny", MessageType::kScheduleDeny,
        encode(ScheduleDenyMsg{77, "agent-0", "agent has no registered servers"}));
  frame("steal_request", MessageType::kStealRequest,
        encode(StealRequestMsg{"agent-2", 8}));

  StealGrantMsg grant;
  grant.agentName = "agent-1";
  grant.tasks = {sampleRequest(101), sampleRequest(102), sampleRequest(103)};
  frame("steal_grant", MessageType::kStealGrant, encode(grant));

  frame("resolver_probe", MessageType::kResolverProbe,
        encode(ResolverProbeMsg{9, 123.456}));

  ResolverInfoMsg info;
  info.agentName = "agent-1";
  info.probeId = 9;
  info.echoSendTime = 123.456;
  info.sampleTime = 50.0;
  info.meanLoad = 1.25;
  info.liveServers = 4;
  info.queuedTasks = 2;
  info.peerAddresses = {"127.0.0.1:9001", "127.0.0.1:9002"};
  frame("resolver_info", MessageType::kResolverInfo, encode(info));

  frame("schema_hello", MessageType::kSchemaHello, encode(SchemaHelloMsg{}));
  seeds.emplace_back(
      "coalesced_heartbeats",
      buildCoalescedFrame(MessageType::kHeartbeat,
                          {encode(HeartbeatMsg{"artimon", 1.0}),
                           encode(HeartbeatMsg{"spinnaker", 2.0}),
                           encode(HeartbeatMsg{"sloop", 3.0})}));
  seeds.emplace_back(
      "coalesced_load_reports",
      buildCoalescedFrame(MessageType::kLoadReport,
                          {encode(LoadReportMsg{"artimon", 1.5, 60.0, 384.0}),
                           encode(LoadReportMsg{"spinnaker", 0.5, 61.0, 256.0})}));

  // A handshake-then-traffic stream, as a real connection's first bytes look.
  Bytes stream;
  for (const Bytes& part : {buildFrame(MessageType::kSchemaHello, encode(SchemaHelloMsg{})),
                            buildFrame(MessageType::kRegister, encode(reg)),
                            buildFrame(MessageType::kHeartbeat,
                                       encode(HeartbeatMsg{"artimon", 33.0}))}) {
    stream.insert(stream.end(), part.begin(), part.end());
  }
  seeds.emplace_back("stream_hello_register_heartbeat", stream);

  bool ok = true;
  for (const auto& [name, bytes] : seeds) ok = writeSeed(dir, name, bytes) && ok;
  return ok ? 0 : 1;
}
