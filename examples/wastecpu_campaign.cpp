/// waste-cpu campaign on the paper's second server set - the workflow behind
/// Tables 7 and 8. Mirrors matmul_campaign for the memoryless task family;
/// additionally archives the generated metatasks so runs can be replayed.
///
///   ./wastecpu_campaign --rate 18 --reps 5 --metatasks 3 --save-metatasks dir

#include <iostream>

#include "exp/campaign.hpp"
#include "exp/tables.hpp"
#include "platform/testbed.hpp"
#include "simcore/rng.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workload/task_types.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("wastecpu_campaign",
                       "waste-cpu campaign on server set 2 (Tables 7/8)");
  args.addInt("tasks", 500, "tasks per metatask");
  args.addDouble("rate", 18.0, "mean inter-arrival (s)");
  args.addString("heuristics", "mct,hmct,mp,msf", "comma-separated heuristics");
  args.addInt("reps", 3, "replications");
  args.addInt("metatasks", 3, "distinct metatasks (paper: 3)");
  args.addInt("seed", 42, "master seed");
  args.addDouble("cpu-noise", 0.08, "CPU noise amplitude");
  args.addString("save-metatasks", "", "directory to archive the generated metatasks");
  args.addString("out", "", "optional output dir for table + CSV");
  if (!args.parse(argc, argv)) return 0;

  exp::ExperimentSpec spec;
  spec.name = "wastecpu-campaign";
  spec.testbed = platform::buildSet2();
  spec.metatask.count = static_cast<std::size_t>(args.getInt("tasks"));
  spec.metatask.meanInterarrival = args.getDouble("rate");
  spec.metatask.types = workload::wasteCpuFamily();
  spec.metatask.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  spec.system.cpuNoise = {args.getDouble("cpu-noise"), 5.0};
  spec.system.linkNoise = {args.getDouble("cpu-noise"), 5.0};

  exp::CampaignConfig cc;
  cc.heuristics.clear();
  for (const std::string& h : util::split(args.getString("heuristics"), ',')) {
    cc.heuristics.push_back(std::string(util::trim(h)));
  }
  cc.metataskCount = static_cast<std::size_t>(args.getInt("metatasks"));
  cc.replications = static_cast<std::size_t>(args.getInt("reps"));

  if (!args.getString("save-metatasks").empty()) {
    // Regenerate the campaign's metatasks with the same derivation rule so
    // they can be archived and replayed exactly.
    for (std::size_t m = 0; m < cc.metataskCount; ++m) {
      workload::MetataskConfig mc = spec.metatask;
      mc.seed = simcore::deriveSeed(spec.metatask.seed, 1000 + m);
      mc.name = spec.metatask.name + "-M" + std::to_string(m + 1);
      const auto path =
          args.getString("save-metatasks") + "/metatask_M" + std::to_string(m + 1) + ".csv";
      workload::saveMetatask(workload::generateMetatask(mc), path);
      std::cout << "[archived " << path << "]\n";
    }
  }

  const exp::CampaignResult result = exp::runCampaign(spec, cc);
  const util::TablePrinter table =
      cc.metataskCount > 1
          ? exp::renderMultiMetataskTable(
                util::strformat("waste-cpu campaign, 1/lambda = %gs",
                                spec.metatask.meanInterarrival),
                result)
          : exp::renderSingleMetataskTable(
                util::strformat("waste-cpu campaign, 1/lambda = %gs",
                                spec.metatask.meanInterarrival),
                result);
  table.print(std::cout);
  if (!args.getString("out").empty()) {
    exp::emitTable(table, exp::campaignRawCsv(result), args.getString("out"),
                   "wastecpu_campaign");
  }
  return 0;
}
