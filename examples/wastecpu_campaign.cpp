/// waste-cpu campaign on the paper's second server set - the workflow behind
/// Tables 7 and 8. Mirrors matmul_campaign for the memoryless task family;
/// additionally archives the generated metatasks so runs can be replayed.
/// Starts from the registry entry `paper/table8_wastecpu_high` and rewrites
/// it through the scenario/sweep API before handing it to the suite driver.
///
///   ./wastecpu_campaign --rate 18 --reps 5 --metatasks 3 --save-metatasks dir

#include <iostream>

#include "exp/suite.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "simcore/rng.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("wastecpu_campaign",
                       "waste-cpu campaign on server set 2 (Tables 7/8)");
  args.addInt("tasks", 500, "tasks per metatask");
  args.addDouble("rate", 18.0, "mean inter-arrival (s)");
  args.addString("heuristics", "mct,hmct,mp,msf", "comma-separated heuristics");
  args.addString("ft", "paper", "fault tolerance: scenario | paper | all | none");
  args.addInt("reps", 3, "replications");
  args.addInt("metatasks", 3, "distinct metatasks (paper: 3)");
  args.addInt("seed", 42, "master seed");
  args.addDouble("cpu-noise", 0.08, "CPU and link noise amplitude");
  args.addString("save-metatasks", "", "directory to archive the generated metatasks");
  args.addString("out", "", "optional output dir for table + CSV + JSON");
  try {
    if (!args.parse(argc, argv)) return 0;

    scenario::ScenarioSpec spec =
        scenario::findScenario("paper/table8_wastecpu_high");
    spec.name = "wastecpu_campaign";
    spec.campaign.title = util::strformat("waste-cpu campaign, 1/lambda = %gs",
                                          args.getDouble("rate"));
    spec = scenario::applySweepValue(
        spec, "rate", util::strformat("%g", args.getDouble("rate")));
    spec = scenario::applySweepValue(
        spec, "noise", util::strformat("%g", args.getDouble("cpu-noise")));

    exp::SuiteOptions options;
    options.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    options.taskCount = static_cast<std::size_t>(args.getInt("tasks"));
    options.metatasks = static_cast<std::size_t>(args.getInt("metatasks"));
    options.replications = static_cast<std::size_t>(args.getInt("reps"));
    options.ftPolicy = exp::parseFaultTolerancePolicy(args.getString("ft"));
    for (const std::string& h : util::split(args.getString("heuristics"), ',')) {
      const std::string trimmed(util::trim(h));
      if (!trimmed.empty()) options.heuristics.push_back(trimmed);
    }

    exp::SuiteResult suite;
    suite.seed = options.seed;
    suite.scenarios.push_back(exp::runSuiteScenario(spec, options));
    const exp::SuiteScenarioResult& s = suite.scenarios.front();

    if (!args.getString("save-metatasks").empty()) {
      // Regenerate the campaign's metatasks with the same derivation rule so
      // they can be archived and replayed exactly.
      const workload::MetataskConfig& base = s.variants.front().spec.metatask;
      for (std::size_t m = 0; m < s.campaign.metataskCount; ++m) {
        workload::MetataskConfig mc = base;
        mc.seed = simcore::deriveSeed(base.seed, 1000 + m);
        mc.name = base.name + "-M" + std::to_string(m + 1);
        const auto path = args.getString("save-metatasks") + "/metatask_M" +
                          std::to_string(m + 1) + ".csv";
        workload::saveMetatask(workload::generateMetatask(mc), path);
        std::cout << "[archived " << path << "]\n";
      }
    }

    exp::renderSuiteScenarioTable(s).print(std::cout);
    if (!args.getString("out").empty()) {
      exp::emitSuite(suite, args.getString("out"), "wastecpu_campaign");
    }
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
