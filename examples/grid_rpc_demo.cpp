/// Live demonstration of the middleware protocol over real TCP loopback
/// sockets: one agent, two computational servers and one client, each on its
/// own thread, speaking the casched wire protocol (register / schedule /
/// submit / complete). The agent schedules with the Historical Trace Manager
/// and MSF, exactly like the simulated agent; servers "compute" by sleeping
/// a scaled-down duration.
///
/// This is the paper's deployment story shrunk onto one machine - the
/// simulation benches remain the reproduction vehicle (see DESIGN.md).

#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/htm.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "wire/messages.hpp"
#include "wire/tcp_transport.hpp"

namespace {

using namespace casched;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A computational server: registers, then executes TaskSubmit by sleeping.
void serverMain(const std::string& name, std::uint16_t agentPort, double speedFactor,
                std::atomic<bool>& stop) {
  auto link = wire::TcpTransport::connect("127.0.0.1", agentPort);
  wire::RegisterMsg reg;
  reg.serverName = name;
  reg.bwInMBps = 100.0;
  reg.bwOutMBps = 100.0;
  reg.problems = {"*"};
  link->send(wire::MessageType::kRegister, wire::encode(reg));

  while (!stop.load()) {
    link->poll([&](wire::Frame frame) {
      if (frame.type == wire::MessageType::kShutdown) {
        stop.store(true);
        return;
      }
      if (frame.type != wire::MessageType::kTaskSubmit) return;
      const wire::TaskSubmitMsg task = wire::decodeTaskSubmit(frame.payload);
      // "Compute": sleep the scaled unloaded duration.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(task.cpuSeconds / speedFactor));
      wire::TaskCompleteMsg done;
      done.taskId = task.taskId;
      done.serverName = name;
      done.unloadedDuration = task.cpuSeconds / speedFactor;
      link->send(wire::MessageType::kTaskComplete, wire::encode(done));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  link->close();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("grid_rpc_demo",
                       "Client-agent-server demo over real TCP loopback sockets");
  args.addInt("tasks", 6, "number of client requests");
  args.addDouble("scale", 50.0, "speedup factor applied to task durations");
  if (!args.parse(argc, argv)) return 0;
  const int taskCount = static_cast<int>(args.getInt("tasks"));

  wire::TcpListener listener(0);
  std::cout << "agent listening on 127.0.0.1:" << listener.port() << "\n";

  std::atomic<bool> stopServers{false};
  std::thread s1(serverMain, "fast-server", listener.port(), 1.0,
                 std::ref(stopServers));
  std::thread s2(serverMain, "slow-server", listener.port(), 0.25,
                 std::ref(stopServers));

  // The agent accepts the two servers, then the client.
  std::vector<std::shared_ptr<wire::TcpTransport>> peers;
  for (int i = 0; i < 2; ++i) {
    auto conn = listener.accept(3000);
    if (!conn) {
      std::cerr << "server failed to connect\n";
      return 1;
    }
    peers.push_back(std::move(conn));
  }

  // Agent state: HTM + registry, exactly the simulated agent's brain.
  core::HistoricalTraceManager htm;
  std::map<std::string, std::shared_ptr<wire::TcpTransport>> serverLinks;
  const Clock::time_point start = Clock::now();
  const double scale = args.getDouble("scale");

  // Drain registrations from both connections.
  for (int tries = 0; tries < 3000 && serverLinks.size() < peers.size(); ++tries) {
    for (auto& peer : peers) {
      peer->poll([&](wire::Frame frame) {
        if (frame.type != wire::MessageType::kRegister) return;
        const wire::RegisterMsg reg = wire::decodeRegister(frame.payload);
        htm.addServer(core::ServerModel{reg.serverName, reg.bwInMBps, reg.bwOutMBps, 0, 0});
        serverLinks[reg.serverName] = peer;
        std::cout << "agent: registered " << reg.serverName << "\n";
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (serverLinks.size() != 2) {
    std::cerr << "registration incomplete\n";
    stopServers.store(true);
    s1.join();
    s2.join();
    return 1;
  }

  // The "client" lives in this thread: submit tasks through the agent.
  // Unloaded durations (seconds on the fast server) in paper-like magnitudes.
  const double durations[] = {16.0, 30.6, 45.6, 16.0, 30.6, 45.6, 16.0, 30.6};
  std::map<std::uint64_t, std::string> placed;
  std::map<std::uint64_t, double> doneAt;

  for (int i = 0; i < taskCount; ++i) {
    const auto id = static_cast<std::uint64_t>(i + 1);
    const double cpuSeconds = durations[i % 8];
    const double now = secondsSince(start) * scale;  // agent clock in task-time

    // MSF over the HTM, as in the paper's fig. 4.
    std::string best;
    double bestScore = 0.0;
    for (const std::string& server : htm.serverNames()) {
      // The slow server runs at 1/4 speed: the agent knows the static costs.
      const double cost = server == "fast-server" ? cpuSeconds : 4.0 * cpuSeconds;
      const core::Preview p = htm.preview(server, core::TaskDims{0, cost, 0}, now);
      const double score = p.sumPerturbation + (p.completionNew - now);
      if (best.empty() || score < bestScore) {
        best = server;
        bestScore = score;
      }
    }
    const double cost = best == "fast-server" ? cpuSeconds : 4.0 * cpuSeconds;
    htm.commit(best, id, core::TaskDims{0, cost, 0}, now);
    placed[id] = best;

    wire::TaskSubmitMsg submit;
    submit.taskId = id;
    submit.problem = "waste-cpu";
    // The wire carries the fast machine's unloaded duration in demo wall
    // seconds; each server divides by its own speed factor when executing.
    submit.cpuSeconds = cpuSeconds / scale;
    serverLinks[best]->send(wire::MessageType::kTaskSubmit, wire::encode(submit));
    std::cout << util::strformat("agent: task %llu (%.0fs of work) -> %s\n",
                                 static_cast<unsigned long long>(id), cpuSeconds,
                                 best.c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  // Collect completions.
  while (doneAt.size() < static_cast<std::size_t>(taskCount)) {
    for (auto& [name, link] : serverLinks) {
      link->poll([&](wire::Frame frame) {
        if (frame.type != wire::MessageType::kTaskComplete) return;
        const wire::TaskCompleteMsg done = wire::decodeTaskComplete(frame.payload);
        const double at = secondsSince(start);
        doneAt[done.taskId] = at;
        htm.onTaskCompleted(done.serverName, done.taskId, at * scale);
        std::cout << util::strformat("agent: task %llu completed on %s at wall t=%.2fs\n",
                                     static_cast<unsigned long long>(done.taskId),
                                     done.serverName.c_str(), at);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (secondsSince(start) > 60.0) {
      std::cerr << "timeout waiting for completions\n";
      break;
    }
  }

  for (auto& [name, link] : serverLinks) {
    link->send(wire::MessageType::kShutdown, wire::encode(wire::ShutdownMsg{"done"}));
  }
  stopServers.store(true);
  s1.join();
  s2.join();
  std::cout << "demo finished: " << doneAt.size() << "/" << taskCount
            << " tasks completed over real sockets\n";
  return doneAt.size() == static_cast<std::size_t>(taskCount) ? 0 : 1;
}
