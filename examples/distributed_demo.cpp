/// Minimal distributed-runtime example: run a registry scenario end to end
/// over real TCP loopback sockets through the in-process harness - one agent
/// daemon, one server daemon per testbed machine, and a client replaying the
/// scenario's metatask, with the churn timeline applied as live membership
/// events. This replaces the former hand-rolled grid_rpc_demo; the full CLI
/// (separate agent / server / client processes) lives in `casched_net`.

#include <iostream>

#include "net/loopback.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("distributed_demo",
                       "Registry scenario over real TCP loopback sockets");
  args.addString("scenario", "live-loopback", "registry scenario to run");
  args.addString("heuristic", "msf", "scheduler heuristic");
  args.addDouble("scale", 200.0, "simulated seconds per wall second");
  args.addInt("seed", 1, "scenario compilation seed");
  if (!args.parse(argc, argv)) return 0;

  net::LiveRunOptions options;
  options.heuristic = args.getString("heuristic");
  options.timeScale = args.getDouble("scale");
  options.seed = static_cast<std::uint64_t>(args.getInt("seed"));

  try {
    const net::LiveRunReport report =
        net::runLoopbackScenario(args.getString("scenario"), options);
    std::cout << net::liveRunJson(report) << "\n";
    return report.completed == report.tasks ? 0 : 1;
  } catch (const util::Error& e) {
    std::cerr << "distributed_demo: " << e.what() << "\n";
    return 1;
  }
}
