/// Gantt chart visualizer: builds a configurable scenario on one server and
/// renders the Historical Trace Manager's simulated schedule as ASCII art
/// (paper fig. 1) plus a CSV for external plotting.
///
///   ./gantt_visualizer --tasks 6 --rate 12 --preview 40
///
/// `--preview W` additionally shows what mapping one more W-second task NOW
/// would do to every running task (the perturbations).

#include <fstream>
#include <iostream>

#include "core/htm.hpp"
#include "platform/testbed.hpp"
#include "simcore/rng.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workload/task_types.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("gantt_visualizer", "Render the HTM's schedule of one server");
  args.addInt("tasks", 6, "number of tasks to map");
  args.addDouble("rate", 12.0, "mean inter-arrival (s)");
  args.addInt("seed", 3, "scenario seed");
  args.addString("server", "artimon", "paper machine to model");
  args.addDouble("preview", 0.0, "if > 0: preview one more task of this many cpu-seconds");
  args.addString("csv", "", "optional CSV output path");
  if (!args.parse(argc, argv)) return 0;

  const auto spec = platform::buildPaperMachine(args.getString("server"));
  core::HistoricalTraceManager htm;
  htm.addServer(core::ServerModel{spec.name, spec.bwInMBps, spec.bwOutMBps,
                                  spec.latencyIn, spec.latencyOut});

  const auto costs = platform::paperCostModel();
  const auto family = workload::matmulFamily();
  simcore::RandomStream rng(static_cast<std::uint64_t>(args.getInt("seed")));

  double t = 0.0;
  for (std::uint64_t id = 1; id <= static_cast<std::uint64_t>(args.getInt("tasks")); ++id) {
    t += rng.exponentialMean(args.getDouble("rate"));
    const workload::TaskType& type = family[static_cast<std::size_t>(rng.uniformInt(0, 2))];
    htm.commit(spec.name, id,
               core::TaskDims{type.inMB,
                              costs.computeCost(spec.name, type.name, type.refSeconds),
                              type.outMB},
               t);
    std::cout << util::strformat("t=%7.2f  mapped task %llu (%s)\n", t,
                                 static_cast<unsigned long long>(id), type.name.c_str());
  }
  std::cout << "\n" << renderGanttAscii(htm.gantt(spec.name, t));

  if (args.getDouble("preview") > 0.0) {
    const core::Preview p =
        htm.preview(spec.name, core::TaskDims{5.0, args.getDouble("preview"), 2.0}, t);
    std::cout << util::strformat(
        "\nPreview: one more %.0fs task now would finish at t=%.2f and delay %zu "
        "running task(s) by a total of %.2fs:\n",
        args.getDouble("preview"), p.completionNew, p.perturbedCount, p.sumPerturbation);
    for (const core::Perturbation& pi : p.perTask) {
      std::cout << util::strformat("  pi_%llu = %.2fs\n",
                                   static_cast<unsigned long long>(pi.taskId), pi.delta);
    }
  }

  if (!args.getString("csv").empty()) {
    const std::string csv = core::ganttToCsv(htm.gantt(spec.name, t));
    std::ofstream os(args.getString("csv"), std::ios::trunc);
    os << csv;
    std::cout << "\n[wrote " << args.getString("csv") << "]\n";
  }
  return 0;
}
