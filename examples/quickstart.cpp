/// Quickstart: the library in one file.
///
/// Builds a small heterogeneous platform, submits a 12-task metatask through
/// the client-agent-server middleware under two heuristics (NetSolve-style
/// MCT and the paper's MSF), prints the section-3 metrics side by side, and
/// shows the Historical Trace Manager's view of one server (paper fig. 1).
///
///   ./quickstart [--tasks N] [--rate SECONDS] [--seed S]

#include <iostream>

#include "util/strings.hpp"

#include "cas/system.hpp"
#include "core/htm.hpp"
#include "exp/campaign.hpp"
#include "metrics/metrics.hpp"
#include "platform/testbed.hpp"
#include "util/cli.hpp"
#include "workload/metatask.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("quickstart", "casched in one file");
  args.addInt("tasks", 12, "metatask size");
  args.addDouble("rate", 25.0, "mean inter-arrival (s)");
  args.addInt("seed", 1, "master seed");
  if (!args.parse(argc, argv)) return 0;

  // 1. A platform: the paper's second server set (Table 2 machines with the
  //    Table 4 cost calibration baked in).
  platform::Testbed testbed = platform::buildSet2();
  std::cout << "Platform '" << testbed.name << "' with " << testbed.servers.size()
            << " time-shared servers\n\n";

  // 2. A workload: Poisson arrivals over the waste-cpu task family.
  workload::MetataskConfig mc;
  mc.count = static_cast<std::size_t>(args.getInt("tasks"));
  mc.meanInterarrival = args.getDouble("rate");
  mc.types = workload::wasteCpuFamily();
  mc.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  const workload::Metatask metatask = workload::generateMetatask(mc);
  std::cout << "Metatask: " << metatask.size() << " tasks, last arrival at t="
            << util::formatNumber(metatask.lastArrival()) << "s\n\n";

  // 3. Run the same metatask under two heuristics and compare.
  for (const char* heuristicName : {"mct", "msf"}) {
    const std::string heuristic = heuristicName;
    cas::SystemConfig config;
    config.faultTolerance = (heuristic == "mct");  // NetSolve's MCT has it
    const metrics::RunResult run =
        cas::runExperimentSystem(testbed, metatask, heuristic, config);
    std::cout << heuristic << ": " << metrics::formatMetrics(metrics::computeMetrics(run))
              << "\n";
    for (const auto& task : run.tasks) {
      std::cout << "    task " << task.index << " (" << task.typeName << ") -> "
                << task.server << ", flow "
                << util::formatNumber(task.completion - task.arrival, 1) << "s\n";
    }
    std::cout << "\n";
  }

  // 4. Peek inside the HTM: the paper's "usefulness" example (section 2.3).
  core::HistoricalTraceManager htm;
  htm.addServer(core::ServerModel{"s1", 10.0, 10.0, 0.0, 0.0});
  htm.addServer(core::ServerModel{"s2", 10.0, 10.0, 0.0, 0.0});
  htm.commit("s1", 1, core::TaskDims{0, 100, 0}, 0.0);
  htm.commit("s2", 2, core::TaskDims{0, 200, 0}, 0.0);
  const core::Preview p1 = htm.preview("s1", core::TaskDims{0, 100, 0}, 80.0);
  const core::Preview p2 = htm.preview("s2", core::TaskDims{0, 100, 0}, 80.0);
  std::cout << "HTM usefulness example (both servers look equally loaded at t=80):\n"
            << "  mapping the new task on s1 finishes at t="
            << util::formatNumber(p1.completionNew) << "\n"
            << "  mapping the new task on s2 finishes at t="
            << util::formatNumber(p2.completionNew)
            << "  -> the HTM knows s1 is the right choice\n\n";
  std::cout << "HTM Gantt chart of s1 after committing the new task there:\n";
  htm.commit("s1", 3, core::TaskDims{0, 100, 0}, 80.0);
  std::cout << renderGanttAscii(htm.gantt("s1", 80.0));
  return 0;
}
