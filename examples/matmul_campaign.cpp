/// Full matrix-multiplication campaign on the paper's first server set -
/// the workflow behind Tables 5 and 6, fully parameterized. Useful to
/// explore regimes the paper did not publish (different rates, schedulers,
/// fault-tolerance policies, noise levels).
///
///   ./matmul_campaign --rate 21 --heuristics mct,hmct,mp,msf,mni --reps 5

#include <iostream>

#include "exp/campaign.hpp"
#include "exp/tables.hpp"
#include "platform/testbed.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workload/task_types.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("matmul_campaign",
                       "Matrix-multiplication campaign on server set 1 (Tables 5/6)");
  args.addInt("tasks", 500, "tasks per metatask");
  args.addDouble("rate", 30.0, "mean inter-arrival (s)");
  args.addString("heuristics", "mct,hmct,mp,msf", "comma-separated heuristics");
  args.addString("ft", "paper", "fault tolerance: paper | all | none");
  args.addInt("reps", 3, "replications");
  args.addInt("metatasks", 1, "distinct metatasks");
  args.addInt("seed", 42, "master seed");
  args.addDouble("cpu-noise", 0.08, "CPU noise amplitude");
  args.addDouble("report-period", 30.0, "MCT load-report period (s)");
  args.addString("out", "", "optional output dir for table + CSV");
  if (!args.parse(argc, argv)) return 0;

  exp::ExperimentSpec spec;
  spec.name = "matmul-campaign";
  spec.testbed = platform::buildSet1();
  spec.metatask.count = static_cast<std::size_t>(args.getInt("tasks"));
  spec.metatask.meanInterarrival = args.getDouble("rate");
  spec.metatask.types = workload::matmulFamily();
  spec.metatask.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  spec.system.reportPeriod = args.getDouble("report-period");
  spec.system.cpuNoise = {args.getDouble("cpu-noise"), 5.0};
  spec.system.linkNoise = {args.getDouble("cpu-noise"), 5.0};

  exp::CampaignConfig cc;
  cc.heuristics.clear();
  for (const std::string& h : util::split(args.getString("heuristics"), ',')) {
    cc.heuristics.push_back(std::string(util::trim(h)));
  }
  cc.metataskCount = static_cast<std::size_t>(args.getInt("metatasks"));
  cc.replications = static_cast<std::size_t>(args.getInt("reps"));
  const std::string ft = args.getString("ft");
  cc.ftPolicy = ft == "all"    ? exp::FaultTolerancePolicy::kAll
                : ft == "none" ? exp::FaultTolerancePolicy::kNone
                               : exp::FaultTolerancePolicy::kPaper;

  const exp::CampaignResult result = exp::runCampaign(spec, cc);
  const util::TablePrinter table =
      cc.metataskCount > 1
          ? exp::renderMultiMetataskTable(
                util::strformat("matmul campaign, 1/lambda = %gs", spec.metatask.meanInterarrival),
                result)
          : exp::renderSingleMetataskTable(
                util::strformat("matmul campaign, 1/lambda = %gs", spec.metatask.meanInterarrival),
                result);
  table.print(std::cout);
  std::cout << "\n";
  exp::renderServerDiagnostics("Per-server diagnostics", result).print(std::cout);
  if (!args.getString("out").empty()) {
    exp::emitTable(table, exp::campaignRawCsv(result), args.getString("out"),
                   "matmul_campaign");
  }
  return 0;
}
