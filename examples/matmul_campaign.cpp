/// Full matrix-multiplication campaign on the paper's first server set -
/// the workflow behind Tables 5 and 6, fully parameterized. Useful to
/// explore regimes the paper did not publish (different rates, schedulers,
/// fault-tolerance policies, noise levels). Starts from the registry entry
/// `paper/table5_matmul_low` and rewrites it through the scenario/sweep API
/// before handing it to the suite driver - no hand-built specs.
///
///   ./matmul_campaign --rate 21 --heuristics mct,hmct,mp,msf,mni --reps 5

#include <iostream>

#include "exp/suite.hpp"
#include "exp/tables.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("matmul_campaign",
                       "Matrix-multiplication campaign on server set 1 (Tables 5/6)");
  args.addInt("tasks", 500, "tasks per metatask");
  args.addDouble("rate", 30.0, "mean inter-arrival (s)");
  args.addString("heuristics", "mct,hmct,mp,msf", "comma-separated heuristics");
  args.addString("ft", "paper", "fault tolerance: scenario | paper | all | none");
  args.addInt("reps", 3, "replications");
  args.addInt("metatasks", 1, "distinct metatasks");
  args.addInt("seed", 42, "master seed");
  args.addDouble("cpu-noise", 0.08, "CPU and link noise amplitude");
  args.addDouble("report-period", 30.0, "MCT load-report period (s)");
  args.addString("out", "", "optional output dir for table + CSV + JSON");
  try {
    if (!args.parse(argc, argv)) return 0;

    scenario::ScenarioSpec spec =
        scenario::findScenario("paper/table5_matmul_low");
    spec.name = "matmul_campaign";
    spec.campaign.title =
        util::strformat("matmul campaign, 1/lambda = %gs", args.getDouble("rate"));
    spec = scenario::applySweepValue(
        spec, "rate", util::strformat("%g", args.getDouble("rate")));
    spec = scenario::applySweepValue(
        spec, "noise", util::strformat("%g", args.getDouble("cpu-noise")));
    spec = scenario::applySweepValue(
        spec, "report-period",
        util::strformat("%g", args.getDouble("report-period")));

    exp::SuiteOptions options;
    options.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    options.taskCount = static_cast<std::size_t>(args.getInt("tasks"));
    options.metatasks = static_cast<std::size_t>(args.getInt("metatasks"));
    options.replications = static_cast<std::size_t>(args.getInt("reps"));
    options.ftPolicy = exp::parseFaultTolerancePolicy(args.getString("ft"));
    for (const std::string& h : util::split(args.getString("heuristics"), ',')) {
      const std::string trimmed(util::trim(h));
      if (!trimmed.empty()) options.heuristics.push_back(trimmed);
    }

    exp::SuiteResult suite;
    suite.seed = options.seed;
    suite.scenarios.push_back(exp::runSuiteScenario(spec, options));
    const exp::SuiteScenarioResult& s = suite.scenarios.front();
    exp::renderSuiteScenarioTable(s).print(std::cout);
    std::cout << "\n";
    exp::renderServerDiagnostics("Per-server diagnostics",
                                 s.variants.front().result)
        .print(std::cout);
    if (!args.getString("out").empty()) {
      exp::emitSuite(suite, args.getString("out"), "matmul_campaign");
    }
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
