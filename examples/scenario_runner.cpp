/// Scenario runner: compiles a declarative scenario (registry entry or file)
/// and runs it under one or more heuristics, printing a comparison table and
/// the membership events that fired.
///
///   ./scenario_runner --scenario churny-grid --heuristics mct,hmct
///   ./scenario_runner --file my.scn --seed 7
///   ./scenario_runner --list

#include <iostream>

#include "exp/runner.hpp"
#include "metrics/metrics.hpp"
#include "scenario/generate.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace casched;
  util::ArgParser args("scenario_runner", "run a declarative scenario");
  args.addString("scenario", "churny-grid", "registry scenario name");
  args.addString("file", "", "scenario file (overrides --scenario)");
  args.addString("heuristics", "mct,hmct,mp,msf", "comma-separated heuristics");
  args.addInt("seed", 42, "master seed");
  args.addString("ft", "scenario", "fault tolerance: scenario | paper | all | none");
  args.addBool("list", false, "list registry scenarios and exit");
  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.getBool("list")) {
      for (const std::string& name : scenario::scenarioNames()) {
        const scenario::ScenarioSpec s = scenario::findScenario(name);
        std::cout << util::strformat("%-26s %s%s\n", name.c_str(),
                                     s.description.c_str(),
                                     s.sweep.empty() ? "" : " [sweep]");
      }
      return 0;
    }

    const std::string file = args.getString("file");
    const scenario::ScenarioSpec spec =
        file.empty() ? scenario::findScenario(args.getString("scenario"))
                     : scenario::loadScenario(file);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
    const scenario::CompiledScenario compiled = scenario::compileScenario(spec, seed);

    std::cout << "Scenario '" << compiled.name << "': " << spec.description << "\n"
              << "  platform: " << compiled.testbed.servers.size() << " servers ("
              << compiled.testbed.name << ")\n"
              << "  workload: " << compiled.metatask.size() << " tasks, "
              << workload::arrivalKindName(spec.arrival.pattern.kind)
              << " arrivals, last at t="
              << util::formatNumber(compiled.metatask.lastArrival()) << "s\n"
              << "  churn:    " << compiled.churn.size() << " scheduled events\n\n";

    const exp::FaultTolerancePolicy ftPolicy =
        exp::parseFaultTolerancePolicy(args.getString("ft"));
    util::TablePrinter table("Scenario '" + compiled.name + "' (seed " +
                             std::to_string(seed) + ")");
    table.setHeader({"heuristic", "completed", "lost", "makespan", "mean flow",
                     "mean stretch", "joins", "leaves", "crashes", "slowdowns",
                     "links"});
    for (const std::string& h : util::split(args.getString("heuristics"), ',')) {
      const std::string heuristic = std::string(util::trim(h));
      if (heuristic.empty()) continue;
      scenario::CompiledScenario run = compiled;
      run.system.faultTolerance = exp::resolveFaultTolerance(
          ftPolicy, heuristic, compiled.system.faultTolerance);
      const metrics::RunResult result = scenario::runScenario(run, heuristic);
      const metrics::RunMetrics m = metrics::computeMetrics(result);
      table.addRow({heuristic, std::to_string(m.completed), std::to_string(m.lost),
                    util::formatNumber(m.makespan), util::formatNumber(m.meanFlow),
                    util::formatNumber(m.meanStretch, 2),
                    std::to_string(result.churn.joins),
                    std::to_string(result.churn.leaves),
                    std::to_string(result.churn.crashes),
                    std::to_string(result.churn.slowdowns),
                    std::to_string(result.churn.links)});
    }
    table.print(std::cout);
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
