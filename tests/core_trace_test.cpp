// Tests of the ServerTrace - the HTM's per-server analytic simulation - and
// of the Gantt chart extraction (paper figure 1).

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/server_trace.hpp"

namespace casched::core {
namespace {

ServerModel bareModel(double bwIn = 10.0, double bwOut = 10.0, double latIn = 0.0,
                      double latOut = 0.0) {
  return ServerModel{"s", bwIn, bwOut, latIn, latOut};
}

TEST(ServerTrace, SingleTaskPhases) {
  ServerTrace trace(bareModel(10.0, 5.0, 0.5, 0.25));
  trace.admit(1, TaskDims{20.0, 10.0, 5.0}, 0.0);
  // 0.5 + 2 + 10 + 0.25 + 1 = 13.75
  EXPECT_NEAR(trace.predictCompletion(1), 13.75, 1e-9);
}

TEST(ServerTrace, StartDelayShiftsEverything) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0, 2.5);
  EXPECT_NEAR(trace.predictCompletion(1), 12.5, 1e-9);
}

TEST(ServerTrace, EqualShareCompute) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 10.0, 0.0}, 0.0);
  const auto done = trace.predictCompletions();
  EXPECT_NEAR(done.at(1), 20.0, 1e-9);
  EXPECT_NEAR(done.at(2), 20.0, 1e-9);
}

TEST(ServerTrace, LateArrivalMatchesHandComputation) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 10.0, 0.0}, 5.0);  // advances to t=5 first
  const auto done = trace.predictCompletions();
  EXPECT_NEAR(done.at(1), 15.0, 1e-9);
  EXPECT_NEAR(done.at(2), 20.0, 1e-9);
}

TEST(ServerTrace, TransfersShareLinkComputesShareCpuIndependently) {
  // Task 1 computes while task 2 transfers: no interference.
  ServerTrace trace(bareModel(10.0, 10.0));
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);     // pure compute, done at 10
  trace.admit(2, TaskDims{50.0, 0.0, 0.0}, 0.0);     // pure transfer, done at 5
  const auto done = trace.predictCompletions();
  EXPECT_NEAR(done.at(1), 10.0, 1e-9);
  EXPECT_NEAR(done.at(2), 5.0, 1e-9);
}

TEST(ServerTrace, TwoTransfersHalveBandwidth) {
  ServerTrace trace(bareModel(10.0, 10.0));
  trace.admit(1, TaskDims{20.0, 0.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{20.0, 0.0, 0.0}, 0.0);
  const auto done = trace.predictCompletions();
  EXPECT_NEAR(done.at(1), 4.0, 1e-9);
  EXPECT_NEAR(done.at(2), 4.0, 1e-9);
}

TEST(ServerTrace, AdvanceToRetiresFinishedTasks) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.advanceTo(10.0 + 1e-6);
  EXPECT_EQ(trace.activeTasks(), 0u);
  EXPECT_EQ(trace.predictCompletion(1), simcore::kTimeInfinity);
}

TEST(ServerTrace, AdvancePartial) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.advanceTo(4.0);
  EXPECT_EQ(trace.activeTasks(), 1u);
  EXPECT_NEAR(trace.predictCompletion(1), 10.0, 1e-9);
  EXPECT_NEAR(trace.totalRemainingCpuSeconds(), 6.0, 1e-9);
}

TEST(ServerTrace, RemoveTask) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 10.0, 0.0}, 0.0);
  EXPECT_TRUE(trace.remove(1));
  EXPECT_FALSE(trace.remove(1));
  EXPECT_NEAR(trace.predictCompletion(2), 10.0, 1e-9);
}

TEST(ServerTrace, ClearDropsEverything) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.clear();
  EXPECT_EQ(trace.activeTasks(), 0u);
}

TEST(ServerTrace, PredictIsNonMutating) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  const auto first = trace.predictCompletions();
  const auto second = trace.predictCompletions();
  EXPECT_EQ(first.size(), second.size());
  EXPECT_NEAR(first.at(1), second.at(1), 1e-12);
  EXPECT_EQ(trace.activeTasks(), 1u);
}

TEST(ServerTrace, CopySemanticsForHypotheticals) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  ServerTrace copy = trace;
  copy.admit(2, TaskDims{0.0, 10.0, 0.0}, 0.0);
  EXPECT_NEAR(copy.predictCompletion(1), 20.0, 1e-9);
  EXPECT_NEAR(trace.predictCompletion(1), 10.0, 1e-9);  // original untouched
}

TEST(ServerTrace, DuplicateAdmitRejected) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  EXPECT_THROW(trace.admit(1, TaskDims{0.0, 1.0, 0.0}, 1.0), util::Error);
}

TEST(ServerTrace, ZeroEverythingTaskNeverEntersTrace) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 0.0, 0.0}, 3.0);
  EXPECT_EQ(trace.activeTasks(), 0u);
}

TEST(ServerTrace, PaperFigure1Scenario) {
  // Paper fig. 1: two tasks running, a third arrives; shares move
  // 100% -> 50% -> 33.3% and completion dates shift (the perturbation).
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 30.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 30.0, 0.0}, 10.0);
  const auto before = trace.predictCompletions();
  // t in [0,10): T1 alone (10 done). [10,...): share 1/2.
  // T1: 20 left at 1/2 -> done at 50. T2: 30 at 1/2 until T1 done...
  // T1 done at 50; T2 has 30 - 20 = 10 left, alone -> done at 60.
  EXPECT_NEAR(before.at(1), 50.0, 1e-9);
  EXPECT_NEAR(before.at(2), 60.0, 1e-9);

  ServerTrace with = trace;
  with.admit(3, TaskDims{0.0, 30.0, 0.0}, 20.0);
  const auto after = with.predictCompletions();
  // Hand-computed: [0,10) T1 alone; [10,20) T1,T2 at 1/2 (T1 has 15 left at
  // t=20, T2 has 25); [20,...) three-way at 1/3: T1 done at 20+45=65;
  // then T2 (25-15=10 left) and T3 (30-15=15) at 1/2: T2 done at 85;
  // T3 (15-10=5 left) alone: done at 90.
  EXPECT_NEAR(after.at(1), 65.0, 1e-9);
  EXPECT_NEAR(after.at(2), 85.0, 1e-9);
  EXPECT_NEAR(after.at(3), 90.0, 1e-9);
  // Perturbations pi_1 = 15, pi_2 = 25.
  EXPECT_NEAR(after.at(1) - before.at(1), 15.0, 1e-9);
  EXPECT_NEAR(after.at(2) - before.at(2), 25.0, 1e-9);
}

TEST(Gantt, SegmentsCoverExecution) {
  ServerTrace trace(bareModel(10.0, 10.0, 0.0, 0.0));
  trace.admit(1, TaskDims{10.0, 5.0, 10.0}, 0.0);
  const GanttChart chart = trace.simulateGantt();
  ASSERT_FALSE(chart.empty());
  EXPECT_NEAR(chart.horizon, 7.0, 1e-9);  // 1 + 5 + 1
  double total = 0.0;
  for (const auto& seg : chart.segments) {
    EXPECT_LE(seg.start, seg.end);
    EXPECT_GT(seg.share, 0.0);
    EXPECT_LE(seg.share, 1.0);
    total += seg.end - seg.start;
  }
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST(Gantt, SharesReflectConcurrency) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 10.0, 0.0}, 0.0);
  const GanttChart chart = trace.simulateGantt();
  for (const auto& seg : chart.segments) {
    EXPECT_NEAR(seg.share, 0.5, 1e-9);  // both compute the whole time
  }
}

TEST(Gantt, AsciiRenderContainsTasksAndLegend) {
  ServerTrace trace(bareModel(10.0, 10.0, 0.1, 0.1));
  trace.admit(7, TaskDims{5.0, 3.0, 5.0}, 0.0);
  const std::string out = renderGanttAscii(trace.simulateGantt());
  EXPECT_NE(out.find("task 7"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
}

TEST(Gantt, EmptyChartRenders) {
  ServerTrace trace(bareModel());
  const std::string out = renderGanttAscii(trace.simulateGantt());
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(Gantt, CsvHasOneRowPerSegment) {
  ServerTrace trace(bareModel());
  trace.admit(1, TaskDims{0.0, 10.0, 0.0}, 0.0);
  trace.admit(2, TaskDims{0.0, 5.0, 0.0}, 0.0);
  const GanttChart chart = trace.simulateGantt();
  const std::string csv = ganttToCsv(chart);
  const auto lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, chart.segments.size() + 1);  // header
}

TEST(ServerTrace, PhaseNames) {
  EXPECT_EQ(tracePhaseName(TracePhase::kCompute), "compute");
  EXPECT_EQ(tracePhaseName(TracePhase::kTransferIn), "transfer-in");
  EXPECT_EQ(tracePhaseName(TracePhase::kDone), "done");
}

}  // namespace
}  // namespace casched::core
