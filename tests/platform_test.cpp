// Tests of the machine catalog (paper Table 2), the cost calibration
// (Tables 3-4) and the testbed presets.

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "platform/calibration.hpp"
#include "platform/machine_catalog.hpp"
#include "platform/testbed.hpp"

namespace casched::platform {
namespace {

TEST(Catalog, HasAllEightMachines) {
  EXPECT_EQ(machineCatalog().size(), 8u);
  EXPECT_TRUE(findMachine("chamagne").has_value());
  EXPECT_TRUE(findMachine("zanzibar").has_value());
  EXPECT_FALSE(findMachine("unknown").has_value());
}

TEST(Catalog, Table2Values) {
  const auto pulney = findMachine("pulney");
  ASSERT_TRUE(pulney.has_value());
  EXPECT_EQ(pulney->cpuMHz, 1400);
  EXPECT_DOUBLE_EQ(pulney->ramMB, 256.0);
  EXPECT_DOUBLE_EQ(pulney->swapMB, 533.0);
  EXPECT_EQ(pulney->role, MachineRole::kServer);
  const auto agent = findMachine("xrousse");
  ASSERT_TRUE(agent.has_value());
  EXPECT_EQ(agent->role, MachineRole::kAgent);
  EXPECT_EQ(findMachine("zanzibar")->role, MachineRole::kClient);
}

TEST(Catalog, RoleNames) {
  EXPECT_EQ(roleName(MachineRole::kServer), "server");
  EXPECT_EQ(roleName(MachineRole::kAgent), "agent");
  EXPECT_EQ(roleName(MachineRole::kClient), "client");
}

TEST(Calibration, CostTablesMatchPaperEntries) {
  const PhaseCostTable& mm = matmulCostTable();
  ASSERT_EQ(mm.machines.size(), 4u);
  ASSERT_EQ(mm.params.size(), 3u);
  // Spot checks against Table 3.
  EXPECT_DOUBLE_EQ(mm.computeSeconds[0][0], 149.0);  // chamagne, 1200
  EXPECT_DOUBLE_EQ(mm.computeSeconds[2][3], 40.0);   // pulney, 1800
  EXPECT_DOUBLE_EQ(mm.inputSeconds[1][2], 5.0);      // artimon, 1500
  const PhaseCostTable& wc = wasteCpuCostTable();
  EXPECT_DOUBLE_EQ(wc.computeSeconds[0][1], 16.0);    // spinnaker, 200
  EXPECT_DOUBLE_EQ(wc.computeSeconds[2][0], 273.28);  // valette, 600
}

TEST(Calibration, CostModelLookupExactAndFallback) {
  const CostModel model = paperCostModel();
  EXPECT_DOUBLE_EQ(model.computeCost("chamagne", "matmul-1200", 18.0), 149.0);
  EXPECT_DOUBLE_EQ(model.computeCost("valette", "waste-cpu-400", 34.2), 182.52);
  // Unknown type on a known machine: refSeconds / speedIndex.
  const double fallback = model.computeCost("chamagne", "custom-task", 18.0);
  EXPECT_NEAR(fallback, 18.0 / (18.0 / 149.0), 1e-9);
  // Unknown machine entirely: speed index 1.
  EXPECT_DOUBLE_EQ(model.computeCost("mystery", "custom-task", 18.0), 18.0);
}

TEST(Calibration, CostModelValidation) {
  CostModel model;
  EXPECT_THROW(model.setComputeCost("m", "t", 0.0), util::Error);
  EXPECT_THROW(model.setSpeedIndex("m", -1.0), util::Error);
  EXPECT_THROW(model.computeCost("m", "t", 0.0), util::Error);  // no fallback
}

TEST(Calibration, LinkBandwidthsRecoverTable3Times) {
  // The calibrated bandwidth must reproduce the paper's transfer costs to
  // within the table's 1-second rounding.
  const PhaseCostTable& mm = matmulCostTable();
  for (std::size_t m = 0; m < mm.machines.size(); ++m) {
    const LinkCalibration cal = calibrateLink(mm.machines[m]);
    for (std::size_t p = 0; p < mm.params.size(); ++p) {
      const double modelTime =
          cal.latencyIn + matmulInputMB(mm.params[p]) / cal.bwInMBps;
      EXPECT_NEAR(modelTime, mm.inputSeconds[p][m], 1.0)
          << mm.machines[m] << " size " << mm.params[p];
    }
  }
}

TEST(Calibration, UnknownMachineGetsNominalLan) {
  const LinkCalibration cal = calibrateLink("valette");
  EXPECT_GT(cal.bwInMBps, 0.0);
  EXPECT_GT(cal.bwOutMBps, 0.0);
}

TEST(Testbed, Set1ServersMatchPaper) {
  const Testbed bed = buildSet1();
  ASSERT_EQ(bed.servers.size(), 4u);
  EXPECT_EQ(bed.servers[0].name, "chamagne");
  EXPECT_EQ(bed.servers[1].name, "pulney");
  EXPECT_EQ(bed.servers[2].name, "cabestan");
  EXPECT_EQ(bed.servers[3].name, "artimon");
}

TEST(Testbed, Set2ServersMatchPaper) {
  const Testbed bed = buildSet2();
  ASSERT_EQ(bed.servers.size(), 4u);
  EXPECT_EQ(bed.servers[0].name, "valette");
  EXPECT_EQ(bed.servers[1].name, "spinnaker");
}

TEST(Testbed, MachineSpecsCarryTable2Memory) {
  const Testbed bed = buildSet1();
  for (const auto& spec : bed.servers) {
    const auto info = findMachine(spec.name);
    ASSERT_TRUE(info.has_value());
    EXPECT_DOUBLE_EQ(spec.ramMB, info->ramMB);
    EXPECT_DOUBLE_EQ(spec.swapMB, info->swapMB);
  }
}

TEST(Testbed, CostDatabaseWiredIn) {
  const Testbed bed = buildSet1();
  EXPECT_DOUBLE_EQ(bed.costs.computeCost("artimon", "matmul-1800", 0.0), 53.0);
}

TEST(Testbed, UniformBuilder) {
  const Testbed bed = buildUniform(3, 20.0, 0.002);
  ASSERT_EQ(bed.servers.size(), 3u);
  EXPECT_EQ(bed.servers[2].name, "server-2");
  EXPECT_DOUBLE_EQ(bed.servers[0].bwInMBps, 20.0);
  EXPECT_THROW(buildUniform(0), util::Error);
}

TEST(Testbed, UnknownPaperMachineThrows) {
  EXPECT_THROW(buildPaperMachine("nonesuch"), util::Error);
}

}  // namespace
}  // namespace casched::platform
