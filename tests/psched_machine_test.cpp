// Tests of the Machine model: three-phase execution timing, memory
// accounting, thrashing, collapse + recovery, noise processes and stats.

#include <gtest/gtest.h>

#include <vector>

#include "psched/machine.hpp"
#include "psched/noise.hpp"
#include "simcore/rng.hpp"

namespace casched::psched {
namespace {

MachineSpec simpleSpec() {
  MachineSpec spec;
  // std::string assignment sidesteps gcc 12's -Wrestrict false positive on
  // short-literal operator=(const char*) under -O2 (GCC PR 105329).
  spec.name = std::string("m");
  spec.bwInMBps = 10.0;
  spec.bwOutMBps = 5.0;
  spec.latencyIn = 0.5;
  spec.latencyOut = 0.25;
  spec.ramMB = 1000.0;
  spec.swapMB = 500.0;
  spec.thrashTheta = 1.0;
  spec.recoverySeconds = 100.0;
  return spec;
}

ExecRequest request(std::uint64_t id, double inMB, double cpu, double outMB,
                    double memMB = 0.0) {
  return ExecRequest{id, inMB, cpu, outMB, memMB};
}

TEST(Machine, SinglePhaseTimingUnloaded) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());
  ExecRecord result;
  ASSERT_TRUE(m.submit(request(1, 20.0, 10.0, 5.0), [&](const ExecRecord& r) { result = r; }));
  sim.run();
  // input: 0.5 latency + 20/10 = 2.5; compute 10 -> 12.5; output 0.25 + 5/5 = 13.75.
  EXPECT_EQ(result.status, ExecStatus::kCompleted);
  EXPECT_NEAR(result.inputStart, 0.0, 1e-9);
  EXPECT_NEAR(result.computeStart, 2.5, 1e-9);
  EXPECT_NEAR(result.outputStart, 12.5, 1e-9);
  EXPECT_NEAR(result.endTime, 13.75, 1e-9);
}

TEST(Machine, UnloadedDurationMatchesActualWhenAlone) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());
  const ExecRequest req = request(1, 20.0, 10.0, 5.0);
  ExecRecord result;
  ASSERT_TRUE(m.submit(req, [&](const ExecRecord& r) { result = r; }));
  sim.run();
  EXPECT_NEAR(m.unloadedDuration(req), result.endTime - result.submitTime, 1e-9);
}

TEST(Machine, TwoComputePhasesShareCpu) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = 0.0;
  spec.latencyOut = 0.0;
  Machine m(sim, spec);
  std::vector<ExecRecord> done;
  // No data: pure compute, admitted together.
  ASSERT_TRUE(m.submit(request(1, 0.0, 10.0, 0.0), [&](const ExecRecord& r) { done.push_back(r); }));
  ASSERT_TRUE(m.submit(request(2, 0.0, 10.0, 0.0), [&](const ExecRecord& r) { done.push_back(r); }));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].endTime, 20.0, 1e-9);
  EXPECT_NEAR(done[1].endTime, 20.0, 1e-9);
}

TEST(Machine, TransfersShareLinkButNotCpu) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = 0.0;
  spec.latencyOut = 0.0;
  Machine m(sim, spec);
  std::vector<double> ends;
  // Two tasks transferring 10 MB each on a 10 MB/s link, zero compute/output:
  // shared link -> both finish input at t=2.
  for (std::uint64_t id = 1; id <= 2; ++id) {
    ASSERT_TRUE(m.submit(request(id, 10.0, 0.0, 0.0),
                         [&](const ExecRecord& r) { ends.push_back(r.endTime); }));
  }
  sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 2.0, 1e-9);
  EXPECT_NEAR(ends[1], 2.0, 1e-9);
}

TEST(Machine, MemoryAccountingReservesAndReleases) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());
  ASSERT_TRUE(m.submit(request(1, 0.0, 5.0, 0.0, 300.0), nullptr));
  EXPECT_NEAR(m.residentMB(), 300.0, 1e-9);
  sim.run();
  EXPECT_NEAR(m.residentMB(), 0.0, 1e-9);
  EXPECT_NEAR(m.stats().peakResidentMB, 300.0, 1e-9);
}

TEST(Machine, ThrashingSlowsCompute) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = spec.latencyOut = 0.0;
  spec.ramMB = 100.0;
  spec.swapMB = 1000.0;
  spec.thrashTheta = 1.0;
  Machine m(sim, spec);
  ExecRecord result;
  // Resident 200 MB > 100 MB RAM: factor (100/200)^1 = 0.5 -> 10s job takes 20.
  ASSERT_TRUE(m.submit(request(1, 0.0, 10.0, 0.0, 200.0),
                       [&](const ExecRecord& r) { result = r; }));
  sim.run();
  EXPECT_NEAR(result.endTime, 20.0, 1e-9);
}

TEST(Machine, ThrashThetaZeroDisables) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = spec.latencyOut = 0.0;
  spec.ramMB = 100.0;
  spec.swapMB = 1000.0;
  spec.thrashTheta = 0.0;
  Machine m(sim, spec);
  ExecRecord result;
  ASSERT_TRUE(m.submit(request(1, 0.0, 10.0, 0.0, 500.0),
                       [&](const ExecRecord& r) { result = r; }));
  sim.run();
  EXPECT_NEAR(result.endTime, 10.0, 1e-9);
}

TEST(Machine, CollapseWhenMemoryExhausted) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.ramMB = 100.0;
  spec.swapMB = 100.0;
  Machine m(sim, spec);
  std::vector<ExecRecord> victims;
  bool completionFired = false;
  m.setCollapseObserver([&](const std::vector<ExecRecord>& v) { victims = v; });
  ASSERT_TRUE(m.submit(request(1, 0.0, 50.0, 0.0, 150.0),
                       [&](const ExecRecord&) { completionFired = true; }));
  // Second task pushes resident to 300 > 200: collapse; submit returns false.
  EXPECT_FALSE(m.submit(request(2, 0.0, 50.0, 0.0, 150.0), nullptr));
  EXPECT_FALSE(m.up());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].request.taskId, 1u);
  EXPECT_EQ(victims[0].status, ExecStatus::kFailed);
  EXPECT_FALSE(completionFired);
  EXPECT_EQ(m.stats().collapses, 1u);
  EXPECT_EQ(m.stats().failed, 2u);  // the victim and the trigger
}

TEST(Machine, RecoveryAfterCollapse) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.ramMB = 50.0;
  spec.swapMB = 0.0;
  spec.recoverySeconds = 100.0;
  Machine m(sim, spec);
  bool recovered = false;
  m.setRecoverObserver([&] { recovered = true; });
  EXPECT_FALSE(m.submit(request(1, 0.0, 5.0, 0.0, 100.0), nullptr));
  EXPECT_FALSE(m.up());
  // While down, submissions are refused without another collapse.
  EXPECT_FALSE(m.submit(request(2, 0.0, 5.0, 0.0, 1.0), nullptr));
  EXPECT_EQ(m.stats().collapses, 1u);
  sim.run();
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(m.up());
  EXPECT_NEAR(sim.now(), 100.0, 1e-9);
  // Usable again.
  bool done = false;
  EXPECT_TRUE(m.submit(request(3, 0.0, 5.0, 0.0, 1.0), [&](const ExecRecord&) { done = true; }));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Machine, ForceCollapseDowntimeOverridesRecoverySeconds) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());  // recoverySeconds = 100
  ASSERT_TRUE(m.forceCollapse(7.5));
  EXPECT_FALSE(m.up());
  // Down means down: a second injected crash is a no-op.
  EXPECT_FALSE(m.forceCollapse(3.0));
  sim.run();
  EXPECT_TRUE(m.up());
  EXPECT_NEAR(sim.now(), 7.5, 1e-9);
  EXPECT_EQ(m.stats().collapses, 1u);

  // Downtime 0 keeps the machine's own recovery time (flapping events carry
  // explicit downtimes; hand-written crashes keep the old behaviour).
  ASSERT_TRUE(m.forceCollapse());
  sim.run();
  EXPECT_NEAR(sim.now(), 107.5, 1e-9);
}

TEST(Machine, ChurnSlowdownRestoresOnItsOwn) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = 0.0;
  spec.latencyOut = 0.0;
  Machine m(sim, spec);
  ExecRecord result;
  // Half speed for the first 5 s, full speed after: 2.5 of the 5 s of compute
  // demand are done at the restore, the rest finishes at t=7.5.
  m.setChurnSpeedFactor(0.5, 5.0);
  ASSERT_TRUE(m.submit(request(1, 0.0, 5.0, 0.0), [&](const ExecRecord& r) { result = r; }));
  sim.run();
  EXPECT_EQ(result.status, ExecStatus::kCompleted);
  EXPECT_NEAR(result.endTime, 7.5, 1e-9);

  // A later explicit set cancels the pending restore (no stray event fires).
  m.setChurnSpeedFactor(0.5, 5.0);
  m.setChurnSpeedFactor(0.25);
  ExecRecord second;
  ASSERT_TRUE(m.submit(request(2, 0.0, 1.0, 0.0), [&](const ExecRecord& r) { second = r; }));
  sim.run();
  EXPECT_NEAR(second.endTime - second.computeStart, 4.0, 1e-9);
}

TEST(Machine, ChurnLinkFactorComposesWithNoiseAndRestores) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = 0.0;
  spec.latencyOut = 0.0;
  Machine m(sim, spec);
  // 20 MB over a 10 MB/s link at factor 0.5 -> 4 s instead of 2; the noise
  // factor multiplies on top.
  m.setChurnLinkFactor(0.5);
  ExecRecord result;
  ASSERT_TRUE(m.submit(request(1, 20.0, 0.0, 0.0), [&](const ExecRecord& r) { result = r; }));
  sim.run();
  EXPECT_NEAR(result.computeStart - result.inputStart, 4.0, 1e-9);

  m.setLinkNoiseFactor(0.5);  // composes: effective factor 0.25
  ExecRecord noisy;
  ASSERT_TRUE(m.submit(request(2, 20.0, 0.0, 0.0), [&](const ExecRecord& r) { noisy = r; }));
  sim.run();
  EXPECT_NEAR(noisy.computeStart - noisy.inputStart, 8.0, 1e-9);

  // Bandwidth churn episode ends: only the noise factor remains.
  m.setLinkNoiseFactor(1.0);
  m.setChurnLinkFactor(0.5, 1000.0);
  sim.scheduleAfter(2000.0, [] {});  // idle past the episode's end
  sim.run();
  ExecRecord after;
  ASSERT_TRUE(m.submit(request(3, 20.0, 0.0, 0.0), [&](const ExecRecord& r) { after = r; }));
  sim.run();
  EXPECT_NEAR(after.computeStart - after.inputStart, 2.0, 1e-9);
}

TEST(Machine, LoadAverageRisesWhileBusy) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = spec.latencyOut = 0.0;
  spec.loadTau = 60.0;
  Machine m(sim, spec);
  m.submit(request(1, 0.0, 120.0, 0.0), nullptr);
  m.submit(request(2, 0.0, 120.0, 0.0), nullptr);
  sim.run(60.0);
  const double load = m.loadAverage();
  EXPECT_GT(load, 1.0);
  EXPECT_LT(load, 2.0);
  EXPECT_EQ(m.runningCpuJobs(), 2u);
}

TEST(Machine, BusySecondsUtilization) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = spec.latencyOut = 0.0;
  Machine m(sim, spec);
  m.submit(request(1, 0.0, 10.0, 0.0), nullptr);
  sim.run();
  sim.scheduleAt(50.0, [&] { m.submit(request(2, 0.0, 5.0, 0.0), nullptr); });
  sim.run();
  EXPECT_NEAR(m.stats().busyCpuSeconds, 15.0, 1e-9);
}

TEST(Machine, StatsCountSubmittedCompleted) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());
  m.submit(request(1, 1.0, 1.0, 1.0), nullptr);
  m.submit(request(2, 1.0, 1.0, 1.0), nullptr);
  sim.run();
  EXPECT_EQ(m.stats().submitted, 2u);
  EXPECT_EQ(m.stats().completed, 2u);
  EXPECT_EQ(m.stats().failed, 0u);
}

TEST(Machine, CpuNoiseChangesDuration) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  spec.latencyIn = spec.latencyOut = 0.0;
  Machine m(sim, spec);
  ExecRecord result;
  m.submit(request(1, 0.0, 10.0, 0.0), [&](const ExecRecord& r) { result = r; });
  m.setCpuNoiseFactor(0.5);
  sim.run();
  EXPECT_NEAR(result.endTime, 20.0, 1e-9);
}

TEST(Machine, ZeroByteTransfersSkipLinkButKeepLatency) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());  // latencies 0.5 / 0.25
  ExecRecord result;
  m.submit(request(1, 0.0, 10.0, 0.0), [&](const ExecRecord& r) { result = r; });
  sim.run();
  EXPECT_NEAR(result.endTime, 0.5 + 10.0 + 0.25, 1e-9);
}

TEST(Noise, RedrawsWithinAmplitude) {
  simcore::Simulator sim;
  simcore::RandomStream rng(5);
  std::vector<double> factors;
  NoiseProcess noise(sim, rng, NoiseConfig{0.2, 1.0},
                     [&](double f) { factors.push_back(f); });
  noise.start();
  sim.run(50.0);
  noise.stop();
  ASSERT_GT(factors.size(), 40u);
  for (std::size_t i = 0; i + 1 < factors.size(); ++i) {  // last is stop()'s 1.0
    EXPECT_GE(factors[i], 0.8 - 1e-12);
    EXPECT_LE(factors[i], 1.2 + 1e-12);
  }
}

TEST(Noise, ZeroAmplitudeNeverStarts) {
  simcore::Simulator sim;
  simcore::RandomStream rng(5);
  int applied = 0;
  NoiseProcess noise(sim, rng, NoiseConfig{0.0, 1.0}, [&](double) { ++applied; });
  noise.start();
  EXPECT_FALSE(noise.active());
  sim.run(10.0);
  EXPECT_EQ(applied, 0);
}

TEST(Noise, StopRestoresUnitFactor) {
  simcore::Simulator sim;
  simcore::RandomStream rng(5);
  double last = -1.0;
  NoiseProcess noise(sim, rng, NoiseConfig{0.3, 1.0}, [&](double f) { last = f; });
  noise.start();
  sim.run(5.0);
  noise.stop();
  EXPECT_DOUBLE_EQ(last, 1.0);
  EXPECT_FALSE(noise.active());
}

TEST(TaskExec, AbortMidTransferCancelsJob) {
  simcore::Simulator sim;
  MachineSpec spec = simpleSpec();
  Machine m(sim, spec);
  ExecResources res{&m.linkIn(), &m.cpu(), &m.linkOut(), 0.0, 0.0};
  TaskExecution exec(sim, res, request(9, 100.0, 10.0, 0.0), nullptr);
  exec.start();
  sim.run(1.0);
  EXPECT_EQ(m.linkIn().activeJobs(), 1u);
  exec.abort();
  EXPECT_EQ(m.linkIn().activeJobs(), 0u);
  EXPECT_EQ(exec.record().status, ExecStatus::kFailed);
  sim.run();
}

TEST(TaskExec, RecordPhaseBoundariesOrdered) {
  simcore::Simulator sim;
  Machine m(sim, simpleSpec());
  ExecRecord rec;
  m.submit(request(1, 10.0, 5.0, 10.0), [&](const ExecRecord& r) { rec = r; });
  sim.run();
  EXPECT_LE(rec.submitTime, rec.inputStart);
  EXPECT_LT(rec.inputStart, rec.computeStart);
  EXPECT_LT(rec.computeStart, rec.outputStart);
  EXPECT_LT(rec.outputStart, rec.endTime);
}

}  // namespace
}  // namespace casched::psched
