// Seeded random-corruption fuzzing of wire::decode: every message type's
// encoding is subjected to byte flips, truncations and random garbage, and
// every decode must either succeed or throw a typed util::Error - never
// crash, hang, or allocate unboundedly (the clamp-before-reserve guard).
// Deterministic seeds keep failures reproducible; the seed is printed with
// every assertion so a red run can be replayed exactly.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "simcore/rng.hpp"
#include "util/error.hpp"
#include "wire/framing.hpp"
#include "wire/messages.hpp"
#include "wire/transport.hpp"

namespace casched::wire {
namespace {

/// One fuzz target: a named decoder plus a valid exemplar payload.
struct FuzzTarget {
  std::string name;
  Bytes exemplar;
  std::function<void(const Bytes&)> decode;
};

ScheduleRequestMsg sampleRequest(std::uint64_t id) {
  ScheduleRequestMsg t;
  t.taskId = id;
  t.problem = "matmul-1200";
  t.inMB = 23.0;
  t.outMB = 11.5;
  t.memMB = 96.0;
  t.refSeconds = 183.0;
  return t;
}

/// Exemplars cover every MessageType with realistic, non-empty payloads so
/// corruption hits string prefixes, list counts and trailing fields alike.
std::vector<FuzzTarget> fuzzTargets() {
  std::vector<FuzzTarget> targets;
  auto add = [&](std::string name, Bytes exemplar, auto decoder) {
    targets.push_back({std::move(name), std::move(exemplar),
                       [decoder](const Bytes& b) { (void)decoder(b); }});
  };

  RegisterMsg reg;
  reg.serverName = "artimon";
  reg.bwInMBps = 7.4;
  reg.bwOutMBps = 12.1;
  reg.latencyIn = 0.05;
  reg.latencyOut = 0.04;
  reg.ramMB = 512;
  reg.swapMB = 1024;
  reg.speedIndex = 1.37;
  reg.problems = {"matmul-1200", "waste-cpu-400", "*"};
  add("register", encode(reg), decodeRegister);

  RegisterAckMsg ack;
  ack.serverName = "artimon";
  ack.accepted = true;
  ack.agentTime = 12.5;
  add("register-ack", encode(ack), decodeRegisterAck);

  add("schedule-request", encode(sampleRequest(42)), decodeScheduleRequest);

  ScheduleReplyMsg reply;
  reply.taskId = 42;
  reply.servers = {"artimon", "spinnaker", "sloop"};
  add("schedule-reply", encode(reply), decodeScheduleReply);

  TaskSubmitMsg submit;
  submit.taskId = 42;
  submit.problem = "matmul-1200";
  submit.inMB = 23.0;
  submit.cpuSeconds = 183.0;
  submit.outMB = 11.5;
  submit.memMB = 96.0;
  add("task-submit", encode(submit), decodeTaskSubmit);

  TaskCompleteMsg complete;
  complete.taskId = 42;
  complete.serverName = "artimon";
  complete.completionTime = 211.0;
  complete.unloadedDuration = 190.0;
  add("task-complete", encode(complete), decodeTaskComplete);

  TaskFailedMsg failed;
  failed.taskId = 42;
  failed.serverName = "artimon";
  failed.reason = "collapse";
  add("task-failed", encode(failed), decodeTaskFailed);

  LoadReportMsg load;
  load.serverName = "artimon";
  load.loadAverage = 1.5;
  load.sampleTime = 60.0;
  load.residentMB = 384.0;
  add("load-report", encode(load), decodeLoadReport);

  add("server-down", encode(ServerDownMsg{"artimon"}), decodeServerDown);
  add("server-up", encode(ServerUpMsg{"artimon"}), decodeServerUp);
  add("shutdown", encode(ShutdownMsg{"operator request"}), decodeShutdown);

  HeartbeatMsg hb;
  hb.serverName = "artimon";
  hb.sampleTime = 33.0;
  add("heartbeat", encode(hb), decodeHeartbeat);

  AgentHelloMsg hello;
  hello.agentName = "agent-1";
  hello.mode = "partitioned";
  hello.sampleTime = 5.0;
  hello.ownedServers = {"artimon", "spinnaker"};
  hello.listenPort = 45123;
  add("agent-hello", encode(hello), decodeAgentHello);

  AgentSyncMsg sync;
  sync.agentName = "agent-1";
  sync.sampleTime = 10.0;
  sync.loads = {{"artimon", 0.5, 9.0}, {"spinnaker", 2.0, 8.0}};
  sync.snapshotSeq = 3;
  sync.chunkIndex = 0;
  sync.chunkCount = 1;
  sync.snapshotChunk = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
  sync.queuedTasks = 4;
  add("agent-sync", encode(sync), decodeAgentSync);

  add("stats-request", encode(StatsRequestMsg{"json"}), decodeStatsRequest);

  StatsReplyMsg stats;
  stats.agentName = "agent-1";
  stats.sampleTime = 10.0;
  stats.format = "json";
  stats.body = "{\"counters\":{}}";
  add("stats-reply", encode(stats), decodeStatsReply);

  ForwardRequestMsg forward;
  forward.task = sampleRequest(77);
  forward.originAgent = "agent-0";
  forward.hops = 1;
  add("forward-request", encode(forward), decodeForwardRequest);

  ForwardDenyMsg fdeny;
  fdeny.taskId = 77;
  fdeny.agentName = "agent-1";
  fdeny.reason = "no feasible server";
  add("forward-deny", encode(fdeny), decodeForwardDeny);

  ScheduleDenyMsg sdeny;
  sdeny.taskId = 77;
  sdeny.agentName = "agent-0";
  sdeny.reason = "agent has no registered servers";
  add("schedule-deny", encode(sdeny), decodeScheduleDeny);

  StealRequestMsg steal;
  steal.agentName = "agent-2";
  steal.capacity = 8;
  add("steal-request", encode(steal), decodeStealRequest);

  StealGrantMsg grant;
  grant.agentName = "agent-1";
  grant.tasks = {sampleRequest(101), sampleRequest(102), sampleRequest(103)};
  add("steal-grant", encode(grant), decodeStealGrant);

  ResolverProbeMsg probe;
  probe.probeId = 9;
  probe.sendTime = 123.456;
  add("resolver-probe", encode(probe), decodeResolverProbe);

  ResolverInfoMsg info;
  info.agentName = "agent-1";
  info.probeId = 9;
  info.echoSendTime = 123.456;
  info.sampleTime = 50.0;
  info.meanLoad = 1.25;
  info.liveServers = 4;
  info.queuedTasks = 2;
  info.peerAddresses = {"127.0.0.1:9001", "127.0.0.1:9002"};
  add("resolver-info", encode(info), decodeResolverInfo);

  add("schema-hello", encode(SchemaHelloMsg{}), decodeSchemaHello);

  // The envelope decoder is itself a corruption target: flips hit the inner
  // type, the count, and the per-message length prefixes.
  add("coalesced",
      buildCoalescedPayload(MessageType::kHeartbeat,
                            {encode(hb), encode(hb), encode(hb)}),
      expandCoalesced);

  return targets;
}

/// Decodes the corrupted payload, accepting success or any typed error.
/// Anything else (segfault, bad_alloc past the handlers, uncaught foreign
/// exception) fails the whole binary, which is the point.
void decodeMustNotCrash(const FuzzTarget& target, const Bytes& corrupted,
                        std::uint64_t seed, const char* mode) {
  try {
    target.decode(corrupted);
  } catch (const util::Error&) {
    // Expected: corruption surfaced as a typed decode/config error.
  } catch (const std::exception& e) {
    FAIL() << target.name << " (" << mode << ", seed " << seed
           << "): decode threw a non-util exception: " << e.what();
  }
}

TEST(WireFuzz, ExemplarsCoverEveryMessageType) {
  // A new MessageType must come with a fuzz exemplar: count the enum range.
  const auto first = static_cast<std::uint16_t>(MessageType::kRegister);
  const auto last = static_cast<std::uint16_t>(MessageType::kCoalesced);
  EXPECT_EQ(fuzzTargets().size(), static_cast<std::size_t>(last - first + 1));
}

TEST(WireFuzz, ByteFlipsNeverCrashDecode) {
  for (const FuzzTarget& target : fuzzTargets()) {
    simcore::Xoshiro256 rng(0xF1A9'0000 ^ std::hash<std::string>{}(target.name));
    for (int round = 0; round < 400; ++round) {
      Bytes corrupted = target.exemplar;
      const std::size_t flips = 1 + rng.nextBelow(4);
      for (std::size_t f = 0; f < flips && !corrupted.empty(); ++f) {
        const std::size_t pos = rng.nextBelow(corrupted.size());
        corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
      }
      decodeMustNotCrash(target, corrupted, round, "flip");
    }
  }
}

TEST(WireFuzz, TruncationsNeverCrashDecode) {
  for (const FuzzTarget& target : fuzzTargets()) {
    // Every prefix, not a sample: truncation mid-field must throw cleanly.
    for (std::size_t len = 0; len < target.exemplar.size(); ++len) {
      Bytes corrupted(target.exemplar.begin(), target.exemplar.begin() + len);
      decodeMustNotCrash(target, corrupted, len, "truncate");
    }
  }
}

TEST(WireFuzz, FlippedThenTruncatedNeverCrashDecode) {
  for (const FuzzTarget& target : fuzzTargets()) {
    simcore::Xoshiro256 rng(0xF1A9'1111 ^ std::hash<std::string>{}(target.name));
    for (int round = 0; round < 200; ++round) {
      Bytes corrupted = target.exemplar;
      if (!corrupted.empty()) {
        const std::size_t pos = rng.nextBelow(corrupted.size());
        corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        corrupted.resize(rng.nextBelow(corrupted.size() + 1));
      }
      decodeMustNotCrash(target, corrupted, round, "flip+truncate");
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashesDecode) {
  for (const FuzzTarget& target : fuzzTargets()) {
    simcore::Xoshiro256 rng(0xF1A9'2222 ^ std::hash<std::string>{}(target.name));
    for (int round = 0; round < 200; ++round) {
      Bytes garbage(rng.nextBelow(256));
      for (std::uint8_t& b : garbage) {
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
      }
      decodeMustNotCrash(target, garbage, round, "garbage");
    }
  }
}

TEST(WireFuzz, CorruptFramesNeverCrashTheFrameDecoder) {
  // Frame-level corruption: flip bytes of a whole framed message stream and
  // pump it through the incremental decoder. Bad headers must throw, valid
  // frames with corrupt payloads must surface to (and be rejected by) the
  // per-message decoders above - the decoder itself must survive.
  const std::vector<FuzzTarget> targets = fuzzTargets();
  simcore::Xoshiro256 rng(0xF1A9'3333);
  for (int round = 0; round < 300; ++round) {
    Bytes stream;
    for (int f = 0; f < 3; ++f) {
      const FuzzTarget& target = targets[rng.nextBelow(targets.size())];
      const Bytes frame =
          buildFrame(MessageType::kRegister, target.exemplar);
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    const std::size_t flips = 1 + rng.nextBelow(6);
    for (std::size_t f = 0; f < flips && !stream.empty(); ++f) {
      const std::size_t pos = rng.nextBelow(stream.size());
      stream[pos] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    }
    FrameDecoder decoder;
    try {
      decoder.feed(stream);
      while (decoder.next()) {
      }
    } catch (const util::Error&) {
      // Expected for corrupt headers (bad version, oversized length).
    }
  }
}

TEST(WireFuzz, FrameBodyFlipsAreNamedAndNeverSilentlyAccepted) {
  // The CRC trailer's contract: any flip after the length prefix must surface
  // as a named FrameDecodeError (version if the flip hit the version word,
  // checksum otherwise) - a corrupted frame must never decode as if intact.
  const std::vector<FuzzTarget> targets = fuzzTargets();
  simcore::Xoshiro256 rng(0xF1A9'4444);
  for (int round = 0; round < 400; ++round) {
    const FuzzTarget& target = targets[rng.nextBelow(targets.size())];
    const Bytes original = buildFrame(MessageType::kRegister, target.exemplar);
    Bytes corrupted = original;
    const std::size_t pos = 4 + rng.nextBelow(corrupted.size() - 4);
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    FrameDecoder decoder;
    decoder.feed(corrupted);
    try {
      const auto frame = decoder.next();
      if (frame.has_value()) {
        FAIL() << target.name << " (seed " << round << ", offset " << pos
               << "): corrupted frame decoded without an error";
      }
    } catch (const FrameDecodeError& e) {
      EXPECT_TRUE(e.kind() == FrameError::kBadChecksum ||
                  e.kind() == FrameError::kBadVersion)
          << target.name << " (seed " << round << "): unexpected kind in '"
          << e.what() << "'";
    }
  }
}

TEST(WireFuzz, HandshakeCorruptionIsRejectedAsSchemaMismatch) {
  // Flips and truncations of the connect hello (magic + hash bytes) must all
  // land in the named schema-mismatch error at the transport layer.
  const Bytes hello = encode(SchemaHelloMsg{});
  simcore::Xoshiro256 rng(0xF1A9'5555);
  for (int round = 0; round < 200; ++round) {
    Bytes corrupted = hello;
    if (round % 2 == 0) {
      // Flip inside the verified fields: magic (0..3) or hash (4..11). The
      // trailing version word is informational and not compared.
      corrupted[rng.nextBelow(12)] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    } else {
      corrupted.resize(rng.nextBelow(corrupted.size()));
    }
    auto [a, b] = LoopbackTransport::createPair(/*withHandshake=*/false);
    a->send(MessageType::kSchemaHello, corrupted);
    try {
      b->poll(nullptr);
      FAIL() << "corrupted handshake accepted (seed " << round << ")";
    } catch (const FrameDecodeError& e) {
      EXPECT_EQ(e.kind(), FrameError::kSchemaMismatch)
          << "seed " << round << ": " << e.what();
    }
  }
}

TEST(WireFuzz, CoalescedEnvelopeCorruptionNeverCrashesOrEscapesUntyped) {
  // Corrupt the envelope body, then frame it with a VALID CRC: expansion must
  // either succeed (flip landed inside an inner payload - the per-message
  // decoders own that) or throw the named bad-coalesce error. Wire-level
  // flips are already covered by the CRC test above.
  const Bytes valid = buildCoalescedPayload(
      MessageType::kHeartbeat, {encode(HeartbeatMsg{"artimon", 1.0}),
                                encode(HeartbeatMsg{"spinnaker", 2.0}),
                                encode(HeartbeatMsg{"sloop", 3.0})});
  simcore::Xoshiro256 rng(0xF1A9'6666);
  for (int round = 0; round < 400; ++round) {
    Bytes corrupted = valid;
    const std::size_t flips = 1 + rng.nextBelow(3);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng.nextBelow(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    }
    if (round % 4 == 0) corrupted.resize(rng.nextBelow(corrupted.size() + 1));
    FrameDecoder decoder;
    decoder.feed(buildFrame(MessageType::kCoalesced, corrupted));
    try {
      while (decoder.next()) {
      }
    } catch (const FrameDecodeError& e) {
      EXPECT_EQ(e.kind(), FrameError::kBadCoalesce)
          << "seed " << round << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << "seed " << round << ": non-frame exception: " << e.what();
    }
  }
}

}  // namespace
}  // namespace casched::wire
