/// Locks the report layer: the JSON reader round-trips what JsonWriter
/// emits (including 64-bit digests past 2^53), suite records parse into the
/// report model, crossover detection finds a known ranking flip with the
/// right confidence, compare deltas and direction-aware flags are exact,
/// and the generated-region splice used by the EXPERIMENTS.md drift gate
/// behaves. All inputs here are synthetic so the expectations are exact.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/report.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using casched::exp::CompareOptions;
using casched::exp::CompareOutcome;
using casched::exp::Crossover;
using casched::exp::ReportOptions;
using casched::exp::ReportScenario;
using casched::exp::ReportStat;
using casched::exp::ReportSuite;
using casched::util::ConfigError;
using casched::util::JsonValue;
using casched::util::JsonWriter;

// ---------------------------------------------------------------------------
// JsonValue reader vs JsonWriter

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("line1\nline2 \"quoted\"");
  w.key("pi").value(3.141592653589793);
  w.key("negative").value(-7);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("list").beginArray().value(1).value(2).value(3).endArray();
  w.key("nested").beginObject().key("inner").value("x").endObject();
  w.endObject();

  const JsonValue v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.at("name").asString(), "line1\nline2 \"quoted\"");
  EXPECT_DOUBLE_EQ(v.at("pi").asDouble(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(v.at("negative").asDouble(), -7.0);
  EXPECT_TRUE(v.at("flag").asBool());
  EXPECT_TRUE(v.at("nothing").isNull());
  ASSERT_EQ(v.at("list").items().size(), 3u);
  EXPECT_EQ(v.at("list").items()[2].asUint(), 3u);
  EXPECT_EQ(v.at("nested").at("inner").asString(), "x");
  // Member order is preserved - reports depend on record order.
  ASSERT_GE(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "name");
  EXPECT_EQ(v.members()[1].first, "pi");
}

TEST(JsonReader, Uint64DigestsSurviveExactly) {
  // Churn digests are full 64-bit FNV values; a double-only reader would
  // round anything past 2^53 and the sim/live digest gate would lie.
  const std::uint64_t digest = 0xfeedfacecafebeefULL;  // > 2^53
  JsonWriter w;
  w.beginObject().key("churn_digest").value(digest).endObject();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("churn_digest").asUint(), digest);
}

TEST(JsonReader, LookupAndKindErrorsAreNamed) {
  const JsonValue v = JsonValue::parse(R"({"a": 1, "b": "text"})");
  EXPECT_EQ(v.find("missing"), nullptr);
  try {
    v.at("missing");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
  EXPECT_THROW(v.at("b").asDouble(), ConfigError);
  EXPECT_THROW(v.at("a").asString(), ConfigError);
}

TEST(JsonReader, ParseErrorsCarryPosition) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\": }\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  EXPECT_THROW(JsonValue::parse(""), ConfigError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), ConfigError);
  EXPECT_THROW(JsonValue::parse("{\"a\": tru}"), ConfigError);
}

TEST(JsonReader, UnicodeEscapesDecodeToUtf8) {
  // \u00e9 is e-acute; \ud83d\ude00 is the surrogate pair for U+1F600.
  const JsonValue v =
      JsonValue::parse(R"({"s": "\u00e9A", "pair": "\ud83d\ude00"})");
  EXPECT_EQ(v.at("s").asString(), "\xc3\xa9""A");
  EXPECT_EQ(v.at("pair").asString(), "\xf0\x9f\x98\x80");
  EXPECT_THROW(JsonValue::parse(R"({"s": "\ud83d"})"), ConfigError);
}

// ---------------------------------------------------------------------------
// Synthetic suite records

/// One swept scenario, two heuristics, one metatask, metric "sumflow".
/// Per-variant means are (fast, slow) pairs; sd applies to every cell.
std::string syntheticSweepJson(
    const std::vector<std::pair<double, double>>& points, double sd,
    std::uint64_t replications) {
  JsonWriter w;
  w.beginObject();
  w.key("seed").value(7);
  w.key("scenario_count").value(1);
  w.key("scenarios").beginArray();
  w.beginObject();
  w.key("name").value("synthetic/sweep");
  w.key("description").value("synthetic sweep for crossover tests");
  w.key("title").value("Synthetic sweep");
  w.key("servers").value(4);
  w.key("churn_events").value(0);
  w.key("metatasks").value(1);
  w.key("replications").value(replications);
  w.key("baseline").value("alpha");
  w.key("ft_policy").value("none");
  w.key("heuristics").beginArray().value("alpha").value("beta").endArray();
  w.key("variants").beginArray();
  for (std::size_t i = 0; i < points.size(); ++i) {
    w.beginObject();
    w.key("coordinates").beginObject();
    w.key("rate").value(std::to_string(30 - 3 * i));
    w.endObject();
    w.key("wall_seconds").value(0.01);
    w.key("simulated_events").value(1000);
    w.key("events_per_second").value(100000.0);
    w.key("heuristics").beginObject();
    const char* names[2] = {"alpha", "beta"};
    const double means[2] = {points[i].first, points[i].second};
    for (int h = 0; h < 2; ++h) {
      w.key(names[h]).beginArray().beginObject();
      w.key("metatask").value(1);
      w.key("completed").beginObject().key("mean").value(500.0).key("sd").value(0.0).endObject();
      w.key("sumflow").beginObject().key("mean").value(means[h]).key("sd").value(sd).endObject();
      w.key("maxstretch").beginObject().key("mean").value(2.0 + h).key("sd").value(sd).endObject();
      w.endObject().endArray();
    }
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("metrics").beginObject().endObject();
  w.key("wall_seconds").value(0.1);
  w.key("simulated_events").value(1000);
  w.key("events_per_second").value(10000.0);
  w.endObject();  // scenario
  w.endArray();   // scenarios
  w.key("wall_seconds").value(0.1);
  w.key("simulated_events").value(1000);
  w.key("events_per_second").value(10000.0);
  w.endObject();  // root
  return w.str();
}

ReportSuite parseSynthetic(const std::string& json, const std::string& label) {
  return casched::exp::parseSuiteRecord(JsonValue::parse(json), label);
}

TEST(SuiteRecord, ParsesIntoReportModel) {
  const ReportSuite suite =
      parseSynthetic(syntheticSweepJson({{100, 200}, {300, 250}}, 5.0, 3), "t");
  EXPECT_EQ(suite.label, "t");
  EXPECT_EQ(suite.seed, 7u);
  ASSERT_EQ(suite.scenarios.size(), 1u);
  const ReportScenario& s = suite.scenarios.front();
  EXPECT_EQ(s.name, "synthetic/sweep");
  EXPECT_EQ(s.replications, 3u);
  EXPECT_TRUE(s.swept());
  ASSERT_EQ(s.variants.size(), 2u);
  EXPECT_EQ(s.variants[0].coordinates.front().first, "rate");
  EXPECT_EQ(s.variants[0].coordinates.front().second, "30");
  const auto* cells = s.variants[0].cells("beta");
  ASSERT_NE(cells, nullptr);
  ASSERT_FALSE(cells->empty());
  const ReportStat* stat = cells->front().find("sumflow");
  ASSERT_NE(stat, nullptr);
  EXPECT_DOUBLE_EQ(stat->mean, 200.0);
  EXPECT_DOUBLE_EQ(stat->sd, 5.0);
  EXPECT_EQ(cells->front().find("no_such_metric"), nullptr);
}

TEST(SuiteRecord, SchemaErrorsNameTheKey) {
  try {
    casched::exp::parseSuiteRecord(JsonValue::parse(R"({"seed": 1})"), "x");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("scenarios"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Crossover detection

TEST(Crossovers, DetectsAKnownFlipWithConfidence) {
  // sumflow is lower-is-better: alpha wins at rate=30, beta wins at rate=27.
  // sd 1.0 over 4 replications -> se 0.5, per-endpoint separation
  // |gap| / sqrt(0.5^2 + 0.5^2); the weaker endpoint (gap 10) gives
  // 10 / 0.7071 = 14.14 sigma.
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 120}, {140, 130}}, 1.0, 4), "flip");
  const std::vector<Crossover> found =
      casched::exp::detectCrossovers(suite.scenarios.front(), "sumflow");
  ASSERT_EQ(found.size(), 1u);
  const Crossover& c = found.front();
  EXPECT_EQ(c.axis, "rate");
  EXPECT_EQ(c.metric, "sumflow");
  EXPECT_EQ(c.fromValue, "30");
  EXPECT_EQ(c.toValue, "27");
  EXPECT_EQ(c.winnerBefore, "alpha");
  EXPECT_EQ(c.winnerAfter, "beta");
  EXPECT_NEAR(c.separationSigma, 14.14, 0.05);
  EXPECT_TRUE(c.confident());
}

TEST(Crossovers, ZeroSdDistinctMeansIsCertain) {
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 120}, {140, 130}}, 0.0, 3), "exact");
  const std::vector<Crossover> found =
      casched::exp::detectCrossovers(suite.scenarios.front(), "sumflow");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_DOUBLE_EQ(found.front().separationSigma, 99.0);
  EXPECT_TRUE(found.front().confident());
}

TEST(Crossovers, StableRankingReportsNothing) {
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 120}, {110, 130}, {120, 140}}, 1.0, 3),
      "stable");
  EXPECT_TRUE(
      casched::exp::detectCrossovers(suite.scenarios.front(), "sumflow")
          .empty());
}

TEST(Crossovers, NoisyFlipIsReportedButNotConfident) {
  // Gap 10 with sd 40 over 4 replications -> se 20, separation
  // 10 / sqrt(800) = 0.35 sigma: a flip inside the noise floor.
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 110}, {140, 130}}, 40.0, 4), "noisy");
  const std::vector<Crossover> found =
      casched::exp::detectCrossovers(suite.scenarios.front(), "sumflow");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_FALSE(found.front().confident());
  EXPECT_LT(found.front().separationSigma, 2.0);
}

// ---------------------------------------------------------------------------
// Compare

TEST(Compare, DeltaMathAndDirectionAwareFlags) {
  // Same shape, different values: beta's sumflow at rate=30 moves 100 -> 150
  // (+50%, lower-is-better -> regression); alpha's moves 100 -> 80 (-20%,
  // improvement). Threshold 10%.
  const ReportSuite a = parseSynthetic(
      syntheticSweepJson({{100, 100}}, 0.0, 3), "runA");
  const ReportSuite b = parseSynthetic(
      syntheticSweepJson({{80, 150}}, 0.0, 3), "runB");
  CompareOptions options;
  options.thresholdPct = 10.0;
  options.metrics = {"sumflow"};
  const CompareOutcome outcome = casched::exp::compareSuites(a, b, options);
  EXPECT_EQ(outcome.comparisons, 2u);
  EXPECT_EQ(outcome.regressions, 1u);
  EXPECT_EQ(outcome.improvements, 1u);
  EXPECT_NE(outcome.markdown.find("+50.0%"), std::string::npos)
      << outcome.markdown;
  EXPECT_NE(outcome.markdown.find("-20.0%"), std::string::npos)
      << outcome.markdown;
  EXPECT_NE(outcome.markdown.find("**regression**"), std::string::npos);
  EXPECT_NE(outcome.markdown.find("improvement"), std::string::npos);
}

TEST(Compare, HigherIsBetterMetricFlipsTheFlag) {
  // completed dropping is the regression direction even though the delta is
  // negative.
  const ReportSuite a = parseSynthetic(
      syntheticSweepJson({{100, 100}}, 0.0, 3), "runA");
  std::string shrunk = syntheticSweepJson({{100, 100}}, 0.0, 3);
  // Rewrite every completed mean 500 -> 400 (20% drop) in the raw record.
  const std::string from = "\"mean\": 500";
  for (std::size_t pos = shrunk.find(from); pos != std::string::npos;
       pos = shrunk.find(from, pos)) {
    shrunk.replace(pos, from.size(), "\"mean\": 400");
  }
  const ReportSuite b = parseSynthetic(shrunk, "runB");
  CompareOptions options;
  options.metrics = {"completed"};
  const CompareOutcome outcome = casched::exp::compareSuites(a, b, options);
  EXPECT_EQ(outcome.comparisons, 2u);
  EXPECT_EQ(outcome.regressions, 2u);
  EXPECT_EQ(outcome.improvements, 0u);
}

TEST(Compare, UnmatchedScenariosAreListedNotCompared) {
  const ReportSuite a = parseSynthetic(
      syntheticSweepJson({{100, 100}}, 0.0, 3), "runA");
  ReportSuite b = a;
  b.scenarios.front().name = "somewhere/else";
  const CompareOutcome outcome = casched::exp::compareSuites(a, b, {});
  EXPECT_EQ(outcome.comparisons, 0u);
  EXPECT_NE(outcome.markdown.find("synthetic/sweep"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Markdown rendering

TEST(ReportMarkdown, SweepReportHasSeriesBarsAndCrossoverScan) {
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 120}, {140, 130}, {180, 140}}, 1.0, 3),
      "render");
  ReportOptions options;
  options.metrics = {"sumflow"};
  const std::string md =
      casched::exp::scenarioReportMarkdown(suite.scenarios.front(), options);
  EXPECT_NE(md.find("synthetic/sweep"), std::string::npos);
  EXPECT_NE(md.find("`sumflow`"), std::string::npos);
  // Sparkline bars use the Unicode block ramp.
  EXPECT_TRUE(md.find("\xe2\x96\x81") != std::string::npos ||
              md.find("\xe2\x96\x88") != std::string::npos)
      << md;
  EXPECT_NE(md.find("flips from"), std::string::npos) << md;
}

TEST(ReportMarkdown, UnsweptReportShowsMeanPlusMinusSd) {
  std::string json = syntheticSweepJson({{100, 120}}, 2.5, 3);
  // Strip the sweep coordinate so the scenario renders as an unswept table.
  const std::string coords = "\"rate\": \"30\"";
  const std::size_t pos = json.find(coords);
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, coords.size());
  const ReportSuite suite = parseSynthetic(json, "plain");
  EXPECT_FALSE(suite.scenarios.front().swept());
  const std::string md =
      casched::exp::scenarioReportMarkdown(suite.scenarios.front());
  EXPECT_NE(md.find("\xc2\xb1"), std::string::npos) << md;  // "±"
  EXPECT_NE(md.find("| alpha |"), std::string::npos) << md;
}

TEST(ReportMarkdown, WallClockFieldsNeverLeakIntoReports) {
  const ReportSuite suite = parseSynthetic(
      syntheticSweepJson({{100, 120}, {140, 130}}, 1.0, 3), "det");
  const std::string md = casched::exp::suiteReportMarkdown(suite);
  EXPECT_EQ(md.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(md.find("events_per_second"), std::string::npos);
}

TEST(RegistryCatalog, ListsEveryRegistryEntry) {
  const std::string md = casched::exp::registryCatalogMarkdown();
  for (const std::string& name : casched::scenario::scenarioNames()) {
    EXPECT_NE(md.find("`" + name + "`"), std::string::npos)
        << "catalog is missing " << name;
  }
}

// ---------------------------------------------------------------------------
// Generated-region splice

TEST(GeneratedRegions, ReplacesBodyAndKeepsSentinels) {
  const std::string doc =
      "# Title\n"
      "<!-- BEGIN GENERATED: demo -->\n"
      "old body\n"
      "<!-- END GENERATED: demo -->\n"
      "tail\n";
  const std::string out =
      casched::exp::replaceGeneratedRegion(doc, "demo", "new body\n");
  EXPECT_NE(out.find("<!-- BEGIN GENERATED: demo -->"), std::string::npos);
  EXPECT_NE(out.find("<!-- END GENERATED: demo -->"), std::string::npos);
  EXPECT_NE(out.find("new body"), std::string::npos);
  EXPECT_EQ(out.find("old body"), std::string::npos);
  EXPECT_NE(out.find("tail"), std::string::npos);
  // Idempotent: splicing the same body again changes nothing.
  EXPECT_EQ(casched::exp::replaceGeneratedRegion(out, "demo", "new body\n"),
            out);
}

TEST(GeneratedRegions, MissingOrReversedSentinelsThrow) {
  EXPECT_THROW(
      casched::exp::replaceGeneratedRegion("no sentinels here", "demo", "x\n"),
      ConfigError);
  const std::string reversed =
      "<!-- END GENERATED: demo -->\n<!-- BEGIN GENERATED: demo -->\n";
  EXPECT_THROW(casched::exp::replaceGeneratedRegion(reversed, "demo", "x\n"),
               ConfigError);
}

}  // namespace
