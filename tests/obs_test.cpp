// Tests for the observability layer: metrics registry (including concurrent
// writers, exercised under the TSan CI leg), Prometheus/JSON rendering,
// snapshot deltas, the bounded trace/decision rings with their drop
// accounting, Chrome trace-event export, and the stats-format parser.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace casched::obs {
namespace {

// Every test uses uniquely named metrics: the registry is process-global and
// ctest runs this binary as one process, so names must not collide between
// tests (re-registration returns the existing object by design).

TEST(Metrics, CounterGaugeHistogramBasics) {
  auto& reg = Registry::global();
  Counter& c = reg.counter("t_basic_counter", "help text");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = reg.gauge("t_basic_gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  Histogram& h = reg.histogram("t_basic_hist", {1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // le=1 (upper bound is inclusive)
  h.observe(50.0);  // le=100
  h.observe(1e9);   // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 50.0 + 1e9);
  const std::vector<std::uint64_t> buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, ReregistrationReturnsTheSameObjectAndKindMismatchThrows) {
  auto& reg = Registry::global();
  Counter& a = reg.counter("t_rereg");
  Counter& b = reg.counter("t_rereg", "different help is fine");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("t_rereg"), util::Error);

  // Labels are part of the identity: same name, different labels coexist.
  Counter& labeled = reg.counter("t_rereg", "", {{"leg", "x"}});
  EXPECT_NE(&labeled, &a);
}

TEST(Metrics, PrometheusRendering) {
  auto& reg = Registry::global();
  reg.counter("t_prom_total", "counted things").inc(3);
  reg.counter("t_prom_labeled_total", "", {{"server", "grid-1"}}).inc();
  Histogram& h = reg.histogram("t_prom_seconds", {1.0, 5.0}, "timings");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);

  const std::string text = reg.snapshot().prometheus();
  EXPECT_NE(text.find("# HELP t_prom_total counted things"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_prom_total 3"), std::string::npos);
  EXPECT_NE(text.find("t_prom_labeled_total{server=\"grid-1\"} 1"), std::string::npos);
  // Cumulative buckets: le="5" includes the le="1" observation.
  EXPECT_NE(text.find("t_prom_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_prom_seconds_bucket{le=\"5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_prom_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_prom_seconds_count 3"), std::string::npos);
}

TEST(Metrics, JsonRendering) {
  auto& reg = Registry::global();
  reg.counter("t_json_total").inc(7);
  const std::string json = reg.snapshot().json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"t_json_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
}

TEST(Metrics, SinceComputesCounterAndHistogramDeltas) {
  auto& reg = Registry::global();
  Counter& c = reg.counter("t_since_total");
  Gauge& g = reg.gauge("t_since_gauge");
  Histogram& h = reg.histogram("t_since_hist", {10.0});
  c.inc(5);
  g.set(1.0);
  h.observe(3.0);
  const RegistrySnapshot before = reg.snapshot();
  c.inc(2);
  g.set(9.0);
  h.observe(4.0);
  h.observe(40.0);

  const RegistrySnapshot delta = reg.snapshot().since(before);
  double counterDelta = -1.0, gaugeValue = -1.0;
  std::uint64_t histCount = 0;
  for (const MetricSample& m : delta.metrics) {
    if (m.name == "t_since_total") counterDelta = m.value;
    if (m.name == "t_since_gauge") gaugeValue = m.value;
    if (m.name == "t_since_hist") histCount = m.histogram.count;
  }
  EXPECT_DOUBLE_EQ(counterDelta, 2.0);
  EXPECT_DOUBLE_EQ(gaugeValue, 9.0);  // gauges keep the current value
  EXPECT_EQ(histCount, 2u);
}

TEST(Metrics, ConcurrentWritersAreCoherent) {
  auto& reg = Registry::global();
  Counter& c = reg.counter("t_mt_total");
  Histogram& h = reg.histogram("t_mt_hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  // Snapshots race with the writers on purpose (TSan must stay quiet).
  for (int i = 0; i < 10; ++i) (void)reg.snapshot();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Ring, PushIsANoOpWhenDisabled) {
  BoundedLog<int> log;
  EXPECT_FALSE(log.enabled());
  log.push(1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(Ring, OverflowDropsOldestAndCounts) {
  BoundedLog<int> log;
  log.enable(4);
  for (int i = 1; i <= 7; ++i) log.push(i);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 3u);
  const std::vector<int> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 4u);  // oldest-first, newest survive
  EXPECT_EQ(kept.front(), 4);
  EXPECT_EQ(kept.back(), 7);

  // Re-enabling resets both the ring and the drop count.
  log.enable(2);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(Trace, PhaseChainsFollowRecordOrder) {
  std::vector<SpanRecord> spans;
  spans.push_back({1, TaskPhase::kSubmit, 0.0, 0.0, 1, "agent", ""});
  spans.push_back({2, TaskPhase::kSubmit, 0.1, 0.0, 1, "agent", ""});
  spans.push_back({1, TaskPhase::kPredict, 0.2, 0.0, 1, "agent", ""});
  spans.push_back({1, TaskPhase::kDecide, 0.2, 0.0, 1, "agent", "grid-0"});
  spans.push_back({2, TaskPhase::kLost, 0.3, 0.0, 1, "agent", ""});
  const auto chains = taskPhaseChains(spans);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains.at(1), "submit>predict>decide");
  EXPECT_EQ(chains.at(2), "submit>lost");
}

TEST(Trace, ChromeTraceJsonCarriesSpansAndDropAccounting) {
  TraceBuffer& trace = TraceBuffer::global();
  trace.enable(2);
  trace.push({1, TaskPhase::kSubmit, 1.0, 0.0, 1, "agent", "mm"});
  trace.push({1, TaskPhase::kDecide, 2.0, 0.0, 1, "agent", "grid-0"});
  trace.push({1, TaskPhase::kComplete, 3.0, 0.0, 1, "agent", ""});  // drops kSubmit
  const std::string json = trace.chromeTraceJson();
  trace.disable();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"captured_spans\": 2"), std::string::npos);
  // ts is sim seconds scaled to microseconds.
  EXPECT_NE(json.find("\"ts\": 2000000"), std::string::npos);
}

TEST(Decision, JsonCarriesCandidatesAndDrops) {
  DecisionLog log;  // local instance; the global one behaves identically
  log.enable(8);
  DecisionRecord rec;
  rec.taskId = 5;
  rec.time = 12.5;
  rec.attempt = 2;
  rec.heuristic = "msf";
  rec.chosen = "grid-1";
  rec.candidates.push_back({"grid-0", 30.0, 42.5, 1.5, 3.0});
  rec.candidates.push_back({"grid-1", 20.0, 32.5, 0.5, -1.0});
  log.push(rec);
  const std::string json = log.json();
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"heuristic\": \"msf\""), std::string::npos);
  EXPECT_NE(json.find("\"chosen\": \"grid-1\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_completion\": 42.5"), std::string::npos);
  EXPECT_NE(json.find("\"load_staleness\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST(StatsFormat, ParseAndRender) {
  EXPECT_EQ(parseStatsFormat("prometheus"), StatsFormat::kPrometheus);
  EXPECT_EQ(parseStatsFormat("JSON"), StatsFormat::kJson);
  EXPECT_STREQ(statsFormatName(StatsFormat::kJson), "json");
  try {
    parseStatsFormat("xml");
    FAIL() << "should have thrown";
  } catch (const util::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown stats format 'xml'"), std::string::npos) << what;
    EXPECT_NE(what.find("prometheus"), std::string::npos);
    EXPECT_NE(what.find("json"), std::string::npos);
  }

  Registry& reg = Registry::global();
  reg.counter("t_render_total").inc();
  EXPECT_NE(renderStats(reg.snapshot(), StatsFormat::kPrometheus).find("t_render_total"),
            std::string::npos);
  EXPECT_NE(renderStats(reg.snapshot(), StatsFormat::kJson).find("\"metrics\""),
            std::string::npos);
}

}  // namespace
}  // namespace casched::obs
